/**
 * @file
 * Quickstart: allocate two resources among four players with the
 * market, then let ReBudget trade fairness for efficiency.
 *
 * This example uses simple closed-form utilities (PowerLawUtility) so it
 * runs instantly; see online_simulation.cpp for the full
 * hardware-in-the-loop pipeline with real cache/power models.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "rebudget/core/baselines.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/market/metrics.h"

using namespace rebudget;

int
main()
{
    // Four players over two resources (say, cache regions and watts).
    // Player utilities are concave; weights express how much each player
    // cares about each resource, exponents how quickly it saturates.
    const std::vector<double> capacities = {24.0, 60.0};
    std::vector<std::unique_ptr<market::PowerLawUtility>> models;
    auto add_player = [&](double cache_w, double power_w, double e) {
        models.push_back(std::make_unique<market::PowerLawUtility>(
            std::vector<double>{cache_w, power_w},
            std::vector<double>{e, e}, capacities));
    };
    add_player(0.9, 0.1, 0.95); // cache-hungry, hard to satiate
    add_player(0.1, 0.9, 0.95); // power-hungry, hard to satiate
    add_player(0.5, 0.5, 0.10); // satiates quickly: over-budgeted
    add_player(0.5, 0.5, 0.10);

    core::AllocationProblem problem;
    for (const auto &m : models)
        problem.models.push_back(m.get());
    problem.capacities = capacities;

    auto report = [&](const core::Allocator &mechanism) {
        const core::AllocationOutcome out = mechanism.allocate(problem);
        const double eff =
            market::efficiency(problem.models, out.alloc);
        const double ef =
            market::envyFreeness(problem.models, out.alloc);
        std::printf("%-14s efficiency=%.3f envy-freeness=%.3f",
                    out.mechanism.c_str(), eff, ef);
        if (!out.lambdas.empty()) {
            const double mur =
                market::marketUtilityRange(out.lambdas).value();
            std::printf(" MUR=%.2f (PoA bound %.2f)", mur,
                        market::poaLowerBound(mur));
        }
        if (!out.budgets.empty()) {
            const double mbr =
                market::marketBudgetRange(out.budgets).value();
            std::printf(" MBR=%.2f (EF bound %.2f)", mbr,
                        market::envyFreenessLowerBound(mbr));
        }
        std::printf("\n");
    };

    std::printf("== ReBudget quickstart: 4 players, 2 resources ==\n\n");
    report(core::EqualShareAllocator());
    report(core::EqualBudgetAllocator());
    report(core::ReBudgetAllocator::withStep(20));
    report(core::ReBudgetAllocator::withStep(40));
    report(core::MaxEfficiencyAllocator());

    std::printf("\nReBudget's step is the efficiency-vs-fairness knob:\n"
                "larger steps cut over-budgeted players harder, raising\n"
                "efficiency toward MaxEfficiency while Theorem 2 bounds\n"
                "the worst-case envy-freeness via MBR.\n");
    return 0;
}
