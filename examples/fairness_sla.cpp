/**
 * @file
 * Administrator workflow: maximize throughput under a fairness SLA.
 *
 * A datacenter operator colocates tenants on a CMP and promises each a
 * worst-case fairness level ("no tenant envies another's resources by
 * more than X").  Section 4.2's ByFairnessTarget mode inverts Theorem 2
 * to a budget floor (MBR) and lets ReBudget maximize efficiency subject
 * to the guarantee.  This example sweeps SLA levels on a 16-core mix
 * and verifies the guarantee is honored while efficiency rises as the
 * SLA loosens.
 *
 * Run: ./build/examples/fairness_sla
 */

#include <iostream>
#include <memory>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/app/utility.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/market/metrics.h"
#include "rebudget/power/power_model.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main()
{
    const power::PowerModel power;
    // 16 tenants: 4 of each class.
    const std::vector<std::string> names = {
        "mcf",  "vpr",      "twolf", "art",     // cache-hungry
        "apsi", "swim",     "gcc",   "bzip2",   // both
        "hmmer", "sixtrack", "namd",  "povray", // frequency-bound
        "milc", "lbm",      "gap",   "applu"};  // background/streaming
    std::vector<std::unique_ptr<app::AppUtilityModel>> models;
    core::AllocationProblem problem;
    double min_watts = 0.0;
    for (const auto &nm : names) {
        models.push_back(std::make_unique<app::AppUtilityModel>(
            app::findCatalogProfile(nm), power));
        min_watts += models.back()->minWatts();
        problem.models.push_back(models.back().get());
    }
    problem.capacities = {16.0 * 4.0 - 16.0, 160.0 - min_watts};

    const double opt = market::efficiency(
        problem.models,
        core::MaxEfficiencyAllocator().allocate(problem).alloc);

    util::TablePrinter table({"SLA (min EF)", "MBR floor", "efficiency",
                              "vs-optimal", "measured EF",
                              "SLA honored"});
    for (double sla : {0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}) {
        const auto mechanism =
            core::ReBudgetAllocator::withFairnessTarget(sla);
        const auto out = mechanism.allocate(problem);
        const double eff =
            market::efficiency(problem.models, out.alloc);
        const double ef =
            market::envyFreeness(problem.models, out.alloc);
        table.addRow(
            {util::formatDouble(sla, 2),
             util::formatDouble(mechanism.budgetFloorFraction(), 3),
             util::formatDouble(eff, 3), util::formatDouble(eff / opt, 3),
             util::formatDouble(ef, 3), ef >= sla - 1e-9 ? "yes" : "NO"});
    }

    std::cout << "ReBudget under a fairness SLA (16 tenants, 64 cache "
                 "regions, 160 W)\n\n";
    table.print(std::cout);
    std::cout << "\nLoosening the SLA frees ReBudget to reassign budget "
                 "more aggressively;\nefficiency approaches the oracle "
                 "while every SLA row stays honored.\n";
    return 0;
}
