/**
 * @file
 * The efficiency-vs-fairness knob on a real workload bundle.
 *
 * Builds the paper's 8-core BBPC study bundle (Section 6.1.1: apsi x2,
 * swim x2, mcf x2, hmmer, sixtrack) from the SPEC-like catalog with full
 * cache/power utility models, then sweeps ReBudget's step from gentle to
 * aggressive and prints the resulting efficiency/envy-freeness frontier
 * together with the MUR/MBR theory bounds.
 *
 * Run: ./build/examples/efficiency_fairness_knob
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/app/utility.h"
#include "rebudget/core/baselines.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/market/metrics.h"
#include "rebudget/power/power_model.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main()
{
    const power::PowerModel power;
    const std::vector<std::string> names = {"apsi", "apsi", "swim",
                                            "swim", "mcf",  "mcf",
                                            "hmmer", "sixtrack"};
    std::vector<std::unique_ptr<app::AppUtilityModel>> models;
    core::AllocationProblem problem;
    double min_watts = 0.0;
    for (const auto &nm : names) {
        models.push_back(std::make_unique<app::AppUtilityModel>(
            app::findCatalogProfile(nm), power));
        min_watts += models.back()->minWatts();
        problem.models.push_back(models.back().get());
    }
    // 8-core machine: 32 cache regions (8 free) and 80 W (minimums
    // reserved).
    problem.capacities = {32.0 - 8.0, 80.0 - min_watts};

    const double opt = market::efficiency(
        problem.models,
        core::MaxEfficiencyAllocator().allocate(problem).alloc);

    util::TablePrinter table({"mechanism", "efficiency", "vs-optimal",
                              "envy-freeness", "MUR", "MBR",
                              "EF-bound(Thm2)"});
    auto row = [&](const core::Allocator &mechanism) {
        const auto out = mechanism.allocate(problem);
        const double eff =
            market::efficiency(problem.models, out.alloc);
        const double ef =
            market::envyFreeness(problem.models, out.alloc);
        const bool market_based = !out.budgets.empty();
        const double mur =
            market_based ? market::marketUtilityRange(out.lambdas).value()
                         : 0.0;
        const double mbr =
            market_based ? market::marketBudgetRange(out.budgets).value()
                         : 1.0;
        table.addRow({out.mechanism, util::formatDouble(eff, 3),
                      util::formatDouble(eff / opt, 3),
                      util::formatDouble(ef, 3),
                      market_based ? util::formatDouble(mur, 2) : "-",
                      market_based ? util::formatDouble(mbr, 2) : "-",
                      market_based
                          ? util::formatDouble(
                                market::envyFreenessLowerBound(mbr), 2)
                          : "-"});
    };

    row(core::EqualShareAllocator());
    row(core::EqualBudgetAllocator());
    row(core::BalancedBudgetAllocator());
    for (double step : {5.0, 10.0, 20.0, 30.0, 40.0, 45.0})
        row(core::ReBudgetAllocator::withStep(step));
    row(core::MaxEfficiencyAllocator());

    std::cout << "Efficiency/fairness frontier on the BBPC bundle "
                 "(8 cores)\n\n";
    table.print(std::cout);
    std::cout << "\nLarger ReBudget steps push efficiency toward the "
                 "MaxEfficiency oracle\nwhile envy-freeness degrades -- "
                 "but never below the Theorem 2 bound.\n";
    return 0;
}
