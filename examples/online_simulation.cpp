/**
 * @file
 * Hardware-in-the-loop allocation: the full online pipeline.
 *
 * Runs an 8-core execution-driven simulation (synthetic reference
 * streams -> private L1s -> UMON monitors -> shared Talus/Futility-
 * Scaling L2 -> DVFS power model) with ReBudget re-allocating cache and
 * power every 1 ms epoch from *online-monitored* utility models -- the
 * paper's phase-2 methodology.  Compares against EqualShare and
 * EqualBudget.
 *
 * Run: ./build/examples/online_simulation
 */

#include <cstdio>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/core/baselines.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/sim/epoch_sim.h"

using namespace rebudget;

namespace {

sim::EpochSimConfig
machine()
{
    sim::EpochSimConfig cfg = sim::EpochSimConfig::forCores(8);
    cfg.epochs = 12;
    cfg.warmupEpochs = 4;
    cfg.cmp.accessesPerEpochPerCore = 8000;
    return cfg;
}

std::vector<app::AppParams>
bundle()
{
    // A CPBN-style mix: 2 cache-, 2 power-, 2 both-sensitive, 2 neutral.
    std::vector<app::AppParams> apps;
    for (const char *nm : {"mcf", "vpr", "sixtrack", "hmmer", "swim",
                           "apsi", "milc", "libquantum"}) {
        apps.push_back(app::findCatalogProfile(nm).params);
    }
    return apps;
}

void
run(const core::Allocator &allocator)
{
    sim::EpochSimulator simulator(machine(), bundle(), allocator);
    const sim::SimResult result = simulator.run();
    std::printf("%-14s weighted speedup %.3f  envy-freeness %.3f\n",
                result.mechanism.c_str(), result.meanEfficiency,
                result.envyFreeness);
    std::printf("  epoch efficiencies:");
    for (const auto &rec : result.epochs)
        std::printf(" %.2f", rec.efficiency);
    std::printf("\n  final freqs (GHz): ");
    for (double f : result.epochs.back().freqsGhz)
        std::printf(" %.1f", f);
    std::printf("\n  final cache (regions):");
    for (double c : result.epochs.back().cacheTargets)
        std::printf(" %.1f", c);
    std::printf("\n\n");
}

} // namespace

int
main()
{
    std::printf("Execution-driven 8-core simulation, 1 ms epochs, "
                "online monitors\n");
    std::printf("bundle: mcf vpr sixtrack hmmer swim apsi milc "
                "libquantum\n\n");
    run(core::EqualShareAllocator());
    run(core::EqualBudgetAllocator());
    run(core::ReBudgetAllocator::withStep(40));
    std::printf("ReBudget steers cache toward the cache-sensitive apps\n"
                "and power toward the frequency-bound ones, using only\n"
                "what the hardware monitors observed at run time.\n");
    return 0;
}
