/**
 * @file
 * Bring your own trace: profile a recorded memory trace and let it
 * compete in the market against catalog applications.
 *
 * Real deployments would record the trace with Pin/DynamoRIO or a full
 * simulator; to stay self-contained this example first *writes* a small
 * trace file (a loop nest touching a 512 kB array with a strided inner
 * loop), then loads it back through trace::loadTraceFile, profiles it
 * with app::profileStream, and allocates resources among the traced app
 * and three catalog tenants.
 *
 * Run: ./build/examples/custom_trace
 */

#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/app/profiler.h"
#include "rebudget/app/utility.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/market/metrics.h"
#include "rebudget/power/power_model.h"
#include "rebudget/trace/replay.h"

using namespace rebudget;

namespace {

// Record the memory behavior of a toy blocked loop nest: repeated
// passes over a 512 kB array, reading two streams and writing one.
std::vector<trace::Access>
recordLoopNest()
{
    std::vector<trace::Access> out;
    const uint64_t array = 512 * 1024;
    for (int pass = 0; pass < 6; ++pass) {
        for (uint64_t i = 0; i < array; i += 64) {
            out.push_back({0x10000000 + i, false});          // load a[i]
            out.push_back({0x20000000 + (i * 3) % array,     // load b[3i]
                           false});
            out.push_back({0x30000000 + i, true});           // store c[i]
        }
    }
    return out;
}

} // namespace

int
main()
{
    // 1. "Record" and persist the trace (stand-in for a Pin tool).
    const std::string path =
        (std::filesystem::temp_directory_path() / "loopnest.trace")
            .string();
    saveTraceFile(path, recordLoopNest());
    std::printf("wrote %s\n", path.c_str());

    // 2. Load it back and profile it like any application.  The traced
    //    program executes ~3 memory references per 10 instructions.
    const auto accesses = trace::loadTraceFile(path);
    trace::ReplayGen replay(accesses);
    const app::AppProfile traced = app::profileStream(
        replay, "loopnest", /*mem_per_instr=*/0.3, /*compute_cpi=*/0.5,
        /*activity=*/0.8);
    std::printf("profiled '%s': %zu recorded accesses, %.3f L2 "
                "accesses/instr,\nfootprint %.0f kB (distinct lines)\n",
                traced.params.name.c_str(), replay.length(),
                traced.l2AccessesPerInstr,
                static_cast<double>(replay.footprintBytes()) / 1024.0);

    // 3. Put it on a 4-core machine against catalog tenants.
    const power::PowerModel power;
    std::vector<std::unique_ptr<app::AppUtilityModel>> models;
    core::AllocationProblem problem;
    double min_watts = 0.0;
    models.push_back(
        std::make_unique<app::AppUtilityModel>(traced, power));
    for (const char *nm : {"mcf", "hmmer", "milc"}) {
        models.push_back(std::make_unique<app::AppUtilityModel>(
            app::findCatalogProfile(nm), power));
    }
    for (const auto &m : models) {
        min_watts += m->minWatts();
        problem.models.push_back(m.get());
    }
    problem.capacities = {4 * 4.0 - 4.0, 4 * 10.0 - min_watts};

    const auto out =
        core::ReBudgetAllocator::withStep(40).allocate(problem);
    const auto utils =
        market::perPlayerUtilities(problem.models, out.alloc);
    std::printf("\n%-10s %-8s %-8s %-8s\n", "app", "cache", "watts",
                "utility");
    const char *names[] = {"loopnest", "mcf", "hmmer", "milc"};
    for (size_t i = 0; i < 4; ++i) {
        std::printf("%-10s %-8.2f %-8.2f %-8.3f\n", names[i],
                    1.0 + out.alloc[i][0],
                    models[i]->minWatts() + out.alloc[i][1], utils[i]);
    }
    std::printf("\nefficiency %.3f, envy-freeness %.3f\n",
                market::efficiency(problem.models, out.alloc),
                market::envyFreeness(problem.models, out.alloc));
    std::remove(path.c_str());
    return 0;
}
