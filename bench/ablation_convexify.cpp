/**
 * @file
 * Ablation: Talus convexification on/off (paper footnote 4 notes that
 * convexifying utilities is an improvement over the original XChange).
 *
 * Runs EqualBudget and ReBudget-40 on a bundle subset with raw
 * (non-convexified) vs. convexified utility models and compares
 * efficiency and convergence.  Without convexification the cache
 * utilities have plateaus and cliffs, so hill-climbing bidders see zero
 * marginals below a cliff and misprice cache.
 */

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "rebudget/core/baselines.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main()
{
    const uint32_t cores = 16; // smaller machine: effect is the same
    const auto catalog = workloads::classifyCatalog();
    const auto bundles =
        workloads::generateAllBundles(catalog, cores, 8, 7);

    util::SummaryStats eq_raw, eq_cvx, rb_raw, rb_cvx;
    const core::EqualBudgetAllocator equal_budget;
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    const core::MaxEfficiencyAllocator max_eff;

    for (const auto &bundle : bundles) {
        bench::BundleProblem raw = bench::makeBundleProblem(
            bundle.appNames, 4.0, 10.0, /*convexify=*/false);
        bench::BundleProblem cvx = bench::makeBundleProblem(
            bundle.appNames, 4.0, 10.0, /*convexify=*/true);
        // Normalize both to the convexified oracle (what the hardware
        // can actually achieve with Talus installed).
        const double opt =
            bench::score(max_eff, cvx.problem).efficiency;
        // Raw-model bids, but outcomes valued on the achievable
        // (convexified) utilities: allocate with raw models, evaluate
        // with convex models.
        const auto raw_eq = equal_budget.allocate(raw.problem);
        const auto raw_rb = rb40.allocate(raw.problem);
        eq_raw.add(market::efficiency(cvx.problem.models, raw_eq.alloc) /
                   opt);
        rb_raw.add(market::efficiency(cvx.problem.models, raw_rb.alloc) /
                   opt);
        eq_cvx.add(bench::score(equal_budget, cvx.problem).efficiency /
                   opt);
        rb_cvx.add(bench::score(rb40, cvx.problem).efficiency / opt);
    }

    util::printBanner(std::cout,
                      "Ablation: utility convexification (Talus) on/off "
                      "-- efficiency vs MaxEfficiency");
    util::TablePrinter t({"mechanism", "raw_utilities",
                          "convexified_utilities", "gain"});
    t.addRow({"EqualBudget", util::formatDouble(eq_raw.mean(), 3),
              util::formatDouble(eq_cvx.mean(), 3),
              util::formatDouble(eq_cvx.mean() - eq_raw.mean(), 3)});
    t.addRow({"ReBudget-40", util::formatDouble(rb_raw.mean(), 3),
              util::formatDouble(rb_cvx.mean(), 3),
              util::formatDouble(rb_cvx.mean() - rb_raw.mean(), 3)});
    t.print(std::cout);
    std::cout << "\n(48 bundles, 16 cores; means over bundles.  "
                 "Convexification lets bidders\nsee non-zero cache "
                 "marginals below utility cliffs, as in Talus + "
                 "XChange.)\n";
    return 0;
}
