/**
 * @file
 * Ablation: Talus convexification on/off (paper footnote 4 notes that
 * convexifying utilities is an improvement over the original XChange).
 *
 * Runs EqualBudget and ReBudget-40 on a bundle subset with raw
 * (non-convexified) vs. convexified utility models and compares
 * efficiency and convergence.  Without convexification the cache
 * utilities have plateaus and cliffs, so hill-climbing bidders see zero
 * marginals below a cliff and misprice cache.
 *
 * The raw/convex cross-evaluation is not expressible as a plain
 * BundleRunner sweep, so this bench parallelizes per bundle with
 * util::parallelFor directly (--jobs N / REBUDGET_JOBS); per-bundle
 * results land in index-addressed slots, so output is byte-identical
 * at any job count.
 */

#include <iostream>
#include <vector>

#include "rebudget/core/baselines.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/market/metrics.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"
#include "rebudget/util/thread_pool.h"

using namespace rebudget;

int
main(int argc, char **argv)
{
    const uint32_t cores = 16; // smaller machine: effect is the same
    const auto catalog = workloads::classifyCatalog();
    const auto bundles =
        workloads::generateAllBundles(catalog, cores, 8, 7);

    const core::EqualBudgetAllocator equal_budget;
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    const core::MaxEfficiencyAllocator max_eff;

    struct BundleRow
    {
        double eq_raw = 0.0, eq_cvx = 0.0, rb_raw = 0.0, rb_cvx = 0.0;
    };
    std::vector<BundleRow> rows(bundles.size());

    app::catalogProfiles(); // warm the catalog before forking workers
    const auto jobs_arg = eval::parseJobsArg(argc, argv);
    if (!jobs_arg.ok())
        util::fatal("%s", jobs_arg.status().message().c_str());
    const unsigned jobs = jobs_arg.value();
    util::parallelFor(jobs, bundles.size(), [&](size_t i) {
        const eval::BundleProblem raw = eval::makeBundleProblem(
            bundles[i].appNames, 4.0, 10.0, /*convexify=*/false);
        const eval::BundleProblem cvx = eval::makeBundleProblem(
            bundles[i].appNames, 4.0, 10.0, /*convexify=*/true);
        // Normalize both to the convexified oracle (what the hardware
        // can actually achieve with Talus installed).
        const double opt =
            eval::score(max_eff, cvx.problem).efficiency;
        // Raw-model bids, but outcomes valued on the achievable
        // (convexified) utilities: allocate with raw models, evaluate
        // with convex models.
        const auto raw_eq = equal_budget.allocate(raw.problem);
        const auto raw_rb = rb40.allocate(raw.problem);
        BundleRow &r = rows[i];
        r.eq_raw =
            market::efficiency(cvx.problem.models, raw_eq.alloc) / opt;
        r.rb_raw =
            market::efficiency(cvx.problem.models, raw_rb.alloc) / opt;
        r.eq_cvx =
            eval::score(equal_budget, cvx.problem).efficiency / opt;
        r.rb_cvx = eval::score(rb40, cvx.problem).efficiency / opt;
    });

    util::SummaryStats eq_raw, eq_cvx, rb_raw, rb_cvx;
    for (const auto &r : rows) {
        eq_raw.add(r.eq_raw);
        eq_cvx.add(r.eq_cvx);
        rb_raw.add(r.rb_raw);
        rb_cvx.add(r.rb_cvx);
    }

    util::printBanner(std::cout,
                      "Ablation: utility convexification (Talus) on/off "
                      "-- efficiency vs MaxEfficiency");
    util::TablePrinter t({"mechanism", "raw_utilities",
                          "convexified_utilities", "gain"});
    t.addRow({"EqualBudget", util::formatDouble(eq_raw.mean(), 3),
              util::formatDouble(eq_cvx.mean(), 3),
              util::formatDouble(eq_cvx.mean() - eq_raw.mean(), 3)});
    t.addRow({"ReBudget-40", util::formatDouble(rb_raw.mean(), 3),
              util::formatDouble(rb_cvx.mean(), 3),
              util::formatDouble(rb_cvx.mean() - rb_raw.mean(), 3)});
    t.print(std::cout);
    std::cout << "\n(48 bundles, 16 cores; means over bundles.  "
                 "Convexification lets bidders\nsee non-zero cache "
                 "marginals below utility cliffs, as in Talus + "
                 "XChange.)\n";
    return 0;
}
