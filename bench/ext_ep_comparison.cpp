/**
 * @file
 * Extension: the EP (elasticities-proportional / REF) mechanism the
 * paper discusses in Section 1.
 *
 * EP is Pareto-efficient and envy-free *when utilities are truly
 * Cobb-Douglas*.  This bench measures (a) how badly real cache/power
 * utilities fit Cobb-Douglas (per-class R^2 of the log-log regression),
 * and (b) EP's efficiency and fairness against the market mechanisms on
 * a bundle subset -- quantifying the paper's claim that EP "can in fact
 * perform worse than expected when such curve-fitting is not well
 * suited to the applications".
 *
 * The bundle sweep runs on eval::BundleRunner (--jobs N).
 */

#include <iostream>
#include <vector>

#include "rebudget/core/baselines.h"
#include "rebudget/core/ep_allocator.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main(int argc, char **argv)
{
    // (a) Cobb-Douglas fit quality per catalog application.
    util::printBanner(std::cout,
                      "Extension: Cobb-Douglas fit quality (R^2) per "
                      "application class");
    {
        util::TablePrinter t({"app", "class", "elasticity_cache",
                              "elasticity_power", "R2"});
        const std::vector<double> caps = {15.0, 14.0};
        const power::PowerModel power;
        for (const auto &profile : app::catalogProfiles()) {
            const app::AppUtilityModel model(profile, power);
            const auto fit = core::fitCobbDouglas(model, caps);
            t.addRow({profile.params.name,
                      std::string(1, app::appClassCode(
                                         profile.params.designClass)),
                      util::formatDouble(fit.elasticities[0], 3),
                      util::formatDouble(fit.elasticities[1], 3),
                      util::formatDouble(fit.r2, 3)});
        }
        t.print(std::cout);
    }

    // (b) EP vs market mechanisms on a bundle subset.
    const uint32_t cores = 16;
    const auto catalog = workloads::classifyCatalog();
    const auto bundles =
        workloads::generateAllBundles(catalog, cores, 8, 21);

    const core::EpAllocator ep;
    const core::EqualBudgetAllocator equal_budget;
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    const core::MaxEfficiencyAllocator max_eff;

    eval::BundleRunnerOptions opts;
    const auto jobs_arg = eval::parseJobsArg(argc, argv);
    if (!jobs_arg.ok())
        util::fatal("%s", jobs_arg.status().message().c_str());
    opts.jobs = jobs_arg.value();
    const eval::BundleRunner runner(
        {&ep, &equal_budget, &rb40, &max_eff}, opts);
    const size_t i_ep = runner.mechanismIndex("EP").value();
    const size_t i_eq = runner.mechanismIndex("EqualBudget").value();
    const size_t i_rb = runner.mechanismIndex("ReBudget-40").value();
    const size_t i_opt = runner.mechanismIndex("MaxEfficiency").value();
    const auto evals = runner.run(bundles);

    util::SummaryStats ep_eff, eq_eff, rb_eff, ep_ef, eq_ef, rb_ef;
    for (const auto &ev : evals) {
        if (ev.skipped)
            continue;
        const double opt = ev.scores[i_opt].efficiency;
        ep_eff.add(ev.scores[i_ep].efficiency / opt);
        eq_eff.add(ev.scores[i_eq].efficiency / opt);
        rb_eff.add(ev.scores[i_rb].efficiency / opt);
        ep_ef.add(ev.scores[i_ep].envyFreeness);
        eq_ef.add(ev.scores[i_eq].envyFreeness);
        rb_ef.add(ev.scores[i_rb].envyFreeness);
    }

    util::printBanner(std::cout,
                      "Extension: EP vs market mechanisms "
                      "(48 bundles, 16 cores)");
    util::TablePrinter t({"mechanism", "mean_eff_vs_opt", "worst_eff",
                          "mean_EF", "worst_EF"});
    t.addRow({"EP", util::formatDouble(ep_eff.mean(), 3),
              util::formatDouble(ep_eff.min(), 3),
              util::formatDouble(ep_ef.mean(), 3),
              util::formatDouble(ep_ef.min(), 3)});
    t.addRow({"EqualBudget", util::formatDouble(eq_eff.mean(), 3),
              util::formatDouble(eq_eff.min(), 3),
              util::formatDouble(eq_ef.mean(), 3),
              util::formatDouble(eq_ef.min(), 3)});
    t.addRow({"ReBudget-40", util::formatDouble(rb_eff.mean(), 3),
              util::formatDouble(rb_eff.min(), 3),
              util::formatDouble(rb_ef.mean(), 3),
              util::formatDouble(rb_ef.min(), 3)});
    t.print(std::cout);
    std::cout << "\nEP's envy-freeness guarantee assumes exact "
                 "Cobb-Douglas utilities; with the\nmeasured fits "
                 "above it holds only approximately, and its "
                 "efficiency trails\nthe market (Section 1's "
                 "discussion of REF).\n";
    return 0;
}
