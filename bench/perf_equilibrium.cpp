/**
 * @file
 * Warm-start benchmark: cold vs. warm equilibrium solves.
 *
 * Part A isolates the market engine: at 8/16/64 players, a ReBudget-like
 * budget walk (a sequence of slowly shrinking budget vectors) is solved
 * twice -- cold (every solve starts from equal-split bids) and warm
 * (every solve seeds from the previous equilibrium) -- and cumulative
 * bidding-pricing iterations plus wall-clock are compared.
 *
 * Part B measures the end-to-end effect on the paper's Figure 4 sweep:
 * the full bundle suite is evaluated with market warm starts off and on,
 * and for each market mechanism the cumulative iterations and wall-clock
 * are compared.  Agreement is checked per SOLVE: each mechanism's exact
 * budget trajectory (recorded from an instrumented cold run) is
 * replayed with every vector solved both cold and warm -- seeded from
 * the cold equilibrium of the previous vector, exactly the (prior,
 * budgets) pairs the runtime hot path produces -- and the allocation
 * difference (relative to capacity) between the paired solves is
 * reported as median / p99 / max.  The acceptance claim is a >= 2x
 * iteration reduction for ReBudget with paired solves agreeing within
 * the market's tolerance class: the convergence test is price
 * fluctuation < priceTol per sweep, which leaves each solve's
 * allocations ~1% of capacity away from the exact fixed point (a cold
 * solve vs. a priceTol=1e-4 reference differs by up to 1.3%), so two
 * independent solves agree to the sum of their bands -- median
 * well under priceTol, max about 2x priceTol.  Relative price
 * differences run far larger than allocation differences because the
 * convexified utilities have linear segments: the money split across
 * resources is non-unique along flat-lambda directions even where the
 * allocation is pinned.  The end-to-end allocation difference between
 * the two full sweeps is also reported, but it measures trajectory
 * divergence, not solver error: ReBudget's lambda-threshold cuts sit
 * on razor-thin margins, so an equilibrium-equivalent warm solve can
 * still flip a cut decision and walk the budgets to a
 * (quality-equivalent) neighboring fixed point.
 *
 * Part C pins the flattened solver's memory contract: after a sizing
 * pass, repeated warm solves through findEquilibriumInto with a reused
 * SolveWorkspace and ping-ponged result slots must perform ZERO heap
 * allocations (counted by this binary's own operator new override,
 * including the align_val_t overloads the 64-byte Matrix buffers go
 * through) -- the benchmark aborts otherwise -- and the per-sweep cost
 * (nanoseconds per bidding-pricing sweep) is reported per market size.
 *
 * Part D is the scaling sweep (ISSUE 7): the same synthetic budget walk
 * at 1k/10k/100k players, measured in three solver modes per size --
 * "hill_climb_scalar" (SIMD kernels disabled: the pre-PR reference
 * path, whose solve/sweep/update-step counters must reproduce the
 * committed BENCH_scaling_prepr.json capture exactly), "hill_climb"
 * (SIMD on, bit-identical numerics by the util::simd lane-per-column
 * contract, so the counters must not move), and "best_response"
 * (MarketConfig::bestResponse: closed-form price-anticipating replies,
 * one gradient call per player per sweep).  Every mode inherits Part
 * C's zero-allocation contract and aborts on violation.
 *
 * Output: a human-readable summary on stdout and a JSON artifact
 * (default BENCH_market.json; see EXPERIMENTS.md).
 *
 * Flags: --smoke (tiny configuration for CI; scaling runs 1k only),
 * --scaling-smoke (Part D only at 1k players -- the scaling_smoke
 * CTest entry), --out PATH, --jobs N.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rebudget/core/baselines.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/market/market.h"
#include "rebudget/market/utility_model.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/rng.h"
#include "rebudget/util/simd.h"
#include "rebudget/util/table.h"
#include "rebudget/workloads/bundles.h"

// ---------------------------------------------------------------------
// Heap allocation counter: every operator new in this binary bumps an
// atomic, so Part C can assert that steady-state solves are
// allocation-free.  Counting is process-wide (all threads) but Part C
// only reads the counter around a single-threaded measurement loop.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::int64_t> g_heap_allocs{0};

void *
countedAlloc(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (align < sizeof(void *))
        align = sizeof(void *);
    void *p = nullptr;
    if (posix_memalign(&p, align, size ? size : 1) == 0)
        return p;
    throw std::bad_alloc();
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

// Over-aligned variants: util::Matrix allocates its 64-byte-aligned
// buffer through ::operator new(size, align_val_t), so the audit must
// intercept these too or steady-state matrix growth would go uncounted.

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

using namespace rebudget;

namespace {

double
nowMs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               clock::now().time_since_epoch())
        .count();
}

// ---------------------------------------------------------------------
// Part A: synthetic budget walk against the raw market engine.
// ---------------------------------------------------------------------

struct SyntheticResult
{
    size_t players = 0;
    int rounds = 0;
    long coldIterations = 0;
    long warmIterations = 0;
    double coldMs = 0.0;
    double warmMs = 0.0;
};

struct SyntheticProblem
{
    std::vector<std::unique_ptr<market::PowerLawUtility>> owned;
    std::vector<const market::UtilityModel *> models;
    std::vector<double> capacities;
};

SyntheticProblem
makeSynthetic(size_t players, uint64_t seed)
{
    util::Rng rng(seed);
    SyntheticProblem p;
    p.capacities = {players * 3.0, players * 9.0};
    for (size_t i = 0; i < players; ++i) {
        p.owned.push_back(std::make_unique<market::PowerLawUtility>(
            std::vector<double>{rng.uniform(0.1, 1.0),
                                rng.uniform(0.1, 1.0)},
            std::vector<double>{rng.uniform(0.2, 1.0),
                                rng.uniform(0.2, 1.0)},
            p.capacities));
        p.models.push_back(p.owned.back().get());
    }
    return p;
}

/**
 * ReBudget-like walk: start from equal budgets and repeatedly cut a
 * rotating third of the players by a halving step -- the budget
 * trajectory the runtime hot path actually sees between equilibrium
 * solves.
 */
std::vector<std::vector<double>>
budgetWalk(size_t players, int rounds)
{
    std::vector<std::vector<double>> walk;
    std::vector<double> budgets(players, 100.0);
    double step = 40.0;
    walk.push_back(budgets);
    for (int r = 1; r < rounds; ++r) {
        for (size_t i = 0; i < players; ++i) {
            if (i % 3 == static_cast<size_t>(r % 3))
                budgets[i] = std::max(budgets[i] - step, 20.0);
        }
        step = std::max(step * 0.7, 1.0);
        walk.push_back(budgets);
    }
    return walk;
}

SyntheticResult
runSynthetic(size_t players, int rounds)
{
    const SyntheticProblem p = makeSynthetic(players, 42);
    const auto walk = budgetWalk(players, rounds);

    SyntheticResult out;
    out.players = players;
    out.rounds = rounds;

    market::MarketConfig cold_cfg;
    cold_cfg.warmStart = false;
    market::ProportionalMarket cold_mkt(p.models, p.capacities, cold_cfg);
    {
        const double t0 = nowMs();
        for (const auto &budgets : walk)
            out.coldIterations +=
                cold_mkt.findEquilibrium(budgets).iterations;
        out.coldMs = nowMs() - t0;
    }

    market::MarketConfig warm_cfg;
    warm_cfg.warmStart = true;
    market::ProportionalMarket warm_mkt(p.models, p.capacities, warm_cfg);
    {
        const double t0 = nowMs();
        market::EquilibriumResult eq;
        const market::EquilibriumResult *prior = nullptr;
        for (const auto &budgets : walk) {
            eq = warm_mkt.findEquilibrium(budgets, prior);
            prior = &eq;
            out.warmIterations += eq.iterations;
        }
        out.warmMs = nowMs() - t0;
    }
    return out;
}

// ---------------------------------------------------------------------
// Part C: steady-state memory contract and per-sweep cost of the
// flattened Into-API hot path.
// ---------------------------------------------------------------------

struct SteadyStateResult
{
    size_t players = 0;
    int countedSolves = 0;
    /** Heap allocations during the counted solves; the contract is 0. */
    std::int64_t countedAllocs = 0;
    /** Bidding-pricing sweeps performed by the counted solves. */
    long sweeps = 0;
    double nsPerSweep = 0.0;
    double usPerSolve = 0.0;
};

SteadyStateResult
runSteadyState(size_t players, int reps)
{
    const SyntheticProblem p = makeSynthetic(players, 42);
    market::MarketConfig cfg;
    cfg.warmStart = true;
    const market::ProportionalMarket mkt(p.models, p.capacities, cfg);
    const auto walk = budgetWalk(players, 12);

    market::SolveWorkspace ws;
    market::EquilibriumResult slots[2];
    int cur = 0;
    const market::EquilibriumResult *prior = nullptr;
    // Sizing pass: the first traversal grows every workspace and result
    // buffer to its steady-state footprint.
    for (const auto &budgets : walk) {
        market::EquilibriumResult *eq = &slots[cur];
        cur ^= 1;
        mkt.findEquilibriumInto(budgets, prior, ws, *eq);
        prior = eq;
    }

    SteadyStateResult out;
    out.players = players;
    const std::int64_t a0 =
        g_heap_allocs.load(std::memory_order_relaxed);
    const double t0 = nowMs();
    for (int rep = 0; rep < reps; ++rep) {
        for (const auto &budgets : walk) {
            market::EquilibriumResult *eq = &slots[cur];
            cur ^= 1;
            mkt.findEquilibriumInto(budgets, prior, ws, *eq);
            prior = eq;
            out.sweeps += eq->iterations;
            ++out.countedSolves;
        }
    }
    const double elapsed_ms = nowMs() - t0;
    out.countedAllocs =
        g_heap_allocs.load(std::memory_order_relaxed) - a0;
    out.nsPerSweep =
        out.sweeps > 0 ? elapsed_ms * 1e6 / out.sweeps : 0.0;
    out.usPerSolve = out.countedSolves > 0
                         ? elapsed_ms * 1e3 / out.countedSolves
                         : 0.0;
    if (out.countedAllocs != 0) {
        util::fatal("steady-state contract violated: %lld heap "
                    "allocations across %d warm solves at %zu players "
                    "(expected 0)",
                    static_cast<long long>(out.countedAllocs),
                    out.countedSolves, players);
    }
    return out;
}

// ---------------------------------------------------------------------
// Part D: synthetic scaling sweep at 1k-100k players, per solver mode.
// ---------------------------------------------------------------------

struct ScalingResult
{
    size_t players = 0;
    /** "hill_climb_scalar" | "hill_climb" | "best_response". */
    std::string mode;
    int countedSolves = 0;
    std::int64_t countedAllocs = 0;
    long sweeps = 0;
    /** Hill-climb steps, or best-response moved-player count. */
    std::int64_t updateSteps = 0;
    double nsPerSweep = 0.0;
    double usPerSolve = 0.0;
};

/**
 * One scaling measurement: the Part C loop (sizing pass, then counted
 * warm reps over the 12-round budget walk) at `players` scale in the
 * given solver mode.  The scalar mode's counters reproduce the pre-PR
 * kernel exactly (see BENCH_scaling_prepr.json); the SIMD mode must
 * match them bit-for-bit; best_response has its own deterministic
 * counters.  All modes abort on any steady-state heap allocation.
 */
ScalingResult
runScaling(size_t players, int reps, const std::string &mode)
{
    const bool simd_on = mode != "hill_climb_scalar";
    const bool best_response = mode == "best_response";
    const bool simd_before = util::simd::enabled();
    util::simd::setEnabled(simd_on);

    const SyntheticProblem p = makeSynthetic(players, 42);
    market::MarketConfig cfg;
    cfg.warmStart = true;
    cfg.bestResponse = best_response;
    const market::ProportionalMarket mkt(p.models, p.capacities, cfg);
    const auto walk = budgetWalk(players, 12);

    market::SolveWorkspace ws;
    market::EquilibriumResult slots[2];
    int cur = 0;
    const market::EquilibriumResult *prior = nullptr;
    for (const auto &budgets : walk) {
        market::EquilibriumResult *eq = &slots[cur];
        cur ^= 1;
        mkt.findEquilibriumInto(budgets, prior, ws, *eq);
        prior = eq;
    }

    ScalingResult out;
    out.players = players;
    out.mode = mode;
    const std::int64_t a0 =
        g_heap_allocs.load(std::memory_order_relaxed);
    const double t0 = nowMs();
    for (int rep = 0; rep < reps; ++rep) {
        for (const auto &budgets : walk) {
            market::EquilibriumResult *eq = &slots[cur];
            cur ^= 1;
            mkt.findEquilibriumInto(budgets, prior, ws, *eq);
            prior = eq;
            out.sweeps += eq->iterations;
            out.updateSteps += eq->hillClimbSteps;
            ++out.countedSolves;
        }
    }
    const double elapsed_ms = nowMs() - t0;
    out.countedAllocs =
        g_heap_allocs.load(std::memory_order_relaxed) - a0;
    out.nsPerSweep =
        out.sweeps > 0 ? elapsed_ms * 1e6 / out.sweeps : 0.0;
    out.usPerSolve = out.countedSolves > 0
                         ? elapsed_ms * 1e3 / out.countedSolves
                         : 0.0;
    util::simd::setEnabled(simd_before);
    if (out.countedAllocs != 0) {
        util::fatal("scaling contract violated: %lld heap allocations "
                    "across %d warm solves at %zu players (mode %s, "
                    "expected 0)",
                    static_cast<long long>(out.countedAllocs),
                    out.countedSolves, players, mode.c_str());
    }
    return out;
}

/** Part D over the full size/mode grid; smoke runs 1k players only. */
std::vector<ScalingResult>
runScalingSweep(bool smoke, util::TablePrinter &table)
{
    // Reps are fixed per size (not per smoke mode): the 1k rows of a
    // --smoke or --scaling-smoke run carry the same deterministic
    // solve/sweep/step counters as the committed full-run baseline, so
    // tools/bench_compare.py can diff them exactly.
    const std::vector<std::pair<size_t, int>> plan =
        smoke ? std::vector<std::pair<size_t, int>>{{1000, 40}}
              : std::vector<std::pair<size_t, int>>{
                    {1000, 40}, {10000, 10}, {100000, 4}};
    const char *modes[] = {"hill_climb_scalar", "hill_climb",
                           "best_response"};
    std::vector<ScalingResult> rows;
    for (const auto &[players, reps] : plan) {
        for (const char *mode : modes) {
            const ScalingResult s = runScaling(players, reps, mode);
            table.addRow({std::to_string(s.players), s.mode,
                          std::to_string(s.countedSolves),
                          std::to_string(s.countedAllocs),
                          std::to_string(s.sweeps),
                          std::to_string(s.updateSteps),
                          util::formatDouble(s.nsPerSweep, 1),
                          util::formatDouble(s.usPerSolve, 2)});
            rows.push_back(s);
        }
    }
    return rows;
}

void
appendScalingJson(std::ostringstream &js,
                  const std::vector<ScalingResult> &rows)
{
    js << "  \"scaling\": [\n";
    for (size_t k = 0; k < rows.size(); ++k) {
        const auto &s = rows[k];
        js << "    {\"players\": " << s.players << ", \"mode\": \""
           << s.mode << "\", \"solves\": " << s.countedSolves
           << ", \"counted_allocs\": " << s.countedAllocs
           << ", \"sweeps\": " << s.sweeps
           << ", \"update_steps\": " << s.updateSteps
           << ", \"ns_per_sweep\": " << util::formatDouble(s.nsPerSweep, 1)
           << ", \"us_per_solve\": " << util::formatDouble(s.usPerSolve, 2)
           << "}" << (k + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]";
}

// ---------------------------------------------------------------------
// Part B: the Figure 4 bundle suite, warm starts off vs. on.
// ---------------------------------------------------------------------

struct SuiteMechanismResult
{
    std::string mechanism;
    long coldIterations = 0;
    long warmIterations = 0;
    /** Per-solve agreement: for every (prior, budgets) pair of the
     * replayed trajectory, the max |warm - cold| / capacity over
     * allocation entries of the paired solves. */
    std::vector<double> solveAllocDiffs;
    /** Per-solve agreement: max relative price difference. */
    double maxSolvePriceDiffRel = 0.0;
    /** End-to-end sweep divergence (trajectory, not solver error). */
    double maxEndToEndAllocDiffFrac = 0.0;

    double solveDiffQuantile(double q) const
    {
        if (solveAllocDiffs.empty())
            return 0.0;
        std::vector<double> d = solveAllocDiffs;
        std::sort(d.begin(), d.end());
        const size_t idx = std::min(
            d.size() - 1, static_cast<size_t>(q * (d.size() - 1) + 0.5));
        return d[idx];
    }
};

struct SuiteResult
{
    uint32_t cores = 0;
    size_t bundles = 0;
    double coldMs = 0.0;
    double warmMs = 0.0;
    std::vector<SuiteMechanismResult> mechanisms;
};

SuiteResult
runSuite(uint32_t cores, int per_category, unsigned jobs)
{
    const auto catalog = workloads::classifyCatalog();
    const auto bundles =
        workloads::generateAllBundles(catalog, cores, per_category, 2016);

    const core::EqualBudgetAllocator equal_budget;
    const auto rb20 = core::ReBudgetAllocator::withStep(20);
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    const std::vector<const core::Allocator *> mechanisms{
        &equal_budget, &rb20, &rb40};

    auto sweep = [&](bool warm, double &ms) {
        eval::BundleRunnerOptions opts;
        opts.jobs = jobs;
        opts.keepOutcomes = true;
        opts.marketConfig.warmStart = warm;
        const eval::BundleRunner runner(mechanisms, opts);
        const double t0 = nowMs();
        auto evals = runner.run(bundles);
        ms = nowMs() - t0;
        return evals;
    };

    SuiteResult out;
    out.cores = cores;
    const auto cold = sweep(false, out.coldMs);
    const auto warm = sweep(true, out.warmMs);

    std::vector<SuiteMechanismResult> results(mechanisms.size());
    for (size_t mi = 0; mi < mechanisms.size(); ++mi)
        results[mi].mechanism = mechanisms[mi]->name();

    for (size_t b = 0; b < cold.size(); ++b) {
        if (cold[b].skipped || warm[b].skipped)
            continue;
        ++out.bundles;
        const auto bp = eval::makeBundleProblem(bundles[b].appNames);
        const auto &capacities = bp.problem.capacities;
        market::MarketConfig warm_cfg = bp.problem.marketConfig;
        warm_cfg.warmStart = true;
        const market::ProportionalMarket mkt(bp.problem.models,
                                             capacities, warm_cfg);

        for (size_t mi = 0; mi < mechanisms.size(); ++mi) {
            SuiteMechanismResult &mr = results[mi];
            mr.coldIterations += cold[b].scores[mi].marketIterations;
            mr.warmIterations += warm[b].scores[mi].marketIterations;

            // Per-solve agreement: replay the mechanism's exact solve
            // sequence (the cold run's budget trajectory).  Each budget
            // vector is solved cold and warm -- seeded from the cold
            // equilibrium of the previous vector, i.e. exactly the
            // (prior, budgets) pairs the runtime hot path produces --
            // and the two solves must land on the same equilibrium.
            core::AllocationProblem rp = bp.problem;
            rp.marketConfig.warmStart = false;
            rp.recordBudgetHistory = true;
            const core::AllocationOutcome traced =
                mechanisms[mi]->allocate(rp);
            market::EquilibriumResult prev;
            for (size_t r = 0; r < traced.budgetHistory.size(); ++r) {
                const auto &budgets = traced.budgetHistory[r];
                market::EquilibriumResult ec =
                    mkt.findEquilibrium(budgets);
                // Round 0 has no prior; check the identity re-solve
                // (same budgets, seeded by its own equilibrium) there.
                const market::EquilibriumResult ew =
                    mkt.findEquilibrium(budgets, r > 0 ? &prev : &ec);
                double solve_diff = 0.0;
                for (size_t i = 0; i < ec.alloc.size(); ++i) {
                    for (size_t j = 0; j < ec.alloc[i].size(); ++j) {
                        const double diff =
                            std::abs(ew.alloc[i][j] - ec.alloc[i][j]) /
                            capacities[j];
                        solve_diff = std::max(solve_diff, diff);
                    }
                }
                mr.solveAllocDiffs.push_back(solve_diff);
                for (size_t j = 0; j < ec.prices.size(); ++j) {
                    const double denom = std::max(ec.prices[j], 1e-12);
                    mr.maxSolvePriceDiffRel = std::max(
                        mr.maxSolvePriceDiffRel,
                        std::abs(ew.prices[j] - ec.prices[j]) / denom);
                }
                prev = std::move(ec);
            }

            // End-to-end sweep divergence (trajectory effects included).
            const auto &ca = cold[b].outcomes[mi].alloc;
            const auto &wa = warm[b].outcomes[mi].alloc;
            for (size_t i = 0; i < ca.size(); ++i) {
                for (size_t j = 0; j < ca[i].size(); ++j) {
                    const double diff =
                        std::abs(wa[i][j] - ca[i][j]) / capacities[j];
                    mr.maxEndToEndAllocDiffFrac =
                        std::max(mr.maxEndToEndAllocDiffFrac, diff);
                }
            }
        }
    }
    out.mechanisms = std::move(results);
    return out;
}

double
ratio(long cold, long warm)
{
    return warm > 0 ? static_cast<double>(cold) /
                          static_cast<double>(warm)
                    : 0.0;
}

void
writeJson(const std::string &path, bool smoke,
          const std::vector<SyntheticResult> &synthetic,
          const std::vector<SteadyStateResult> &steady,
          const std::vector<ScalingResult> &scaling,
          const SuiteResult &suite)
{
    std::ostringstream js;
    js << "{\n";
    js << "  \"benchmark\": \"perf_equilibrium\",\n";
    js << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    js << "  \"synthetic_budget_walk\": [\n";
    for (size_t k = 0; k < synthetic.size(); ++k) {
        const auto &s = synthetic[k];
        js << "    {\"players\": " << s.players
           << ", \"rounds\": " << s.rounds
           << ", \"cold_iterations\": " << s.coldIterations
           << ", \"warm_iterations\": " << s.warmIterations
           << ", \"iteration_ratio\": "
           << util::formatDouble(ratio(s.coldIterations, s.warmIterations),
                                 3)
           << ", \"cold_ms\": " << util::formatDouble(s.coldMs, 3)
           << ", \"warm_ms\": " << util::formatDouble(s.warmMs, 3)
           << ", \"speedup\": "
           << util::formatDouble(
                  s.warmMs > 0.0 ? s.coldMs / s.warmMs : 0.0, 3)
           << "}" << (k + 1 < synthetic.size() ? "," : "") << "\n";
    }
    js << "  ],\n";
    js << "  \"steady_state\": [\n";
    for (size_t k = 0; k < steady.size(); ++k) {
        const auto &s = steady[k];
        js << "    {\"players\": " << s.players
           << ", \"solves\": " << s.countedSolves
           << ", \"counted_allocs\": " << s.countedAllocs
           << ", \"sweeps\": " << s.sweeps
           << ", \"ns_per_sweep\": " << util::formatDouble(s.nsPerSweep, 1)
           << ", \"us_per_solve\": " << util::formatDouble(s.usPerSolve, 2)
           << "}" << (k + 1 < steady.size() ? "," : "") << "\n";
    }
    js << "  ],\n";
    appendScalingJson(js, scaling);
    js << ",\n";
    js << "  \"bundle_suite\": {\n";
    js << "    \"cores\": " << suite.cores << ",\n";
    js << "    \"bundles\": " << suite.bundles << ",\n";
    js << "    \"cold_ms\": " << util::formatDouble(suite.coldMs, 3)
       << ",\n";
    js << "    \"warm_ms\": " << util::formatDouble(suite.warmMs, 3)
       << ",\n";
    js << "    \"mechanisms\": [\n";
    for (size_t k = 0; k < suite.mechanisms.size(); ++k) {
        const auto &m = suite.mechanisms[k];
        js << "      {\"mechanism\": \"" << m.mechanism << "\""
           << ", \"cold_iterations\": " << m.coldIterations
           << ", \"warm_iterations\": " << m.warmIterations
           << ", \"iteration_ratio\": "
           << util::formatDouble(ratio(m.coldIterations, m.warmIterations),
                                 3)
           << ", \"solve_alloc_diff_p50\": "
           << util::formatDouble(m.solveDiffQuantile(0.5), 6)
           << ", \"solve_alloc_diff_p99\": "
           << util::formatDouble(m.solveDiffQuantile(0.99), 6)
           << ", \"solve_alloc_diff_max\": "
           << util::formatDouble(m.solveDiffQuantile(1.0), 6)
           << ", \"max_solve_price_diff_rel\": "
           << util::formatDouble(m.maxSolvePriceDiffRel, 6)
           << ", \"max_endtoend_alloc_diff_frac\": "
           << util::formatDouble(m.maxEndToEndAllocDiffFrac, 6) << "}"
           << (k + 1 < suite.mechanisms.size() ? "," : "") << "\n";
    }
    js << "    ]\n";
    js << "  }\n";
    js << "}\n";

    std::ofstream f(path);
    if (!f)
        util::fatal("cannot write %s", path.c_str());
    f << js.str();
}

/** --scaling-smoke artifact: the scaling rows alone. */
void
writeScalingJson(const std::string &path,
                 const std::vector<ScalingResult> &scaling)
{
    std::ostringstream js;
    js << "{\n";
    js << "  \"benchmark\": \"perf_equilibrium_scaling\",\n";
    appendScalingJson(js, scaling);
    js << "\n}\n";

    std::ofstream f(path);
    if (!f)
        util::fatal("cannot write %s", path.c_str());
    f << js.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool scaling_only = false;
    std::string out_path = "BENCH_market.json";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[a], "--scaling-smoke") == 0) {
            scaling_only = true;
        } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
            out_path = argv[++a];
        }
    }
    const auto jobs_arg = eval::parseJobsArg(argc, argv);
    if (!jobs_arg.ok())
        util::fatal("%s", jobs_arg.status().message().c_str());
    const unsigned jobs = jobs_arg.value();

    if (scaling_only) {
        util::printBanner(std::cout,
                          "Part D: scaling sweep (1k players, "
                          "scaling-smoke)");
        util::TablePrinter td({"players", "mode", "solves", "heap allocs",
                               "sweeps", "update steps", "ns/sweep",
                               "us/solve"});
        const auto scaling = runScalingSweep(/*smoke=*/true, td);
        td.print(std::cout);
        writeScalingJson(out_path, scaling);
        std::cout << "wrote " << out_path << "\n";
        return 0;
    }

    const std::vector<size_t> sizes =
        smoke ? std::vector<size_t>{8} : std::vector<size_t>{8, 16, 64};
    // Part A rounds and all of Part C are identical in smoke and full
    // mode: the solver is deterministic, so their iteration/sweep
    // counters from a --smoke run are directly comparable against a
    // committed full-run baseline (tools/bench_compare.py relies on
    // this).
    const int rounds = 12;
    const uint32_t suite_cores = smoke ? 8 : 64;
    const int per_category = smoke ? 2 : 40;

    util::printBanner(std::cout,
                      "Part A: synthetic budget walk (raw market)");
    util::TablePrinter ta({"players", "rounds", "cold iters", "warm iters",
                           "iter ratio", "cold ms", "warm ms", "speedup"});
    std::vector<SyntheticResult> synthetic;
    for (size_t players : sizes) {
        const SyntheticResult s = runSynthetic(players, rounds);
        ta.addRow({std::to_string(s.players), std::to_string(s.rounds),
                   std::to_string(s.coldIterations),
                   std::to_string(s.warmIterations),
                   util::formatDouble(
                       ratio(s.coldIterations, s.warmIterations), 2),
                   util::formatDouble(s.coldMs, 2),
                   util::formatDouble(s.warmMs, 2),
                   util::formatDouble(
                       s.warmMs > 0.0 ? s.coldMs / s.warmMs : 0.0, 2)});
        synthetic.push_back(s);
    }
    ta.print(std::cout);

    util::printBanner(std::cout,
                      "Part C: steady-state memory contract "
                      "(warm Into-API solves)");
    util::TablePrinter tc({"players", "solves", "heap allocs", "sweeps",
                           "ns/sweep", "us/solve"});
    std::vector<SteadyStateResult> steady;
    for (size_t players : std::vector<size_t>{8, 16, 64}) {
        const SteadyStateResult s = runSteadyState(players, 20);
        tc.addRow({std::to_string(s.players),
                   std::to_string(s.countedSolves),
                   std::to_string(s.countedAllocs),
                   std::to_string(s.sweeps),
                   util::formatDouble(s.nsPerSweep, 1),
                   util::formatDouble(s.usPerSolve, 2)});
        steady.push_back(s);
    }
    tc.print(std::cout);

    util::printBanner(std::cout,
                      "Part D: scaling sweep (1k-100k players, "
                      "per solver mode)");
    util::TablePrinter td({"players", "mode", "solves", "heap allocs",
                           "sweeps", "update steps", "ns/sweep",
                           "us/solve"});
    const std::vector<ScalingResult> scaling =
        runScalingSweep(smoke, td);
    td.print(std::cout);

    util::printBanner(std::cout,
                      "Part B: Figure 4 bundle suite, warm starts "
                      "off vs on");
    const SuiteResult suite = runSuite(suite_cores, per_category, jobs);
    util::TablePrinter tb({"mechanism", "cold iters", "warm iters",
                           "iter ratio", "solve diff p50", "solve diff p99",
                           "solve diff max", "end-to-end diff"});
    for (const auto &m : suite.mechanisms) {
        tb.addRow({m.mechanism, std::to_string(m.coldIterations),
                   std::to_string(m.warmIterations),
                   util::formatDouble(
                       ratio(m.coldIterations, m.warmIterations), 2),
                   util::formatDouble(m.solveDiffQuantile(0.5), 6),
                   util::formatDouble(m.solveDiffQuantile(0.99), 6),
                   util::formatDouble(m.solveDiffQuantile(1.0), 6),
                   util::formatDouble(m.maxEndToEndAllocDiffFrac, 6)});
    }
    tb.print(std::cout);
    std::cout << "suite wall-clock: cold "
              << util::formatDouble(suite.coldMs, 1) << " ms, warm "
              << util::formatDouble(suite.warmMs, 1) << " ms\n";

    writeJson(out_path, smoke, synthetic, steady, scaling, suite);
    std::cout << "wrote " << out_path << "\n";
    return 0;
}
