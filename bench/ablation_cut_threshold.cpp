/**
 * @file
 * Ablation: the lambda cut threshold.
 *
 * ReBudget cuts players whose lambda_i falls below a fraction of the
 * market maximum; the paper fixes this at 0.5 because Theorem 1's PoA
 * guarantee starts decaying linearly below MUR = 0.5.  This ablation
 * sweeps the threshold to show 0.5 is a sweet spot: lower thresholds
 * cut too few players (efficiency is left on the table), higher
 * thresholds cut well-budgeted players too (fairness cost with little
 * efficiency gain).
 */

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main()
{
    const uint32_t cores = 16;
    const auto catalog = workloads::classifyCatalog();
    const auto bundles =
        workloads::generateAllBundles(catalog, cores, 8, 13);
    const core::MaxEfficiencyAllocator max_eff;

    util::printBanner(std::cout,
                      "Ablation: ReBudget lambda cut threshold "
                      "(48 bundles, 16 cores, step 40)");
    util::TablePrinter t({"threshold", "mean_eff_vs_opt", "mean_EF",
                          "mean_MUR", "mean_budget_rounds"});
    for (double thr : {0.2, 0.35, 0.5, 0.65, 0.8}) {
        core::ReBudgetConfig cfg;
        cfg.step0 = 40.0;
        cfg.lambdaCutThreshold = thr;
        const core::ReBudgetAllocator rb(cfg);
        util::SummaryStats eff, ef, mur, rounds;
        for (const auto &bundle : bundles) {
            bench::BundleProblem bp =
                bench::makeBundleProblem(bundle.appNames);
            const double opt =
                bench::score(max_eff, bp.problem).efficiency;
            const auto s = bench::score(rb, bp.problem);
            eff.add(s.efficiency / opt);
            ef.add(s.envyFreeness);
            mur.add(s.mur);
            rounds.add(s.budgetRounds);
        }
        t.addRow({util::formatDouble(thr, 2),
                  util::formatDouble(eff.mean(), 3),
                  util::formatDouble(ef.mean(), 3),
                  util::formatDouble(mur.mean(), 3),
                  util::formatDouble(rounds.mean(), 1)});
    }
    t.print(std::cout);
    std::cout << "\nThe paper's 0.5 threshold tracks Theorem 1: below "
                 "MUR = 0.5 the PoA bound\ndecays linearly, so players "
                 "below half the max lambda are the ones whose\n"
                 "budget is provably better spent elsewhere.\n";
    return 0;
}
