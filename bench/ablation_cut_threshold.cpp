/**
 * @file
 * Ablation: the lambda cut threshold.
 *
 * ReBudget cuts players whose lambda_i falls below a fraction of the
 * market maximum; the paper fixes this at 0.5 because Theorem 1's PoA
 * guarantee starts decaying linearly below MUR = 0.5.  This ablation
 * sweeps the threshold to show 0.5 is a sweet spot: lower thresholds
 * cut too few players (efficiency is left on the table), higher
 * thresholds cut well-budgeted players too (fairness cost with little
 * efficiency gain).
 *
 * All thresholds plus the MaxEfficiency oracle run as one BundleRunner
 * mechanism set: a single parallel pass over the bundles (--jobs N).
 */

#include <iostream>
#include <vector>

#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main(int argc, char **argv)
{
    const uint32_t cores = 16;
    const auto catalog = workloads::classifyCatalog();
    const auto bundles =
        workloads::generateAllBundles(catalog, cores, 8, 13);

    const std::vector<double> thresholds = {0.2, 0.35, 0.5, 0.65, 0.8};
    std::vector<core::ReBudgetAllocator> rb_allocs;
    rb_allocs.reserve(thresholds.size());
    for (double thr : thresholds) {
        core::ReBudgetConfig cfg;
        cfg.step0 = 40.0;
        cfg.lambdaCutThreshold = thr;
        rb_allocs.emplace_back(cfg);
    }

    const core::MaxEfficiencyAllocator max_eff;
    std::vector<const core::Allocator *> mechanisms;
    for (const auto &rb : rb_allocs)
        mechanisms.push_back(&rb);
    mechanisms.push_back(&max_eff);

    eval::BundleRunnerOptions opts;
    const auto jobs_arg = eval::parseJobsArg(argc, argv);
    if (!jobs_arg.ok())
        util::fatal("%s", jobs_arg.status().message().c_str());
    opts.jobs = jobs_arg.value();
    const eval::BundleRunner runner(mechanisms, opts);
    const size_t i_opt = runner.mechanismIndex("MaxEfficiency").value();
    const auto evals = runner.run(bundles);

    util::printBanner(std::cout,
                      "Ablation: ReBudget lambda cut threshold "
                      "(48 bundles, 16 cores, step 40)");
    util::TablePrinter t({"threshold", "mean_eff_vs_opt", "mean_EF",
                          "mean_MUR", "mean_budget_rounds"});
    for (size_t k = 0; k < thresholds.size(); ++k) {
        util::SummaryStats eff, ef, mur, rounds;
        for (const auto &ev : evals) {
            if (ev.skipped)
                continue;
            const double opt = ev.scores[i_opt].efficiency;
            const auto &s = ev.scores[k];
            eff.add(s.efficiency / opt);
            ef.add(s.envyFreeness);
            mur.add(s.mur);
            rounds.add(s.budgetRounds);
        }
        t.addRow({util::formatDouble(thresholds[k], 2),
                  util::formatDouble(eff.mean(), 3),
                  util::formatDouble(ef.mean(), 3),
                  util::formatDouble(mur.mean(), 3),
                  util::formatDouble(rounds.mean(), 1)});
    }
    t.print(std::cout);
    std::cout << "\nThe paper's 0.5 threshold tracks Theorem 1: below "
                 "MUR = 0.5 the PoA bound\ndecays linearly, so players "
                 "below half the max lambda are the ones whose\n"
                 "budget is provably better spent elsewhere.\n";
    return 0;
}
