/**
 * @file
 * Extension: allocation granularity for multithreaded workloads
 * (paper Section 5's design discussion).
 *
 * A 16-core machine runs four tenants: an 8-thread parallel app (swim),
 * a 4-thread parallel app (gcc), and two single-threaded apps (mcf and
 * hmmer).  At *thread* granularity every thread is a market player with
 * its own budget, so the 8-thread tenant wields 8x the market power of
 * a single-threaded tenant.  At *application* granularity (one player
 * per tenant, threads share the purchase evenly) every tenant has equal
 * market power.  The bench reports per-tenant resources and utilities
 * under both, for EqualBudget and ReBudget-40.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "rebudget/core/baselines.h"
#include "rebudget/core/groups.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/util/table.h"

using namespace rebudget;

namespace {

struct Tenant
{
    std::string app;
    uint32_t threads;
};

} // namespace

int
main()
{
    const std::vector<Tenant> tenants = {{"swim", 8},
                                         {"gcc", 4},
                                         {"mcf", 1},
                                         {"hmmer", 1}};
    std::vector<std::string> per_core_apps;
    std::vector<core::ThreadGroup> groups;
    uint32_t core = 0;
    for (const auto &t : tenants) {
        core::ThreadGroup g;
        g.name = t.app;
        for (uint32_t k = 0; k < t.threads; ++k) {
            per_core_apps.push_back(t.app);
            g.cores.push_back(core++);
        }
        groups.push_back(std::move(g));
    }
    // 14 cores used; pad with two background streamers to fill 16.
    for (int i = 0; i < 2; ++i) {
        per_core_apps.push_back("milc");
        groups.push_back(
            core::ThreadGroup{"milc", {core}});
        ++core;
    }

    eval::BundleProblem bp = eval::makeBundleProblem(per_core_apps);
    const core::GroupedProblem grouped =
        core::makeGroupedProblem(bp.problem, groups);

    auto tenant_report = [&](const core::Allocator &mechanism) {
        // Thread granularity.
        const auto thread_out = mechanism.allocate(bp.problem);
        // Application granularity.
        const auto app_out = mechanism.allocate(grouped.problem);
        const auto app_per_core =
            grouped.expand(app_out.alloc, per_core_apps.size());

        util::printBanner(std::cout,
                          "Per-tenant totals under " + mechanism.name());
        util::TablePrinter t({"tenant", "threads",
                              "cache@thread-gran", "cache@app-gran",
                              "watts@thread-gran", "watts@app-gran",
                              "util@thread-gran", "util@app-gran"});
        for (size_t g = 0; g < grouped.groups.size(); ++g) {
            const auto &tg = grouped.groups[g];
            double c_thread = 0.0, w_thread = 0.0;
            for (const uint32_t c : tg.cores) {
                c_thread += thread_out.alloc[c][0];
                w_thread += thread_out.alloc[c][1];
            }
            const double c_app = app_out.alloc[g][0];
            const double w_app = app_out.alloc[g][1];
            // Per-thread utility at each granularity (threads of a
            // tenant are identical; use the first).
            const uint32_t c0 = tg.cores.front();
            const double u_thread =
                bp.problem.models[c0]->utility(thread_out.alloc[c0]);
            const double u_app =
                bp.problem.models[c0]->utility(app_per_core[c0]);
            t.addRow({tg.name, std::to_string(tg.cores.size()),
                      util::formatDouble(c_thread, 2),
                      util::formatDouble(c_app, 2),
                      util::formatDouble(w_thread, 2),
                      util::formatDouble(w_app, 2),
                      util::formatDouble(u_thread, 3),
                      util::formatDouble(u_app, 3)});
        }
        t.print(std::cout);
    };

    tenant_report(core::EqualBudgetAllocator());
    tenant_report(core::ReBudgetAllocator::withStep(40));

    std::cout << "\nAt thread granularity a tenant's market power "
                 "scales with its thread\ncount; at application "
                 "granularity (one budget per tenant, threads share\n"
                 "the purchase) single-threaded tenants stop being "
                 "crowded out -- the\nfair multi-tenant semantics the "
                 "paper's Section 5 sketches.\n";
    return 0;
}
