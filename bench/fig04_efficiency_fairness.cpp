/**
 * @file
 * Figure 4: system efficiency (weighted speedup, normalized to
 * MaxEfficiency) and envy-freeness across the full 240-bundle suite on
 * the 64-core configuration, for every mechanism the paper compares
 * (Section 6.1/6.2).  Bundles are ordered by EqualShare efficiency,
 * exactly as in the figure.  Also prints the paper's derived claims:
 * the EqualBudget CDF points (Section 6.1.1), the ReBudget efficiency
 * floor (Section 6.1.3), worst-case envy-freeness per mechanism, and
 * the Theorem 2 bound check (Section 6.2).
 *
 * The sweep runs on eval::BundleRunner: pass --jobs N (or set
 * REBUDGET_JOBS) to parallelize over bundles; output is byte-identical
 * at any job count.
 */

#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "rebudget/core/baselines.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/market/metrics.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"

using namespace rebudget;

namespace {

struct BundleResult
{
    std::string name;
    workloads::BundleCategory category = workloads::BundleCategory::CPBN;
    // Normalized efficiency and envy-freeness per mechanism, in the
    // runner's mechanism order.
    std::vector<double> eff;
    std::vector<double> ef;
    std::vector<double> mbr;
};

} // namespace

int
main(int argc, char **argv)
{
    const uint32_t cores = 64;
    const auto catalog = workloads::classifyCatalog();
    const auto bundles =
        workloads::generateAllBundles(catalog, cores, 40, 2016);

    const core::EqualShareAllocator equal_share;
    const core::EqualBudgetAllocator equal_budget;
    const core::BalancedBudgetAllocator balanced;
    const auto rb20 = core::ReBudgetAllocator::withStep(20);
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    const core::MaxEfficiencyAllocator max_eff;

    eval::BundleRunnerOptions opts;
    const auto jobs_arg = eval::parseJobsArg(argc, argv);
    if (!jobs_arg.ok())
        util::fatal("%s", jobs_arg.status().message().c_str());
    opts.jobs = jobs_arg.value();
    const eval::BundleRunner runner({&equal_share, &equal_budget,
                                     &balanced, &rb20, &rb40, &max_eff},
                                    opts);
    // Normalize against the oracle looked up by name, not by position.
    const size_t opt_idx = runner.mechanismIndex("MaxEfficiency").value();
    const auto evals = runner.run(bundles);

    std::vector<BundleResult> results;
    results.reserve(evals.size());
    for (const auto &ev : evals) {
        if (ev.skipped)
            continue;
        BundleResult r;
        r.name = ev.bundle;
        r.category = ev.category;
        const double opt = ev.scores[opt_idx].efficiency;
        for (const auto &s : ev.scores) {
            r.eff.push_back(opt > 0 ? s.efficiency / opt : 0.0);
            r.ef.push_back(s.envyFreeness);
            r.mbr.push_back(s.mbr);
        }
        results.push_back(std::move(r));
    }

    // Order by EqualShare efficiency, as in the figure.
    std::sort(results.begin(), results.end(),
              [](const BundleResult &a, const BundleResult &b) {
                  return a.eff[0] < b.eff[0];
              });

    util::printBanner(std::cout,
                      "Figure 4a: 64-core efficiency normalized to "
                      "MaxEfficiency (240 bundles)");
    {
        util::TablePrinter t({"bundle", "EqualShare", "EqualBudget",
                              "Balanced", "ReBudget-20", "ReBudget-40"});
        for (const auto &r : results) {
            t.addRow({r.name, util::formatDouble(r.eff[0], 3),
                      util::formatDouble(r.eff[1], 3),
                      util::formatDouble(r.eff[2], 3),
                      util::formatDouble(r.eff[3], 3),
                      util::formatDouble(r.eff[4], 3)});
        }
        t.printCsv(std::cout);
    }

    util::printBanner(std::cout,
                      "Figure 4b: 64-core envy-freeness (240 bundles)");
    {
        util::TablePrinter t({"bundle", "EqualShare", "EqualBudget",
                              "Balanced", "ReBudget-20", "ReBudget-40",
                              "MaxEfficiency"});
        for (const auto &r : results) {
            t.addRow({r.name, util::formatDouble(r.ef[0], 3),
                      util::formatDouble(r.ef[1], 3),
                      util::formatDouble(r.ef[2], 3),
                      util::formatDouble(r.ef[3], 3),
                      util::formatDouble(r.ef[4], 3),
                      util::formatDouble(r.ef[5], 3)});
        }
        t.printCsv(std::cout);
    }

    // ---- Summary block: the claims quoted in the paper's text. ----
    util::printBanner(std::cout, "Summary vs paper claims");
    util::TablePrinter s({"metric", "measured", "paper"});
    auto column = [&](size_t m, bool eff) {
        std::vector<double> out;
        out.reserve(results.size());
        for (const auto &r : results)
            out.push_back(eff ? r.eff[m] : r.ef[m]);
        return out;
    };
    const size_t i_eq = runner.mechanismIndex("EqualBudget").value();
    const size_t i_bal = runner.mechanismIndex("Balanced").value();
    const size_t i_rb20 = runner.mechanismIndex("ReBudget-20").value();
    const size_t i_rb40 = runner.mechanismIndex("ReBudget-40").value();

    const auto eq_eff = column(i_eq, true);
    s.addRow({"EqualBudget: bundles >= 95% of MaxEff",
              util::formatDouble(util::fractionAtLeast(eq_eff, 0.95), 3),
              "0.37"});
    s.addRow({"EqualBudget: bundles >= 90% of MaxEff",
              util::formatDouble(util::fractionAtLeast(eq_eff, 0.90), 3),
              ">= 0.90"});
    const auto rb40_eff = column(i_rb40, true);
    s.addRow({"ReBudget-40: worst-bundle efficiency",
              util::formatDouble(
                  *std::min_element(rb40_eff.begin(), rb40_eff.end()),
                  3),
              "0.95"});
    const auto eq_ef = column(i_eq, false);
    s.addRow({"EqualBudget: worst-case envy-freeness",
              util::formatDouble(
                  *std::min_element(eq_ef.begin(), eq_ef.end()), 3),
              "0.93"});
    const auto bal_ef = column(i_bal, false);
    s.addRow({"Balanced: worst-case envy-freeness",
              util::formatDouble(
                  *std::min_element(bal_ef.begin(), bal_ef.end()), 3),
              "0.86"});
    const auto rb20_ef = column(i_rb20, false);
    const auto rb40_ef = column(i_rb40, false);
    s.addRow({"ReBudget-20: median envy-freeness",
              util::formatDouble(util::quantile(rb20_ef, 0.5), 3),
              "~0.8"});
    s.addRow({"ReBudget-40: median envy-freeness",
              util::formatDouble(util::quantile(rb40_ef, 0.5), 3),
              "~0.5"});
    const auto max_ef = column(opt_idx, false);
    s.addRow({"MaxEfficiency: median envy-freeness",
              util::formatDouble(util::quantile(max_ef, 0.5), 3),
              "~0.35"});

    // Theorem 2 check: no bundle's EF below the bound implied by its
    // realized MBR (Section 6.2: "none of the bundles violates the
    // theoretic guarantee").
    int violations20 = 0;
    int violations40 = 0;
    for (const auto &r : results) {
        if (r.ef[i_rb20] <
            market::envyFreenessLowerBound(r.mbr[i_rb20]) - 1e-6)
            ++violations20;
        if (r.ef[i_rb40] <
            market::envyFreenessLowerBound(r.mbr[i_rb40]) - 1e-6)
            ++violations40;
    }
    s.addRow({"ReBudget-20: Theorem 2 violations",
              std::to_string(violations20), "0"});
    s.addRow({"ReBudget-40: Theorem 2 violations",
              std::to_string(violations40), "0"});
    s.print(std::cout);

    // ---- Per-category analysis (Section 6.1's discussion). ----
    util::printBanner(std::cout,
                      "Per-category mean efficiency (Section 6.1 "
                      "discussion)");
    util::TablePrinter c({"category", "EqualShare", "EqualBudget",
                          "ReBudget-40"});
    for (const auto cat : workloads::kAllCategories) {
        util::SummaryStats share, equal, rb40_s;
        for (const auto &r : results) {
            if (r.category != cat)
                continue;
            share.add(r.eff[0]);
            equal.add(r.eff[i_eq]);
            rb40_s.add(r.eff[i_rb40]);
        }
        c.addRow({workloads::categoryName(cat),
                  util::formatDouble(share.mean(), 3),
                  util::formatDouble(equal.mean(), 3),
                  util::formatDouble(rb40_s.mean(), 3)});
    }
    c.print(std::cout);
    std::cout << "\nPaper Section 6.1 ties category difficulty to the "
                 "class mix (EqualShare\nstrongest where one resource "
                 "split is naturally right; EqualBudget weakest\nwhere "
                 "over-budgeted players crowd out specialists -- its "
                 "Tragedy-of-Commons\ndiscussion).  In this "
                 "reproduction the same mechanism operates: the "
                 "B+N\ncategories are EqualBudget's hardest because "
                 "insensitive apps spend equal\nbudgets on resources "
                 "they barely use, which is exactly what ReBudget's\n"
                 "lambda-based cuts reclaim.\n";
    return 0;
}
