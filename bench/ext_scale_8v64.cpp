/**
 * @file
 * Extension: 8-core vs 64-core comparison.
 *
 * Section 6 states: "We conduct all the experiments on 8- and 64-core
 * CMP configurations, and find that the results are similar.  Therefore
 * we omit the results for the 8-core configuration."  This bench runs
 * the analytic suite at both sizes and prints the suite means side by
 * side so the claim can be checked rather than taken on faith.
 *
 * Both suites run on eval::BundleRunner (--jobs N / REBUDGET_JOBS).
 */

#include <iostream>
#include <vector>

#include "rebudget/core/baselines.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"

using namespace rebudget;

namespace {

struct SuiteMeans
{
    util::SummaryStats eff[5]; // Share, Equal, Balanced, RB20, RB40
    util::SummaryStats ef[5];
};

SuiteMeans
runSuite(uint32_t cores, uint32_t bundles_per_category, unsigned jobs)
{
    const auto catalog = workloads::classifyCatalog();
    const auto bundles = workloads::generateAllBundles(
        catalog, cores, bundles_per_category, 2016);

    const core::EqualShareAllocator share;
    const core::EqualBudgetAllocator equal;
    const core::BalancedBudgetAllocator balanced;
    const auto rb20 = core::ReBudgetAllocator::withStep(20);
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    const core::MaxEfficiencyAllocator max_eff;

    eval::BundleRunnerOptions opts;
    opts.jobs = jobs;
    const eval::BundleRunner runner(
        {&share, &equal, &balanced, &rb20, &rb40, &max_eff}, opts);
    const size_t opt_idx = runner.mechanismIndex("MaxEfficiency").value();
    const auto evals = runner.run(bundles);

    SuiteMeans means;
    for (const auto &ev : evals) {
        if (ev.skipped)
            continue;
        const double opt = ev.scores[opt_idx].efficiency;
        for (size_t m = 0; m < 5; ++m) {
            means.eff[m].add(ev.scores[m].efficiency / opt);
            means.ef[m].add(ev.scores[m].envyFreeness);
        }
    }
    return means;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto jobs_arg = eval::parseJobsArg(argc, argv);
    if (!jobs_arg.ok())
        util::fatal("%s", jobs_arg.status().message().c_str());
    const unsigned jobs = jobs_arg.value();
    const char *names[5] = {"EqualShare", "EqualBudget", "Balanced",
                            "ReBudget-20", "ReBudget-40"};
    const SuiteMeans m8 = runSuite(8, 40, jobs);
    const SuiteMeans m64 = runSuite(64, 40, jobs);

    util::printBanner(std::cout,
                      "Extension: 8-core vs 64-core suite means "
                      "(240 bundles each)");
    util::TablePrinter t({"mechanism", "eff_8core", "eff_64core",
                          "delta", "EF_8core", "EF_64core"});
    for (size_t m = 0; m < 5; ++m) {
        t.addRow({names[m], util::formatDouble(m8.eff[m].mean(), 3),
                  util::formatDouble(m64.eff[m].mean(), 3),
                  util::formatDouble(
                      m64.eff[m].mean() - m8.eff[m].mean(), 3),
                  util::formatDouble(m8.ef[m].mean(), 3),
                  util::formatDouble(m64.ef[m].mean(), 3)});
    }
    t.print(std::cout);
    std::cout << "\nThe mechanism ordering and the knob's effect are "
                 "the same at both sizes,\nsupporting the paper's "
                 "decision to report only the 64-core results.\n";
    return 0;
}
