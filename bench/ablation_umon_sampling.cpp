/**
 * @file
 * Ablation: UMON set-sampling ratio (paper Sections 4.3 and 5).
 *
 * The paper uses dynamic set sampling at ratio 32, claiming ~3.6 kB of
 * shadow tags per core (<1% of the 512 kB L2 share) with adequate
 * accuracy.  This ablation measures, per catalog application class, the
 * miss-curve error of sampled monitors against a fully-sampled monitor,
 * together with the storage cost -- the accuracy/overhead trade-off
 * behind the paper's choice.
 *
 * Each (ratio, app) measurement is independent with a precomputed seed,
 * so they all run on util::parallelFor (--jobs N / REBUDGET_JOBS) with
 * output byte-identical at any job count.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/cache/set_assoc_cache.h"
#include "rebudget/cache/umon.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"
#include "rebudget/util/thread_pool.h"

using namespace rebudget;

namespace {

// Mean absolute miss-ratio error of a sampled monitor vs full sampling,
// over capacities 1..16 regions, for one app's post-L1 stream.
double
missCurveError(const app::AppParams &params, uint32_t ratio,
               uint64_t seed)
{
    cache::UMonConfig full_cfg;
    full_cfg.samplingRatio = 1;
    cache::UMonConfig sampled_cfg;
    sampled_cfg.samplingRatio = ratio;
    cache::UMonitor full(full_cfg);
    cache::UMonitor sampled(sampled_cfg);
    cache::SetAssocCache l1(cache::CacheConfig{32 * 1024, 4, 64}, 1);

    auto gen = params.makeGenerator(0, seed);
    for (int i = 0; i < 600000; ++i) {
        const trace::Access a = gen->next();
        if (l1.access(0, a.addr, a.write).hit)
            continue;
        full.observe(a.addr);
        sampled.observe(a.addr);
    }
    const cache::MissCurve cf = full.missCurve();
    const cache::MissCurve cs = sampled.missCurve();
    const double total_f = cf.missesAt(0);
    const double total_s = cs.missesAt(0);
    if (total_f <= 0.0 || total_s <= 0.0)
        return 0.0; // no L2 traffic: nothing to estimate
    double err = 0.0;
    for (size_t r = 1; r <= 16; ++r) {
        err += std::abs(cf.missesAt(r) / total_f -
                        cs.missesAt(r) / total_s);
    }
    return err / 16.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<uint32_t> ratios = {1, 8, 32, 128};

    // Flatten the (ratio, non-power-sensitive app) grid into tasks with
    // the seeds the serial loop would have used: per ratio, the seed
    // starts at 500 and increments per monitored app in catalog order.
    struct Task
    {
        const app::AppProfile *profile = nullptr;
        uint32_t ratio = 0;
        uint64_t seed = 0;
        double error = 0.0;
    };
    std::vector<Task> tasks;
    for (const uint32_t ratio : ratios) {
        uint64_t seed = 500;
        for (const auto &profile : app::catalogProfiles()) {
            if (profile.params.designClass ==
                app::AppClass::PowerSensitive)
                continue; // no L2 traffic to monitor
            tasks.push_back(Task{&profile, ratio, seed++});
        }
    }

    const auto jobs_arg = eval::parseJobsArg(argc, argv);
    if (!jobs_arg.ok())
        util::fatal("%s", jobs_arg.status().message().c_str());
    const unsigned jobs = jobs_arg.value();
    util::parallelFor(jobs, tasks.size(), [&](size_t i) {
        tasks[i].error = missCurveError(tasks[i].profile->params,
                                        tasks[i].ratio, tasks[i].seed);
    });

    util::printBanner(std::cout,
                      "Ablation: UMON sampling ratio -- miss-curve "
                      "error vs storage");
    util::TablePrinter t({"sampling_ratio", "tags_bytes/core",
                          "mean_abs_error(C)", "mean_abs_error(B)",
                          "mean_abs_error(N)"});
    for (const uint32_t ratio : ratios) {
        cache::UMonConfig cfg;
        cfg.samplingRatio = ratio;
        const cache::UMonitor probe(cfg);
        util::SummaryStats err_c, err_b, err_n;
        for (const auto &task : tasks) {
            if (task.ratio != ratio)
                continue;
            const auto cls = task.profile->params.designClass;
            if (cls == app::AppClass::CacheSensitive)
                err_c.add(task.error);
            else if (cls == app::AppClass::BothSensitive)
                err_b.add(task.error);
            else
                err_n.add(task.error);
        }
        t.addRow({std::to_string(ratio),
                  std::to_string(probe.storageOverheadBytes()),
                  util::formatDouble(err_c.mean(), 4),
                  util::formatDouble(err_b.mean(), 4),
                  util::formatDouble(err_n.mean(), 4)});
    }
    t.print(std::cout);
    std::cout << "\nThe paper's ratio of 32 keeps the shadow tags near "
                 "the quoted ~3.6 kB/core\n(<1% of the 512 kB per-core "
                 "L2) while the sampled curves stay within a few\n"
                 "percent of fully-sampled ones -- accurate enough for "
                 "bidding.\n";
    return 0;
}
