/**
 * @file
 * Table 1: the system configuration, printed from the live
 * configuration structs (so the table cannot drift from the code).
 */

#include <iostream>

#include "rebudget/power/power_model.h"
#include "rebudget/sim/cmp_config.h"
#include "rebudget/sim/memory_model.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main()
{
    const sim::CmpConfig c8 = sim::CmpConfig::forCores(8);
    const sim::CmpConfig c64 = sim::CmpConfig::forCores(64);
    const sim::MemoryConfig m8 = sim::MemoryConfig::forCores(8);
    const sim::MemoryConfig m64 = sim::MemoryConfig::forCores(64);
    const power::PowerModelConfig pw;

    util::printBanner(std::cout,
                      "Table 1: chip-multiprocessor system "
                      "configuration");
    util::TablePrinter t({"parameter", "8-core", "64-core"});
    t.addRow({"Number of cores", "8", "64"});
    t.addRow({"Power budget (W)",
              util::formatDouble(c8.chipBudgetWatts(), 0),
              util::formatDouble(c64.chipBudgetWatts(), 0)});
    t.addRow({"Shared L2 capacity (MB)",
              util::formatDouble(
                  static_cast<double>(c8.l2Config().sizeBytes) /
                      (1024 * 1024), 0),
              util::formatDouble(
                  static_cast<double>(c64.l2Config().sizeBytes) /
                      (1024 * 1024), 0)});
    t.addRow({"Shared L2 associativity (ways)",
              std::to_string(c8.l2Assoc), std::to_string(c64.l2Assoc)});
    t.addRow({"Cache region (kB)",
              util::formatDouble(c8.regionBytes / 1024.0, 0),
              util::formatDouble(c64.regionBytes / 1024.0, 0)});
    t.addRow({"Memory channels", std::to_string(m8.channels),
              std::to_string(m64.channels)});
    t.addRow({"Channel bandwidth (GB/s)",
              util::formatDouble(m8.channelBandwidthGBs, 1),
              util::formatDouble(m64.channelBandwidthGBs, 1)});
    t.addRow({"Frequency range (GHz)", "0.8 - 4.0", "0.8 - 4.0"});
    t.addRow({"Voltage range (V)",
              util::formatDouble(pw.dvfs.vMin, 1) + " - " +
                  util::formatDouble(pw.dvfs.vMax, 1),
              util::formatDouble(pw.dvfs.vMin, 1) + " - " +
                  util::formatDouble(pw.dvfs.vMax, 1)});
    t.addRow({"L1D size (kB)",
              util::formatDouble(c8.l1.sizeBytes / 1024.0, 0),
              util::formatDouble(c64.l1.sizeBytes / 1024.0, 0)});
    t.addRow({"L1D associativity", std::to_string(c8.l1.assoc),
              std::to_string(c64.l1.assoc)});
    t.addRow({"Line size (B)", std::to_string(c8.lineBytes),
              std::to_string(c64.lineBytes)});
    t.addRow({"Allocation epoch (ms)",
              util::formatDouble(c8.epochSeconds * 1e3, 0),
              util::formatDouble(c64.epochSeconds * 1e3, 0)});
    t.addRow({"UMON stack-distance limit (regions)",
              std::to_string(c8.umon.maxRegions),
              std::to_string(c64.umon.maxRegions)});
    t.addRow({"UMON sampling ratio", std::to_string(c8.umon.samplingRatio),
              std::to_string(c64.umon.samplingRatio)});
    t.print(std::cout);

    std::cout << "\nSubstitutions vs the paper's Table 1 (see "
                 "DESIGN.md): the 4-wide out-of-order\ncore is an "
                 "analytic critical-path timing model; Wattch/Cacti/"
                 "HotSpot are an\nanalytic aCV^2f + thermal-leakage "
                 "model calibrated to the same 10 W/core TDP.\n";
    return 0;
}
