/**
 * @file
 * Microbenchmark: cache substrate throughput.
 *
 * Simulation cost is dominated by L2 accesses and UMON observations;
 * this benchmark quantifies both, plus the futility-controller update.
 */

#include <benchmark/benchmark.h>

#include "rebudget/cache/futility_controller.h"
#include "rebudget/cache/set_assoc_cache.h"
#include "rebudget/cache/umon.h"
#include "rebudget/util/rng.h"

using namespace rebudget;

namespace {

void
BM_L2Access(benchmark::State &state)
{
    const auto assoc = static_cast<uint32_t>(state.range(0));
    cache::SetAssocCache l2(
        cache::CacheConfig{4 * 1024 * 1024, assoc, 64}, 8);
    util::Rng rng(1);
    // Pre-generate addresses so the RNG is out of the measured loop.
    std::vector<uint64_t> addrs(1 << 16);
    for (auto &a : addrs)
        a = rng.uniformInt(uint64_t{1 << 20}) * 64;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            l2.access(i % 8, addrs[i % addrs.size()], false));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_UMonObserve(benchmark::State &state)
{
    cache::UMonitor umon;
    util::Rng rng(2);
    std::vector<uint64_t> addrs(1 << 16);
    for (auto &a : addrs)
        a = rng.uniformInt(uint64_t{1 << 15}) * 64;
    size_t i = 0;
    for (auto _ : state) {
        umon.observe(addrs[i % addrs.size()]);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_FutilityControllerUpdate(benchmark::State &state)
{
    cache::SetAssocCache l2(
        cache::CacheConfig{4 * 1024 * 1024, 16, 64},
        static_cast<uint32_t>(state.range(0)));
    cache::FutilityController ctl(l2);
    for (auto _ : state)
        ctl.update();
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_L2Access)->Arg(16)->Arg(32);
BENCHMARK(BM_UMonObserve);
BENCHMARK(BM_FutilityControllerUpdate)->Arg(16)->Arg(128);
