/**
 * @file
 * Extension: runtime overhead of the allocation step (Section 4.3).
 *
 * The paper piggybacks re-allocation on the 1 ms APIC timer interrupt
 * and claims low runtime overhead.  This bench wall-clock-times a full
 * allocation decision (utility models already built) at several machine
 * sizes and reports it as a fraction of the 1 ms epoch, for the market
 * mechanisms and for the centralized oracle that a non-market design
 * would need.
 */

#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "rebudget/core/baselines.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/market/utility_model.h"
#include "rebudget/util/rng.h"
#include "rebudget/util/table.h"

using namespace rebudget;

namespace {

struct Problem
{
    std::vector<std::unique_ptr<market::PowerLawUtility>> models;
    core::AllocationProblem problem;
};

Problem
makeProblem(size_t players, uint64_t seed)
{
    util::Rng rng(seed);
    Problem p;
    p.problem.capacities = {players * 3.0, players * 9.0};
    for (size_t i = 0; i < players; ++i) {
        p.models.push_back(std::make_unique<market::PowerLawUtility>(
            std::vector<double>{rng.uniform(0.1, 1.0),
                                rng.uniform(0.1, 1.0)},
            std::vector<double>{rng.uniform(0.2, 1.0),
                                rng.uniform(0.2, 1.0)},
            p.problem.capacities));
        p.problem.models.push_back(p.models.back().get());
    }
    return p;
}

double
timeAllocationUs(const core::Allocator &mechanism,
                 const core::AllocationProblem &problem, int reps)
{
    // Warm.
    mechanism.allocate(problem);
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        mechanism.allocate(problem);
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(stop - start)
               .count() /
           reps;
}

} // namespace

int
main()
{
    util::printBanner(std::cout,
                      "Extension: allocation cost per 1 ms epoch "
                      "(Section 4.3 overhead claim)");
    util::TablePrinter t({"players", "EqualBudget_us", "%of_epoch",
                          "ReBudget-40_us", "%of_epoch",
                          "MaxEff_oracle_us", "%of_epoch"});
    const core::EqualBudgetAllocator equal;
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    const core::MaxEfficiencyAllocator oracle;
    for (size_t n : {8u, 16u, 32u, 64u, 128u}) {
        const Problem p = makeProblem(n, 42);
        const int reps = n <= 32 ? 50 : 10;
        const double eq_us =
            timeAllocationUs(equal, p.problem, reps);
        const double rb_us = timeAllocationUs(rb40, p.problem, reps);
        const double or_us =
            timeAllocationUs(oracle, p.problem, n <= 32 ? 10 : 3);
        t.addRow({std::to_string(n), util::formatDouble(eq_us, 1),
                  util::formatDouble(100.0 * eq_us / 1000.0, 1),
                  util::formatDouble(rb_us, 1),
                  util::formatDouble(100.0 * rb_us / 1000.0, 1),
                  util::formatDouble(or_us, 1),
                  util::formatDouble(100.0 * or_us / 1000.0, 1)});
    }
    t.print(std::cout);
    std::cout << "\nNote: the paper runs the *distributed* player "
                 "optimizations concurrently on\nthe cores themselves; "
                 "these single-threaded timings are an upper bound, "
                 "and\nthe per-player work (a handful of "
                 "marginal-utility evaluations) is what\nactually lands "
                 "on each core's 1 ms tick.  The centralized oracle "
                 "column is\nwhat a non-market design would pay.\n";
    return 0;
}
