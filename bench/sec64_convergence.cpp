/**
 * @file
 * Section 6.4: convergence behavior.
 *
 * For every bundle in the 240-bundle suite, counts the bidding-pricing
 * iterations per equilibrium solve and the ReBudget outer rounds.
 * Paper claims: EqualBudget and Balanced converge within 3 iterations
 * for 95% of bundles; ReBudget needs a few more (it re-converges after
 * each budget cut); a 30-iteration fail-safe bounds the worst case.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "rebudget/core/baselines.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main()
{
    const uint32_t cores = 64;
    const auto catalog = workloads::classifyCatalog();
    const auto bundles =
        workloads::generateAllBundles(catalog, cores, 40, 2016);

    const core::EqualBudgetAllocator equal_budget;
    const core::BalancedBudgetAllocator balanced;
    const auto rb20 = core::ReBudgetAllocator::withStep(20);
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    struct Mech
    {
        const core::Allocator *alloc;
        std::vector<double> per_solve_iters; // iterations per solve
        std::vector<double> total_iters;     // total per allocation
        std::vector<double> rounds;
    };
    std::vector<Mech> mechs = {{&equal_budget, {}, {}, {}},
                               {&balanced, {}, {}, {}},
                               {&rb20, {}, {}, {}},
                               {&rb40, {}, {}, {}}};

    for (const auto &bundle : bundles) {
        bench::BundleProblem bp =
            bench::makeBundleProblem(bundle.appNames);
        for (auto &m : mechs) {
            const auto out = m.alloc->allocate(bp.problem);
            const int solves = std::max(1, out.budgetRounds);
            m.per_solve_iters.push_back(
                static_cast<double>(out.marketIterations) / solves);
            m.total_iters.push_back(out.marketIterations);
            m.rounds.push_back(out.budgetRounds);
        }
    }

    util::printBanner(std::cout,
                      "Section 6.4: equilibrium convergence over 240 "
                      "bundles (64 cores)");
    util::TablePrinter t({"mechanism", "median_iters/solve",
                          "p95_iters/solve", "max_iters/solve",
                          "frac_solves<=3", "median_total_iters",
                          "median_budget_rounds"});
    for (auto &m : mechs) {
        t.addRow({m.alloc->name(),
                  util::formatDouble(util::quantile(m.per_solve_iters,
                                                    0.5), 2),
                  util::formatDouble(util::quantile(m.per_solve_iters,
                                                    0.95), 2),
                  util::formatDouble(
                      *std::max_element(m.per_solve_iters.begin(),
                                        m.per_solve_iters.end()), 2),
                  util::formatDouble(
                      1.0 - util::fractionAtLeast(m.per_solve_iters,
                                                  3.0 + 1e-9), 3),
                  util::formatDouble(util::quantile(m.total_iters, 0.5),
                                     1),
                  util::formatDouble(util::quantile(m.rounds, 0.5), 1)});
    }
    t.print(std::cout);
    std::cout << "\nPaper: EqualBudget/Balanced converge within 3 "
                 "iterations for 95% of bundles;\nReBudget spends a few "
                 "more because it re-converges after each cut; the\n"
                 "fail-safe terminates any solve at 30 iterations.\n";
    return 0;
}
