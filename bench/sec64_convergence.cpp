/**
 * @file
 * Section 6.4: convergence behavior.
 *
 * For every bundle in the 240-bundle suite, counts the bidding-pricing
 * iterations per equilibrium solve and the ReBudget outer rounds.
 * Paper claims: EqualBudget and Balanced converge within 3 iterations
 * for 95% of bundles; ReBudget needs a few more (it re-converges after
 * each budget cut); a 30-iteration fail-safe bounds the worst case.
 *
 * The sweep runs on eval::BundleRunner (--jobs N / REBUDGET_JOBS).  A
 * second section opts into MarketConfig::recordPriceHistory to show the
 * actual price trajectory of one sample bundle -- the per-iteration
 * price movement that the convergence claim summarizes.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "rebudget/core/baselines.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main(int argc, char **argv)
{
    const uint32_t cores = 64;
    const auto catalog = workloads::classifyCatalog();
    const auto bundles =
        workloads::generateAllBundles(catalog, cores, 40, 2016);

    const core::EqualBudgetAllocator equal_budget;
    const core::BalancedBudgetAllocator balanced;
    const auto rb20 = core::ReBudgetAllocator::withStep(20);
    const auto rb40 = core::ReBudgetAllocator::withStep(40);

    eval::BundleRunnerOptions opts;
    const auto jobs_arg = eval::parseJobsArg(argc, argv);
    if (!jobs_arg.ok())
        util::fatal("%s", jobs_arg.status().message().c_str());
    opts.jobs = jobs_arg.value();
    const eval::BundleRunner runner(
        {&equal_budget, &balanced, &rb20, &rb40}, opts);
    const auto evals = runner.run(bundles);

    struct Mech
    {
        std::vector<double> per_solve_iters; // iterations per solve
        std::vector<double> total_iters;     // total per allocation
        std::vector<double> rounds;
    };
    std::vector<Mech> mechs(runner.mechanismNames().size());

    for (const auto &ev : evals) {
        if (ev.skipped)
            continue;
        for (size_t m = 0; m < ev.scores.size(); ++m) {
            const auto &s = ev.scores[m];
            const int solves = std::max(1, s.budgetRounds);
            mechs[m].per_solve_iters.push_back(
                static_cast<double>(s.marketIterations) / solves);
            mechs[m].total_iters.push_back(s.marketIterations);
            mechs[m].rounds.push_back(s.budgetRounds);
        }
    }

    util::printBanner(std::cout,
                      "Section 6.4: equilibrium convergence over 240 "
                      "bundles (64 cores)");
    util::TablePrinter t({"mechanism", "median_iters/solve",
                          "p95_iters/solve", "max_iters/solve",
                          "frac_solves<=3", "median_total_iters",
                          "median_budget_rounds"});
    for (size_t m = 0; m < mechs.size(); ++m) {
        const auto &mech = mechs[m];
        t.addRow({runner.mechanismNames()[m],
                  util::formatDouble(util::quantile(mech.per_solve_iters,
                                                    0.5), 2),
                  util::formatDouble(util::quantile(mech.per_solve_iters,
                                                    0.95), 2),
                  util::formatDouble(
                      *std::max_element(mech.per_solve_iters.begin(),
                                        mech.per_solve_iters.end()), 2),
                  util::formatDouble(
                      1.0 - util::fractionAtLeast(mech.per_solve_iters,
                                                  3.0 + 1e-9), 3),
                  util::formatDouble(util::quantile(mech.total_iters,
                                                    0.5), 1),
                  util::formatDouble(util::quantile(mech.rounds, 0.5),
                                     1)});
    }
    t.print(std::cout);
    std::cout << "\nPaper: EqualBudget/Balanced converge within 3 "
                 "iterations for 95% of bundles;\nReBudget spends a few "
                 "more because it re-converges after each cut; the\n"
                 "fail-safe terminates any solve at 30 iterations.\n";

    // ---- Price trajectory of one sample bundle. ----
    //
    // The sweep above leaves recordPriceHistory off (the default);
    // here we opt in on a single equilibrium solve to display the
    // per-iteration price movement behind the iteration counts.
    {
        const auto &sample = bundles.front();
        const auto bp = eval::makeBundleProblem(sample.appNames);
        market::MarketConfig cfg = bp.problem.marketConfig;
        cfg.recordPriceHistory = true;
        const market::ProportionalMarket market(
            bp.problem.models, bp.problem.capacities, cfg);
        const std::vector<double> budgets(bp.problem.models.size(), 1.0);
        const auto eq = market.findEquilibrium(budgets);

        util::printBanner(std::cout,
                          "Price trajectory (equal budgets, bundle " +
                              sample.name + ")");
        util::TablePrinter pt({"iteration", "max_rel_price_move"});
        for (size_t it = 0; it < eq.priceHistory.size(); ++it) {
            double move = 0.0;
            if (it > 0) {
                const auto &prev = eq.priceHistory[it - 1];
                const auto &cur = eq.priceHistory[it];
                for (size_t j = 0; j < cur.size(); ++j) {
                    if (prev[j] > 0)
                        move = std::max(
                            move,
                            std::fabs(cur[j] - prev[j]) / prev[j]);
                }
            }
            pt.addRow({std::to_string(it + 1),
                       util::formatDouble(move, 4)});
        }
        pt.print(std::cout);
        std::cout << "\nConverged: " << (eq.converged ? "yes" : "no")
                  << " in " << eq.iterations
                  << " iterations (tolerance "
                  << util::formatDouble(cfg.priceTol, 2) << ").\n";
    }
    return 0;
}
