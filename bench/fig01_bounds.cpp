/**
 * @file
 * Figure 1: the theoretical bounds.
 *
 * Left panel: Price of Anarchy lower bound vs. Market Utility Range
 * (Theorem 1).  Right panel: envy-freeness lower bound vs. Market
 * Budget Range (Theorem 2).  Prints both series.
 */

#include <iostream>

#include "rebudget/market/metrics.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main()
{
    util::printBanner(std::cout,
                      "Figure 1 (left): PoA lower bound vs MUR "
                      "(Theorem 1)");
    util::TablePrinter poa({"MUR", "PoA_lower_bound"});
    for (int i = 0; i <= 20; ++i) {
        const double mur = i / 20.0;
        poa.addRow({util::formatDouble(mur, 2),
                    util::formatDouble(market::poaLowerBound(mur), 4)});
    }
    poa.print(std::cout);

    util::printBanner(std::cout,
                      "Figure 1 (right): envy-freeness lower bound vs "
                      "MBR (Theorem 2)");
    util::TablePrinter ef({"MBR", "EF_lower_bound"});
    for (int i = 0; i <= 20; ++i) {
        const double mbr = i / 20.0;
        ef.addRow(
            {util::formatDouble(mbr, 2),
             util::formatDouble(market::envyFreenessLowerBound(mbr), 4)});
    }
    ef.print(std::cout);

    std::cout << "\nCheckpoints: PoA(MUR=0.5) = "
              << market::poaLowerBound(0.5)
              << " (paper: 0.5); EF(MBR=1) = "
              << market::envyFreenessLowerBound(1.0)
              << " (paper/Lemma 3: 0.828)\n";
    return 0;
}
