#ifndef REBUDGET_BENCH_BENCH_COMMON_H_
#define REBUDGET_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared plumbing for the evaluation harness: turn a workload bundle
 * into an allocation problem with catalog utility models, and evaluate
 * mechanisms on it.
 */

#include <memory>
#include <string>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/app/utility.h"
#include "rebudget/core/allocator.h"
#include "rebudget/market/metrics.h"
#include "rebudget/power/power_model.h"
#include "rebudget/workloads/bundles.h"

namespace rebudget::bench {

/** An allocation problem plus the utility models backing it. */
struct BundleProblem
{
    std::vector<std::unique_ptr<app::AppUtilityModel>> models;
    core::AllocationProblem problem;
};

/**
 * Build the phase-1 (analytic) allocation problem for a bundle: catalog
 * profiles -> convexified utility models, market capacities = machine
 * resources minus per-core minimums.
 *
 * @param app_names            one catalog app per core
 * @param regions_per_core     cache regions per core (paper: 4)
 * @param watts_per_core       chip TDP per core (paper: 10 W)
 * @param convexify            apply Talus convexification
 */
inline BundleProblem
makeBundleProblem(const std::vector<std::string> &app_names,
                  double regions_per_core = 4.0,
                  double watts_per_core = 10.0, bool convexify = true)
{
    static const power::PowerModel power;
    BundleProblem bp;
    app::UtilityGridOptions options;
    options.convexify = convexify;
    double min_watts = 0.0;
    for (const auto &nm : app_names) {
        bp.models.push_back(std::make_unique<app::AppUtilityModel>(
            app::findCatalogProfile(nm), power, options));
        min_watts += bp.models.back()->minWatts();
        bp.problem.models.push_back(bp.models.back().get());
    }
    const double n = static_cast<double>(app_names.size());
    bp.problem.capacities = {n * regions_per_core - n * 1.0,
                             n * watts_per_core - min_watts};
    return bp;
}

/** Efficiency and fairness of one mechanism on one problem. */
struct MechanismScore
{
    std::string mechanism;
    double efficiency = 0.0;
    double envyFreeness = 0.0;
    double mur = 0.0;
    double mbr = 1.0;
    int marketIterations = 0;
    int budgetRounds = 0;
};

/** Run one mechanism and collect its scores. */
inline MechanismScore
score(const core::Allocator &mechanism,
      const core::AllocationProblem &problem)
{
    const core::AllocationOutcome out = mechanism.allocate(problem);
    MechanismScore s;
    s.mechanism = out.mechanism;
    s.efficiency = market::efficiency(problem.models, out.alloc);
    s.envyFreeness = market::envyFreeness(problem.models, out.alloc);
    if (!out.lambdas.empty())
        s.mur = market::marketUtilityRange(out.lambdas);
    if (!out.budgets.empty())
        s.mbr = market::marketBudgetRange(out.budgets);
    s.marketIterations = out.marketIterations;
    s.budgetRounds = out.budgetRounds;
    return s;
}

} // namespace rebudget::bench

#endif // REBUDGET_BENCH_BENCH_COMMON_H_
