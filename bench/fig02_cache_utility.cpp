/**
 * @file
 * Figure 2: normalized utility vs. cache allocation for mcf and vpr at
 * the highest frequency, raw (markers in the paper) and Talus-
 * convexified (lines in the paper).
 *
 * mcf's raw curve is flat and then jumps once its working set fits (the
 * cliff the paper places at 12 ways); vpr's is smooth and concave.  The
 * convex hull is what the market actually prices.
 */

#include <iostream>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/app/utility.h"
#include "rebudget/power/power_model.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main()
{
    const power::PowerModel power;
    util::TablePrinter table({"cache_regions", "mcf_raw", "mcf_convex",
                              "vpr_raw", "vpr_convex"});

    app::UtilityGridOptions raw_opts;
    raw_opts.convexify = false;
    const app::AppUtilityModel mcf_raw(app::findCatalogProfile("mcf"),
                                       power, raw_opts);
    const app::AppUtilityModel mcf_cvx(app::findCatalogProfile("mcf"),
                                       power);
    const app::AppUtilityModel vpr_raw(app::findCatalogProfile("vpr"),
                                       power, raw_opts);
    const app::AppUtilityModel vpr_cvx(app::findCatalogProfile("vpr"),
                                       power);

    for (double c : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0,
                     14.0, 16.0}) {
        table.addRow(
            {util::formatDouble(c, 0),
             util::formatDouble(
                 mcf_raw.utilityTotal(c, mcf_raw.maxWatts()), 4),
             util::formatDouble(
                 mcf_cvx.utilityTotal(c, mcf_cvx.maxWatts()), 4),
             util::formatDouble(
                 vpr_raw.utilityTotal(c, vpr_raw.maxWatts()), 4),
             util::formatDouble(
                 vpr_cvx.utilityTotal(c, vpr_cvx.maxWatts()), 4)});
    }

    util::printBanner(std::cout,
                      "Figure 2: utility vs cache at max frequency "
                      "(raw + Talus hull)");
    table.print(std::cout);
    std::cout << "\nExpected shape: mcf_raw flat then a cliff near 12 "
                 "regions; mcf_convex a\nstraight ramp (the hull); vpr "
                 "smooth and concave in both variants.\n";
    return 0;
}
