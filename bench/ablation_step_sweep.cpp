/**
 * @file
 * Ablation: characterizing the ReBudget aggressiveness knob beyond the
 * paper's two settings (20 and 40).  Sweeps the first-round step over a
 * bundle subset and reports the mean efficiency (vs MaxEfficiency),
 * mean envy-freeness, realized MBR, and the Theorem 2 bound.
 *
 * All steps plus the MaxEfficiency oracle run as one BundleRunner
 * mechanism set, so a single parallel pass over the bundles (--jobs N)
 * covers the whole sweep.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/market/metrics.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main(int argc, char **argv)
{
    const uint32_t cores = 16;
    const auto catalog = workloads::classifyCatalog();
    const auto bundles =
        workloads::generateAllBundles(catalog, cores, 8, 11);

    const std::vector<double> steps = {2.5,  5.0,  10.0, 15.0,
                                       20.0, 30.0, 40.0, 45.0};
    std::vector<core::ReBudgetAllocator> rb_allocs;
    rb_allocs.reserve(steps.size());
    for (double step : steps)
        rb_allocs.push_back(core::ReBudgetAllocator::withStep(step));

    const core::MaxEfficiencyAllocator max_eff;
    std::vector<const core::Allocator *> mechanisms;
    for (const auto &rb : rb_allocs)
        mechanisms.push_back(&rb);
    mechanisms.push_back(&max_eff);

    eval::BundleRunnerOptions opts;
    const auto jobs_arg = eval::parseJobsArg(argc, argv);
    if (!jobs_arg.ok())
        util::fatal("%s", jobs_arg.status().message().c_str());
    opts.jobs = jobs_arg.value();
    const eval::BundleRunner runner(mechanisms, opts);
    const size_t i_opt = runner.mechanismIndex("MaxEfficiency").value();
    const auto evals = runner.run(bundles);

    util::printBanner(std::cout,
                      "Ablation: ReBudget step sweep (48 bundles, 16 "
                      "cores)");
    util::TablePrinter t({"step", "mean_eff_vs_opt", "eff_95%CI",
                          "mean_EF", "worst_EF", "mean_MBR",
                          "EF_bound(worst-case MBR)"});
    for (size_t k = 0; k < steps.size(); ++k) {
        util::SummaryStats ef, mbr;
        std::vector<double> eff_samples;
        for (const auto &ev : evals) {
            if (ev.skipped)
                continue;
            const double opt = ev.scores[i_opt].efficiency;
            const auto &s = ev.scores[k];
            eff_samples.push_back(s.efficiency / opt);
            ef.add(s.envyFreeness);
            mbr.add(s.mbr);
        }
        const util::ConfidenceInterval ci =
            util::bootstrapMeanCI(eff_samples);
        t.addRow({util::formatDouble(steps[k], 1),
                  util::formatDouble(ci.mean, 3),
                  "[" + util::formatDouble(ci.lo, 3) + ", " +
                      util::formatDouble(ci.hi, 3) + "]",
                  util::formatDouble(ef.mean(), 3),
                  util::formatDouble(ef.min(), 3),
                  util::formatDouble(mbr.mean(), 3),
                  util::formatDouble(market::envyFreenessLowerBound(
                                         rb_allocs[k].worstCaseMbr()),
                                     3)});
    }
    t.print(std::cout);
    std::cout << "\nThe step is a smooth knob: efficiency rises and "
                 "fairness falls monotonically\n(statistically) with "
                 "aggressiveness, and worst-case EF always clears the\n"
                 "Theorem 2 bound implied by the step's geometric cut "
                 "series.\n";
    return 0;
}
