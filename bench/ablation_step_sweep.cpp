/**
 * @file
 * Ablation: characterizing the ReBudget aggressiveness knob beyond the
 * paper's two settings (20 and 40).  Sweeps the first-round step over a
 * bundle subset and reports the mean efficiency (vs MaxEfficiency),
 * mean envy-freeness, realized MBR, and the Theorem 2 bound.
 */

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main()
{
    const uint32_t cores = 16;
    const auto catalog = workloads::classifyCatalog();
    const auto bundles =
        workloads::generateAllBundles(catalog, cores, 8, 11);
    const core::MaxEfficiencyAllocator max_eff;

    util::printBanner(std::cout,
                      "Ablation: ReBudget step sweep (48 bundles, 16 "
                      "cores)");
    util::TablePrinter t({"step", "mean_eff_vs_opt", "eff_95%CI",
                          "mean_EF", "worst_EF", "mean_MBR",
                          "EF_bound(worst-case MBR)"});
    for (double step : {2.5, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 45.0}) {
        const auto rb = core::ReBudgetAllocator::withStep(step);
        util::SummaryStats ef, mbr;
        std::vector<double> eff_samples;
        for (const auto &bundle : bundles) {
            bench::BundleProblem bp =
                bench::makeBundleProblem(bundle.appNames);
            const double opt =
                bench::score(max_eff, bp.problem).efficiency;
            const auto s = bench::score(rb, bp.problem);
            eff_samples.push_back(s.efficiency / opt);
            ef.add(s.envyFreeness);
            mbr.add(s.mbr);
        }
        const util::ConfidenceInterval ci =
            util::bootstrapMeanCI(eff_samples);
        t.addRow({util::formatDouble(step, 1),
                  util::formatDouble(ci.mean, 3),
                  "[" + util::formatDouble(ci.lo, 3) + ", " +
                      util::formatDouble(ci.hi, 3) + "]",
                  util::formatDouble(ef.mean(), 3),
                  util::formatDouble(ef.min(), 3),
                  util::formatDouble(mbr.mean(), 3),
                  util::formatDouble(market::envyFreenessLowerBound(
                                         rb.worstCaseMbr()),
                                     3)});
    }
    t.print(std::cout);
    std::cout << "\nThe step is a smooth knob: efficiency rises and "
                 "fairness falls monotonically\n(statistically) with "
                 "aggressiveness, and worst-case EF always clears the\n"
                 "Theorem 2 bound implied by the step's geometric cut "
                 "series.\n";
    return 0;
}
