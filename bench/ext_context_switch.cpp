/**
 * @file
 * Extension: context-switch adaptation (Section 4.3).
 *
 * The paper triggers budget re-assignment every 1 ms to absorb OS
 * context switches.  Here an 8-core machine runs a mixed bundle; at
 * epoch 10 the OS swaps the streaming app on core 7 for a second copy
 * of mcf (cache-hungry), and at epoch 18 swaps it back.  The bench
 * prints core 7's installed cache target and utility per epoch under
 * ReBudget-40: the market discovers the incoming app's demand from the
 * monitors within an epoch or two and re-routes capacity, then returns
 * it after the reverse switch.
 */

#include <iostream>

#include "rebudget/app/catalog.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/sim/epoch_sim.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main()
{
    sim::EpochSimConfig cfg = sim::EpochSimConfig::forCores(8);
    cfg.epochs = 24;
    cfg.warmupEpochs = 2;
    cfg.cmp.accessesPerEpochPerCore = 8000;
    cfg.contextSwitches.push_back(
        sim::ContextSwitch{12, 7,
                           app::findCatalogProfile("mcf").params});
    cfg.contextSwitches.push_back(
        sim::ContextSwitch{20, 7,
                           app::findCatalogProfile("milc").params});

    std::vector<app::AppParams> apps;
    for (const char *nm : {"vpr", "swim", "apsi", "hmmer", "sixtrack",
                           "gap", "libquantum", "milc"}) {
        apps.push_back(app::findCatalogProfile(nm).params);
    }

    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    sim::EpochSimulator simulator(cfg, apps, rb40);
    const sim::SimResult r = simulator.run();

    util::printBanner(std::cout,
                      "Extension: context switches on core 7 "
                      "(milc -> mcf at epoch 10, back at 18)");
    util::TablePrinter t({"epoch", "core7_cache_target",
                          "core7_utility", "machine_efficiency"});
    for (size_t e = 0; e < r.epochs.size(); ++e) {
        std::string marker = std::to_string(e);
        if (e == 10)
            marker += " <- switch in mcf";
        if (e == 18)
            marker += " <- switch back";
        t.addRow({marker,
                  util::formatDouble(r.epochs[e].cacheTargets[7], 2),
                  util::formatDouble(r.epochs[e].utilities[7], 3),
                  util::formatDouble(r.epochs[e].efficiency, 3)});
    }
    t.print(std::cout);
    std::cout << "\nThe incoming mcf's working set is discovered by the "
                 "UMON monitors after a\nfew epochs (its pointer chase "
                 "must complete whole laps before the shadow\ntags "
                 "observe reuse), the market re-prices cache, and after "
                 "the reverse\nswitch the cache returns to the other "
                 "players within one epoch.\n";
    return 0;
}
