/**
 * perf_serve -- closed-loop throughput bench for the serving stack.
 *
 * Stands up an in-process serve::ServerCore (the exact engine behind
 * rebudgetd, no sockets), populates it with --markets independent
 * catalog-app markets spread over --shards shards, then drives epoch
 * ticks with deterministic per-tick demand perturbations and measures
 * sustained tick and solve throughput.
 *
 * Like bench/perf_equilibrium, this binary overrides operator new --
 * here bumping a THREAD-LOCAL counter wired into
 * serve::ServeConfig::allocCounter, so each shard samples exactly the
 * allocations made by its own tick body (which runs on a single
 * thread-pool worker).  After the warm-up ticks the bench enforces the
 * serving-path contract and exits fatally on violation:
 *
 *  - steady_tick_allocs == 0 on every shard (warm-start chains plus
 *    workspace reuse mean the tick path never touches the heap), and
 *  - zero cold-started solves during the measured window (every market
 *    re-solves from its previous equilibrium).
 *
 * Output: one rebudget.perf_serve.v1 JSON object on stdout.
 *
 * Part B (--capacity / --capacity-smoke): the read-path capacity
 * sweep.  For each (markets x players x readers) row a fresh core is
 * populated and warmed, then one ticker thread re-solves every epoch
 * continuously while N reader threads hammer GetAllocation on a
 * seeded market schedule.  Every reply is checked for tearing
 * (roster size, per-tenant row width, budget mass, per-market tick
 * monotonicity); any violation, read error, steady-tick allocation or
 * cold solve in the measured window is fatal.  Output is one
 * rebudget.serve_bench.v1 JSON object (stdout or --out FILE), gated
 * against the committed BENCH_serve.json by tools/bench_compare.py.
 *
 * Part C (--recovery / --recovery-smoke): the durability-cost section.
 * A populated, warmed core is snapshotted (timed), then driven through
 * a journaled steady window and an identical unjournaled window so the
 * per-op journal overhead is a measured ratio, not a guess.  A tail of
 * journal-only writes is then "crashed" (the core is simply dropped)
 * and recovered into a fresh core (timed); the recovered digest must
 * match the live core's bit for bit, and steady ticks must stay
 * allocation-free WITH journaling attached -- both violations are
 * fatal.  Output is one rebudget.serve_recovery.v1 JSON object, gated
 * against the committed BENCH_serve_recovery.json.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "rebudget/eval/bundle_runner.h"
#include "rebudget/serve/persist.h"
#include "rebudget/serve/server_core.h"
#include "rebudget/util/arg_parse.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/rng.h"
#include "rebudget/util/solver_stats.h"

// ---------------------------------------------------------------------
// Thread-local heap allocation counter.  Each serve::Shard::tick runs
// on one thread and samples the hook before/after, so the delta it
// sees is precisely its own tick body's allocations -- concurrent
// shards on other workers never pollute it.
// ---------------------------------------------------------------------

namespace {
thread_local std::int64_t t_heap_allocs = 0;

std::int64_t
threadAllocCount()
{
    return t_heap_allocs;
}

void *
countedAlloc(std::size_t size)
{
    t_heap_allocs += 1;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    t_heap_allocs += 1;
    if (align < sizeof(void *))
        align = sizeof(void *);
    void *p = nullptr;
    if (posix_memalign(&p, align, size ? size : 1) == 0)
        return p;
    throw std::bad_alloc();
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

using namespace rebudget;

namespace {

std::uint64_t
parseFlag(const char *flag, const char *value, std::uint64_t max)
{
    const auto parsed = util::parseUnsigned(value, max);
    if (!parsed.ok())
        util::fatal("%s: %s", flag, parsed.status().message().c_str());
    return parsed.value();
}

// ---------------------------------------------------------------------
// Part B: read-path capacity sweep.
// ---------------------------------------------------------------------

/** Latency samples recorded per reader (beyond this reads still count
 * toward throughput, but stop being sampled). */
constexpr std::size_t kReadSampleCap = std::size_t{1} << 18;

struct CapacitySpec
{
    std::size_t markets = 0;
    std::size_t players = 0;
    std::size_t readers = 0;
};

struct ReaderStats
{
    std::uint64_t reads = 0;
    std::uint64_t readErrors = 0;
    std::uint64_t tornReads = 0;
    /** Per-read latency samples, nanoseconds. */
    std::vector<double> samplesNs;
    /** Last tick observed per market (monotonicity check). */
    std::vector<std::uint64_t> lastTick;
};

struct CapacityResult
{
    CapacitySpec spec;
    std::uint64_t reads = 0;
    std::uint64_t readErrors = 0;
    std::uint64_t tornReads = 0;
    std::uint64_t ticks = 0;
    double elapsed = 0.0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;
    double maxNs = 0.0;
    std::int64_t steadyAllocs = 0;
    std::int64_t coldSolves = 0;
    /** Markets whose oscillation was frozen during validation
     * (informational; machine-dependent only through FP flags). */
    std::uint64_t frozenMarkets = 0;
};

/** One reader's closed loop: GetAllocation on a seeded market schedule
 * until the stop flag rises, validating every reply for tearing.  Uses
 * the production lock-free path (ServerCore::readAllocation) with a
 * reused reply, the same way the socket transport serves reads -- so
 * after the first lap the loop itself performs zero heap allocations
 * and the numbers measure the serving plane, not the harness. */
void
readerLoop(serve::ServerCore &core, const CapacitySpec &spec,
           std::uint64_t seed, std::size_t readerIdx,
           const std::atomic<bool> &stop, ReaderStats &out)
{
    out.samplesNs.reserve(kReadSampleCap);
    out.lastTick.assign(spec.markets, 0);
    const std::uint64_t streamKey =
        util::mix64(seed ^ (0xb10cada ^ (readerIdx * 0x9e3779b97f4a7c15ull)));
    serve::AllocationReply reply;
    serve::ErrorReply err;
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t m =
            util::mix64(streamKey ^ (i * 0x2545f4914f6cdd1dull))
            % spec.markets;
        ++i;
        serve::GetAllocation req;
        req.market = m;
        const double t0 = util::monotonicSeconds();
        const bool ok = core.readAllocation(req, reply, err);
        const double dtNs = (util::monotonicSeconds() - t0) * 1e9;
        ++out.reads;
        if (out.samplesNs.size() < kReadSampleCap)
            out.samplesNs.push_back(dtNs);
        if (!ok) {
            ++out.readErrors;
            continue;
        }
        // Tearing checks: a snapshot mixing two epochs (or a solve in
        // flight) breaks one of these before it breaks anything subtle.
        bool torn = false;
        if (reply.market != m)
            torn = true;
        if (reply.players.size() != spec.players)
            torn = true;
        if (reply.prices.empty())
            torn = true;
        double budgetMass = 0.0;
        for (const serve::TenantAllocation &p : reply.players) {
            if (p.alloc.size() != reply.prices.size())
                torn = true;
            budgetMass += p.budget;
        }
        const double n = static_cast<double>(spec.players);
        if (budgetMass < n - 1e-6 * n || budgetMass > n + 1e-6 * n)
            torn = true;
        if (reply.tick < out.lastTick[m])
            torn = true;
        out.lastTick[m] = reply.tick;
        if (torn)
            ++out.tornReads;
    }
}

/** Run one capacity row: populate + warm a fresh core, then measure
 * readers vs a continuously ticking writer for @p readSeconds. */
CapacityResult
runCapacityRow(const CapacitySpec &spec, const serve::ServeConfig &base,
               std::uint64_t seed, std::uint64_t warmup,
               double readSeconds)
{
    serve::ServeConfig config = base;
    config.allocCounter = &threadAllocCount;
    serve::ServerCore core(config);

    for (std::size_t m = 0; m < spec.markets; ++m) {
        const std::vector<std::string> names = eval::syntheticAppNames(
            spec.players,
            util::mix64(seed ^ (0x5e + static_cast<std::uint64_t>(m))));
        serve::CreateMarket req;
        req.market = m;
        for (std::size_t t = 0; t < names.size(); ++t)
            req.tenants.push_back({t, names[t]});
        const serve::Response resp = core.apply(req);
        if (const auto *err = std::get_if<serve::ErrorReply>(&resp))
            util::fatal("capacity: create market %zu: %s", m,
                        err->message.c_str());
    }
    // Demand model: seeded static weights, driven to a solver
    // fixpoint before measurement.  The ticker runs for wall-clock
    // time, not a fixed tick count, so any demand schedule that keeps
    // changing would eventually hit a draw the tatonnement loop never
    // settles (Part A already trips its fail-safe at --ticks 400) --
    // and a "converged" result only matches the true equilibrium
    // within tolerance, so even a two-state oscillation lets the warm
    // seed wander run over run.  Static demand closes the loop
    // exactly: once a tick re-solves every market from its own
    // published equilibrium and converges, every later solve is a
    // bit-identical rerun of that tick (same config, same warm seed),
    // so fail-safes, fallbacks and cold solves are impossible in the
    // measured window no matter how long the row runs.  This is the
    // same steady-tick regime Part A's zero-allocation gate pins.
    //
    // The validation loop certifies the fixpoint: markets whose
    // seeded draw does not settle are frozen to uniform weights, and
    // measurement starts only after several consecutive ticks in
    // which EVERY market converged.
    auto submitWeight = [&](std::size_t m, std::uint64_t tenant,
                            double w) {
        serve::SubmitDemand req;
        req.market = m;
        req.tenant = tenant;
        req.weight = w;
        const serve::Response resp = core.apply(req);
        if (std::holds_alternative<serve::ErrorReply>(resp))
            util::fatal("capacity: demand rejected on market %zu", m);
    };
    for (std::size_t m = 0; m < spec.markets; ++m)
        for (std::size_t t = 0; t < spec.players; ++t) {
            const std::uint64_t key = util::mix64(
                seed ^ 0xa11 ^ (m * 0x9e3779b97f4a7c15ull) ^ t);
            submitWeight(m, t,
                         0.25 + static_cast<double>(key % 32) / 8.0);
        }
    // 0 = seeded draw, 1 = frozen to uniform weights.
    std::vector<std::uint8_t> stage(spec.markets, 0);

    constexpr std::uint64_t kValidationCap = 300;
    constexpr std::uint32_t kCleanStreak = 4;
    std::uint64_t valTick = 0;
    std::uint32_t streak = 0;
    std::size_t frozen = 0;
    while (streak < kCleanStreak) {
        if (valTick >= kValidationCap)
            util::fatal("capacity m=%zu p=%zu r=%zu: markets did not "
                        "stabilize within %llu validation ticks",
                        spec.markets, spec.players, spec.readers,
                        static_cast<unsigned long long>(kValidationCap));
        core.tick();
        bool clean = true;
        for (std::size_t m = 0; m < spec.markets; ++m) {
            serve::GetAllocation req;
            req.market = m;
            const serve::Response resp = core.apply(req);
            const auto *reply =
                std::get_if<serve::AllocationReply>(&resp);
            if (reply != nullptr && reply->converged)
                continue;
            clean = false;
            if (stage[m] == 0) {
                for (std::size_t t = 0; t < spec.players; ++t)
                    submitWeight(m, t, 1.0);
                stage[m] = 1;
                ++frozen;
            } // stage 1: wait out the watchdog's recovery window.
        }
        streak = clean ? streak + 1 : 0;
        ++valTick;
    }
    (void)warmup; // subsumed by the validation loop above
    util::SolverStats afterWarmup;
    for (std::size_t s = 0; s < core.shardCount(); ++s)
        afterWarmup.merge(core.shard(s).solverStats());

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ticksDone{0};
    std::vector<ReaderStats> stats(spec.readers);
    const double start = util::monotonicSeconds();
    std::thread ticker([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            core.tick();
            ticksDone.fetch_add(1, std::memory_order_relaxed);
        }
    });
    std::vector<std::thread> readers;
    readers.reserve(spec.readers);
    for (std::size_t r = 0; r < spec.readers; ++r)
        readers.emplace_back(readerLoop, std::ref(core), std::cref(spec),
                             seed, r, std::cref(stop), std::ref(stats[r]));
    std::this_thread::sleep_for(std::chrono::duration<double>(readSeconds));
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &th : readers)
        th.join();
    ticker.join();
    const double elapsed = util::monotonicSeconds() - start;

    CapacityResult row;
    row.spec = spec;
    row.elapsed = elapsed;
    row.frozenMarkets = frozen;
    row.ticks = ticksDone.load(std::memory_order_relaxed);
    std::vector<double> all;
    for (const ReaderStats &s : stats) {
        row.reads += s.reads;
        row.readErrors += s.readErrors;
        row.tornReads += s.tornReads;
        all.insert(all.end(), s.samplesNs.begin(), s.samplesNs.end());
    }
    if (!all.empty()) {
        std::sort(all.begin(), all.end());
        row.p50Ns = all[all.size() / 2];
        row.p99Ns = all[std::min(all.size() - 1, (all.size() * 99) / 100)];
        row.maxNs = all.back();
    }
    util::SolverStats total;
    for (std::size_t s = 0; s < core.shardCount(); ++s) {
        total.merge(core.shard(s).solverStats());
        row.steadyAllocs += core.shard(s).counters().steadyTickAllocs;
    }
    row.coldSolves = total.coldStartedSolves - afterWarmup.coldStartedSolves;

    // The same absolute gates as Part A, applied per row: a torn or
    // failed read, a steady-tick allocation or a cold solve inside the
    // measured window all mean the serving contract broke.
    if (row.readErrors != 0)
        util::fatal("capacity m=%zu p=%zu r=%zu: %llu reads failed",
                    spec.markets, spec.players, spec.readers,
                    static_cast<unsigned long long>(row.readErrors));
    if (row.tornReads != 0)
        util::fatal("capacity m=%zu p=%zu r=%zu: %llu torn reads",
                    spec.markets, spec.players, spec.readers,
                    static_cast<unsigned long long>(row.tornReads));
    if (row.steadyAllocs != 0)
        util::fatal("capacity m=%zu p=%zu r=%zu: %lld steady-tick "
                    "allocations",
                    spec.markets, spec.players, spec.readers,
                    static_cast<long long>(row.steadyAllocs));
    if (row.coldSolves != 0)
        util::fatal("capacity m=%zu p=%zu r=%zu: %lld cold solves in "
                    "the measured window",
                    spec.markets, spec.players, spec.readers,
                    static_cast<long long>(row.coldSolves));
    if (row.reads == 0)
        util::fatal("capacity m=%zu p=%zu r=%zu: no reads completed",
                    spec.markets, spec.players, spec.readers);
    return row;
}

int
runCapacitySweep(const serve::ServeConfig &config, std::uint64_t seed,
                 std::uint64_t warmup, double readSeconds, bool smoke,
                 const std::string &outPath)
{
    // The ticker loops for wall-clock time, not a fixed tick count, so
    // it sees orders of magnitude more demand draws than Part A; the
    // iteration fail-safe needs matching headroom or a rare hard draw
    // trips the watchdog warn path (which allocates) and fails the
    // zero-allocation gate spuriously.
    serve::ServeConfig cfg = config;
    if (cfg.market.maxIterations < 2000)
        cfg.market.maxIterations = 2000;

    std::vector<CapacitySpec> specs;
    if (smoke) {
        specs = {{64, 8, 4}, {512, 8, 8}};
    } else {
        for (std::size_t markets : {std::size_t{64}, std::size_t{512},
                                    std::size_t{2048}})
            for (std::size_t players : {std::size_t{4}, std::size_t{8}})
                for (std::size_t readers : {std::size_t{1}, std::size_t{4},
                                            std::size_t{8}})
                    specs.push_back({markets, players, readers});
    }

    std::vector<CapacityResult> rows;
    rows.reserve(specs.size());
    for (const CapacitySpec &spec : specs)
        rows.push_back(runCapacityRow(spec, cfg, seed, warmup,
                                      readSeconds));

    FILE *out = stdout;
    if (!outPath.empty()) {
        out = std::fopen(outPath.c_str(), "w");
        if (out == nullptr)
            util::fatal("cannot open --out file '%s'", outPath.c_str());
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"schema\": \"rebudget.serve_bench.v1\",\n");
    std::fprintf(out, "  \"shards\": %llu,\n",
                 static_cast<unsigned long long>(config.shards));
    std::fprintf(out, "  \"jobs\": %u,\n", config.jobs);
    std::fprintf(out, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(out, "  \"read_seconds\": %.3f,\n", readSeconds);
    std::fprintf(out, "  \"capacity\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const CapacityResult &r = rows[i];
        std::fprintf(out, "    {\"markets\": %zu, \"players\": %zu, "
                          "\"readers\": %zu,\n",
                     r.spec.markets, r.spec.players, r.spec.readers);
        std::fprintf(out, "     \"reads\": %llu, "
                          "\"reads_per_sec\": %.2f,\n",
                     static_cast<unsigned long long>(r.reads),
                     static_cast<double>(r.reads) / r.elapsed);
        std::fprintf(out, "     \"read_p50_ns\": %.1f, "
                          "\"read_p99_ns\": %.1f, "
                          "\"read_max_ns\": %.1f,\n",
                     r.p50Ns, r.p99Ns, r.maxNs);
        std::fprintf(out, "     \"ticks\": %llu, "
                          "\"ticks_per_sec\": %.2f,\n",
                     static_cast<unsigned long long>(r.ticks),
                     static_cast<double>(r.ticks) / r.elapsed);
        std::fprintf(out, "     \"read_errors\": %llu, "
                          "\"torn_reads\": %llu, "
                          "\"steady_tick_allocs\": %lld, "
                          "\"cold_solves\": %lld, "
                          "\"frozen_markets\": %llu}%s\n",
                     static_cast<unsigned long long>(r.readErrors),
                     static_cast<unsigned long long>(r.tornReads),
                     static_cast<long long>(r.steadyAllocs),
                     static_cast<long long>(r.coldSolves),
                     static_cast<unsigned long long>(r.frozenMarkets),
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    std::fprintf(out, "}\n");
    if (out != stdout)
        std::fclose(out);
    return 0;
}

// ---------------------------------------------------------------------
// Part C: durability cost + recovery fidelity.
// ---------------------------------------------------------------------

/** Total on-disk size of every shard-*.snap in @p dir (informational;
 * the gate is on counters and digests, not bytes). */
std::uint64_t
snapshotBytes(const std::string &dir, std::size_t shards)
{
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        std::error_code ec;
        const auto size = std::filesystem::file_size(
            dir + "/shard-" + std::to_string(s) + ".snap", ec);
        if (!ec)
            total += size;
    }
    return total;
}

int
runRecoveryBench(const serve::ServeConfig &base, std::size_t markets,
                 std::size_t players, std::uint64_t seed,
                 std::uint64_t warmup, std::uint64_t window,
                 const std::string &outPath)
{
    serve::ServeConfig config = base;
    config.allocCounter = &threadAllocCount;
    // Same headroom rationale as the capacity sweep: a rare hard
    // demand draw that trips the iteration fail-safe would warn (and
    // allocate) inside the tick body, failing the zero-allocation gate
    // for a solver-tuning reason rather than a durability one.
    if (config.market.maxIterations < 2000)
        config.market.maxIterations = 2000;
    serve::ServerCore core(config);

    char tmpl[] = "/tmp/rebudget_perf_recovery_XXXXXX";
    const char *stateDir = ::mkdtemp(tmpl);
    if (stateDir == nullptr)
        util::fatal("recovery: mkdtemp failed");
    serve::PersistConfig persistConfig;
    persistConfig.dir = stateDir;
    // The daemon's default fsync cadence (data on, journal off) is a
    // property of the disk, not the code under test; the bench turns
    // data fsync off so the measured windows compare encode+append
    // cost, not device flush latency.
    persistConfig.fsyncData = false;
    serve::PersistManager persist(persistConfig, core.shardCount());
    if (!persist.init().ok())
        util::fatal("recovery: cannot create state dir %s", stateDir);

    for (std::size_t m = 0; m < markets; ++m) {
        const std::vector<std::string> names = eval::syntheticAppNames(
            players,
            util::mix64(seed ^ (0x5e + static_cast<std::uint64_t>(m))));
        serve::CreateMarket req;
        req.market = m;
        for (std::size_t t = 0; t < names.size(); ++t)
            req.tenants.push_back({t, names[t]});
        const serve::Response resp = core.apply(req);
        if (const auto *err = std::get_if<serve::ErrorReply>(&resp))
            util::fatal("recovery: create market %zu: %s", m,
                        err->message.c_str());
    }
    auto perturb = [&](std::uint64_t tick) {
        for (std::size_t m = 0; m < markets; ++m) {
            const std::uint64_t key =
                util::mix64(seed ^ (tick * 1315423911ull) ^ m);
            serve::SubmitDemand req;
            req.market = m;
            req.tenant = key % players;
            req.weight = 0.5 + static_cast<double>(key % 16) / 8.0;
            const serve::Response resp = core.apply(req);
            if (std::holds_alternative<serve::ErrorReply>(resp))
                util::fatal("recovery: demand rejected on market %zu", m);
        }
    };
    std::uint64_t tick = 0;
    for (std::uint64_t t = 0; t < warmup; ++t) {
        perturb(tick++);
        core.tick();
    }
    util::SolverStats afterWarmup;
    for (std::size_t s = 0; s < core.shardCount(); ++s)
        afterWarmup.merge(core.shard(s).solverStats());

    // Baseline snapshot (timed): also opens the per-shard journals,
    // exactly as the daemon does before attaching the journal sink.
    const double snapStart = util::monotonicSeconds();
    if (const auto st = persist.snapshotAll(core); !st.ok())
        util::fatal("recovery: snapshot failed: %s",
                    st.message().c_str());
    const double snapshotSeconds =
        util::monotonicSeconds() - snapStart;
    const std::uint64_t snapBytes =
        snapshotBytes(stateDir, core.shardCount());

    // Plain window: identical demand churn, no journal attached.
    const double plainStart = util::monotonicSeconds();
    for (std::uint64_t t = 0; t < window; ++t) {
        perturb(tick++);
        core.tick();
    }
    const double plainSeconds = util::monotonicSeconds() - plainStart;

    // Journaled window: same shape of work with the write-ahead sink
    // attached.  The ratio of the two windows is the measured cost of
    // durability on the serving path.
    core.setJournal(&persist);
    const double journaledStart = util::monotonicSeconds();
    for (std::uint64_t t = 0; t < window; ++t) {
        perturb(tick++);
        core.tick();
    }
    const double journaledSeconds =
        util::monotonicSeconds() - journaledStart;

    // Rotate, then write a journal-only tail: one demand per market
    // that no snapshot covers.  Dropping `core` unrecovered from here
    // models kill -9; instead we keep it as the fidelity reference.
    if (const auto st = persist.snapshotAll(core); !st.ok())
        util::fatal("recovery: snapshot failed: %s",
                    st.message().c_str());
    perturb(tick++);
    core.setJournal(nullptr);
    persist.syncJournals();
    const std::uint64_t journalOps = persist.journaledOps();

    // Recover into a fresh core (timed) and hold it to the contract:
    // published state matches bit for bit, and the first post-restart
    // tick -- warm chains re-seeded from the snapshot, the journaled
    // tail replayed -- matches the survivor's too.
    // Identical solver config (same iteration headroom) so the
    // post-restart tick is comparable bit for bit.
    serve::ServerCore recovered(config);
    serve::PersistManager reader(persistConfig, recovered.shardCount());
    if (!reader.init().ok())
        util::fatal("recovery: cannot reopen state dir %s", stateDir);
    const double recoverStart = util::monotonicSeconds();
    const serve::RecoveryReport report = reader.recover(recovered);
    const double recoverSeconds =
        util::monotonicSeconds() - recoverStart;

    int digestMatch = 1;
    if (recovered.digest() != core.digest()) {
        digestMatch = 0;
        util::fatal("recovery: recovered digest %016llx != live "
                    "%016llx",
                    static_cast<unsigned long long>(recovered.digest()),
                    static_cast<unsigned long long>(core.digest()));
    }
    core.tick();
    recovered.tick();
    if (recovered.digest() != core.digest()) {
        digestMatch = 0;
        util::fatal("recovery: first post-restart tick diverged "
                    "(%016llx != %016llx)",
                    static_cast<unsigned long long>(recovered.digest()),
                    static_cast<unsigned long long>(core.digest()));
    }

    // The Part A contract must survive with journaling attached: the
    // tick body never touches the heap (journal appends live on the
    // apply path), and every measured solve reuses the warm chain.
    std::int64_t steadyAllocs = 0;
    util::SolverStats total;
    for (std::size_t s = 0; s < core.shardCount(); ++s) {
        total.merge(core.shard(s).solverStats());
        steadyAllocs += core.shard(s).counters().steadyTickAllocs;
    }
    if (steadyAllocs != 0)
        util::fatal("recovery: %lld steady-tick allocations with "
                    "journaling attached",
                    static_cast<long long>(steadyAllocs));
    const std::int64_t coldSolves =
        total.coldStartedSolves - afterWarmup.coldStartedSolves;
    if (coldSolves != 0)
        util::fatal("recovery: %lld cold solves in the measured window",
                    static_cast<long long>(coldSolves));

    std::error_code ec;
    std::filesystem::remove_all(stateDir, ec);

    FILE *out = stdout;
    if (!outPath.empty()) {
        out = std::fopen(outPath.c_str(), "w");
        if (out == nullptr)
            util::fatal("cannot open --out file '%s'", outPath.c_str());
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"schema\": \"rebudget.serve_recovery.v1\",\n");
    std::fprintf(out, "  \"shards\": %zu,\n", core.shardCount());
    std::fprintf(out, "  \"markets\": %zu,\n", markets);
    std::fprintf(out, "  \"players_per_market\": %zu,\n", players);
    std::fprintf(out, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(out, "  \"warmup_ticks\": %llu,\n",
                 static_cast<unsigned long long>(warmup));
    std::fprintf(out, "  \"window_ticks\": %llu,\n",
                 static_cast<unsigned long long>(window));
    std::fprintf(out, "  \"snapshot_ms\": %.3f,\n",
                 snapshotSeconds * 1e3);
    std::fprintf(out, "  \"snapshot_bytes\": %llu,\n",
                 static_cast<unsigned long long>(snapBytes));
    std::fprintf(out, "  \"plain_window_ms\": %.3f,\n",
                 plainSeconds * 1e3);
    std::fprintf(out, "  \"journaled_window_ms\": %.3f,\n",
                 journaledSeconds * 1e3);
    std::fprintf(out, "  \"journal_overhead_pct\": %.2f,\n",
                 plainSeconds > 0.0
                     ? (journaledSeconds / plainSeconds - 1.0) * 100.0
                     : 0.0);
    std::fprintf(out, "  \"journal_ops\": %llu,\n",
                 static_cast<unsigned long long>(journalOps));
    std::fprintf(out, "  \"recover_ms\": %.3f,\n",
                 recoverSeconds * 1e3);
    std::fprintf(out, "  \"snapshots_loaded\": %llu,\n",
                 static_cast<unsigned long long>(
                     report.summary.snapshotsLoaded));
    std::fprintf(out, "  \"markets_recovered\": %llu,\n",
                 static_cast<unsigned long long>(
                     report.summary.marketsRestored));
    std::fprintf(out, "  \"ops_replayed\": %llu,\n",
                 static_cast<unsigned long long>(
                     report.summary.opsReplayed));
    std::fprintf(out, "  \"ops_skipped\": %llu,\n",
                 static_cast<unsigned long long>(
                     report.summary.opsSkipped));
    std::fprintf(out, "  \"torn_tails\": %llu,\n",
                 static_cast<unsigned long long>(
                     report.summary.journalTornTails));
    std::fprintf(out, "  \"snapshots_corrupt\": %llu,\n",
                 static_cast<unsigned long long>(
                     report.summary.snapshotsCorrupt));
    std::fprintf(out, "  \"digest_match\": %d,\n", digestMatch);
    std::fprintf(out, "  \"steady_tick_allocs\": %lld,\n",
                 static_cast<long long>(steadyAllocs));
    std::fprintf(out, "  \"cold_solves\": %lld\n",
                 static_cast<long long>(coldSolves));
    std::fprintf(out, "}\n");
    if (out != stdout)
        std::fclose(out);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t markets = 64;
    std::size_t players = 8;
    std::uint64_t warmup = 5;
    std::uint64_t measured = 40;
    std::uint64_t seed = 42;
    bool capacity = false;
    bool capacitySmoke = false;
    bool recovery = false;
    double readSeconds = 0.0; // 0 = mode default (1.0 full, 0.25 smoke)
    std::string outPath;
    serve::ServeConfig config;
    config.shards = 8;
    // Randomly drawn 8-app rosters can need more tatonnement sweeps
    // than the 30-iteration default before the price fluctuation
    // settles; a fail-safe trip would (correctly) fail the bench's
    // zero-allocation gate via the warning path, so give the solver
    // the headroom that a long-running daemon deployment would.
    config.market.maxIterations = 200;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                util::fatal("%s requires a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--markets")
            markets = parseFlag("--markets", value(), 1u << 16);
        else if (arg == "--players")
            players = parseFlag("--players", value(), 1u << 10);
        else if (arg == "--shards")
            config.shards = parseFlag("--shards", value(), 1u << 10);
        else if (arg == "--jobs")
            config.jobs = static_cast<unsigned>(
                parseFlag("--jobs", value(), 1u << 12));
        else if (arg == "--warmup")
            warmup = parseFlag("--warmup", value(), 1u << 20);
        else if (arg == "--ticks")
            measured = parseFlag("--ticks", value(), 1u << 20);
        else if (arg == "--seed")
            seed = parseFlag("--seed", value(), ~0ull);
        else if (arg == "--smoke") {
            markets = 64;
            players = 8;
            warmup = 3;
            measured = 8;
        } else if (arg == "--capacity") {
            capacity = true;
        } else if (arg == "--capacity-smoke") {
            capacity = true;
            capacitySmoke = true;
        } else if (arg == "--recovery") {
            recovery = true;
        } else if (arg == "--recovery-smoke") {
            // The Part A roster (64 markets x 8 catalog apps, seed-
            // keyed) is a known-clean draw: every market converges
            // inside the iteration budget, so the zero-allocation gate
            // measures journaling, not solver luck.
            recovery = true;
            markets = 64;
            players = 8;
            warmup = 3;
            measured = 8;
        } else if (arg == "--read-seconds") {
            const auto parsed = util::parseDouble(value());
            if (!parsed.ok() || parsed.value() <= 0.0)
                util::fatal("--read-seconds requires a positive number");
            readSeconds = parsed.value();
        } else if (arg == "--out") {
            outPath = value();
        } else {
            util::fatal("unknown argument '%s'", arg.c_str());
        }
    }
    if (markets == 0 || players == 0 || measured == 0)
        util::fatal("--markets, --players and --ticks must be positive");

    if (capacity) {
        if (readSeconds == 0.0)
            readSeconds = capacitySmoke ? 0.25 : 1.0;
        return runCapacitySweep(config, seed, warmup == 0 ? 5 : warmup,
                                readSeconds, capacitySmoke, outPath);
    }
    if (recovery)
        return runRecoveryBench(config, markets, players, seed, warmup,
                                measured, outPath);

    config.allocCounter = &threadAllocCount;
    serve::ServerCore core(config);

    // Populate: market m hosts `players` catalog apps drawn from a
    // stream keyed by (seed, m), so the roster is machine- and
    // job-count-independent.
    for (std::size_t m = 0; m < markets; ++m) {
        const std::vector<std::string> names = eval::syntheticAppNames(
            players, util::mix64(seed ^ (0x5e
                                         + static_cast<std::uint64_t>(m))));
        serve::CreateMarket req;
        req.market = m;
        for (std::size_t t = 0; t < names.size(); ++t)
            req.tenants.push_back({t, names[t]});
        const serve::Response resp = core.apply(req);
        if (const auto *err = std::get_if<serve::ErrorReply>(&resp))
            util::fatal("create market %zu: %s", m, err->message.c_str());
    }

    // Deterministic demand churn: one tenant per market re-weights
    // each tick.  Budgets shift but the roster (and thus every buffer
    // shape) is fixed, so the warm chain stays intact.
    auto perturb = [&](std::uint64_t tick) {
        for (std::size_t m = 0; m < markets; ++m) {
            const std::uint64_t key =
                util::mix64(seed ^ (tick * 1315423911ull) ^ m);
            serve::SubmitDemand req;
            req.market = m;
            req.tenant = key % players;
            req.weight = 0.5 + static_cast<double>(key % 16) / 8.0;
            const serve::Response resp = core.apply(req);
            if (std::holds_alternative<serve::ErrorReply>(resp))
                util::fatal("demand update rejected on market %zu", m);
        }
    };

    for (std::uint64_t t = 0; t < warmup; ++t) {
        perturb(t);
        core.tick();
    }

    util::SolverStats after_warmup;
    for (std::size_t s = 0; s < core.shardCount(); ++s)
        after_warmup.merge(core.shard(s).solverStats());

    const double start = util::monotonicSeconds();
    for (std::uint64_t t = 0; t < measured; ++t) {
        perturb(warmup + t);
        core.tick();
    }
    const double elapsed = util::monotonicSeconds() - start;

    util::SolverStats total;
    std::int64_t steady_allocs = 0;
    std::int64_t steady_ticks = 0;
    for (std::size_t s = 0; s < core.shardCount(); ++s) {
        total.merge(core.shard(s).solverStats());
        const serve::ShardCounters c = core.shard(s).counters();
        steady_allocs += c.steadyTickAllocs;
        steady_ticks += c.steadyTicks;
        if (c.steadyTickAllocs != 0) {
            util::fatal("shard %zu allocated %lld times on steady "
                        "ticks; the serving path must be allocation-"
                        "free after warm-up",
                        s,
                        static_cast<long long>(c.steadyTickAllocs));
        }
    }
    const std::int64_t cold_measured =
        total.coldStartedSolves - after_warmup.coldStartedSolves;
    if (cold_measured != 0) {
        util::fatal("%lld cold-started solves during the measured "
                    "window; every steady-state solve must reuse the "
                    "warm chain",
                    static_cast<long long>(cold_measured));
    }
    const std::int64_t solves_measured =
        total.equilibriumSolves - after_warmup.equilibriumSolves;

    std::printf("{\n");
    std::printf("  \"schema\": \"rebudget.perf_serve.v1\",\n");
    std::printf("  \"shards\": %zu,\n", core.shardCount());
    std::printf("  \"markets\": %zu,\n", markets);
    std::printf("  \"players_per_market\": %zu,\n", players);
    std::printf("  \"warmup_ticks\": %llu,\n",
                static_cast<unsigned long long>(warmup));
    std::printf("  \"measured_ticks\": %llu,\n",
                static_cast<unsigned long long>(measured));
    std::printf("  \"elapsed_seconds\": %.6f,\n", elapsed);
    std::printf("  \"ticks_per_sec\": %.2f,\n",
                static_cast<double>(measured) / elapsed);
    std::printf("  \"solves_per_sec\": %.2f,\n",
                static_cast<double>(solves_measured) / elapsed);
    std::printf("  \"steady_ticks\": %lld,\n",
                static_cast<long long>(steady_ticks));
    std::printf("  \"steady_tick_allocs\": %lld,\n",
                static_cast<long long>(steady_allocs));
    std::printf("  \"warm_started_solves\": %lld,\n",
                static_cast<long long>(total.warmStartedSolves));
    std::printf("  \"cold_started_solves\": %lld,\n",
                static_cast<long long>(total.coldStartedSolves));
    std::printf("  \"digest\": \"%016llx\"\n",
                static_cast<unsigned long long>(core.digest()));
    std::printf("}\n");
    return 0;
}
