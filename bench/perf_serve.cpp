/**
 * perf_serve -- closed-loop throughput bench for the serving stack.
 *
 * Stands up an in-process serve::ServerCore (the exact engine behind
 * rebudgetd, no sockets), populates it with --markets independent
 * catalog-app markets spread over --shards shards, then drives epoch
 * ticks with deterministic per-tick demand perturbations and measures
 * sustained tick and solve throughput.
 *
 * Like bench/perf_equilibrium, this binary overrides operator new --
 * here bumping a THREAD-LOCAL counter wired into
 * serve::ServeConfig::allocCounter, so each shard samples exactly the
 * allocations made by its own tick body (which runs on a single
 * thread-pool worker).  After the warm-up ticks the bench enforces the
 * serving-path contract and exits fatally on violation:
 *
 *  - steady_tick_allocs == 0 on every shard (warm-start chains plus
 *    workspace reuse mean the tick path never touches the heap), and
 *  - zero cold-started solves during the measured window (every market
 *    re-solves from its previous equilibrium).
 *
 * Output: one rebudget.perf_serve.v1 JSON object on stdout.
 */

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "rebudget/eval/bundle_runner.h"
#include "rebudget/serve/server_core.h"
#include "rebudget/util/arg_parse.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/rng.h"
#include "rebudget/util/solver_stats.h"

// ---------------------------------------------------------------------
// Thread-local heap allocation counter.  Each serve::Shard::tick runs
// on one thread and samples the hook before/after, so the delta it
// sees is precisely its own tick body's allocations -- concurrent
// shards on other workers never pollute it.
// ---------------------------------------------------------------------

namespace {
thread_local std::int64_t t_heap_allocs = 0;

std::int64_t
threadAllocCount()
{
    return t_heap_allocs;
}

void *
countedAlloc(std::size_t size)
{
    t_heap_allocs += 1;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    t_heap_allocs += 1;
    if (align < sizeof(void *))
        align = sizeof(void *);
    void *p = nullptr;
    if (posix_memalign(&p, align, size ? size : 1) == 0)
        return p;
    throw std::bad_alloc();
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

using namespace rebudget;

namespace {

std::uint64_t
parseFlag(const char *flag, const char *value, std::uint64_t max)
{
    const auto parsed = util::parseUnsigned(value, max);
    if (!parsed.ok())
        util::fatal("%s: %s", flag, parsed.status().message().c_str());
    return parsed.value();
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t markets = 64;
    std::size_t players = 8;
    std::uint64_t warmup = 5;
    std::uint64_t measured = 40;
    std::uint64_t seed = 42;
    serve::ServeConfig config;
    config.shards = 8;
    // Randomly drawn 8-app rosters can need more tatonnement sweeps
    // than the 30-iteration default before the price fluctuation
    // settles; a fail-safe trip would (correctly) fail the bench's
    // zero-allocation gate via the warning path, so give the solver
    // the headroom that a long-running daemon deployment would.
    config.market.maxIterations = 200;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                util::fatal("%s requires a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--markets")
            markets = parseFlag("--markets", value(), 1u << 16);
        else if (arg == "--players")
            players = parseFlag("--players", value(), 1u << 10);
        else if (arg == "--shards")
            config.shards = parseFlag("--shards", value(), 1u << 10);
        else if (arg == "--jobs")
            config.jobs = static_cast<unsigned>(
                parseFlag("--jobs", value(), 1u << 12));
        else if (arg == "--warmup")
            warmup = parseFlag("--warmup", value(), 1u << 20);
        else if (arg == "--ticks")
            measured = parseFlag("--ticks", value(), 1u << 20);
        else if (arg == "--seed")
            seed = parseFlag("--seed", value(), ~0ull);
        else if (arg == "--smoke") {
            markets = 64;
            players = 8;
            warmup = 3;
            measured = 8;
        } else {
            util::fatal("unknown argument '%s'", arg.c_str());
        }
    }
    if (markets == 0 || players == 0 || measured == 0)
        util::fatal("--markets, --players and --ticks must be positive");

    config.allocCounter = &threadAllocCount;
    serve::ServerCore core(config);

    // Populate: market m hosts `players` catalog apps drawn from a
    // stream keyed by (seed, m), so the roster is machine- and
    // job-count-independent.
    for (std::size_t m = 0; m < markets; ++m) {
        const std::vector<std::string> names = eval::syntheticAppNames(
            players, util::mix64(seed ^ (0x5e
                                         + static_cast<std::uint64_t>(m))));
        serve::CreateMarket req;
        req.market = m;
        for (std::size_t t = 0; t < names.size(); ++t)
            req.tenants.push_back({t, names[t]});
        const serve::Response resp = core.apply(req);
        if (const auto *err = std::get_if<serve::ErrorReply>(&resp))
            util::fatal("create market %zu: %s", m, err->message.c_str());
    }

    // Deterministic demand churn: one tenant per market re-weights
    // each tick.  Budgets shift but the roster (and thus every buffer
    // shape) is fixed, so the warm chain stays intact.
    auto perturb = [&](std::uint64_t tick) {
        for (std::size_t m = 0; m < markets; ++m) {
            const std::uint64_t key =
                util::mix64(seed ^ (tick * 1315423911ull) ^ m);
            serve::SubmitDemand req;
            req.market = m;
            req.tenant = key % players;
            req.weight = 0.5 + static_cast<double>(key % 16) / 8.0;
            const serve::Response resp = core.apply(req);
            if (std::holds_alternative<serve::ErrorReply>(resp))
                util::fatal("demand update rejected on market %zu", m);
        }
    };

    for (std::uint64_t t = 0; t < warmup; ++t) {
        perturb(t);
        core.tick();
    }

    util::SolverStats after_warmup;
    for (std::size_t s = 0; s < core.shardCount(); ++s)
        after_warmup.merge(core.shard(s).solverStats());

    const double start = util::monotonicSeconds();
    for (std::uint64_t t = 0; t < measured; ++t) {
        perturb(warmup + t);
        core.tick();
    }
    const double elapsed = util::monotonicSeconds() - start;

    util::SolverStats total;
    std::int64_t steady_allocs = 0;
    std::int64_t steady_ticks = 0;
    for (std::size_t s = 0; s < core.shardCount(); ++s) {
        total.merge(core.shard(s).solverStats());
        const serve::ShardCounters c = core.shard(s).counters();
        steady_allocs += c.steadyTickAllocs;
        steady_ticks += c.steadyTicks;
        if (c.steadyTickAllocs != 0) {
            util::fatal("shard %zu allocated %lld times on steady "
                        "ticks; the serving path must be allocation-"
                        "free after warm-up",
                        s,
                        static_cast<long long>(c.steadyTickAllocs));
        }
    }
    const std::int64_t cold_measured =
        total.coldStartedSolves - after_warmup.coldStartedSolves;
    if (cold_measured != 0) {
        util::fatal("%lld cold-started solves during the measured "
                    "window; every steady-state solve must reuse the "
                    "warm chain",
                    static_cast<long long>(cold_measured));
    }
    const std::int64_t solves_measured =
        total.equilibriumSolves - after_warmup.equilibriumSolves;

    std::printf("{\n");
    std::printf("  \"schema\": \"rebudget.perf_serve.v1\",\n");
    std::printf("  \"shards\": %zu,\n", core.shardCount());
    std::printf("  \"markets\": %zu,\n", markets);
    std::printf("  \"players_per_market\": %zu,\n", players);
    std::printf("  \"warmup_ticks\": %llu,\n",
                static_cast<unsigned long long>(warmup));
    std::printf("  \"measured_ticks\": %llu,\n",
                static_cast<unsigned long long>(measured));
    std::printf("  \"elapsed_seconds\": %.6f,\n", elapsed);
    std::printf("  \"ticks_per_sec\": %.2f,\n",
                static_cast<double>(measured) / elapsed);
    std::printf("  \"solves_per_sec\": %.2f,\n",
                static_cast<double>(solves_measured) / elapsed);
    std::printf("  \"steady_ticks\": %lld,\n",
                static_cast<long long>(steady_ticks));
    std::printf("  \"steady_tick_allocs\": %lld,\n",
                static_cast<long long>(steady_allocs));
    std::printf("  \"warm_started_solves\": %lld,\n",
                static_cast<long long>(total.warmStartedSolves));
    std::printf("  \"cold_started_solves\": %lld,\n",
                static_cast<long long>(total.coldStartedSolves));
    std::printf("  \"digest\": \"%016llx\"\n",
                static_cast<unsigned long long>(core.digest()));
    std::printf("}\n");
    return 0;
}
