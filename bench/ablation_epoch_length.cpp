/**
 * @file
 * Ablation: reallocation epoch length (paper Section 4.3).
 *
 * The paper reallocates every 1 ms, piggybacked on the APIC timer, to
 * track phase changes.  This ablation runs the phased-application
 * scenario with the reallocation epoch stretched to 2x/4x/8x the
 * application's phase-change granularity (modeled by scaling the
 * references executed per epoch while the phase length in references
 * stays fixed): slower reallocation reacts late to each phase and loses
 * efficiency, quantifying why a fine epoch matters.
 *
 * The four epoch-length simulations are independent, so they run on
 * util::parallelFor (--jobs N / REBUDGET_JOBS); each simulation writes
 * only its own result slot, so output is byte-identical at any job
 * count.
 */

#include <iostream>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/sim/epoch_sim.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/stats.h"
#include "rebudget/util/table.h"
#include "rebudget/util/thread_pool.h"

using namespace rebudget;

namespace {

constexpr uint64_t kPhaseAccesses = 24000;

std::vector<app::AppParams>
bundle()
{
    std::vector<app::AppParams> apps;
    app::AppParams phased;
    phased.name = "phased";
    phased.pattern = app::MemPattern::Zipf;
    phased.workingSetBytes = 1024 * 1024;
    phased.zipfAlpha = 0.9;
    phased.memPerInstr = 0.12;
    phased.computeCpi = 0.5;
    phased.activity = 0.6;
    phased.phaseAccesses = kPhaseAccesses;
    phased.phasePattern = app::MemPattern::Stream;
    phased.phaseFootprintBytes = 16ull * 1024 * 1024;
    // Two phased tenants make the effect symmetric; the rest are
    // static contenders.
    apps.push_back(phased);
    phased.name = "phased2";
    apps.push_back(phased);
    for (const char *nm : {"vpr", "swim", "apsi", "hmmer", "sixtrack",
                           "milc"}) {
        apps.push_back(app::findCatalogProfile(nm).params);
    }
    return apps;
}

} // namespace

int
main(int argc, char **argv)
{
    util::printBanner(std::cout,
                      "Ablation: reallocation epoch length vs phase "
                      "tracking (8 cores)");
    util::TablePrinter t({"epoch_accesses", "epochs/phase",
                          "mean_efficiency", "eff_95%CI"});
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    const std::vector<uint64_t> epoch_lengths = {4000, 8000, 24000,
                                                 48000};
    const auto apps = bundle();

    std::vector<util::ConfidenceInterval> cis(epoch_lengths.size());
    const auto jobs_arg = eval::parseJobsArg(argc, argv);
    if (!jobs_arg.ok())
        util::fatal("%s", jobs_arg.status().message().c_str());
    const unsigned jobs = jobs_arg.value();
    util::parallelFor(jobs, epoch_lengths.size(), [&](size_t i) {
        const uint64_t epoch_accesses = epoch_lengths[i];
        sim::EpochSimConfig cfg = sim::EpochSimConfig::forCores(8);
        cfg.cmp.accessesPerEpochPerCore = epoch_accesses;
        // Hold the *work* simulated constant across rows so every row
        // sees the same number of phase changes.
        const uint64_t total_accesses = 384000;
        cfg.epochs = static_cast<uint32_t>(total_accesses /
                                           epoch_accesses);
        cfg.warmupEpochs = 2;
        sim::EpochSimulator simulator(cfg, apps, rb40);
        const sim::SimResult r = simulator.run();
        std::vector<double> eff;
        for (const auto &rec : r.epochs)
            eff.push_back(rec.efficiency);
        cis[i] = util::bootstrapMeanCI(eff);
    });

    for (size_t i = 0; i < epoch_lengths.size(); ++i) {
        const uint64_t epoch_accesses = epoch_lengths[i];
        const auto &ci = cis[i];
        t.addRow({std::to_string(epoch_accesses),
                  util::formatDouble(static_cast<double>(kPhaseAccesses) /
                                         epoch_accesses, 1),
                  util::formatDouble(ci.mean, 3),
                  "[" + util::formatDouble(ci.lo, 3) + ", " +
                      util::formatDouble(ci.hi, 3) + "]"});
    }
    t.print(std::cout);
    std::cout << "\nWith several reallocations per phase the market "
                 "tracks the working set;\nonce the epoch approaches "
                 "the phase length every allocation is stale for\nmost "
                 "of a phase, and efficiency decays -- the Section 4.3 "
                 "rationale for the\n1 ms epoch.\n";
    return 0;
}
