/**
 * @file
 * Figure 3: per-application marginal utility of money (lambda_i) in the
 * 8-core BBPC study bundle under EqualBudget, ReBudget-20 and
 * ReBudget-40, normalized to the bundle maximum; plus the resulting
 * MUR and the players' final budgets (Section 6.1.1/6.1.3 narrative).
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "rebudget/core/baselines.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/market/metrics.h"
#include "rebudget/util/table.h"

using namespace rebudget;

int
main()
{
    const std::vector<std::string> names = {"apsi", "apsi", "swim",
                                            "swim", "mcf",  "mcf",
                                            "hmmer", "sixtrack"};
    eval::BundleProblem bp = eval::makeBundleProblem(names);

    struct Row
    {
        std::vector<double> lambdas_norm;
        std::vector<double> budgets;
        double mur = 0.0;
    };
    std::map<std::string, Row> rows;

    auto run = [&](const core::Allocator &mechanism) {
        const auto out = mechanism.allocate(bp.problem);
        Row row;
        const double max_l =
            *std::max_element(out.lambdas.begin(), out.lambdas.end());
        for (double l : out.lambdas)
            row.lambdas_norm.push_back(max_l > 0 ? l / max_l : 0.0);
        row.budgets = out.budgets;
        row.mur = market::marketUtilityRange(out.lambdas).value();
        rows[out.mechanism] = std::move(row);
    };
    run(core::EqualBudgetAllocator());
    run(core::ReBudgetAllocator::withStep(20));
    run(core::ReBudgetAllocator::withStep(40));

    util::printBanner(std::cout,
                      "Figure 3: normalized lambda_i per app, BBPC "
                      "bundle (8 cores)");
    util::TablePrinter table({"app", "EqualBudget", "ReBudget-20",
                              "ReBudget-40"});
    // The paper shows one copy of each distinct app.
    std::vector<size_t> shown = {0, 2, 4, 6, 7}; // apsi swim mcf hmmer sixtrack
    for (size_t i : shown) {
        table.addRow(
            {names[i],
             util::formatDouble(rows["EqualBudget"].lambdas_norm[i], 3),
             util::formatDouble(rows["ReBudget-20"].lambdas_norm[i], 3),
             util::formatDouble(rows["ReBudget-40"].lambdas_norm[i],
                                3)});
    }
    table.addRow({"MUR", util::formatDouble(rows["EqualBudget"].mur, 3),
                  util::formatDouble(rows["ReBudget-20"].mur, 3),
                  util::formatDouble(rows["ReBudget-40"].mur, 3)});
    table.print(std::cout);

    util::printBanner(std::cout, "Final budgets per app");
    util::TablePrinter budgets({"app", "EqualBudget", "ReBudget-20",
                                "ReBudget-40"});
    for (size_t i : shown) {
        budgets.addRow(
            {names[i],
             util::formatDouble(rows["EqualBudget"].budgets[i], 2),
             util::formatDouble(rows["ReBudget-20"].budgets[i], 2),
             util::formatDouble(rows["ReBudget-40"].budgets[i], 2)});
    }
    budgets.print(std::cout);

    std::cout << "\nPaper narrative: ReBudget cuts the over-budgeted "
                 "(lowest-lambda) apps;\ntheir lambda rises and MUR "
                 "moves toward 1.  The minimum budget under\n"
                 "ReBudget-20 is 61.25 and under ReBudget-40 about 20 "
                 "(geometric cut series).\n";
    return 0;
}
