/**
 * @file
 * Figure 5: efficiency and envy-freeness from the detailed
 * execution-driven simulation (phase 2, Section 6.3) -- one randomly
 * selected bundle per category on the 64-core machine, with utilities
 * monitored online (UMON + power model), Talus + Futility Scaling
 * enforcing cache targets, and RAPL caps enforcing power.
 *
 * Efficiency is reported normalized to the MaxEfficiency outcome under
 * the same simulation, as in the figure.
 *
 * The 36 (bundle x mechanism) simulations are independent, so they run
 * on util::parallelFor (--jobs N / REBUDGET_JOBS); every simulation
 * writes only its own result slot, so output is byte-identical at any
 * job count.
 */

#include <iostream>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/core/baselines.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/sim/epoch_sim.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/table.h"
#include "rebudget/util/thread_pool.h"
#include "rebudget/workloads/bundles.h"

using namespace rebudget;

namespace {

sim::EpochSimConfig
machine()
{
    sim::EpochSimConfig cfg = sim::EpochSimConfig::forCores(64);
    cfg.epochs = 10;
    cfg.warmupEpochs = 4;
    cfg.cmp.accessesPerEpochPerCore = 8000;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto catalog = workloads::classifyCatalog();

    const core::EqualShareAllocator equal_share;
    const core::EqualBudgetAllocator equal_budget;
    const core::BalancedBudgetAllocator balanced;
    const auto rb20 = core::ReBudgetAllocator::withStep(20);
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    const core::MaxEfficiencyAllocator max_eff;
    const std::vector<const core::Allocator *> mechanisms = {
        &equal_share, &equal_budget, &balanced,
        &rb20,        &rb40,         &max_eff};

    // One bundle per category (the paper randomly selects one; we take
    // the first of each category's deterministic stream).
    struct Task
    {
        std::string bundle;
        std::vector<app::AppParams> apps;
        const core::Allocator *mechanism = nullptr;
    };
    std::vector<Task> tasks;
    std::vector<std::string> bundle_names;
    for (const workloads::BundleCategory cat : workloads::kAllCategories) {
        const auto bundles =
            workloads::generateBundles(catalog, cat, 64, 1, 99);
        const auto &bundle = bundles.front();
        std::vector<app::AppParams> apps;
        for (const auto &nm : bundle.appNames)
            apps.push_back(app::findCatalogProfile(nm).params);
        bundle_names.push_back(bundle.name);
        for (const auto *m : mechanisms)
            tasks.push_back(Task{bundle.name, apps, m});
    }

    // Every (bundle, mechanism) simulation is independent and owns its
    // simulator; task i writes only results[i].
    struct TaskResult
    {
        double efficiency = 0.0;
        double envyFreeness = 0.0;
    };
    std::vector<TaskResult> results(tasks.size());
    const auto jobs_arg = eval::parseJobsArg(argc, argv);
    if (!jobs_arg.ok())
        util::fatal("%s", jobs_arg.status().message().c_str());
    const unsigned jobs = jobs_arg.value();
    util::parallelFor(jobs, tasks.size(), [&](size_t i) {
        sim::EpochSimulator simulator(machine(), tasks[i].apps,
                                      *tasks[i].mechanism);
        const sim::SimResult r = simulator.run();
        results[i] = TaskResult{r.meanEfficiency, r.envyFreeness};
    });

    util::TablePrinter eff_table({"bundle", "EqualShare", "EqualBudget",
                                  "Balanced", "ReBudget-20",
                                  "ReBudget-40"});
    util::TablePrinter ef_table({"bundle", "EqualShare", "EqualBudget",
                                 "Balanced", "ReBudget-20",
                                 "ReBudget-40", "MaxEfficiency"});
    const size_t n_mech = mechanisms.size();
    for (size_t b = 0; b < bundle_names.size(); ++b) {
        std::vector<double> eff;
        std::vector<double> ef;
        for (size_t m = 0; m < n_mech; ++m) {
            eff.push_back(results[b * n_mech + m].efficiency);
            ef.push_back(results[b * n_mech + m].envyFreeness);
        }
        const double opt = eff.back(); // MaxEfficiency is listed last
        eff_table.addRow({bundle_names[b],
                          util::formatDouble(eff[0] / opt, 3),
                          util::formatDouble(eff[1] / opt, 3),
                          util::formatDouble(eff[2] / opt, 3),
                          util::formatDouble(eff[3] / opt, 3),
                          util::formatDouble(eff[4] / opt, 3)});
        ef_table.addRow({bundle_names[b], util::formatDouble(ef[0], 3),
                         util::formatDouble(ef[1], 3),
                         util::formatDouble(ef[2], 3),
                         util::formatDouble(ef[3], 3),
                         util::formatDouble(ef[4], 3),
                         util::formatDouble(ef[5], 3)});
        std::cerr << "simulated " << bundle_names[b] << "\n";
    }

    util::printBanner(std::cout,
                      "Figure 5a: 64-core efficiency in detailed "
                      "simulation (normalized to MaxEfficiency)");
    eff_table.print(std::cout);
    util::printBanner(std::cout,
                      "Figure 5b: 64-core envy-freeness in detailed "
                      "simulation");
    ef_table.print(std::cout);
    std::cout << "\nConsistency with phase 1 (Section 6.3): ReBudget "
                 "improves efficiency over\nEqualBudget by sacrificing "
                 "fairness; more aggressive steps improve more;\n"
                 "EqualBudget is the most envy-free and MaxEfficiency "
                 "the least.\n\nNote: values above 1.0 are possible "
                 "because mechanisms optimize *monitored*\nutility "
                 "models (with online estimation error) and because "
                 "Futility-Scaling\npartitioning is work-conserving, "
                 "which strengthens the static EqualShare\nbaseline "
                 "relative to the paper's setup.\n";
    return 0;
}
