/**
 * @file
 * Figure 5: efficiency and envy-freeness from the detailed
 * execution-driven simulation (phase 2, Section 6.3) -- one randomly
 * selected bundle per category on the 64-core machine, with utilities
 * monitored online (UMON + power model), Talus + Futility Scaling
 * enforcing cache targets, and RAPL caps enforcing power.
 *
 * Efficiency is reported normalized to the MaxEfficiency outcome under
 * the same simulation, as in the figure.
 */

#include <iostream>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/core/baselines.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/sim/epoch_sim.h"
#include "rebudget/util/table.h"
#include "rebudget/workloads/bundles.h"

using namespace rebudget;

namespace {

sim::EpochSimConfig
machine()
{
    sim::EpochSimConfig cfg = sim::EpochSimConfig::forCores(64);
    cfg.epochs = 10;
    cfg.warmupEpochs = 4;
    cfg.cmp.accessesPerEpochPerCore = 8000;
    return cfg;
}

} // namespace

int
main()
{
    const auto catalog = workloads::classifyCatalog();

    const core::EqualShareAllocator equal_share;
    const core::EqualBudgetAllocator equal_budget;
    const core::BalancedBudgetAllocator balanced;
    const auto rb20 = core::ReBudgetAllocator::withStep(20);
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    const core::MaxEfficiencyAllocator max_eff;
    const std::vector<const core::Allocator *> mechanisms = {
        &equal_share, &equal_budget, &balanced,
        &rb20,        &rb40,         &max_eff};

    util::TablePrinter eff_table({"bundle", "EqualShare", "EqualBudget",
                                  "Balanced", "ReBudget-20",
                                  "ReBudget-40"});
    util::TablePrinter ef_table({"bundle", "EqualShare", "EqualBudget",
                                 "Balanced", "ReBudget-20",
                                 "ReBudget-40", "MaxEfficiency"});

    // One bundle per category (the paper randomly selects one; we take
    // the first of each category's deterministic stream).
    for (const workloads::BundleCategory cat : workloads::kAllCategories) {
        const auto bundles =
            workloads::generateBundles(catalog, cat, 64, 1, 99);
        const auto &bundle = bundles.front();
        std::vector<app::AppParams> apps;
        for (const auto &nm : bundle.appNames)
            apps.push_back(app::findCatalogProfile(nm).params);

        std::vector<double> eff;
        std::vector<double> ef;
        for (const auto *m : mechanisms) {
            sim::EpochSimulator simulator(machine(), apps, *m);
            const sim::SimResult r = simulator.run();
            eff.push_back(r.meanEfficiency);
            ef.push_back(r.envyFreeness);
        }
        const double opt = eff.back();
        eff_table.addRow({bundle.name,
                          util::formatDouble(eff[0] / opt, 3),
                          util::formatDouble(eff[1] / opt, 3),
                          util::formatDouble(eff[2] / opt, 3),
                          util::formatDouble(eff[3] / opt, 3),
                          util::formatDouble(eff[4] / opt, 3)});
        ef_table.addRow({bundle.name, util::formatDouble(ef[0], 3),
                         util::formatDouble(ef[1], 3),
                         util::formatDouble(ef[2], 3),
                         util::formatDouble(ef[3], 3),
                         util::formatDouble(ef[4], 3),
                         util::formatDouble(ef[5], 3)});
        std::cerr << "simulated " << bundle.name << "\n";
    }

    util::printBanner(std::cout,
                      "Figure 5a: 64-core efficiency in detailed "
                      "simulation (normalized to MaxEfficiency)");
    eff_table.print(std::cout);
    util::printBanner(std::cout,
                      "Figure 5b: 64-core envy-freeness in detailed "
                      "simulation");
    ef_table.print(std::cout);
    std::cout << "\nConsistency with phase 1 (Section 6.3): ReBudget "
                 "improves efficiency over\nEqualBudget by sacrificing "
                 "fairness; more aggressive steps improve more;\n"
                 "EqualBudget is the most envy-free and MaxEfficiency "
                 "the least.\n\nNote: values above 1.0 are possible "
                 "because mechanisms optimize *monitored*\nutility "
                 "models (with online estimation error) and because "
                 "Futility-Scaling\npartitioning is work-conserving, "
                 "which strengthens the static EqualShare\nbaseline "
                 "relative to the paper's setup.\n";
    return 0;
}
