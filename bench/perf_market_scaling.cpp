/**
 * @file
 * Microbenchmark: allocation-mechanism runtime vs. machine size.
 *
 * The paper's scalability argument (Section 1) is that the market is
 * largely distributed: each bidding-pricing round is O(N) player-local
 * optimizations, and rounds stay flat with N.  This benchmark measures
 * wall time per allocation for EqualBudget and ReBudget-40 from 8 to
 * 256 players, and for the centralized MaxEfficiency oracle (which
 * scales much worse and is infeasible at runtime).
 */

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "rebudget/core/baselines.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/market/utility_model.h"
#include "rebudget/util/rng.h"

using namespace rebudget;

namespace {

struct Problem
{
    std::vector<std::unique_ptr<market::PowerLawUtility>> models;
    core::AllocationProblem problem;
};

Problem
makeProblem(size_t players, uint64_t seed)
{
    util::Rng rng(seed);
    Problem p;
    p.problem.capacities = {players * 3.0, players * 9.0};
    for (size_t i = 0; i < players; ++i) {
        p.models.push_back(std::make_unique<market::PowerLawUtility>(
            std::vector<double>{rng.uniform(0.1, 1.0),
                                rng.uniform(0.1, 1.0)},
            std::vector<double>{rng.uniform(0.2, 1.0),
                                rng.uniform(0.2, 1.0)},
            p.problem.capacities));
        p.problem.models.push_back(p.models.back().get());
    }
    return p;
}

void
BM_EqualBudget(benchmark::State &state)
{
    const Problem p = makeProblem(state.range(0), 42);
    const core::EqualBudgetAllocator alloc;
    for (auto _ : state)
        benchmark::DoNotOptimize(alloc.allocate(p.problem));
    state.SetComplexityN(state.range(0));
}

void
BM_ReBudget40(benchmark::State &state)
{
    const Problem p = makeProblem(state.range(0), 42);
    const auto alloc = core::ReBudgetAllocator::withStep(40);
    for (auto _ : state)
        benchmark::DoNotOptimize(alloc.allocate(p.problem));
    state.SetComplexityN(state.range(0));
}

void
BM_MaxEfficiencyOracle(benchmark::State &state)
{
    const Problem p = makeProblem(state.range(0), 42);
    const core::MaxEfficiencyAllocator alloc;
    for (auto _ : state)
        benchmark::DoNotOptimize(alloc.allocate(p.problem));
    state.SetComplexityN(state.range(0));
}

} // namespace

BENCHMARK(BM_EqualBudget)->RangeMultiplier(2)->Range(8, 256)->Complexity();
BENCHMARK(BM_ReBudget40)->RangeMultiplier(2)->Range(8, 256)->Complexity();
BENCHMARK(BM_MaxEfficiencyOracle)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();
