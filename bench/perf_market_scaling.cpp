/**
 * @file
 * Microbenchmark: allocation-mechanism runtime vs. machine size.
 *
 * The paper's scalability argument (Section 1) is that the market is
 * largely distributed: each bidding-pricing round is O(N) player-local
 * optimizations, and rounds stay flat with N.  This benchmark measures
 * wall time per allocation for EqualBudget and ReBudget-40 from 8 to
 * 4096 players, and for the centralized MaxEfficiency oracle (which
 * scales much worse and is infeasible at runtime).
 *
 * Problems come from eval::makeSyntheticBundleProblem -- the same
 * deterministic catalog-roster construction used by perf_equilibrium's
 * scaling sweep and `rebudget_cli --players` -- so the numbers here
 * measure the mechanisms on the real convexified app models, and the
 * memoized per-(app, convexify) AppUtilityModel cache is exercised:
 * problem setup builds at most 24 models regardless of player count.
 * BM_ProblemConstruction pins that claim by timing construction
 * itself (it must scale as O(players) pointer copies, not O(players)
 * grid profiles).
 */

#include <benchmark/benchmark.h>

#include "rebudget/core/baselines.h"
#include "rebudget/core/max_efficiency.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/eval/bundle_runner.h"

using namespace rebudget;

namespace {

constexpr uint64_t kSeed = 42;

void
BM_ProblemConstruction(benchmark::State &state)
{
    // Warm the shared model cache once so the loop measures the
    // steady-state cost (roster draw + pointer copies), which is what
    // every repeated-solve consumer actually pays.
    benchmark::DoNotOptimize(
        eval::makeSyntheticBundleProblem(state.range(0), kSeed));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            eval::makeSyntheticBundleProblem(state.range(0), kSeed));
    state.SetComplexityN(state.range(0));
}

void
BM_EqualBudget(benchmark::State &state)
{
    const eval::BundleProblem p =
        eval::makeSyntheticBundleProblem(state.range(0), kSeed);
    const core::EqualBudgetAllocator alloc;
    for (auto _ : state)
        benchmark::DoNotOptimize(alloc.allocate(p.problem));
    state.SetComplexityN(state.range(0));
}

void
BM_ReBudget40(benchmark::State &state)
{
    const eval::BundleProblem p =
        eval::makeSyntheticBundleProblem(state.range(0), kSeed);
    const auto alloc = core::ReBudgetAllocator::withStep(40);
    for (auto _ : state)
        benchmark::DoNotOptimize(alloc.allocate(p.problem));
    state.SetComplexityN(state.range(0));
}

void
BM_MaxEfficiencyOracle(benchmark::State &state)
{
    const eval::BundleProblem p =
        eval::makeSyntheticBundleProblem(state.range(0), kSeed);
    const core::MaxEfficiencyAllocator alloc;
    for (auto _ : state)
        benchmark::DoNotOptimize(alloc.allocate(p.problem));
    state.SetComplexityN(state.range(0));
}

} // namespace

BENCHMARK(BM_ProblemConstruction)
    ->RangeMultiplier(8)
    ->Range(8, 32768)
    ->Complexity();
BENCHMARK(BM_EqualBudget)->RangeMultiplier(2)->Range(8, 4096)->Complexity();
BENCHMARK(BM_ReBudget40)->RangeMultiplier(2)->Range(8, 4096)->Complexity();
BENCHMARK(BM_MaxEfficiencyOracle)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();
