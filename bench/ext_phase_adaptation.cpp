/**
 * @file
 * Extension: phase-change adaptation (Section 4.3).
 *
 * The paper triggers budget re-assignment every 1 ms precisely to track
 * application phase changes and context switches.  Here one core of an
 * 8-core machine runs an application that alternates between a
 * cache-hungry phase (1 MB Zipf working set) and a streaming phase
 * (16 MB sweep, cache-useless) every ~4 epochs, while the other cores
 * run static applications.  The bench prints the phased core's cache
 * target and the whole machine's efficiency per epoch under ReBudget-40
 * and under static EqualShare: the market visibly reclaims the cache
 * during streaming phases and returns it for hungry phases.
 */

#include <iostream>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/core/baselines.h"
#include "rebudget/core/rebudget_allocator.h"
#include "rebudget/sim/epoch_sim.h"
#include "rebudget/util/table.h"

using namespace rebudget;

namespace {

sim::EpochSimConfig
machine()
{
    sim::EpochSimConfig cfg = sim::EpochSimConfig::forCores(8);
    cfg.epochs = 24;
    cfg.warmupEpochs = 2;
    cfg.cmp.accessesPerEpochPerCore = 8000;
    return cfg;
}

std::vector<app::AppParams>
bundle()
{
    std::vector<app::AppParams> apps;
    // Core 0: phased app -- alternates 1 MB Zipf <-> 16 MB stream every
    // 4 epochs' worth of references.
    app::AppParams phased;
    phased.name = "phased";
    phased.pattern = app::MemPattern::Zipf;
    phased.workingSetBytes = 1024 * 1024;
    phased.zipfAlpha = 0.9;
    phased.memPerInstr = 0.12;
    phased.computeCpi = 0.5;
    phased.activity = 0.6;
    phased.phaseAccesses = 4 * 8000;
    phased.phasePattern = app::MemPattern::Stream;
    phased.phaseFootprintBytes = 16ull * 1024 * 1024;
    apps.push_back(phased);
    // Static companions: a mix that keeps both resources contended.
    for (const char *nm : {"vpr", "swim", "apsi", "hmmer", "sixtrack",
                           "milc", "gap"}) {
        apps.push_back(app::findCatalogProfile(nm).params);
    }
    return apps;
}

} // namespace

int
main()
{
    const auto rb40 = core::ReBudgetAllocator::withStep(40);
    sim::EpochSimulator rb_sim(machine(), bundle(), rb40);
    const sim::SimResult rb = rb_sim.run();

    const core::EqualShareAllocator share;
    sim::EpochSimulator share_sim(machine(), bundle(), share);
    const sim::SimResult st = share_sim.run();

    util::printBanner(std::cout,
                      "Extension: phase adaptation -- phased core's "
                      "cache target per epoch");
    util::TablePrinter t({"epoch", "phased_core_cache(RB-40)",
                          "phased_core_util(RB-40)",
                          "machine_eff(RB-40)",
                          "machine_eff(EqualShare)"});
    for (size_t e = 0; e < rb.epochs.size(); ++e) {
        t.addRow({std::to_string(e),
                  util::formatDouble(rb.epochs[e].cacheTargets[0], 2),
                  util::formatDouble(rb.epochs[e].utilities[0], 3),
                  util::formatDouble(rb.epochs[e].efficiency, 3),
                  util::formatDouble(st.epochs[e].efficiency, 3)});
    }
    t.print(std::cout);

    // Quantify the tracking: spread between the phased core's largest
    // and smallest installed cache targets.
    double lo = 1e9;
    double hi = 0.0;
    for (const auto &rec : rb.epochs) {
        lo = std::min(lo, rec.cacheTargets[0]);
        hi = std::max(hi, rec.cacheTargets[0]);
    }
    std::cout << "\nPhased core cache target range under ReBudget-40: "
              << util::formatDouble(lo, 2) << " .. "
              << util::formatDouble(hi, 2)
              << " regions\n(static EqualShare pins it at 4.00).  The "
                 "1 ms epoch lets the market reclaim\ncache during "
                 "streaming phases and return it when the working set "
                 "is back.\n";
    return 0;
}
