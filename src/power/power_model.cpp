#include "rebudget/power/power_model.h"

#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::power {

void
PowerModelConfig::validate() const
{
    dvfs.validate();
    if (dynCoeff <= 0.0)
        util::fatal("dynCoeff must be positive");
    if (leakRef < 0.0)
        util::fatal("leakRef must be non-negative");
    if (leakTempCoeff < 0.0)
        util::fatal("leakTempCoeff must be non-negative");
    if (thermalRes < 0.0)
        util::fatal("thermalRes must be non-negative");
    // The leakage fixed point must be a contraction:
    // d(leak)/dP = leakRef * k * Rth * exp(...) must stay < 1 over the
    // operating range; we check at a generous 25 W upper bound.
    const double worst =
        leakRef * leakTempCoeff * thermalRes *
        std::exp(leakTempCoeff * (tempAmbient + thermalRes * 25.0 - tempRef));
    if (worst >= 1.0) {
        util::fatal("thermal runaway: leakage feedback gain %f >= 1; "
                    "reduce leakTempCoeff or thermalRes",
                    worst);
    }
}

PowerModel::PowerModel(const PowerModelConfig &config)
    : config_(config), dvfs_(config.dvfs)
{
    config_.validate();
}

double
PowerModel::dynamicPower(double f_ghz, double activity) const
{
    if (activity <= 0.0 || activity > 1.0)
        util::fatal("activity factor must be in (0, 1], got %f", activity);
    const double f = dvfs_.clampFrequency(f_ghz);
    const double v = dvfs_.voltage(f);
    return config_.dynCoeff * activity * v * v * f;
}

double
PowerModel::corePower(double f_ghz, double activity) const
{
    const double pdyn = dynamicPower(f_ghz, activity);
    // Fixed point: P = pdyn + leak(T(P)).
    double p = pdyn + config_.leakRef;
    for (int i = 0; i < 50; ++i) {
        const double t = temperature(p);
        const double leak =
            config_.leakRef *
            std::exp(config_.leakTempCoeff * (t - config_.tempRef));
        const double p_next = pdyn + leak;
        if (std::abs(p_next - p) < 1e-9) {
            p = p_next;
            break;
        }
        p = p_next;
    }
    return p;
}

double
PowerModel::temperature(double total_power) const
{
    return config_.tempAmbient + config_.thermalRes * total_power;
}

double
PowerModel::freqForPower(double watts, double activity) const
{
    const double f_min = config_.dvfs.fMinGhz;
    const double f_max = config_.dvfs.fMaxGhz;
    if (watts >= corePower(f_max, activity))
        return f_max;
    if (watts <= corePower(f_min, activity))
        return f_min;
    double lo = f_min;
    double hi = f_max;
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (corePower(mid, activity) <= watts)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

double
PowerModel::minCorePower(double activity) const
{
    return corePower(config_.dvfs.fMinGhz, activity);
}

double
PowerModel::maxCorePower(double activity) const
{
    return corePower(config_.dvfs.fMaxGhz, activity);
}

} // namespace rebudget::power
