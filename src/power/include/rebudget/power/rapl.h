#ifndef REBUDGET_POWER_RAPL_H_
#define REBUDGET_POWER_RAPL_H_

/**
 * @file
 * RAPL-style chip power budgeting (Intel Running Average Power Limit).
 *
 * The chip has a total power budget (10 W per core in the paper's
 * evaluation).  Per-core power caps are set at a 0.125 W granularity;
 * a core's DVFS controller then runs at the highest frequency whose
 * steady-state power fits under the cap (PowerModel::freqForPower).
 */

#include <cstdint>
#include <vector>

#include "rebudget/power/power_model.h"

namespace rebudget::power {

/** Chip-level power budget with quantized per-core caps. */
class RaplBudget
{
  public:
    /**
     * @param chip_budget_watts  total chip power budget (> 0)
     * @param cores              number of cores (> 0)
     * @param quantum_watts      cap granularity (default 0.125 W)
     */
    RaplBudget(double chip_budget_watts, uint32_t cores,
               double quantum_watts = 0.125);

    /** @return the total chip budget in watts. */
    double chipBudget() const { return chipBudget_; }

    /** @return the cap quantum in watts. */
    double quantum() const { return quantum_; }

    /**
     * Install per-core caps (quantized down to the quantum).  The sum of
     * the quantized caps must not exceed the chip budget.
     *
     * @param caps_watts  one cap per core
     */
    void setCaps(const std::vector<double> &caps_watts);

    /** @return the quantized cap of a core in watts. */
    double cap(uint32_t core) const;

    /** @return quantize a wattage down to the cap granularity. */
    double quantize(double watts) const;

    /**
     * @return frequencies realizing the current caps for the given
     * per-core activity factors, via the supplied power model.
     */
    std::vector<double> frequencies(const PowerModel &model,
                                    const std::vector<double> &activity)
        const;

  private:
    double chipBudget_;
    double quantum_;
    std::vector<double> caps_;
};

} // namespace rebudget::power

#endif // REBUDGET_POWER_RAPL_H_
