#ifndef REBUDGET_POWER_POWER_MODEL_H_
#define REBUDGET_POWER_POWER_MODEL_H_

/**
 * @file
 * Analytic per-core power model (Wattch/HotSpot substitute).
 *
 * Dynamic power follows the classic alpha*C*V^2*f law with a per-app
 * activity factor; static (leakage) power depends exponentially on
 * temperature [Chaparro et al.] with a lumped thermal resistance mapping
 * core power to steady-state temperature, solved by fixed point.  The
 * constants are calibrated so that a fully active core at 4.0 GHz / 1.2 V
 * consumes ~10 W (the paper's per-core TDP) and a core at 800 MHz
 * consumes ~1 W.
 *
 * The model is strictly increasing in frequency, so power-to-frequency
 * inversion (the operation the market needs: "what frequency does this
 * power budget buy?") is well-defined and computed by bisection.
 */

#include "rebudget/power/dvfs.h"

namespace rebudget::power {

/** Constants of the analytic power/thermal model. */
struct PowerModelConfig
{
    DvfsConfig dvfs;
    /**
     * Effective switching capacitance coefficient (W / (V^2 * GHz)).
     * Calibrated so a fully active core at 4.0 GHz / 1.2 V draws ~20 W
     * (incl. leakage): well above the paper's 10 W/core TDP, so the
     * chip power budget is a binding constraint the market must
     * arbitrate.
     */
    double dynCoeff = 3.0;
    /** Leakage at reference temperature (W). */
    double leakRef = 0.5;
    /** Leakage temperature exponent (1/degC). */
    double leakTempCoeff = 0.04;
    /** Reference temperature for leakRef (degC). */
    double tempRef = 45.0;
    /** Ambient temperature (degC). */
    double tempAmbient = 45.0;
    /** Lumped thermal resistance core power -> temperature (degC/W). */
    double thermalRes = 2.0;

    /** Validate constants; calls util::fatal() on bad values. */
    void validate() const;
};

/** Per-core power model with thermal-dependent leakage. */
class PowerModel
{
  public:
    explicit PowerModel(const PowerModelConfig &config = {});

    /**
     * @return dynamic power (W) at frequency f with the given activity
     * factor in (0, 1].
     */
    double dynamicPower(double f_ghz, double activity) const;

    /**
     * @return total steady-state core power (W), including leakage at
     * the thermal fixed point, at frequency f and activity.
     */
    double corePower(double f_ghz, double activity) const;

    /**
     * @return steady-state core temperature (degC) when consuming the
     * given total power.
     */
    double temperature(double total_power) const;

    /**
     * Invert the power model: the largest frequency whose steady-state
     * core power does not exceed the budget.
     *
     * @param watts    per-core power budget
     * @param activity the app's activity factor
     * @return frequency in GHz, clamped into the DVFS range (fMin if the
     *         budget is below even the minimum-frequency power)
     */
    double freqForPower(double watts, double activity) const;

    /** @return corePower at the minimum frequency. */
    double minCorePower(double activity) const;

    /** @return corePower at the maximum frequency. */
    double maxCorePower(double activity) const;

    /** @return the DVFS sub-model. */
    const DvfsModel &dvfs() const { return dvfs_; }

    /** @return the model constants. */
    const PowerModelConfig &config() const { return config_; }

  private:
    PowerModelConfig config_;
    DvfsModel dvfs_;
};

} // namespace rebudget::power

#endif // REBUDGET_POWER_POWER_MODEL_H_
