#ifndef REBUDGET_POWER_DVFS_H_
#define REBUDGET_POWER_DVFS_H_

/**
 * @file
 * Per-core dynamic voltage/frequency scaling model.
 *
 * Frequency ranges over [0.8, 4.0] GHz and voltage over [0.8, 1.2] V
 * (Table 1 of the paper), with voltage a linear function of frequency.
 * Frequency is treated as continuous; RAPL-style power capping (see
 * rapl.h) quantizes the *power* knob at 0.125 W, fine-grained enough that
 * the market treats power as a continuous resource.
 */

namespace rebudget::power {

/** DVFS range parameters. */
struct DvfsConfig
{
    double fMinGhz = 0.8;
    double fMaxGhz = 4.0;
    double vMin = 0.8;
    double vMax = 1.2;

    /** Validate ranges; calls util::fatal() on bad parameters. */
    void validate() const;
};

/** Continuous frequency/voltage mapping within a DVFS range. */
class DvfsModel
{
  public:
    explicit DvfsModel(const DvfsConfig &config = {});

    /** @return supply voltage at frequency f (clamped to the range). */
    double voltage(double f_ghz) const;

    /** @return frequency clamped into [fMin, fMax]. */
    double clampFrequency(double f_ghz) const;

    /** @return the configured range. */
    const DvfsConfig &config() const { return config_; }

  private:
    DvfsConfig config_;
};

} // namespace rebudget::power

#endif // REBUDGET_POWER_DVFS_H_
