#include "rebudget/power/dvfs.h"

#include <algorithm>

#include "rebudget/util/logging.h"

namespace rebudget::power {

void
DvfsConfig::validate() const
{
    if (!(fMinGhz > 0.0) || !(fMaxGhz > fMinGhz))
        util::fatal("invalid DVFS frequency range [%f, %f]", fMinGhz,
                    fMaxGhz);
    if (!(vMin > 0.0) || !(vMax >= vMin))
        util::fatal("invalid DVFS voltage range [%f, %f]", vMin, vMax);
}

DvfsModel::DvfsModel(const DvfsConfig &config) : config_(config)
{
    config_.validate();
}

double
DvfsModel::voltage(double f_ghz) const
{
    const double f = clampFrequency(f_ghz);
    const double t =
        (f - config_.fMinGhz) / (config_.fMaxGhz - config_.fMinGhz);
    return config_.vMin + t * (config_.vMax - config_.vMin);
}

double
DvfsModel::clampFrequency(double f_ghz) const
{
    return std::clamp(f_ghz, config_.fMinGhz, config_.fMaxGhz);
}

} // namespace rebudget::power
