#include "rebudget/power/rapl.h"

#include <cmath>
#include <numeric>

#include "rebudget/util/logging.h"

namespace rebudget::power {

RaplBudget::RaplBudget(double chip_budget_watts, uint32_t cores,
                       double quantum_watts)
    : chipBudget_(chip_budget_watts), quantum_(quantum_watts),
      caps_(cores, 0.0)
{
    if (chip_budget_watts <= 0.0)
        util::fatal("chip power budget must be positive");
    if (cores == 0)
        util::fatal("RaplBudget requires at least one core");
    if (quantum_watts <= 0.0)
        util::fatal("power cap quantum must be positive");
}

void
RaplBudget::setCaps(const std::vector<double> &caps_watts)
{
    if (caps_watts.size() != caps_.size()) {
        util::fatal("expected %zu per-core caps, got %zu", caps_.size(),
                    caps_watts.size());
    }
    std::vector<double> quantized(caps_watts.size());
    double total = 0.0;
    for (size_t i = 0; i < caps_watts.size(); ++i) {
        if (caps_watts[i] < 0.0)
            util::fatal("negative power cap for core %zu", i);
        quantized[i] = quantize(caps_watts[i]);
        total += quantized[i];
    }
    if (total > chipBudget_ + 1e-9) {
        util::fatal("per-core caps total %f W exceed chip budget %f W",
                    total, chipBudget_);
    }
    caps_ = std::move(quantized);
}

double
RaplBudget::cap(uint32_t core) const
{
    REBUDGET_ASSERT(core < caps_.size(), "core out of range");
    return caps_[core];
}

double
RaplBudget::quantize(double watts) const
{
    return std::floor(watts / quantum_) * quantum_;
}

std::vector<double>
RaplBudget::frequencies(const PowerModel &model,
                        const std::vector<double> &activity) const
{
    if (activity.size() != caps_.size()) {
        util::fatal("expected %zu activity factors, got %zu", caps_.size(),
                    activity.size());
    }
    std::vector<double> freqs(caps_.size());
    for (size_t i = 0; i < caps_.size(); ++i)
        freqs[i] = model.freqForPower(caps_[i], activity[i]);
    return freqs;
}

} // namespace rebudget::power
