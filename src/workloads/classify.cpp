#include "rebudget/workloads/classify.h"

namespace rebudget::workloads {

Sensitivity
measureSensitivity(const app::AppUtilityModel &model)
{
    Sensitivity s;
    const double u_full =
        model.utilityTotal(model.maxRegions(), model.maxWatts());
    const double u_no_cache =
        model.utilityTotal(model.minRegions(), model.maxWatts());
    const double u_no_power =
        model.utilityTotal(model.maxRegions(), model.minWatts());
    s.cache = u_full - u_no_cache;
    s.power = u_full - u_no_power;
    return s;
}

app::AppClass
classify(const Sensitivity &s, double threshold)
{
    const bool cache = s.cache >= threshold;
    const bool power = s.power >= threshold;
    if (cache && power)
        return app::AppClass::BothSensitive;
    if (cache)
        return app::AppClass::CacheSensitive;
    if (power)
        return app::AppClass::PowerSensitive;
    return app::AppClass::None;
}

app::AppClass
classifyApp(const app::AppUtilityModel &model, double threshold)
{
    return classify(measureSensitivity(model), threshold);
}

} // namespace rebudget::workloads
