#ifndef REBUDGET_WORKLOADS_CLASSIFY_H_
#define REBUDGET_WORKLOADS_CLASSIFY_H_

/**
 * @file
 * Profiling-based application classification (paper Section 5).
 *
 * The paper classifies its 24 applications into Cache-sensitive (C),
 * Power-sensitive (P), Both (B), and None (N) "based on profiling".  We
 * measure resource sensitivities from the profiled utility surface:
 *
 *   S_cache = 1 - U(min cache, max power)   (cache sweep at max freq,
 *                                            the Figure 2 setup)
 *   S_power = 1 - U(max cache, min power)
 *
 * and threshold both at 0.5: a resource is "sensitive" when losing it
 * costs at least half of the run-alone performance.
 */

#include "rebudget/app/app_params.h"
#include "rebudget/app/utility.h"

namespace rebudget::workloads {

/** Sensitivity measurements of one application. */
struct Sensitivity
{
    /** Performance lost without cache (at max power). */
    double cache = 0.0;
    /** Performance lost without power (at max cache). */
    double power = 0.0;
};

/** @return measured sensitivities of an application utility model. */
Sensitivity measureSensitivity(const app::AppUtilityModel &model);

/**
 * @return the class implied by sensitivities at the given threshold.
 *
 * @param s          measured sensitivities
 * @param threshold  sensitivity cutoff (default 0.5)
 */
app::AppClass classify(const Sensitivity &s, double threshold = 0.5);

/** Convenience: classify a utility model directly. */
app::AppClass classifyApp(const app::AppUtilityModel &model,
                          double threshold = 0.5);

} // namespace rebudget::workloads

#endif // REBUDGET_WORKLOADS_CLASSIFY_H_
