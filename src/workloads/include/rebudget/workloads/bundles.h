#ifndef REBUDGET_WORKLOADS_BUNDLES_H_
#define REBUDGET_WORKLOADS_BUNDLES_H_

/**
 * @file
 * Multiprogrammed workload bundles (paper Section 5).
 *
 * Six bundle categories describe per-class application counts as
 * quarters of the core count: CPBN, CCPP, CPBB, BBNN, BBPN, BBCN.  For
 * each category the paper randomly generates 40 bundles per machine
 * size; for an 8-core (64-core) machine, 2 (16) applications are drawn
 * from each of the category's four class slots.
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "rebudget/app/app_params.h"

namespace rebudget::workloads {

/** The paper's six bundle categories. */
enum class BundleCategory { CPBN, CCPP, CPBB, BBNN, BBPN, BBCN };

/** All categories, in the paper's order. */
inline constexpr std::array<BundleCategory, 6> kAllCategories = {
    BundleCategory::CPBN, BundleCategory::CCPP, BundleCategory::CPBB,
    BundleCategory::BBNN, BundleCategory::BBPN, BundleCategory::BBCN};

/** @return the category's four class slots (one letter per quarter). */
std::array<app::AppClass, 4> categorySlots(BundleCategory category);

/** @return the category name, e.g. "CPBN". */
std::string categoryName(BundleCategory category);

/** One multiprogrammed workload. */
struct Bundle
{
    /** Category this bundle was drawn from. */
    BundleCategory category = BundleCategory::CPBN;
    /** Identifier, e.g. "CPBN-07". */
    std::string name;
    /** Catalog application name per core. */
    std::vector<std::string> appNames;
};

/**
 * Pool of catalog applications by (measured) class, used for drawing
 * bundles.  Build once via classifyCatalog().
 */
struct ClassifiedCatalog
{
    /** Catalog app names per class, indexed by AppClass order C,P,B,N. */
    std::array<std::vector<std::string>, 4> byClass;

    /** @return the pool of a class; fatal if empty. */
    const std::vector<std::string> &pool(app::AppClass cls) const;
};

/**
 * Classify every catalog application from its profiled utility model
 * (deterministic; profiles are cached by app::catalogProfiles()).
 */
ClassifiedCatalog classifyCatalog();

/**
 * Generate random bundles of one category (paper: 40 per category).
 *
 * @param catalog  classified application pools
 * @param category bundle category
 * @param cores    machine size (multiple of 4)
 * @param count    bundles to generate
 * @param seed     RNG seed (determinism)
 */
std::vector<Bundle> generateBundles(const ClassifiedCatalog &catalog,
                                    BundleCategory category,
                                    uint32_t cores, uint32_t count,
                                    uint64_t seed);

/**
 * Generate the paper's full evaluation suite: count bundles of every
 * category (240 total at the default 40).
 */
std::vector<Bundle> generateAllBundles(const ClassifiedCatalog &catalog,
                                       uint32_t cores,
                                       uint32_t count_per_category = 40,
                                       uint64_t seed = 2016);

/**
 * Resolve a bundle by its canonical name, e.g. "BBPN-03": the fourth
 * bundle of the BBPN category's deterministic stream for the given
 * machine size and seed.  Calls util::fatal() on malformed names or
 * unknown categories.
 */
Bundle bundleByName(const ClassifiedCatalog &catalog,
                    const std::string &name, uint32_t cores,
                    uint64_t seed);

} // namespace rebudget::workloads

#endif // REBUDGET_WORKLOADS_BUNDLES_H_
