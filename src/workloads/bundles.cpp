#include "rebudget/workloads/bundles.h"

#include <cstdio>
#include <exception>
#include <string>

#include "rebudget/app/catalog.h"
#include "rebudget/power/power_model.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/rng.h"
#include "rebudget/workloads/classify.h"

namespace rebudget::workloads {

namespace {

size_t
classIndex(app::AppClass cls)
{
    switch (cls) {
      case app::AppClass::CacheSensitive:
        return 0;
      case app::AppClass::PowerSensitive:
        return 1;
      case app::AppClass::BothSensitive:
        return 2;
      case app::AppClass::None:
        return 3;
    }
    util::panic("unknown AppClass");
}

} // namespace

std::array<app::AppClass, 4>
categorySlots(BundleCategory category)
{
    using app::AppClass;
    switch (category) {
      case BundleCategory::CPBN:
        return {AppClass::CacheSensitive, AppClass::PowerSensitive,
                AppClass::BothSensitive, AppClass::None};
      case BundleCategory::CCPP:
        return {AppClass::CacheSensitive, AppClass::CacheSensitive,
                AppClass::PowerSensitive, AppClass::PowerSensitive};
      case BundleCategory::CPBB:
        return {AppClass::CacheSensitive, AppClass::PowerSensitive,
                AppClass::BothSensitive, AppClass::BothSensitive};
      case BundleCategory::BBNN:
        return {AppClass::BothSensitive, AppClass::BothSensitive,
                AppClass::None, AppClass::None};
      case BundleCategory::BBPN:
        return {AppClass::BothSensitive, AppClass::BothSensitive,
                AppClass::PowerSensitive, AppClass::None};
      case BundleCategory::BBCN:
        return {AppClass::BothSensitive, AppClass::BothSensitive,
                AppClass::CacheSensitive, AppClass::None};
    }
    util::panic("unknown BundleCategory");
}

std::string
categoryName(BundleCategory category)
{
    std::string name;
    for (app::AppClass cls : categorySlots(category))
        name.push_back(app::appClassCode(cls));
    return name;
}

const std::vector<std::string> &
ClassifiedCatalog::pool(app::AppClass cls) const
{
    const auto &p = byClass[classIndex(cls)];
    if (p.empty()) {
        util::fatal("no catalog applications in class %c",
                    app::appClassCode(cls));
    }
    return p;
}

ClassifiedCatalog
classifyCatalog()
{
    ClassifiedCatalog catalog;
    const power::PowerModel power;
    for (const auto &profile : app::catalogProfiles()) {
        const app::AppUtilityModel model(profile, power);
        const app::AppClass cls = classifyApp(model);
        catalog.byClass[classIndex(cls)].push_back(profile.params.name);
    }
    return catalog;
}

std::vector<Bundle>
generateBundles(const ClassifiedCatalog &catalog, BundleCategory category,
                uint32_t cores, uint32_t count, uint64_t seed)
{
    if (cores == 0 || cores % 4 != 0)
        util::fatal("core count must be a positive multiple of 4");
    const uint32_t per_slot = cores / 4;
    const auto slots = categorySlots(category);
    util::Rng rng(seed);
    std::vector<Bundle> bundles;
    bundles.reserve(count);
    for (uint32_t b = 0; b < count; ++b) {
        Bundle bundle;
        bundle.category = category;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%s-%02u",
                      categoryName(category).c_str(), b);
        bundle.name = buf;
        bundle.appNames.reserve(cores);
        for (const app::AppClass cls : slots) {
            const auto &pool = catalog.pool(cls);
            for (uint32_t k = 0; k < per_slot; ++k) {
                const size_t pick = rng.uniformInt(
                    static_cast<uint64_t>(pool.size()));
                bundle.appNames.push_back(pool[pick]);
            }
        }
        bundles.push_back(std::move(bundle));
    }
    return bundles;
}

Bundle
bundleByName(const ClassifiedCatalog &catalog, const std::string &name,
             uint32_t cores, uint64_t seed)
{
    const auto dash = name.find('-');
    if (dash == std::string::npos || dash + 1 >= name.size())
        util::fatal("bundle name '%s' is not CATEGORY-INDEX",
                    name.c_str());
    const std::string cat_name = name.substr(0, dash);
    uint32_t index = 0;
    try {
        index = static_cast<uint32_t>(std::stoul(name.substr(dash + 1)));
    } catch (const std::exception &) {
        util::fatal("bundle name '%s' has a bad index", name.c_str());
    }
    for (const BundleCategory cat : kAllCategories) {
        if (categoryName(cat) == cat_name) {
            auto bundles =
                generateBundles(catalog, cat, cores, index + 1, seed);
            return std::move(bundles[index]);
        }
    }
    util::fatal("unknown bundle category '%s'", cat_name.c_str());
}

std::vector<Bundle>
generateAllBundles(const ClassifiedCatalog &catalog, uint32_t cores,
                   uint32_t count_per_category, uint64_t seed)
{
    std::vector<Bundle> all;
    all.reserve(kAllCategories.size() * count_per_category);
    uint64_t s = seed;
    for (const BundleCategory cat : kAllCategories) {
        auto bundles =
            generateBundles(catalog, cat, cores, count_per_category, ++s);
        for (auto &b : bundles)
            all.push_back(std::move(b));
    }
    return all;
}

} // namespace rebudget::workloads
