#include "rebudget/sim/epoch_sim.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "rebudget/app/utility.h"
#include "rebudget/core/karma_allocator.h"
#include "rebudget/market/metrics.h"
#include "rebudget/power/power_model.h"
#include "rebudget/power/rapl.h"
#include "rebudget/sim/shared_l2.h"
#include "rebudget/sim/sim_core.h"
#include "rebudget/sim/watchdog.h"
#include "rebudget/util/logging.h"

namespace rebudget::sim {

EpochSimConfig
EpochSimConfig::forCores(uint32_t cores)
{
    EpochSimConfig cfg;
    cfg.cmp = CmpConfig::forCores(cores);
    cfg.memory = MemoryConfig::forCores(cores);
    return cfg;
}

EpochSimulator::EpochSimulator(EpochSimConfig config,
                               std::vector<app::AppParams> apps,
                               const core::Allocator &allocator)
    : config_(std::move(config)), apps_(std::move(apps)),
      allocator_(allocator)
{
    config_.cmp.validate();
    if (apps_.size() != config_.cmp.cores) {
        util::fatal("expected %u applications, got %zu", config_.cmp.cores,
                    apps_.size());
    }
}

SimResult
EpochSimulator::run()
{
    const uint32_t n = config_.cmp.cores;
    const power::PowerModel power_model(config_.cmp.power);
    SharedL2 l2(config_.cmp);
    MemoryModel memory(config_.memory);

    std::vector<std::unique_ptr<SimCore>> cores;
    std::vector<double> activities(n);
    cores.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        cores.push_back(std::make_unique<SimCore>(
            i, apps_[i], config_.cmp, config_.seed + i * 977));
        activities[i] = apps_[i].activity;
    }

    SimResult result;
    result.mechanism = allocator_.name();
    // Tenant-churn state.  With no tenant events every core stays active
    // with its dense identity, problem.playerIds stays empty (the legacy
    // roster), and every churn branch below is dead -- the fixed-roster
    // path is byte-identical to the pre-roster simulator.
    const bool churn_on = !config_.tenantEvents.empty();
    std::vector<char> active(n, 1);
    std::vector<core::PlayerId> ident(n);
    for (uint32_t i = 0; i < n; ++i)
        ident[i] = i;
    core::PlayerId next_ident = n;
    // Roster the current warm seed was solved on, the migration seed
    // slot, and roster changes not yet delivered to the allocator
    // (accumulated across watchdog-fallback epochs, which skip the
    // market entirely).
    core::Roster warm_roster;
    market::EquilibriumResult migrated_seed;
    core::RosterChange pending_change;
    std::map<core::PlayerId, double> last_budget_by_ident;
    // Persistent credit state for banking mechanisms (KarmaAllocator);
    // every other mechanism ignores it.
    core::KarmaBank credit_bank;
    // Fault injection between the monitors and the market.  Streams are
    // keyed by (config seed, core, epoch), so a given configuration is
    // damaged bit-identically on every run.
    const faults::FaultInjector injector(config_.faults);
    const bool faults_on = config_.faults.enabled();
    // One robustness filter per core over the measured L2 access rate.
    std::vector<app::SampleFilter> filters(
        n, app::SampleFilter(config_.sampleFilter));
    // Solo (run-alone) calibration, cached by app so context switches to
    // an already-known app are free.
    std::map<std::string, double> solo_cache;
    auto solo_for = [&](const app::AppParams &params) {
        const auto it = solo_cache.find(params.name);
        if (it != solo_cache.end())
            return it->second;
        const double ips =
            soloPerformances(config_, {params}).front();
        solo_cache.emplace(params.name, ips);
        return ips;
    };
    std::vector<double> solo(n);
    for (uint32_t i = 0; i < n; ++i)
        solo[i] = solo_for(apps_[i]);
    result.soloIps = solo;

    // Initial operating point: equal power shares.
    power::RaplBudget rapl(config_.cmp.chipBudgetWatts(), n);
    {
        std::vector<double> caps(n, config_.cmp.chipBudgetWatts() / n);
        rapl.setCaps(caps);
    }
    std::vector<double> freqs = rapl.frequencies(power_model, activities);
    double mem_lat_ns = memory.effectiveLatencyNs(0.0);

    // Market capacities: everything beyond the guaranteed minimums.
    const app::UtilityGridOptions grid_options = [&] {
        app::UtilityGridOptions o;
        o.convexify = config_.convexify;
        return o;
    }();
    std::vector<double> min_watts(n);
    double power_capacity = 0.0;
    double cache_capacity = 0.0;
    // Guaranteed minimums are reserved for ACTIVE cores only: the
    // machine's total capacity never changes, so a departing tenant's
    // minimums (and market share) flow back to the survivors.
    auto recompute_capacity = [&]() {
        double min_watts_sum = 0.0;
        uint32_t n_active = 0;
        for (uint32_t i = 0; i < n; ++i) {
            if (!active[i]) {
                min_watts[i] = 0.0;
                continue;
            }
            ++n_active;
            min_watts[i] = power_model.minCorePower(activities[i]);
            min_watts_sum += min_watts[i];
        }
        power_capacity = config_.cmp.chipBudgetWatts() - min_watts_sum;
        cache_capacity =
            static_cast<double>(config_.cmp.totalRegions()) -
            static_cast<double>(n_active) * grid_options.minRegions;
    };
    recompute_capacity();
    if (cache_capacity <= 0.0 || power_capacity <= 0.0)
        util::fatal("no market capacity beyond the guaranteed minimums");

    const uint32_t total_epochs = config_.warmupEpochs + config_.epochs;
    std::vector<app::AppProfile> profiles(n);
    std::vector<std::unique_ptr<app::AppUtilityModel>> models(n);
    // Last successfully installed allocation, for the final fairness
    // metric and as the fallback when an epoch's solve fails, plus the
    // cores its dense rows referred to at the time.
    util::Matrix<double> last_alloc;
    std::vector<uint32_t> last_alloc_cores;
    // Epoch-to-epoch warm-start chain: hold the seed the allocator
    // published last epoch and hand it back as the hint for the next one.
    std::shared_ptr<const market::EquilibriumResult> warm_seed;
    // One solver workspace for the whole run: every epoch's equilibrium
    // solves reuse the same buffers, so steady-state epochs perform no
    // solver heap allocation.
    market::SolveWorkspace solve_ws;
    // Non-convergence watchdog (shared state machine with the serve
    // shard loop; see sim/watchdog.h).
    ConvergenceWatchdog watchdog(config_.watchdogFailureThreshold,
                                 config_.watchdogCleanEpochs);
    for (uint32_t epoch = 0; epoch < total_epochs; ++epoch) {
        // (0a) Tenant arrivals and departures.  Departures idle the core
        // (zero cache target; its power cap drops at the next install)
        // and free its guaranteed minimums back into the market;
        // arrivals occupy an idle core with a cold tenant under a fresh
        // stable identity.
        bool roster_changed = false;
        for (const TenantEvent &te : config_.tenantEvents) {
            if (te.epoch != epoch)
                continue;
            if (te.epoch == 0) {
                util::fatal("tenant events start at epoch 1; configure "
                            "the initial mix via the app list");
            }
            if (te.core >= n)
                util::fatal("tenant event on core %u of %u", te.core, n);
            if (te.arrival) {
                if (active[te.core]) {
                    util::fatal("tenant arrival on busy core %u at epoch "
                                "%u", te.core, epoch);
                }
                active[te.core] = 1;
                ident[te.core] = next_ident++;
                apps_[te.core] = te.app;
                cores[te.core] = std::make_unique<SimCore>(
                    te.core, te.app, config_.cmp,
                    config_.seed + te.core * 977 + epoch * 131);
                activities[te.core] = te.app.activity;
                solo[te.core] = solo_for(te.app);
                filters[te.core].reset();
                pending_change.joined.push_back(ident[te.core]);
                result.solverStats.tenantsJoined += 1;
            } else {
                if (!active[te.core]) {
                    util::fatal("tenant departure from idle core %u at "
                                "epoch %u", te.core, epoch);
                }
                active[te.core] = 0;
                core::RosterChange::Departure dep;
                dep.id = ident[te.core];
                const auto it = last_budget_by_ident.find(dep.id);
                if (it != last_budget_by_ident.end())
                    dep.lastBudget = it->second;
                pending_change.departed.push_back(dep);
                result.solverStats.tenantsDeparted += 1;
                // Reclaim the idle core's cache (its last online curve
                // is valid: departures start at epoch 1, after at least
                // one profiled epoch).
                l2.setTargetRegions(te.core, 0.0,
                                    profiles[te.core].l2Curve);
            }
            roster_changed = true;
        }
        if (roster_changed) {
            recompute_capacity();
            if (power_capacity <= 0.0 || cache_capacity <= 0.0)
                util::fatal("tenant events exhausted market capacity");
        }
        // (0) OS context switches: the incoming app gets a fresh core
        // state (cold L1, cold monitors) and a new solo baseline.
        bool switched = false;
        for (const ContextSwitch &cs : config_.contextSwitches) {
            if (cs.epoch != epoch)
                continue;
            if (cs.core >= n)
                util::fatal("context switch on core %u of %u", cs.core,
                            n);
            if (!active[cs.core]) {
                util::fatal("context switch on idle core %u at epoch %u "
                            "(use a tenant arrival instead)", cs.core,
                            epoch);
            }
            apps_[cs.core] = cs.newApp;
            cores[cs.core] = std::make_unique<SimCore>(
                cs.core, cs.newApp, config_.cmp,
                config_.seed + cs.core * 977 + epoch * 131);
            activities[cs.core] = cs.newApp.activity;
            solo[cs.core] = solo_for(cs.newApp);
            filters[cs.core].reset();
            switched = true;
        }
        if (switched) {
            recompute_capacity();
            if (power_capacity <= 0.0)
                util::fatal("context switch exhausted power headroom");
        }
        // (1) Execute the sampled windows.
        EpochRecord record;
        record.ips.resize(n);
        record.utilities.resize(n);
        record.freqsGhz = freqs;
        record.cacheTargets.resize(n);
        record.memLatencyNs = mem_lat_ns;
        double bandwidth_demand = 0.0;
        for (uint32_t i = 0; i < n; ++i) {
            if (!active[i]) {
                // Idle core: no instructions, no cache pressure, no
                // bandwidth demand.
                record.cacheTargets[i] = l2.targetRegions(i);
                continue;
            }
            record.activePlayers += 1;
            const CoreEpochStats stats = cores[i]->runEpoch(
                freqs[i], l2, mem_lat_ns,
                config_.cmp.accessesPerEpochPerCore);
            record.ips[i] = stats.ips;
            record.utilities[i] =
                solo[i] > 0.0 ? std::min(1.0, stats.ips / solo[i])
                              : 0.0;
            record.efficiency += record.utilities[i];
            record.cacheTargets[i] = l2.targetRegions(i);
            if (stats.seconds > 0.0)
                bandwidth_demand += stats.memBytes / stats.seconds;
        }
        mem_lat_ns = memory.effectiveLatencyNs(bandwidth_demand);

        // (2) Rebuild online utility models from the monitors.  Under
        // fault injection a core's refresh may be suppressed (stale
        // profile) or its miss curve perturbed; fresh readings pass
        // through the per-core sample filter before the model sees them.
        // Dense player order over the active cores (identity when no
        // tenant has churned).
        std::vector<uint32_t> dense_to_core;
        dense_to_core.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
            if (active[i])
                dense_to_core.push_back(i);
        }
        std::vector<const market::UtilityModel *> model_ptrs(
            dense_to_core.size());
        for (size_t d = 0; d < dense_to_core.size(); ++d) {
            const uint32_t i = dense_to_core[d];
            const bool stale =
                faults_on && epoch > 0 &&
                injector.staleProfile(config_.seed, i, epoch,
                                      result.injectionStats);
            if (!stale) {
                profiles[i] = cores[i]->onlineProfile();
                if (faults_on) {
                    profiles[i].l2Curve = injector.perturbMissCurve(
                        profiles[i].l2Curve, config_.seed, i, epoch,
                        result.injectionStats, &result.solverStats);
                }
                profiles[i].l2AccessesPerInstr =
                    filters[i].filter(profiles[i].l2AccessesPerInstr);
            }
            models[i] = std::make_unique<app::AppUtilityModel>(
                profiles[i], power_model, grid_options);
            model_ptrs[d] = models[i].get();
            cores[i]->resetEpochMonitors();
        }

        // (3) Allocate -- unless the watchdog has the machine running
        // open-loop on the equal-share operating point installed at the
        // last trip.
        if (watchdog.consumeFallbackEpoch()) {
            record.fallback = true;
            result.solverStats.fallbackEpochs += 1;
        } else {
            core::AllocationProblem problem;
            problem.models = model_ptrs;
            problem.capacities = {cache_capacity, power_capacity};
            problem.marketConfig = config_.marketConfig;
            problem.workspace = &solve_ws;
            problem.creditBank = &credit_bank;
            core::Roster roster_now;
            if (churn_on) {
                for (const uint32_t c : dense_to_core)
                    roster_now.add(ident[c]);
                problem.playerIds = roster_now.ids();
            }
            // Warm-start chain: hand back last epoch's seed, migrated
            // by identity when the roster drifted since it was solved.
            const market::EquilibriumResult *seed = warm_seed.get();
            if (churn_on && warm_seed != nullptr &&
                roster_now.ids() != warm_roster.ids()) {
                const size_t migrated = market::migrateEquilibriumInto(
                    *warm_seed, roster_now.mapFrom(warm_roster),
                    problem.capacities.size(), migrated_seed);
                if (migrated_seed.status.ok()) {
                    seed = &migrated_seed;
                    result.solverStats.migratedWarmSeeds +=
                        static_cast<std::int64_t>(migrated);
                } else {
                    seed = nullptr;
                }
            }
            problem.warmStart = seed;
            if (pending_change.any()) {
                allocator_.onRosterChange(pending_change, problem);
                pending_change = core::RosterChange{};
            }
            const core::AllocationOutcome outcome =
                allocator_.allocate(problem);
            result.solverStats.merge(outcome.stats);
            record.marketIterations = outcome.marketIterations;
            record.budgetRounds = outcome.budgetRounds;
            record.converged = outcome.converged;

            if (!outcome.status.ok()) {
                // A degenerate online model (e.g. a pathological miss
                // curve) must not kill a multi-second run: keep the
                // previous operating point for one epoch and try again
                // with the next epoch's monitors.
                result.failedAllocations += 1;
                util::warn(
                    "epoch %u: %s allocation failed (%s); keeping the "
                    "previous operating point",
                    epoch, allocator_.name().c_str(),
                    outcome.status.toString().c_str());
            } else {
                warm_seed = outcome.equilibrium;
                warm_roster = roster_now;
                last_alloc = outcome.alloc;
                last_alloc_cores = dense_to_core;
                for (size_t d = 0; d < dense_to_core.size(); ++d) {
                    if (d < outcome.budgets.size()) {
                        last_budget_by_ident[ident[dense_to_core[d]]] =
                            outcome.budgets[d];
                    }
                }

                // (4) Install cache targets and power caps for the next
                // epoch.  Outcome rows are dense over the active cores;
                // idle cores keep a zero cap and zero cache target.
                std::vector<double> caps(n, 0.0);
                for (size_t d = 0; d < dense_to_core.size(); ++d) {
                    const uint32_t i = dense_to_core[d];
                    const double regions =
                        grid_options.minRegions +
                        outcome.alloc[d][app::AppUtilityModel::kCache];
                    l2.setTargetRegions(i, regions, profiles[i].l2Curve);
                    caps[i] =
                        min_watts[i] +
                        outcome.alloc[d][app::AppUtilityModel::kPower];
                    if (faults_on) {
                        // A lying power sensor: RAPL enforces the biased
                        // reading, clamped so DVFS stays feasible.
                        caps[i] = std::max(
                            min_watts[i],
                            injector.biasPowerReading(
                                caps[i], config_.seed, i, epoch,
                                result.injectionStats));
                    }
                }
                if (faults_on) {
                    // Upward-biased readings can push the cap vector
                    // past the chip budget, which RAPL rightly rejects.
                    // Guardrail: scale the headroom above the guaranteed
                    // minimums back into budget.
                    double total = 0.0;
                    double min_sum = 0.0;
                    for (uint32_t i = 0; i < n; ++i) {
                        total += caps[i];
                        min_sum += min_watts[i];
                    }
                    const double budget = config_.cmp.chipBudgetWatts();
                    if (total > budget) {
                        const double scale =
                            (budget - min_sum) / (total - min_sum);
                        for (uint32_t i = 0; i < n; ++i) {
                            caps[i] = min_watts[i] +
                                      (caps[i] - min_watts[i]) * scale;
                        }
                    }
                }
                l2.updateController();
                rapl.setCaps(caps);
                freqs = rapl.frequencies(power_model, activities);
            }

            // Watchdog: too many consecutive failed or fail-safe epochs
            // means the online models are feeding the market garbage.
            // Stop trusting it: install the equal-share operating point,
            // drop the warm-start chain, and run open-loop for a few
            // epochs so the monitors can recover before re-entry.
            const bool healthy =
                outcome.status.ok() && outcome.converged;
            if (watchdog.observe(healthy)) {
                record.fallback = true;
                result.solverStats.watchdogTrips += 1;
                warm_seed.reset();
                util::warn(
                    "epoch %u: watchdog tripped for %s; equal-share "
                    "fallback for %u epochs",
                    epoch, allocator_.name().c_str(),
                    config_.watchdogCleanEpochs);
                const auto n_active =
                    static_cast<double>(dense_to_core.size());
                const double share =
                    static_cast<double>(config_.cmp.totalRegions()) /
                    n_active;
                std::vector<double> caps(n, 0.0);
                for (const uint32_t i : dense_to_core) {
                    caps[i] = config_.cmp.chipBudgetWatts() / n_active;
                    l2.setTargetRegions(i, share, profiles[i].l2Curve);
                }
                l2.updateController();
                rapl.setCaps(caps);
                freqs = rapl.frequencies(power_model, activities);
            }
        }

        if (epoch >= config_.warmupEpochs)
            result.epochs.push_back(std::move(record));
    }

    // Aggregates.
    for (const app::SampleFilter &f : filters)
        result.solverStats.rejectedSamples += f.rejectedSamples();
    result.meanUtilities.assign(n, 0.0);
    for (const auto &rec : result.epochs) {
        result.meanEfficiency += rec.efficiency;
        for (uint32_t i = 0; i < n; ++i)
            result.meanUtilities[i] += rec.utilities[i];
    }
    if (!result.epochs.empty()) {
        result.meanEfficiency /= static_cast<double>(result.epochs.size());
        for (auto &u : result.meanUtilities)
            u /= static_cast<double>(result.epochs.size());
    }
    // Fairness: model-based envy-freeness of the last installed
    // allocation (zero if every epoch's solve failed).
    if (!last_alloc.empty()) {
        // Models are looked up through the cores the last successful
        // solve actually ran on, so the metric stays aligned with the
        // allocation rows even if the roster churned afterwards.
        std::vector<const market::UtilityModel *> model_ptrs;
        model_ptrs.reserve(last_alloc_cores.size());
        for (const uint32_t i : last_alloc_cores)
            model_ptrs.push_back(models[i].get());
        result.envyFreeness =
            market::envyFreeness(model_ptrs, last_alloc);
    }
    return result;
}

std::vector<double>
EpochSimulator::soloPerformances(const EpochSimConfig &config,
                                 const std::vector<app::AppParams> &apps)
{
    // Solo machine: one core owning the full monitored cache (16 regions)
    // at maximum frequency; chip power is no constraint for one core.
    CmpConfig solo = config.cmp;
    solo.cores = 1;
    solo.l2BytesPerCore = static_cast<uint64_t>(config.cmp.umon.maxRegions) *
                          config.cmp.regionBytes;
    solo.l2Assoc = 16;
    solo.validate();

    std::vector<double> out;
    out.reserve(apps.size());
    const double f_max = config.cmp.power.dvfs.fMaxGhz;
    const MemoryModel memory(config.memory);
    const double lat = memory.effectiveLatencyNs(0.0);
    for (size_t a = 0; a < apps.size(); ++a) {
        SharedL2 l2(solo);
        SimCore core(0, apps[a], solo, config.seed + a * 977);
        // Warm, then measure.
        core.runEpoch(f_max, l2, lat, solo.accessesPerEpochPerCore * 2);
        core.resetEpochMonitors();
        const CoreEpochStats stats = core.runEpoch(
            f_max, l2, lat, solo.accessesPerEpochPerCore * 2);
        out.push_back(stats.ips);
    }
    return out;
}

} // namespace rebudget::sim
