#include "rebudget/sim/memory_model.h"

#include <algorithm>

#include "rebudget/util/logging.h"

namespace rebudget::sim {

double
MemoryConfig::peakBytesPerSecond() const
{
    return static_cast<double>(channels) * channelBandwidthGBs * 1e9;
}

MemoryConfig
MemoryConfig::forCores(uint32_t cores)
{
    MemoryConfig cfg;
    cfg.channels = cores <= 8 ? 2 : 16;
    return cfg;
}

MemoryModel::MemoryModel(const MemoryConfig &config) : config_(config)
{
    if (config_.baseLatencyNs <= 0.0)
        util::fatal("memory base latency must be positive");
    if (config_.channels == 0)
        util::fatal("memory model requires at least one channel");
    if (config_.maxUtilization <= 0.0 || config_.maxUtilization >= 1.0)
        util::fatal("maxUtilization must be in (0, 1)");
}

double
MemoryModel::effectiveLatencyNs(double demand_bytes_per_second) const
{
    const double rho = std::clamp(
        demand_bytes_per_second / config_.peakBytesPerSecond(), 0.0,
        config_.maxUtilization);
    // M/D/1 queuing delay: W = rho / (2 (1 - rho)) service times.
    const double queuing = rho / (2.0 * (1.0 - rho));
    return config_.baseLatencyNs * (1.0 + queuing);
}

} // namespace rebudget::sim
