#ifndef REBUDGET_SIM_SIM_CORE_H_
#define REBUDGET_SIM_SIM_CORE_H_

/**
 * @file
 * One simulated core: reference stream + private L1 + utility monitor +
 * analytic timing.
 *
 * Execution is sampled: each epoch the core replays a fixed number of
 * memory references through the real cache hierarchy (private L1, then
 * the shared Talus-partitioned L2), while the UMON shadow tags observe
 * the post-L1 stream.  Timing applies the critical-path model
 * (app::perf_model) to the measured hit/miss counts at the core's
 * current DVFS frequency, yielding the achieved performance for the
 * epoch.  Cache contents, partition enforcement, monitor contents, and
 * contention are all concrete simulated state.
 */

#include <cstdint>
#include <memory>

#include "rebudget/app/app_params.h"
#include "rebudget/app/profiler.h"
#include "rebudget/cache/set_assoc_cache.h"
#include "rebudget/cache/umon.h"
#include "rebudget/sim/cmp_config.h"
#include "rebudget/sim/shared_l2.h"

namespace rebudget::sim {

/** Per-epoch execution record of one core. */
struct CoreEpochStats
{
    /** Instructions represented by the sampled window. */
    double instructions = 0.0;
    /** Wall time of the window at the epoch's frequency (seconds). */
    double seconds = 0.0;
    /** Achieved performance (instructions per second). */
    double ips = 0.0;
    /** L2 accesses (post-L1). */
    double l2Accesses = 0.0;
    /** L2 misses (DRAM round trips). */
    double l2Misses = 0.0;
    /** Frequency the window ran at (GHz). */
    double freqGhz = 0.0;
    /** DRAM traffic of the window in bytes. */
    double memBytes = 0.0;
};

/** One core of the simulated CMP. */
class SimCore
{
  public:
    /**
     * @param id      core index (also selects the address-space base)
     * @param params  the application running on this core
     * @param config  machine configuration
     * @param seed    reference-stream seed
     */
    SimCore(uint32_t id, const app::AppParams &params,
            const CmpConfig &config, uint64_t seed);

    /**
     * Execute one epoch's sampled window.
     *
     * @param f_ghz      DVFS frequency for this epoch
     * @param l2         the shared L2
     * @param mem_lat_ns effective DRAM latency for this epoch
     * @param accesses   memory references to replay
     */
    CoreEpochStats runEpoch(double f_ghz, SharedL2 &l2, double mem_lat_ns,
                            uint64_t accesses);

    /**
     * @return an online profile built from this epoch's monitor state
     * (UMON miss curve + measured memory intensity), suitable for
     * constructing an app::AppUtilityModel.
     */
    app::AppProfile onlineProfile() const;

    /** Clear per-epoch monitor histograms (keeps shadow-tag state). */
    void resetEpochMonitors();

    /** @return the application parameters. */
    const app::AppParams &params() const { return params_; }

    /** @return the core id. */
    uint32_t id() const { return id_; }

  private:
    uint32_t id_;
    app::AppParams params_;
    CmpConfig config_;
    std::unique_ptr<trace::AddressGenerator> gen_;
    cache::SetAssocCache l1_;
    cache::UMonitor umon_;
    // Epoch counters for the online profile.
    uint64_t epochAccesses_ = 0;
    uint64_t epochL2Accesses_ = 0;
};

} // namespace rebudget::sim

#endif // REBUDGET_SIM_SIM_CORE_H_
