#ifndef REBUDGET_SIM_MEMORY_MODEL_H_
#define REBUDGET_SIM_MEMORY_MODEL_H_

/**
 * @file
 * Main-memory latency/bandwidth model (DDR3-1600 substitute).
 *
 * Off-chip latency is a fixed DRAM round trip plus a queuing component
 * that grows with channel utilization (an M/D/1-style term, capped).
 * Table 1 provisions 2 channels at 8 cores and 16 at 64 cores of
 * DDR3-1600 (12.8 GB/s per channel).
 */

#include <cstdint>

namespace rebudget::sim {

/** Memory system parameters. */
struct MemoryConfig
{
    /** Uncontended DRAM round trip in nanoseconds. */
    double baseLatencyNs = 70.0;
    /** Number of memory channels. */
    uint32_t channels = 16;
    /** Peak bandwidth per channel in GB/s (DDR3-1600). */
    double channelBandwidthGBs = 12.8;
    /** Utilization where the queuing term saturates. */
    double maxUtilization = 0.95;

    /** @return peak aggregate bandwidth in bytes per second. */
    double peakBytesPerSecond() const;

    /** @return the paper's channel provisioning for a core count. */
    static MemoryConfig forCores(uint32_t cores);
};

/** Latency model with utilization-dependent queuing. */
class MemoryModel
{
  public:
    explicit MemoryModel(const MemoryConfig &config = {});

    /**
     * @return the effective DRAM latency in nanoseconds at the given
     * aggregate demand (bytes per second); monotone non-decreasing.
     */
    double effectiveLatencyNs(double demand_bytes_per_second) const;

    /** @return the configuration. */
    const MemoryConfig &config() const { return config_; }

  private:
    MemoryConfig config_;
};

} // namespace rebudget::sim

#endif // REBUDGET_SIM_MEMORY_MODEL_H_
