#ifndef REBUDGET_SIM_SHARED_L2_H_
#define REBUDGET_SIM_SHARED_L2_H_

/**
 * @file
 * Shared last-level cache with per-core Talus shadow partitions.
 *
 * Each core's logical partition is realized as two physical partitions
 * in the underlying futility-scaled cache (Talus shadow partitions A and
 * B); a stable hash of the line address routes each access to one of
 * them.  Installing a (possibly fractional) region target computes the
 * Talus split from the core's current miss curve and programs the
 * futility controller with the two shadow sizes, making cache capacity a
 * continuous, convex resource as required by the market (Section 4.1.1).
 */

#include <cstdint>
#include <vector>

#include "rebudget/cache/futility_controller.h"
#include "rebudget/cache/miss_curve.h"
#include "rebudget/cache/set_assoc_cache.h"
#include "rebudget/sim/cmp_config.h"

namespace rebudget::sim {

/** Shared, Talus-partitioned, futility-scaled L2. */
class SharedL2
{
  public:
    explicit SharedL2(const CmpConfig &config);

    /**
     * Install a core's capacity target.
     *
     * @param core     core index
     * @param regions  target capacity in (possibly fractional) regions
     * @param curve    the core's current miss curve (for the Talus PoIs)
     */
    void setTargetRegions(uint32_t core, double regions,
                          const cache::MissCurve &curve);

    /**
     * One L2 access on behalf of a core.
     *
     * @return true on hit.
     */
    bool access(uint32_t core, uint64_t addr, bool write);

    /** @return a core's resident lines (both shadow partitions). */
    uint64_t occupancyLines(uint32_t core) const;

    /** @return a core's occupancy in regions. */
    double occupancyRegions(uint32_t core) const;

    /** @return a core's current capacity target in regions. */
    double targetRegions(uint32_t core) const;

    /** @return aggregated hit/miss statistics of a core. */
    cache::PartitionStats coreStats(uint32_t core) const;

    /** Reset all hit/miss statistics. */
    void resetStats();

    /** Force a futility-controller update (epoch boundary). */
    void updateController();

    /** @return the underlying cache (testing/diagnostics). */
    const cache::SetAssocCache &cache() const { return cache_; }

  private:
    CmpConfig config_;
    cache::SetAssocCache cache_;          // 2 partitions per core
    cache::FutilityController controller_;
    std::vector<double> fracA_;           // Talus stream split per core
    std::vector<double> targets_;         // regions per core
};

} // namespace rebudget::sim

#endif // REBUDGET_SIM_SHARED_L2_H_
