#ifndef REBUDGET_SIM_EPOCH_SIM_H_
#define REBUDGET_SIM_EPOCH_SIM_H_

/**
 * @file
 * Execution-driven epoch simulation (the paper's phase-2 methodology,
 * Section 6.3).
 *
 * Every 1 ms epoch the simulator: (1) runs each core's sampled reference
 * window through the real cache hierarchy at the core's current DVFS
 * frequency; (2) rebuilds each application's utility model from the
 * online monitors (UMON miss curve + measured memory intensity + power
 * model) -- no oracle profiles; (3) invokes the configured allocation
 * mechanism; and (4) installs the resulting cache targets (via Talus +
 * Futility Scaling) and RAPL power caps for the next epoch.
 *
 * Reported utilities normalize achieved performance by the application's
 * measured run-alone performance (solo calibration runs), making
 * efficiency weighted speedup (Equation 5).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rebudget/app/app_params.h"
#include "rebudget/app/sample_filter.h"
#include "rebudget/core/allocator.h"
#include "rebudget/faults/fault_injector.h"
#include "rebudget/sim/cmp_config.h"
#include "rebudget/sim/memory_model.h"
#include "rebudget/util/solver_stats.h"

namespace rebudget::sim {

/**
 * A context switch: at the start of the given absolute epoch (warmup
 * epochs count), the OS schedules a different application onto a core.
 * The incoming app starts with cold private caches and monitors, which
 * is exactly the perturbation the 1 ms reallocation epoch is meant to
 * absorb (Section 4.3).
 */
struct ContextSwitch
{
    /** Absolute epoch at whose start the switch happens. */
    uint32_t epoch = 0;
    /** Core being rescheduled. */
    uint32_t core = 0;
    /** Application switched in. */
    app::AppParams newApp;
};

/**
 * A roster event: at the start of the given absolute epoch a tenant
 * arrives on an idle core (cold caches, cold monitors, fresh stable
 * identity) or departs from a busy one (the core idles: zero cache
 * target, zero power cap).  Unlike a ContextSwitch -- which swaps WHO
 * runs on a core -- a tenant event changes HOW MANY players compete:
 * the market re-forms over the active cores only, with the machine's
 * total capacity unchanged, and surviving tenants keep their
 * identities, warm-start market state and (for banking mechanisms)
 * credit balances across the change.
 *
 * Events must target epoch >= 1: the initial mix is configured by the
 * simulator's app list, not by epoch-0 events.
 */
struct TenantEvent
{
    /** Absolute epoch at whose start the event applies (>= 1). */
    uint32_t epoch = 0;
    /** Core the tenant occupies / vacates. */
    uint32_t core = 0;
    /** True = arrival on an idle core, false = departure. */
    bool arrival = true;
    /** Application of an arriving tenant (ignored for departures). */
    app::AppParams app;
};

/** Simulation run parameters. */
struct EpochSimConfig
{
    /** Machine description. */
    CmpConfig cmp;
    /** Memory system description. */
    MemoryConfig memory;
    /** Measured epochs (after warmup). */
    uint32_t epochs = 20;
    /** Warmup epochs (caches fill, market settles). */
    uint32_t warmupEpochs = 5;
    /** Base seed for reference streams. */
    uint64_t seed = 42;
    /** Convexify online utility models (Talus; on in the paper). */
    bool convexify = true;
    /**
     * Market engine tuning, forwarded to the allocator every epoch.
     * With warmStart on (the default) each epoch's allocation is seeded
     * from the previous epoch's published equilibrium -- consecutive
     * epochs have similar profiles, so the market re-converges in far
     * fewer bidding-pricing rounds.
     */
    market::MarketConfig marketConfig;
    /** OS context switches to apply during the run. */
    std::vector<ContextSwitch> contextSwitches;
    /**
     * Tenant arrivals and departures to apply during the run (see
     * TenantEvent).  Empty -- the default -- leaves the fixed-roster
     * path byte-identical to the pre-roster simulator.
     */
    std::vector<TenantEvent> tenantEvents;
    /**
     * Non-convergence watchdog: after this many consecutive epochs whose
     * allocation failed or hit the iteration fail-safe, the simulator
     * abandons the market, installs an equal-share operating point, and
     * runs open-loop for watchdogCleanEpochs epochs before re-entering
     * the market from a cold start.  Clean runs converge every epoch,
     * so the watchdog never fires on them.
     */
    uint32_t watchdogFailureThreshold = 3;
    /** Equal-share epochs to run after a watchdog trip. */
    uint32_t watchdogCleanEpochs = 3;
    /**
     * Robustness filter applied to each core's measured L2 access rate
     * before the utility model is rebuilt.  Disabled by default: the
     * clean path stays bit-identical.
     */
    app::SampleFilterConfig sampleFilter;
    /**
     * Fault plan injected between the monitors and the market (default
     * disabled).  Streams are keyed by (this seed, core, epoch), so the
     * damage is bit-reproducible for a given configuration.
     */
    faults::FaultPlan faults;

    /** @return the paper's configuration for a core count. */
    static EpochSimConfig forCores(uint32_t cores);
};

/** One measured epoch of the whole machine. */
struct EpochRecord
{
    /** Achieved performance per core (instructions/second). */
    std::vector<double> ips;
    /** Utility per core: ips / solo ips, clamped to [0, 1]. */
    std::vector<double> utilities;
    /** Weighted speedup (sum of utilities). */
    double efficiency = 0.0;
    /** Installed frequency per core (GHz). */
    std::vector<double> freqsGhz;
    /** Installed cache target per core (regions). */
    std::vector<double> cacheTargets;
    /** Bidding-pricing rounds the allocator used this epoch. */
    int marketIterations = 0;
    /** ReBudget outer rounds this epoch. */
    int budgetRounds = 0;
    /**
     * False if any equilibrium solve this epoch hit the iteration
     * fail-safe (the installed operating point is the fail-safe
     * allocation, not a fixed point).
     */
    bool converged = true;
    /**
     * True when the watchdog had this epoch running (or falling back
     * to) the equal-share operating point instead of a market result.
     */
    bool fallback = false;
    /** Effective DRAM latency this epoch (ns). */
    double memLatencyNs = 0.0;
    /** Cores with an active tenant this epoch (== cores without churn). */
    uint32_t activePlayers = 0;
};

/** Aggregate result of one simulation. */
struct SimResult
{
    /** Mechanism simulated. */
    std::string mechanism;
    /** Per-epoch records (post-warmup only). */
    std::vector<EpochRecord> epochs;
    /** Mean weighted speedup over measured epochs. */
    double meanEfficiency = 0.0;
    /** Model-based envy-freeness at the final epoch. */
    double envyFreeness = 0.0;
    /** Mean utility per core over measured epochs. */
    std::vector<double> meanUtilities;
    /** Solo (run-alone) performance per core used for normalization. */
    std::vector<double> soloIps;
    /** Solver health telemetry merged across every epoch's allocate(). */
    util::SolverStats solverStats;
    /**
     * Epochs whose allocation failed (degenerate online model).  The
     * simulator keeps the previous epoch's operating point for such
     * epochs instead of aborting the run.
     */
    std::int64_t failedAllocations = 0;
    /** Faults actually injected (all zero when the plan is disabled). */
    faults::InjectionStats injectionStats;
};

/** Execution-driven CMP simulator with in-the-loop allocation. */
class EpochSimulator
{
  public:
    /**
     * @param config     run parameters
     * @param apps       one application per core
     * @param allocator  the allocation mechanism (non-owning; must
     *                   outlive the simulator)
     */
    EpochSimulator(EpochSimConfig config, std::vector<app::AppParams> apps,
                   const core::Allocator &allocator);

    /**
     * Run the simulation.  Context switches update the simulator's app
     * list as they execute, so a second run() continues from the
     * post-switch application mix; construct a fresh simulator for
     * independent repetitions.
     */
    SimResult run();

    /**
     * Measure run-alone performance of each application: a solo machine
     * with the full monitored cache and maximum frequency.
     */
    static std::vector<double> soloPerformances(
        const EpochSimConfig &config,
        const std::vector<app::AppParams> &apps);

  private:
    EpochSimConfig config_;
    std::vector<app::AppParams> apps_;
    const core::Allocator &allocator_;
};

} // namespace rebudget::sim

#endif // REBUDGET_SIM_EPOCH_SIM_H_
