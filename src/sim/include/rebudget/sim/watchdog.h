#ifndef REBUDGET_SIM_WATCHDOG_H_
#define REBUDGET_SIM_WATCHDOG_H_

/**
 * @file
 * Non-convergence watchdog shared by the epoch drivers.
 *
 * Both epoch-sequencing consumers -- the execution-driven
 * sim::EpochSimulator and the serve::Shard loop inside rebudgetd --
 * implement the same failure policy: after a run of consecutive epochs
 * whose allocation failed or hit the iteration fail-safe, stop trusting
 * the market, install a safe open-loop operating point (equal share),
 * drop the warm-start chain, and only re-enter the market from a cold
 * start after a fixed number of clean open-loop epochs.  This class
 * holds exactly that state machine so the two drivers cannot drift
 * apart; what "install the fallback" means stays with the caller
 * (cache targets + RAPL caps in the simulator, an equal-share
 * allocation snapshot in the daemon).
 *
 * Usage per epoch:
 *   if (wd.consumeFallbackEpoch()) { run open-loop; } else {
 *       solve; if (wd.observe(healthy)) install fallback + drop warm; }
 */

#include <cstdint>

namespace rebudget::sim {

/** Consecutive-failure watchdog with a fixed open-loop recovery window. */
class ConvergenceWatchdog
{
  public:
    /**
     * @param failure_threshold  consecutive bad epochs that trip the
     *                           watchdog (0 disables it entirely)
     * @param clean_epochs       open-loop epochs to run after a trip
     */
    explicit ConvergenceWatchdog(uint32_t failure_threshold = 3,
                                 uint32_t clean_epochs = 3)
        : threshold_(failure_threshold), clean_(clean_epochs)
    {
    }

    /**
     * Call FIRST each epoch: true means this epoch belongs to the
     * open-loop recovery window (one window epoch is consumed) and the
     * caller must not run the market.
     */
    bool consumeFallbackEpoch()
    {
        if (remaining_ == 0)
            return false;
        --remaining_;
        return true;
    }

    /**
     * Record the health of a market epoch (healthy = allocation Ok AND
     * converged).  @return true when this observation trips the
     * watchdog: the caller installs its fallback operating point and
     * drops its warm-start chain; the next clean_epochs epochs will
     * report consumeFallbackEpoch() == true.
     */
    bool observe(bool healthy)
    {
        if (healthy) {
            consecutive_bad_ = 0;
            return false;
        }
        if (threshold_ == 0 || ++consecutive_bad_ < threshold_)
            return false;
        consecutive_bad_ = 0;
        remaining_ = clean_;
        return true;
    }

    /** @return true while the recovery window has epochs left. */
    bool inFallback() const { return remaining_ > 0; }

    /** Forget all history (e.g. after an operator reset). */
    void reset()
    {
        consecutive_bad_ = 0;
        remaining_ = 0;
    }

  private:
    uint32_t threshold_;
    uint32_t clean_;
    uint32_t consecutive_bad_ = 0;
    uint32_t remaining_ = 0;
};

} // namespace rebudget::sim

#endif // REBUDGET_SIM_WATCHDOG_H_
