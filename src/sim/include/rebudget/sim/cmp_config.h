#ifndef REBUDGET_SIM_CMP_CONFIG_H_
#define REBUDGET_SIM_CMP_CONFIG_H_

/**
 * @file
 * Chip-multiprocessor configuration (paper Table 1).
 *
 * The paper evaluates 8- and 64-core machines with 512 kB of shared L2
 * and 10 W of power budget per core, 128 kB cache regions, per-core DVFS
 * between 0.8 and 4.0 GHz, and 1 ms allocation epochs.
 */

#include <cstdint>

#include "rebudget/app/perf_model.h"
#include "rebudget/cache/cache_config.h"
#include "rebudget/cache/umon.h"
#include "rebudget/power/power_model.h"

namespace rebudget::sim {

/** Table 1 machine description. */
struct CmpConfig
{
    /** Number of cores (8 or 64 in the paper). */
    uint32_t cores = 64;
    /** Chip power budget per core in watts. */
    double powerPerCoreWatts = 10.0;
    /** Shared L2 capacity per core in bytes. */
    uint64_t l2BytesPerCore = 512 * 1024;
    /** Shared L2 associativity (16 at 8 cores, 32 at 64 cores). */
    uint32_t l2Assoc = 32;
    /** Cache line size in bytes. */
    uint32_t lineBytes = 64;
    /** Cache region (allocation granule) in bytes. */
    uint64_t regionBytes = 128 * 1024;
    /** Private L1D geometry. */
    cache::CacheConfig l1{32 * 1024, 4, 64};
    /** Utility monitor parameters. */
    cache::UMonConfig umon;
    /** Power/thermal model constants. */
    power::PowerModelConfig power;
    /** Core timing constants (per-app CPI is taken from the app). */
    app::TimingParams timing;
    /** Allocation epoch length in seconds. */
    double epochSeconds = 1e-3;
    /** Memory references simulated per core per epoch (sampling). */
    uint64_t accessesPerEpochPerCore = 10000;

    /** @return total chip power budget in watts. */
    double chipBudgetWatts() const;

    /** @return shared L2 geometry. */
    cache::CacheConfig l2Config() const;

    /** @return total cache regions in the shared L2. */
    uint32_t totalRegions() const;

    /** @return cache lines per region. */
    uint64_t linesPerRegion() const;

    /** Validate the configuration; calls util::fatal() on errors. */
    void validate() const;

    /** @return the paper's configuration for a core count (8 or 64). */
    static CmpConfig forCores(uint32_t cores);
};

} // namespace rebudget::sim

#endif // REBUDGET_SIM_CMP_CONFIG_H_
