#include "rebudget/sim/cmp_config.h"

#include "rebudget/util/logging.h"

namespace rebudget::sim {

double
CmpConfig::chipBudgetWatts() const
{
    return powerPerCoreWatts * cores;
}

cache::CacheConfig
CmpConfig::l2Config() const
{
    return cache::CacheConfig{l2BytesPerCore * cores, l2Assoc, lineBytes};
}

uint32_t
CmpConfig::totalRegions() const
{
    return static_cast<uint32_t>(l2BytesPerCore * cores / regionBytes);
}

uint64_t
CmpConfig::linesPerRegion() const
{
    return regionBytes / lineBytes;
}

void
CmpConfig::validate() const
{
    if (cores == 0)
        util::fatal("CMP requires at least one core");
    l2Config().validate();
    l1.validate();
    power.validate();
    if (regionBytes == 0 || l2BytesPerCore % regionBytes != 0)
        util::fatal("per-core L2 must be a whole number of regions");
    if (epochSeconds <= 0.0)
        util::fatal("epoch length must be positive");
    if (accessesPerEpochPerCore == 0)
        util::fatal("per-epoch access sample must be positive");
}

CmpConfig
CmpConfig::forCores(uint32_t n)
{
    CmpConfig cfg;
    cfg.cores = n;
    cfg.l2Assoc = n <= 8 ? 16 : 32;
    cfg.validate();
    return cfg;
}

} // namespace rebudget::sim
