#include "rebudget/sim/sim_core.h"

#include "rebudget/util/logging.h"

namespace rebudget::sim {

SimCore::SimCore(uint32_t id, const app::AppParams &params,
                 const CmpConfig &config, uint64_t seed)
    : id_(id), params_(params), config_(config),
      gen_(params.makeGenerator(static_cast<uint64_t>(id) << 40, seed)),
      l1_(config.l1, /*partitions=*/1), umon_(config.umon)
{
}

CoreEpochStats
SimCore::runEpoch(double f_ghz, SharedL2 &l2, double mem_lat_ns,
                  uint64_t accesses)
{
    uint64_t l2_accesses = 0;
    uint64_t l2_misses = 0;
    const cache::PartitionStats wb_before = l2.coreStats(id_);
    for (uint64_t k = 0; k < accesses; ++k) {
        const trace::Access a = gen_->next();
        const cache::AccessResult l1r = l1_.access(0, a.addr, a.write);
        if (l1r.hit)
            continue;
        umon_.observe(a.addr);
        ++l2_accesses;
        if (!l2.access(id_, a.addr, a.write))
            ++l2_misses;
    }
    const uint64_t writebacks =
        l2.coreStats(id_).writebacks - wb_before.writebacks;
    epochAccesses_ += accesses;
    epochL2Accesses_ += l2_accesses;

    CoreEpochStats stats;
    stats.instructions =
        static_cast<double>(accesses) / params_.memPerInstr;
    stats.l2Accesses = static_cast<double>(l2_accesses);
    stats.l2Misses = static_cast<double>(l2_misses);
    stats.freqGhz = f_ghz;
    app::TimingParams timing = config_.timing;
    timing.computeCpi = params_.computeCpi;
    timing.memLatencyNs = mem_lat_ns;
    const app::WorkCounts work{stats.instructions, stats.l2Accesses,
                               stats.l2Misses};
    stats.seconds = app::execTimeSeconds(work, f_ghz, timing);
    stats.ips = stats.seconds > 0.0 ? stats.instructions / stats.seconds
                                    : 0.0;
    // DRAM traffic: fills for every miss plus writebacks of evicted
    // dirty lines.
    stats.memBytes = (stats.l2Misses + static_cast<double>(writebacks)) *
                     static_cast<double>(config_.lineBytes);
    return stats;
}

app::AppProfile
SimCore::onlineProfile() const
{
    app::AppProfile profile;
    profile.params = params_;
    profile.timing = config_.timing;
    profile.timing.computeCpi = params_.computeCpi;
    profile.l2Curve = umon_.missCurve();
    profile.instructions = static_cast<double>(epochAccesses_) /
                           params_.memPerInstr;
    profile.l2AccessesPerInstr =
        profile.instructions > 0.0
            ? static_cast<double>(epochL2Accesses_) / profile.instructions
            : 0.0;
    return profile;
}

void
SimCore::resetEpochMonitors()
{
    umon_.resetHistogram();
    epochAccesses_ = 0;
    epochL2Accesses_ = 0;
}

} // namespace rebudget::sim
