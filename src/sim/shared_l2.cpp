#include "rebudget/sim/shared_l2.h"

#include <algorithm>
#include <cmath>

#include "rebudget/cache/talus.h"
#include "rebudget/util/logging.h"

namespace rebudget::sim {

SharedL2::SharedL2(const CmpConfig &config)
    : config_(config), cache_(config.l2Config(), 2 * config.cores),
      controller_(cache_), fracA_(config.cores, 0.0),
      targets_(config.cores, 0.0)
{
    // Start from an equal static partitioning: shadow partition B holds
    // the whole share, A is idle.
    const double share = static_cast<double>(config_.totalRegions()) /
                         config_.cores;
    const uint64_t lpr = config_.linesPerRegion();
    for (uint32_t c = 0; c < config_.cores; ++c) {
        targets_[c] = share;
        controller_.setTargetLines(2 * c, 1);
        controller_.setTargetLines(
            2 * c + 1, static_cast<uint64_t>(share * lpr));
    }
}

void
SharedL2::setTargetRegions(uint32_t core, double regions,
                           const cache::MissCurve &curve)
{
    REBUDGET_ASSERT(core < config_.cores, "core out of range");
    const double max_r = static_cast<double>(config_.totalRegions());
    const double target = std::clamp(regions, 0.0, max_r);
    targets_[core] = target;
    const cache::TalusSplit split = computeTalusSplit(curve, target);
    fracA_[core] = split.fracA;
    const double lpr = static_cast<double>(config_.linesPerRegion());
    // The Talus split covers capacities up to the monitored maximum;
    // any surplus beyond the curve's range is given to partition B.
    const double covered = split.sizeARegions + split.sizeBRegions;
    const double surplus = std::max(0.0, target - covered);
    const auto lines_a = static_cast<uint64_t>(
        std::llround(split.sizeARegions * lpr));
    const auto lines_b = static_cast<uint64_t>(
        std::llround((split.sizeBRegions + surplus) * lpr));
    controller_.setTargetLines(2 * core, std::max<uint64_t>(1, lines_a));
    controller_.setTargetLines(2 * core + 1,
                               std::max<uint64_t>(1, lines_b));
}

bool
SharedL2::access(uint32_t core, uint64_t addr, bool write)
{
    REBUDGET_ASSERT(core < config_.cores, "core out of range");
    const uint64_t line = addr / config_.lineBytes;
    const uint32_t part =
        2 * core + (cache::talusRouteToA(line, fracA_[core]) ? 0 : 1);
    const cache::AccessResult r = cache_.access(part, addr, write);
    controller_.tick();
    return r.hit;
}

uint64_t
SharedL2::occupancyLines(uint32_t core) const
{
    REBUDGET_ASSERT(core < config_.cores, "core out of range");
    return cache_.occupancy(2 * core) + cache_.occupancy(2 * core + 1);
}

double
SharedL2::occupancyRegions(uint32_t core) const
{
    return static_cast<double>(occupancyLines(core)) /
           static_cast<double>(config_.linesPerRegion());
}

double
SharedL2::targetRegions(uint32_t core) const
{
    REBUDGET_ASSERT(core < config_.cores, "core out of range");
    return targets_[core];
}

cache::PartitionStats
SharedL2::coreStats(uint32_t core) const
{
    REBUDGET_ASSERT(core < config_.cores, "core out of range");
    const cache::PartitionStats &a = cache_.stats(2 * core);
    const cache::PartitionStats &b = cache_.stats(2 * core + 1);
    cache::PartitionStats out;
    out.hits = a.hits + b.hits;
    out.misses = a.misses + b.misses;
    out.writebacks = a.writebacks + b.writebacks;
    return out;
}

void
SharedL2::resetStats()
{
    cache_.resetStats();
}

void
SharedL2::updateController()
{
    controller_.update();
}

} // namespace rebudget::sim
