/**
 * @file
 * Churn scenarios (eval/churn.h): the schedule generator, the
 * per-bundle scenario loop with identity-migrated warm state, and the
 * churn aggregation.  BundleRunner's churn entry points live here to
 * keep bundle_runner.cpp focused on the fixed-roster sweep.
 */

#include "rebudget/eval/churn.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "rebudget/core/karma_allocator.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/market/metrics.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/rng.h"
#include "rebudget/util/thread_pool.h"

namespace rebudget::eval {

namespace {

using util::SolveStatus;
using util::StatusCode;

/** Sub-stream keys for the schedule streams (arbitrary, fixed). */
constexpr std::uint64_t kLeaveStream = 0x6c65617665ULL; // "leave"
constexpr std::uint64_t kJoinStream = 0x6a6f696eULL;    // "join"
/** Per-epoch fault-scope mixer (odd, so the map is a bijection). */
constexpr std::uint64_t kEpochScope = 0x9e3779b97f4a7c15ULL;

} // namespace

std::optional<std::string>
ChurnSpec::validate() const
{
    if (epochs < 1)
        return "churn spec needs epochs >= 1";
    if (joinRate < 0.0 || joinRate > 1.0)
        return "churn join rate must be in [0, 1]";
    if (leaveRate < 0.0 || leaveRate > 1.0)
        return "churn leave rate must be in [0, 1]";
    if (minPlayers < 2)
        return "churn min-players must be >= 2 (a market needs "
               "competition)";
    if (maxPlayers != 0 && maxPlayers < minPlayers)
        return "churn max-players must be 0 (auto) or >= min-players";
    return std::nullopt;
}

util::Expected<ChurnSpec>
ChurnSpec::parse(const std::string &text)
{
    ChurnSpec spec;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t end = text.find(',', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string token = text.substr(pos, end - pos);
        pos = end + 1;
        if (token.empty())
            continue;
        const size_t eq = token.find('=');
        if (eq == std::string::npos) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "churn spec token '%s' is not key=value", token.c_str());
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        char *parse_end = nullptr;
        const double num = std::strtod(value.c_str(), &parse_end);
        if (parse_end == value.c_str() || *parse_end != '\0') {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "churn spec value '%s' for key '%s' is not a number",
                value.c_str(), key.c_str());
        }
        if (key == "epochs") {
            spec.epochs = static_cast<std::uint32_t>(num);
        } else if (key == "join") {
            spec.joinRate = num;
        } else if (key == "leave") {
            spec.leaveRate = num;
        } else if (key == "min-players") {
            spec.minPlayers = static_cast<std::uint32_t>(num);
        } else if (key == "max-players") {
            spec.maxPlayers = static_cast<std::uint32_t>(num);
        } else if (key == "seed") {
            spec.seed = static_cast<std::uint64_t>(num);
        } else {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "unknown churn spec key '%s' (known: epochs, join, "
                "leave, min-players, max-players, seed)", key.c_str());
        }
    }
    if (const auto err = spec.validate()) {
        return SolveStatus::error(StatusCode::InvalidArgument, "%s",
                                  err->c_str());
    }
    return spec;
}

std::string
ChurnSpec::describe() const
{
    char buf[160];
    if (maxPlayers == 0) {
        std::snprintf(buf, sizeof(buf),
                      "%u epochs, join %.2f, leave %.2f, players "
                      "[%u, 2x initial], seed %llu",
                      epochs, joinRate, leaveRate, minPlayers,
                      static_cast<unsigned long long>(seed));
    } else {
        std::snprintf(buf, sizeof(buf),
                      "%u epochs, join %.2f, leave %.2f, players "
                      "[%u, %u], seed %llu",
                      epochs, joinRate, leaveRate, minPlayers,
                      maxPlayers,
                      static_cast<unsigned long long>(seed));
    }
    return buf;
}

std::vector<ChurnEvent>
makeChurnSchedule(const ChurnSpec &spec,
                  const std::vector<std::string> &initial_apps,
                  std::uint64_t scope)
{
    std::vector<ChurnEvent> schedule;
    const size_t n0 = initial_apps.size();
    if (n0 == 0 || spec.validate())
        return schedule;
    const size_t max_players =
        spec.maxPlayers != 0 ? spec.maxPlayers : 2 * n0;

    std::vector<core::PlayerId> ids;
    ids.reserve(n0);
    for (size_t i = 0; i < n0; ++i)
        ids.push_back(static_cast<core::PlayerId>(i));
    core::PlayerId next_id = static_cast<core::PlayerId>(n0);

    for (std::uint32_t e = 1; e < spec.epochs; ++e) {
        // Departures first: a slot freed this epoch can be refilled by
        // an arrival in the same epoch.  Each stream is keyed by
        // (seed, scope, epoch) alone -- a pure value function shared by
        // every mechanism and job count.
        util::Rng leave_rng =
            util::Rng::forStream(spec.seed, {kLeaveStream, scope, e});
        const std::vector<core::PlayerId> snapshot = ids;
        for (const core::PlayerId id : snapshot) {
            if (ids.size() <= spec.minPlayers)
                break;
            if (!leave_rng.bernoulli(spec.leaveRate))
                continue;
            ids.erase(std::find(ids.begin(), ids.end(), id));
            ChurnEvent ev;
            ev.epoch = e;
            ev.join = false;
            ev.id = id;
            schedule.push_back(std::move(ev));
        }
        util::Rng join_rng =
            util::Rng::forStream(spec.seed, {kJoinStream, scope, e});
        for (size_t slot = 0; slot < n0; ++slot) {
            if (ids.size() >= max_players)
                break;
            if (!join_rng.bernoulli(spec.joinRate))
                continue;
            ChurnEvent ev;
            ev.epoch = e;
            ev.join = true;
            ev.id = next_id++;
            ev.app = initial_apps[join_rng.uniformInt(
                static_cast<std::uint64_t>(n0))];
            ids.push_back(ev.id);
            schedule.push_back(std::move(ev));
        }
    }
    return schedule;
}

namespace {

/** Per-identity accumulation across the epochs a tenant was scored. */
struct TenantAccum
{
    std::string app;
    std::uint32_t joinEpoch = 0;
    std::uint32_t scoredEpochs = 0;
    bool departed = false;
    double utilitySum = 0.0;
    double bestOtherSum = 0.0;
    double budgetSum = 0.0;
    double lambdaSum = 0.0;
};

/** One mechanism's mutable scenario state. */
struct ScenarioState
{
    core::KarmaBank bank;
    market::SolveWorkspace ws;
    /** Last published equilibrium, and the roster it was solved on. */
    std::shared_ptr<const market::EquilibriumResult> warm;
    core::Roster warmRoster;
    /** Migration seed slot (reused across epochs). */
    market::EquilibriumResult migrated;
    /** Last scored budgets by identity (departure bookkeeping). */
    std::map<core::PlayerId, double> lastBudgets;
};

} // namespace

ChurnEvaluation
BundleRunner::evaluateChurn(const workloads::Bundle &bundle,
                            const ChurnSpec &spec) const
{
    ChurnEvaluation ev;
    ev.bundle = bundle.name;
    ev.category = bundle.category;
    if (!status_.ok()) {
        ev.skipped = true;
        ev.skipReason = status_.toString();
        return ev;
    }
    if (const auto err = spec.validate()) {
        ev.skipped = true;
        ev.skipReason = *err;
        return ev;
    }

    // The initial bundle problem fixes the machine: capacities stay at
    // the full-roster size for the whole scenario.
    BundleProblem base;
    try {
        base = makeBundleProblem(bundle.appNames, options_.regionsPerCore,
                                 options_.wattsPerCore,
                                 options_.convexify);
    } catch (const util::FatalError &e) {
        ev.skipped = true;
        ev.skipReason = e.what();
        util::warn("skipping churn bundle %s: %s", bundle.name.c_str(),
                   e.what());
        return ev;
    }
    if (const auto err = core::tryValidateProblem(base.problem)) {
        ev.skipped = true;
        ev.skipReason = *err;
        util::warn("skipping churn bundle %s: %s", bundle.name.c_str(),
                   err->c_str());
        return ev;
    }
    const std::vector<double> capacities = base.problem.capacities;
    const size_t m_resources = capacities.size();
    const std::uint64_t scope = util::hashId(bundle.name);

    // Truth models by identity.  Newcomers draw from the bundle's own
    // app mix; catalog models are process-memoized, so this is a map
    // lookup, not a grid sampling.
    std::map<core::PlayerId, std::shared_ptr<const app::AppUtilityModel>>
        truth;
    std::map<core::PlayerId, std::string> apps;
    for (size_t i = 0; i < base.models.size(); ++i) {
        truth[static_cast<core::PlayerId>(i)] = base.models[i];
        apps[static_cast<core::PlayerId>(i)] = bundle.appNames[i];
    }
    ev.schedule = makeChurnSchedule(spec, bundle.appNames, scope);
    for (const ChurnEvent &event : ev.schedule) {
        if (!event.join)
            continue;
        try {
            BundleProblem one = makeBundleProblem(
                {event.app}, options_.regionsPerCore,
                options_.wattsPerCore, options_.convexify);
            truth[event.id] = one.models[0];
            apps[event.id] = event.app;
        } catch (const util::FatalError &e) {
            ev.skipped = true;
            ev.skipReason = e.what();
            util::warn("skipping churn bundle %s: newcomer app %s: %s",
                       bundle.name.c_str(), event.app.c_str(), e.what());
            return ev;
        }
    }

    const faults::FaultInjector injector(options_.faultPlan);
    const bool faults_on = options_.faultPlan.enabled();

    ev.results.reserve(mechanisms_.size());
    for (size_t mi = 0; mi < mechanisms_.size(); ++mi) {
        const core::Allocator *mech = mechanisms_[mi];
        MechanismChurnResult res;
        res.mechanism = names_[mi];
        ScenarioState state;
        core::Roster roster;
        std::map<core::PlayerId, TenantAccum> accum;
        std::vector<core::PlayerId> first_seen;
        size_t schedule_pos = 0;

        for (size_t i = 0; i < bundle.appNames.size(); ++i) {
            const auto id = static_cast<core::PlayerId>(i);
            roster.add(id);
            accum[id].app = apps[id];
            first_seen.push_back(id);
        }

        double eff_sum = 0.0, ef_sum = 0.0;
        std::uint32_t scored_epochs = 0;

        for (std::uint32_t e = 0; e < spec.epochs; ++e) {
            // Apply this epoch's roster delta (epoch 0 has none).
            core::RosterChange change;
            while (schedule_pos < ev.schedule.size() &&
                   ev.schedule[schedule_pos].epoch <= e) {
                const ChurnEvent &event = ev.schedule[schedule_pos++];
                if (event.join) {
                    roster.add(event.id);
                    change.joined.push_back(event.id);
                    TenantAccum &a = accum[event.id];
                    a.app = apps[event.id];
                    a.joinEpoch = e;
                    first_seen.push_back(event.id);
                } else {
                    roster.remove(event.id);
                    core::RosterChange::Departure dep;
                    dep.id = event.id;
                    const auto it = state.lastBudgets.find(event.id);
                    if (it != state.lastBudgets.end())
                        dep.lastBudget = it->second;
                    change.departed.push_back(dep);
                    accum[event.id].departed = true;
                }
            }
            res.stats.tenantsJoined +=
                static_cast<std::int64_t>(change.joined.size());
            res.stats.tenantsDeparted +=
                static_cast<std::int64_t>(change.departed.size());

            // Truth problem in the roster's dense order.
            const size_t n = roster.size();
            core::AllocationProblem problem;
            problem.capacities = capacities;
            problem.marketConfig = options_.marketConfig;
            problem.workspace = &state.ws;
            problem.creditBank = &state.bank;
            problem.playerIds = roster.ids();
            problem.models.reserve(n);
            for (size_t i = 0; i < n; ++i)
                problem.models.push_back(truth[roster.idAt(i)].get());

            // Faulted view: models re-damaged every epoch with streams
            // keyed by (plan seed, bundle+epoch scope, tenant id) --
            // identity-stable, so a surviving tenant's faults do not
            // depend on its dense index drifting under churn.
            core::AllocationProblem solve_problem = problem;
            std::vector<std::shared_ptr<const market::UtilityModel>>
                faulted_keep;
            if (faults_on) {
                const std::uint64_t epoch_scope =
                    util::mix64(scope ^ (kEpochScope * (e + 1)));
                faulted_keep.reserve(n);
                for (size_t i = 0; i < n; ++i) {
                    const core::PlayerId id = roster.idAt(i);
                    auto damaged = injector.perturbModel(
                        truth[id], epoch_scope,
                        static_cast<size_t>(id), ev.injectionStats,
                        &ev.hardeningStats);
                    auto reported = injector.maybeLiar(
                        damaged, epoch_scope, static_cast<size_t>(id),
                        ev.injectionStats);
                    faulted_keep.push_back(reported);
                    solve_problem.models[i] = reported.get();
                }
            }

            if (change.any())
                mech->onRosterChange(change, solve_problem);

            // Warm-state migration by identity: survivors carry their
            // equilibrium rows across the roster change instead of
            // cold-starting the whole market.
            const market::EquilibriumResult *seed = nullptr;
            if (state.warm != nullptr) {
                if (change.any() ||
                    roster.ids() != state.warmRoster.ids()) {
                    const size_t migrated = market::migrateEquilibriumInto(
                        *state.warm, roster.mapFrom(state.warmRoster),
                        m_resources, state.migrated);
                    if (state.migrated.status.ok()) {
                        seed = &state.migrated;
                        res.stats.migratedWarmSeeds +=
                            static_cast<std::int64_t>(migrated);
                    }
                } else {
                    seed = state.warm.get();
                }
            }
            solve_problem.warmStart = seed;

            ChurnEpochRecord rec;
            rec.epoch = e;
            rec.players = static_cast<std::uint32_t>(n);
            rec.joins = static_cast<std::uint32_t>(change.joined.size());
            rec.leaves =
                static_cast<std::uint32_t>(change.departed.size());

            core::AllocationOutcome out;
            try {
                out = mech->allocate(solve_problem);
            } catch (const util::FatalError &err) {
                out.status = SolveStatus::error(
                    StatusCode::Aborted, "mechanism %s threw: %s",
                    res.mechanism.c_str(), err.what());
            }
            res.stats.merge(out.stats);
            rec.marketIterations = out.marketIterations;
            if (!out.status.ok()) {
                // Epoch failure degrades to an unscored epoch; the run
                // continues (zero-fatals contract) and the warm chain
                // keeps its last good seed.
                if (res.status.ok())
                    res.status = out.status;
                res.epochs.push_back(rec);
                util::warn("churn bundle %s epoch %u: mechanism %s "
                           "failed: %s", bundle.name.c_str(), e,
                           res.mechanism.c_str(),
                           out.status.toString().c_str());
                continue;
            }

            rec.scored = true;
            rec.converged = out.converged;
            res.converged = res.converged && out.converged;
            rec.efficiency =
                market::efficiency(problem.models, out.alloc);
            rec.envyFreeness =
                market::envyFreeness(problem.models, out.alloc);
            if (!out.lambdas.empty()) {
                if (const auto mur =
                        market::marketUtilityRange(out.lambdas);
                    mur.ok())
                    rec.mur = mur.value();
            }
            if (!out.budgets.empty()) {
                if (const auto mbr =
                        market::marketBudgetRange(out.budgets);
                    mbr.ok())
                    rec.mbr = mbr.value();
            }
            eff_sum += rec.efficiency;
            ef_sum += rec.envyFreeness;
            ++scored_epochs;

            // Per-identity accumulation against TRUTH models: lifetime
            // fairness measures what each tenant actually got, not what
            // a lying model claimed.
            for (size_t i = 0; i < n; ++i) {
                const core::PlayerId id = roster.idAt(i);
                TenantAccum &a = accum[id];
                const double own =
                    problem.models[i]->utility(out.alloc[i]);
                double best = own;
                for (size_t j = 0; j < n; ++j) {
                    if (j != i)
                        best = std::max(
                            best,
                            problem.models[i]->utility(out.alloc[j]));
                }
                a.utilitySum += own;
                a.bestOtherSum += best;
                if (i < out.budgets.size()) {
                    a.budgetSum += out.budgets[i];
                    state.lastBudgets[id] = out.budgets[i];
                }
                if (i < out.lambdas.size())
                    a.lambdaSum += out.lambdas[i];
                a.scoredEpochs += 1;
            }
            res.epochs.push_back(rec);
            if (out.equilibrium != nullptr) {
                state.warm = out.equilibrium;
                state.warmRoster = roster;
            }
        }

        // Lifetime metrics, in first-seen order.
        std::vector<double> own_sums, best_sums;
        std::vector<double> mean_lambdas, mean_budgets;
        res.tenants.reserve(first_seen.size());
        for (const core::PlayerId id : first_seen) {
            const TenantAccum &a = accum[id];
            TenantLifetime t;
            t.id = id;
            t.app = a.app;
            t.joinEpoch = a.joinEpoch;
            t.epochsPresent = a.scoredEpochs;
            t.departed = a.departed;
            t.utilitySum = a.utilitySum;
            t.bestOtherUtilitySum = a.bestOtherSum;
            if (a.scoredEpochs > 0) {
                const double inv = 1.0 / a.scoredEpochs;
                t.meanBudget = a.budgetSum * inv;
                t.meanLambda = a.lambdaSum * inv;
                own_sums.push_back(a.utilitySum);
                best_sums.push_back(a.bestOtherSum);
                mean_lambdas.push_back(t.meanLambda);
                mean_budgets.push_back(t.meanBudget);
            }
            res.tenants.push_back(std::move(t));
        }
        res.lifetimeEnvyFreeness =
            market::lifetimeEnvyFreeness(own_sums, best_sums);
        if (!mean_lambdas.empty()) {
            if (const auto mur = market::marketUtilityRange(mean_lambdas);
                mur.ok())
                res.cumulativeMur = mur.value();
        }
        if (!mean_budgets.empty()) {
            if (const auto mbr = market::marketBudgetRange(mean_budgets);
                mbr.ok())
                res.cumulativeMbr = mbr.value();
        }
        if (scored_epochs > 0) {
            res.meanEfficiency = eff_sum / scored_epochs;
            res.meanEnvyFreeness = ef_sum / scored_epochs;
        }
        ev.results.push_back(std::move(res));
    }
    return ev;
}

std::vector<ChurnEvaluation>
BundleRunner::runChurn(const std::vector<workloads::Bundle> &bundles,
                       const ChurnSpec &spec) const
{
    // Same pre-warm + bundle-partitioned parallelism as run(): every
    // scenario depends only on its own bundle, so results are
    // byte-identical at any job count.
    app::catalogProfiles();

    std::vector<ChurnEvaluation> results(bundles.size());
    util::ThreadPool pool(options_.jobs);
    pool.parallelFor(bundles.size(), [&](size_t i) {
        results[i] = evaluateChurn(bundles[i], spec);
    });
    return results;
}

std::vector<MechanismSweepStats>
aggregateChurnStats(const std::vector<ChurnEvaluation> &evals,
                    const std::vector<std::string> &mechanism_names)
{
    std::vector<MechanismSweepStats> agg(mechanism_names.size());
    for (size_t m = 0; m < mechanism_names.size(); ++m)
        agg[m].mechanism = mechanism_names[m];
    for (const auto &ev : evals) {
        if (ev.skipped)
            continue;
        const size_t count =
            std::min(ev.results.size(), mechanism_names.size());
        for (size_t m = 0; m < count; ++m) {
            agg[m].bundlesEvaluated += 1;
            if (ev.results[m].converged && ev.results[m].status.ok())
                agg[m].bundlesConverged += 1;
            agg[m].stats.merge(ev.results[m].stats);
        }
    }
    return agg;
}

} // namespace rebudget::eval
