#include "rebudget/eval/bundle_runner.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "rebudget/eval/problem_builder.h"
#include "rebudget/market/metrics.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/rng.h"
#include "rebudget/util/thread_pool.h"

namespace rebudget::eval {

// Problem construction now lives in eval::ProblemBuilder (shared with
// the serving daemon); these overloads keep the sweep engine's original
// one-shot, fatal-on-unknown-app contract on top of it.

BundleProblem
makeBundleProblem(const std::vector<std::string> &app_names,
                  const ProfileLookup &lookup, double regions_per_core,
                  double watts_per_core, bool convexify)
{
    ProblemBuilder builder(
        {regions_per_core, watts_per_core, convexify}, lookup);
    const util::SolveStatus status = builder.addApps(app_names);
    if (!status.ok())
        util::fatal("%s", status.toString().c_str());
    return builder.build();
}

BundleProblem
makeBundleProblem(const std::vector<std::string> &app_names,
                  double regions_per_core, double watts_per_core,
                  bool convexify)
{
    ProblemBuilder builder({regions_per_core, watts_per_core, convexify});
    const util::SolveStatus status = builder.addApps(app_names);
    if (!status.ok())
        util::fatal("%s", status.toString().c_str());
    return builder.build();
}

std::vector<std::string>
syntheticAppNames(size_t players, uint64_t seed)
{
    const auto &profiles = app::catalogProfiles();
    util::Rng rng = util::Rng::forStream(
        seed, {util::hashId("synthetic-roster")});
    std::vector<std::string> names;
    names.reserve(players);
    for (size_t i = 0; i < players; ++i)
        names.push_back(
            profiles[rng.uniformInt(profiles.size())].params.name);
    return names;
}

BundleProblem
makeSyntheticBundleProblem(size_t players, uint64_t seed,
                           double regions_per_core, double watts_per_core,
                           bool convexify)
{
    return makeBundleProblem(syntheticAppNames(players, seed),
                             regions_per_core, watts_per_core, convexify);
}

MechanismScore
scoreOutcome(const core::AllocationProblem &problem,
             const core::AllocationOutcome &outcome)
{
    MechanismScore s;
    s.mechanism = outcome.mechanism;
    s.status = outcome.status;
    s.converged = outcome.converged;
    s.stats = outcome.stats;
    s.marketIterations = outcome.marketIterations;
    s.budgetRounds = outcome.budgetRounds;
    if (!s.status.ok())
        return s; // failed allocation: nothing to score
    s.efficiency = market::efficiency(problem.models, outcome.alloc);
    s.envyFreeness = market::envyFreeness(problem.models, outcome.alloc);
    if (!outcome.lambdas.empty()) {
        const auto mur = market::marketUtilityRange(outcome.lambdas);
        if (mur.ok())
            s.mur = mur.value();
        else
            s.status = mur.status();
    }
    if (!outcome.budgets.empty()) {
        const auto mbr = market::marketBudgetRange(outcome.budgets);
        if (mbr.ok())
            s.mbr = mbr.value();
        else
            s.status = mbr.status();
    }
    return s;
}

MechanismScore
score(const core::Allocator &mechanism,
      const core::AllocationProblem &problem)
{
    return scoreOutcome(problem, mechanism.allocate(problem));
}

BundleRunner::BundleRunner(std::vector<const core::Allocator *> mechanisms,
                           const BundleRunnerOptions &options)
    : mechanisms_(std::move(mechanisms)), options_(options)
{
    if (mechanisms_.empty()) {
        status_ = util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "BundleRunner needs at least one mechanism");
        return;
    }
    names_.reserve(mechanisms_.size());
    for (const auto *m : mechanisms_) {
        if (m == nullptr) {
            status_ = util::SolveStatus::error(
                util::StatusCode::InvalidArgument,
                "BundleRunner has a null mechanism");
            names_.clear();
            return;
        }
        names_.push_back(m->name());
    }
}

std::optional<size_t>
BundleRunner::mechanismIndex(const std::string &name) const
{
    for (size_t m = 0; m < names_.size(); ++m) {
        if (names_[m] == name)
            return m;
    }
    return std::nullopt;
}

BundleEvaluation
BundleRunner::evaluate(const workloads::Bundle &bundle) const
{
    BundleEvaluation ev;
    ev.bundle = bundle.name;
    ev.category = bundle.category;
    if (!status_.ok()) {
        ev.skipped = true;
        ev.skipReason = status_.toString();
        return ev;
    }

    BundleProblem bp;
    try {
        bp = makeBundleProblem(bundle.appNames, options_.regionsPerCore,
                               options_.wattsPerCore, options_.convexify);
    } catch (const util::FatalError &e) {
        ev.skipped = true;
        ev.skipReason = e.what();
        util::warn("skipping bundle %s: %s", bundle.name.c_str(),
                   e.what());
        return ev;
    }
    bp.problem.marketConfig = options_.marketConfig;
    // One solver workspace per bundle evaluation: every mechanism's
    // solves (ReBudget runs a dozen rounds) reuse the same buffers.
    // evaluate() runs concurrently across bundles, so the workspace
    // must stay local to the call, never shared across workers.
    market::SolveWorkspace ws;
    bp.problem.workspace = &ws;

    if (const auto err = core::tryValidateProblem(bp.problem)) {
        ev.skipped = true;
        ev.skipReason = *err;
        util::warn("skipping bundle %s: %s", bundle.name.c_str(),
                   err->c_str());
        return ev;
    }

    // Fault injection: the mechanisms allocate against damaged (and
    // possibly lying) models, while scoring below always measures the
    // resulting allocation against the TRUTH models in bp.problem.
    // Streams are keyed by (plan seed, bundle-name hash, player), so
    // identical sweeps inject identical damage at any job count.
    core::AllocationProblem faulted_problem = bp.problem;
    std::vector<std::shared_ptr<const market::UtilityModel>> faulted_keep;
    if (options_.faultPlan.enabled()) {
        const faults::FaultInjector injector(options_.faultPlan);
        const std::uint64_t scope = util::hashId(bundle.name);
        faulted_keep.reserve(bp.models.size());
        for (size_t i = 0; i < bp.models.size(); ++i) {
            std::shared_ptr<const app::AppUtilityModel> damaged =
                injector.perturbModel(bp.models[i], scope, i,
                                      ev.injectionStats,
                                      &ev.hardeningStats);
            std::shared_ptr<const market::UtilityModel> reported =
                injector.maybeLiar(damaged, scope, i, ev.injectionStats);
            faulted_keep.push_back(reported);
            faulted_problem.models[i] = reported.get();
        }
    }
    const core::AllocationProblem &solve_problem =
        faulted_keep.empty() ? bp.problem : faulted_problem;

    ev.scores.reserve(mechanisms_.size());
    if (options_.keepOutcomes)
        ev.outcomes.reserve(mechanisms_.size());
    for (const auto *m : mechanisms_) {
        try {
            core::AllocationOutcome out = m->allocate(solve_problem);
            MechanismScore s = scoreOutcome(bp.problem, out);
            if (!s.status.ok()) {
                // A pathological bundle degrades to a recorded
                // per-bundle failure: the sweep continues and the
                // reason survives in the evaluation.
                ev.skipped = true;
                ev.skipReason = m->name() + ": " + s.status.toString();
                ev.scores.clear();
                ev.outcomes.clear();
                util::warn("skipping bundle %s: mechanism %s failed: %s",
                           bundle.name.c_str(), m->name().c_str(),
                           s.status.toString().c_str());
                return ev;
            }
            ev.scores.push_back(std::move(s));
            if (options_.keepOutcomes)
                ev.outcomes.push_back(std::move(out));
        } catch (const util::FatalError &e) {
            // Belt-and-suspenders: layers outside the solve pipeline
            // (e.g. app-level profile code) may still throw.
            ev.skipped = true;
            ev.skipReason = e.what();
            ev.scores.clear();
            ev.outcomes.clear();
            util::warn("skipping bundle %s: mechanism %s failed: %s",
                       bundle.name.c_str(), m->name().c_str(), e.what());
            return ev;
        }
    }
    return ev;
}

std::vector<BundleEvaluation>
BundleRunner::run(const std::vector<workloads::Bundle> &bundles) const
{
    // Warm the profile catalog before spawning workers so no worker
    // pays (or serializes on) the one-time profiling behind its magic
    // static.
    app::catalogProfiles();

    std::vector<BundleEvaluation> results(bundles.size());
    util::ThreadPool pool(options_.jobs);
    pool.parallelFor(bundles.size(), [&](size_t i) {
        results[i] = evaluate(bundles[i]);
    });
    return results;
}

std::vector<MechanismSweepStats>
aggregateSweepStats(const std::vector<BundleEvaluation> &evals,
                    const std::vector<std::string> &mechanism_names)
{
    std::vector<MechanismSweepStats> agg(mechanism_names.size());
    for (size_t m = 0; m < mechanism_names.size(); ++m)
        agg[m].mechanism = mechanism_names[m];
    for (const auto &ev : evals) {
        if (ev.skipped)
            continue;
        const size_t count =
            std::min(ev.scores.size(), mechanism_names.size());
        for (size_t m = 0; m < count; ++m) {
            agg[m].bundlesEvaluated += 1;
            if (ev.scores[m].converged)
                agg[m].bundlesConverged += 1;
            agg[m].stats.merge(ev.scores[m].stats);
        }
    }
    return agg;
}

SweepFaultStats
aggregateFaultStats(const std::vector<BundleEvaluation> &evals)
{
    SweepFaultStats agg;
    for (const auto &ev : evals) {
        if (ev.injectionStats.total() > 0)
            agg.bundlesFaulted += 1;
        agg.injected.merge(ev.injectionStats);
        agg.hardening.merge(ev.hardeningStats);
    }
    return agg;
}

std::string
sweepStatsJson(const std::vector<MechanismSweepStats> &stats,
               std::int64_t skipped_bundles,
               const SweepFaultStats *fault_stats)
{
    std::string out = "{\n";
    out += "  \"schema\": \"rebudget.solver_stats.v3\",\n";
    out += "  \"skipped_bundles\": " + std::to_string(skipped_bundles) +
           ",\n";
    if (fault_stats != nullptr) {
        const auto &f = *fault_stats;
        auto field = [&](const char *key, std::int64_t v,
                         bool comma = true) {
            out += std::string("    \"") + key +
                   "\": " + std::to_string(v) + (comma ? ",\n" : "\n");
        };
        out += "  \"faults\": {\n";
        field("bundles_faulted", f.bundlesFaulted);
        field("curve_cells_perturbed", f.injected.curveCellsPerturbed);
        field("curve_samples_dropped", f.injected.curveSamplesDropped);
        field("grid_cells_corrupted", f.injected.gridCellsCorrupted);
        field("grid_columns_zeroed", f.injected.gridColumnsZeroed);
        field("grid_rows_scrambled", f.injected.gridRowsScrambled);
        field("liar_players", f.injected.liarPlayers);
        field("power_readings_biased", f.injected.powerReadingsBiased);
        field("stale_profiles", f.injected.staleProfiles);
        out += "    \"hardening\": " + f.hardening.toJson(4) + "\n";
        out += "  },\n";
    }
    out += "  \"mechanisms\": [\n";
    for (size_t m = 0; m < stats.size(); ++m) {
        const auto &s = stats[m];
        out += "    {\n";
        out += "      \"mechanism\": \"" + s.mechanism + "\",\n";
        out += "      \"bundles_evaluated\": " +
               std::to_string(s.bundlesEvaluated) + ",\n";
        out += "      \"bundles_converged\": " +
               std::to_string(s.bundlesConverged) + ",\n";
        out += "      \"solver\": " + s.stats.toJson(6) + "\n";
        out += m + 1 < stats.size() ? "    },\n" : "    }\n";
    }
    out += "  ]\n";
    out += "}";
    return out;
}

util::Expected<unsigned>
parseJobsArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) != "--jobs")
            continue;
        if (i + 1 >= argc) {
            return util::SolveStatus::error(
                util::StatusCode::InvalidArgument,
                "--jobs requires a value");
        }
        char *end = nullptr;
        const long v = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0' || v < 1) {
            return util::SolveStatus::error(
                util::StatusCode::InvalidArgument,
                "--jobs needs a positive integer, got '%s'", argv[i + 1]);
        }
        return static_cast<unsigned>(v);
    }
    return 0u;
}

} // namespace rebudget::eval
