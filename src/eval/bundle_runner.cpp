#include "rebudget/eval/bundle_runner.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "rebudget/market/metrics.h"
#include "rebudget/power/power_model.h"
#include "rebudget/util/logging.h"
#include "rebudget/util/thread_pool.h"

namespace rebudget::eval {

namespace {

const power::PowerModel &
defaultPowerModel()
{
    static const power::PowerModel power;
    return power;
}

} // namespace

BundleProblem
makeBundleProblem(const std::vector<std::string> &app_names,
                  const ProfileLookup &lookup, double regions_per_core,
                  double watts_per_core, bool convexify)
{
    const power::PowerModel &power = defaultPowerModel();
    BundleProblem bp;
    app::UtilityGridOptions options;
    options.convexify = convexify;
    double min_watts = 0.0;
    for (const auto &nm : app_names) {
        bp.models.push_back(std::make_unique<app::AppUtilityModel>(
            lookup(nm), power, options));
        min_watts += bp.models.back()->minWatts();
        bp.problem.models.push_back(bp.models.back().get());
    }
    const double n = static_cast<double>(app_names.size());
    bp.problem.capacities = {n * regions_per_core - n * 1.0,
                             n * watts_per_core - min_watts};
    return bp;
}

BundleProblem
makeBundleProblem(const std::vector<std::string> &app_names,
                  double regions_per_core, double watts_per_core,
                  bool convexify)
{
    return makeBundleProblem(
        app_names,
        [](const std::string &nm) -> const app::AppProfile & {
            return app::findCatalogProfile(nm);
        },
        regions_per_core, watts_per_core, convexify);
}

MechanismScore
scoreOutcome(const core::AllocationProblem &problem,
             const core::AllocationOutcome &outcome)
{
    MechanismScore s;
    s.mechanism = outcome.mechanism;
    s.efficiency = market::efficiency(problem.models, outcome.alloc);
    s.envyFreeness = market::envyFreeness(problem.models, outcome.alloc);
    if (!outcome.lambdas.empty())
        s.mur = market::marketUtilityRange(outcome.lambdas);
    if (!outcome.budgets.empty())
        s.mbr = market::marketBudgetRange(outcome.budgets);
    s.marketIterations = outcome.marketIterations;
    s.budgetRounds = outcome.budgetRounds;
    return s;
}

MechanismScore
score(const core::Allocator &mechanism,
      const core::AllocationProblem &problem)
{
    return scoreOutcome(problem, mechanism.allocate(problem));
}

BundleRunner::BundleRunner(std::vector<const core::Allocator *> mechanisms,
                           const BundleRunnerOptions &options)
    : mechanisms_(std::move(mechanisms)), options_(options)
{
    if (mechanisms_.empty())
        util::fatal("BundleRunner needs at least one mechanism");
    names_.reserve(mechanisms_.size());
    for (const auto *m : mechanisms_) {
        if (m == nullptr)
            util::fatal("BundleRunner has a null mechanism");
        names_.push_back(m->name());
    }
}

size_t
BundleRunner::mechanismIndex(const std::string &name) const
{
    for (size_t m = 0; m < names_.size(); ++m) {
        if (names_[m] == name)
            return m;
    }
    util::fatal("BundleRunner has no mechanism named '%s'", name.c_str());
}

BundleEvaluation
BundleRunner::evaluate(const workloads::Bundle &bundle) const
{
    BundleEvaluation ev;
    ev.bundle = bundle.name;
    ev.category = bundle.category;

    BundleProblem bp;
    try {
        bp = makeBundleProblem(bundle.appNames, options_.regionsPerCore,
                               options_.wattsPerCore, options_.convexify);
    } catch (const util::FatalError &e) {
        ev.skipped = true;
        ev.skipReason = e.what();
        util::warn("skipping bundle %s: %s", bundle.name.c_str(),
                   e.what());
        return ev;
    }
    bp.problem.marketConfig = options_.marketConfig;

    if (const auto err = core::tryValidateProblem(bp.problem)) {
        ev.skipped = true;
        ev.skipReason = *err;
        util::warn("skipping bundle %s: %s", bundle.name.c_str(),
                   err->c_str());
        return ev;
    }

    ev.scores.reserve(mechanisms_.size());
    if (options_.keepOutcomes)
        ev.outcomes.reserve(mechanisms_.size());
    for (const auto *m : mechanisms_) {
        try {
            core::AllocationOutcome out = m->allocate(bp.problem);
            ev.scores.push_back(scoreOutcome(bp.problem, out));
            if (options_.keepOutcomes)
                ev.outcomes.push_back(std::move(out));
        } catch (const util::FatalError &e) {
            ev.skipped = true;
            ev.skipReason = e.what();
            ev.scores.clear();
            ev.outcomes.clear();
            util::warn("skipping bundle %s: mechanism %s failed: %s",
                       bundle.name.c_str(), m->name().c_str(), e.what());
            return ev;
        }
    }
    return ev;
}

std::vector<BundleEvaluation>
BundleRunner::run(const std::vector<workloads::Bundle> &bundles) const
{
    // Warm the profile catalog before spawning workers so no worker
    // pays (or serializes on) the one-time profiling behind its magic
    // static.
    app::catalogProfiles();

    std::vector<BundleEvaluation> results(bundles.size());
    util::ThreadPool pool(options_.jobs);
    pool.parallelFor(bundles.size(), [&](size_t i) {
        results[i] = evaluate(bundles[i]);
    });
    return results;
}

unsigned
parseJobsArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) != "--jobs")
            continue;
        if (i + 1 >= argc)
            util::fatal("--jobs requires a value");
        char *end = nullptr;
        const long v = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0' || v < 1)
            util::fatal("--jobs needs a positive integer, got '%s'",
                        argv[i + 1]);
        return static_cast<unsigned>(v);
    }
    return 0;
}

} // namespace rebudget::eval
