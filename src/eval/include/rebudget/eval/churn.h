#ifndef REBUDGET_EVAL_CHURN_H_
#define REBUDGET_EVAL_CHURN_H_

/**
 * @file
 * Churn scenarios: evaluating mechanisms under tenant arrival and
 * departure (the roster layer's eval-side consumer).
 *
 * A churn scenario replays a bundle for a number of epochs.  Epoch 0
 * starts from the bundle's full roster; before every later epoch a
 * deterministic schedule removes tenants (Bernoulli per tenant) and
 * admits newcomers drawn from the bundle's own application mix, within
 * configured roster bounds.  Machine capacity is FIXED at the initial
 * bundle's size -- churn changes who competes for the machine, not the
 * machine -- so a shrinking roster leaves more resources per survivor
 * and a growing one squeezes everyone, which is exactly the budget
 * redistribution question the mechanisms answer differently.
 *
 * Two things distinguish this from running independent sweeps:
 *
 *  - Warm-state migration: each mechanism's equilibrium is carried
 *    across epochs BY IDENTITY (market::migrateEquilibrium), so
 *    surviving players never cold-start; SolverStats churn counters
 *    record the migrations.
 *
 *  - Time-integrated fairness: per-epoch efficiency/EF/MUR/MBR answer
 *    "was epoch e fair"; the lifetime metrics answer "was the RUN fair
 *    to each tenant" -- lifetime envy-freeness compares each tenant's
 *    accumulated utility against the best it could have accumulated
 *    with any other player's allocations over the epochs it was
 *    present, and cumulative MUR/MBR take the range over per-tenant
 *    lifetime means instead of a single epoch's snapshot.
 *
 * Determinism: the schedule is a pure function of (spec seed, bundle
 * name, epoch), shared by every mechanism, so churn sweeps are
 * byte-identical at any job count like everything else in eval.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rebudget/core/roster.h"
#include "rebudget/faults/fault_injector.h"
#include "rebudget/util/solver_stats.h"
#include "rebudget/util/status.h"
#include "rebudget/workloads/bundles.h"

namespace rebudget::eval {

/** Tuning of a churn scenario. */
struct ChurnSpec
{
    /** Epochs to run (>= 1; epoch 0 is the unchurned bundle). */
    std::uint32_t epochs = 12;
    /** Per-epoch arrival probability per initial-roster slot. */
    double joinRate = 0.2;
    /** Per-epoch departure probability per active tenant. */
    double leaveRate = 0.2;
    /** Departures never shrink the roster below this (>= 2). */
    std::uint32_t minPlayers = 2;
    /** Arrivals never grow the roster above this; 0 = 2x initial. */
    std::uint32_t maxPlayers = 0;
    /** Schedule stream seed (mixed with the bundle name). */
    std::uint64_t seed = 1;

    /**
     * Parse "epochs=12,join=0.2,leave=0.2,min-players=2,
     * max-players=16,seed=7" (any subset of keys, any order).  Unknown
     * keys and out-of-range values yield an error Expected naming the
     * offender.
     */
    static util::Expected<ChurnSpec> parse(const std::string &text);

    /** @return a short human-readable summary of the spec. */
    std::string describe() const;

    /** @return std::nullopt if the spec is valid, else a diagnostic. */
    std::optional<std::string> validate() const;
};

/** One scheduled roster event. */
struct ChurnEvent
{
    /** Epoch before which the event applies (>= 1). */
    std::uint32_t epoch = 0;
    /** True = arrival, false = departure. */
    bool join = true;
    /** Stable identity of the tenant. */
    core::PlayerId id = 0;
    /** Catalog app of an arriving tenant (empty for departures). */
    std::string app;
};

/**
 * Deterministic arrival/departure schedule for one bundle: departures
 * are Bernoulli(leaveRate) per active tenant per epoch (respecting
 * minPlayers), arrivals Bernoulli(joinRate) per initial-roster slot
 * (respecting maxPlayers), apps drawn uniformly from `initial_apps`.
 * Streams are keyed by (spec.seed, scope, epoch), so the schedule is a
 * pure value function -- identical for every mechanism and job count.
 *
 * @param scope  caller scope key, e.g. util::hashId(bundle.name)
 */
std::vector<ChurnEvent> makeChurnSchedule(
    const ChurnSpec &spec, const std::vector<std::string> &initial_apps,
    std::uint64_t scope);

/** One tenant's whole-run record under one mechanism. */
struct TenantLifetime
{
    core::PlayerId id = 0;
    /** Catalog app backing the tenant. */
    std::string app;
    /** Epoch the tenant first competed in. */
    std::uint32_t joinEpoch = 0;
    /** Epochs the tenant was present AND scored. */
    std::uint32_t epochsPresent = 0;
    /** True if the tenant left before the run ended. */
    bool departed = false;
    /** Utility accumulated over the tenant's scored epochs. */
    double utilitySum = 0.0;
    /**
     * Best accumulated utility over any single competitor's
     * allocations in the same epochs (includes the tenant's own, so
     * utilitySum / bestOtherUtilitySum <= 1).
     */
    double bestOtherUtilitySum = 0.0;
    /** Mean budget over scored epochs (market mechanisms). */
    double meanBudget = 0.0;
    /** Mean lambda over scored epochs (market mechanisms). */
    double meanLambda = 0.0;
};

/** One epoch's scores under one mechanism. */
struct ChurnEpochRecord
{
    std::uint32_t epoch = 0;
    /** Active players this epoch. */
    std::uint32_t players = 0;
    /** Tenants that joined / departed before this epoch. */
    std::uint32_t joins = 0;
    std::uint32_t leaves = 0;
    /** True if the epoch's allocation was produced and scored. */
    bool scored = false;
    double efficiency = 0.0;
    double envyFreeness = 0.0;
    double mur = 0.0;
    double mbr = 1.0;
    int marketIterations = 0;
    bool converged = true;
};

/** One mechanism's run over a whole churn scenario. */
struct MechanismChurnResult
{
    /** Ok, or the first epoch failure (later epochs still run). */
    util::SolveStatus status;
    std::string mechanism;
    /** Per-epoch scores, in epoch order. */
    std::vector<ChurnEpochRecord> epochs;
    /** Per-tenant lifetime records, in first-seen order. */
    std::vector<TenantLifetime> tenants;
    /** Mean per-epoch efficiency over scored epochs. */
    double meanEfficiency = 0.0;
    /** Mean per-epoch envy-freeness over scored epochs. */
    double meanEnvyFreeness = 0.0;
    /** min_i utilitySum_i / bestOtherUtilitySum_i over tenants. */
    double lifetimeEnvyFreeness = 1.0;
    /** MUR over per-tenant lifetime-mean lambdas. */
    double cumulativeMur = 1.0;
    /** MBR over per-tenant lifetime-mean budgets. */
    double cumulativeMbr = 1.0;
    /** False if any scored epoch hit the solver fail-safe. */
    bool converged = true;
    /** Merged solver telemetry, including the churn counters. */
    util::SolverStats stats;
};

/** One bundle's churn scenario across every mechanism. */
struct ChurnEvaluation
{
    std::string bundle;
    workloads::BundleCategory category = workloads::BundleCategory::CPBN;
    bool skipped = false;
    std::string skipReason;
    /** The schedule the scenario replayed (shared by all mechanisms). */
    std::vector<ChurnEvent> schedule;
    /** One result per mechanism, in BundleRunner::mechanismNames order. */
    std::vector<MechanismChurnResult> results;
    /** Faults injected across all epochs (zero when disabled). */
    faults::InjectionStats injectionStats;
    /** Input-hardening telemetry from per-epoch model damage. */
    util::SolverStats hardeningStats;
};

} // namespace rebudget::eval

#endif // REBUDGET_EVAL_CHURN_H_
