#ifndef REBUDGET_EVAL_BUNDLE_RUNNER_H_
#define REBUDGET_EVAL_BUNDLE_RUNNER_H_

/**
 * @file
 * The evaluation engine behind the paper's Section 6 sweeps: turn
 * workload bundles into allocation problems with catalog utility
 * models, evaluate a fixed set of mechanisms on each bundle, and
 * aggregate the scores -- in parallel over bundles.
 *
 * Replaces the header-only plumbing formerly duplicated across the
 * bench binaries (bench/bench_common.h).
 *
 * Determinism: work is partitioned by bundle index (util::ThreadPool's
 * parallelFor contract), every bundle's evaluation depends only on its
 * own inputs, and no component below uses global RNG state (randomness
 * enters only through seeds fixed at bundle-generation time, before the
 * parallel region).  Results are therefore byte-identical at any job
 * count; tests/eval asserts this with 1, 2 and hardware-concurrency
 * threads, and the TSan build preset (-DREBUDGET_SANITIZE=thread)
 * checks the same suite for data races.
 *
 * Re-entrancy contract of the audited layers underneath:
 *  - Allocator::allocate(), ProportionalMarket::findEquilibrium() and
 *    optimizeBids() keep all scratch state local to the call.
 *  - UtilityModel implementations are immutable after construction.
 *  - app::catalogProfiles() builds the catalog behind a magic static;
 *    BundleRunner::run() warms it before spawning workers so no worker
 *    pays (or serializes on) first-use profiling.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rebudget/app/catalog.h"
#include "rebudget/app/utility.h"
#include "rebudget/core/allocator.h"
#include "rebudget/eval/churn.h"
#include "rebudget/faults/fault_injector.h"
#include "rebudget/market/market.h"
#include "rebudget/util/solver_stats.h"
#include "rebudget/util/status.h"
#include "rebudget/workloads/bundles.h"

namespace rebudget::eval {

/**
 * An allocation problem plus the utility models backing it.
 *
 * Models are shared (not owned): catalog-backed problems reuse one
 * immutable AppUtilityModel per (app, convexify) across every bundle
 * and thread -- model construction (grid sampling + convexification)
 * dominates problem setup, so the suite pays it once per app instead
 * of once per bundle.  UtilityModel is immutable after construction
 * (see the re-entrancy contract above), which is what makes the
 * sharing safe.
 */
struct BundleProblem
{
    std::vector<std::shared_ptr<const app::AppUtilityModel>> models;
    core::AllocationProblem problem;
};

/** Profile lookup hook: lets custom app definitions shadow the catalog. */
using ProfileLookup =
    std::function<const app::AppProfile &(const std::string &)>;

/**
 * Build the phase-1 (analytic) allocation problem for a bundle: catalog
 * profiles -> convexified utility models, market capacities = machine
 * resources minus per-core minimums.
 *
 * @param app_names            one catalog app per core
 * @param regions_per_core     cache regions per core (paper: 4)
 * @param watts_per_core       chip TDP per core (paper: 10 W)
 * @param convexify            apply Talus convexification
 */
BundleProblem makeBundleProblem(const std::vector<std::string> &app_names,
                                double regions_per_core = 4.0,
                                double watts_per_core = 10.0,
                                bool convexify = true);

/** As above, resolving profiles through a caller-supplied lookup. */
BundleProblem makeBundleProblem(const std::vector<std::string> &app_names,
                                const ProfileLookup &lookup,
                                double regions_per_core = 4.0,
                                double watts_per_core = 10.0,
                                bool convexify = true);

/**
 * Deterministic synthetic roster for scaling experiments: `players`
 * catalog app names drawn uniformly from the 24-app catalog by an RNG
 * stream keyed only by `seed` (util::Rng::forStream), so the same
 * (players, seed) pair produces the same roster on every machine and
 * at any job count.  Used by `rebudget_cli --players` and the scaling
 * benches to stand up 1k-100k player markets without hand-writing
 * bundles.
 */
std::vector<std::string> syntheticAppNames(size_t players, uint64_t seed);

/**
 * Build a `players`-core allocation problem from a synthetic roster
 * (syntheticAppNames(players, seed)) through the catalog overload of
 * makeBundleProblem().  Because the roster only ever names the 24
 * catalog apps, the memoized per-(app, convexify) model cache means a
 * 100k-player problem constructs at most 24 utility models; setup cost
 * is O(players) pointer copies, not O(players) grid profiles.
 */
BundleProblem makeSyntheticBundleProblem(size_t players, uint64_t seed,
                                         double regions_per_core = 4.0,
                                         double watts_per_core = 10.0,
                                         bool convexify = true);

/** Efficiency and fairness of one mechanism on one problem. */
struct MechanismScore
{
    /**
     * Ok, or why the mechanism produced no scorable allocation (the
     * outcome's own status, or a metric rejection).  On error the
     * figure-of-merit fields hold their defaults.
     */
    util::SolveStatus status;
    std::string mechanism;
    double efficiency = 0.0;
    double envyFreeness = 0.0;
    double mur = 0.0;
    double mbr = 1.0;
    int marketIterations = 0;
    int budgetRounds = 0;
    /**
     * False if any equilibrium solve behind this score hit the
     * iteration fail-safe; figure data built on such scores is flagged,
     * not dropped (stats.failSafeTrips counts the trips).
     */
    bool converged = true;
    /** Solver health telemetry from the mechanism's allocate(). */
    util::SolverStats stats;
};

/** Score an already-computed outcome on its problem. */
MechanismScore scoreOutcome(const core::AllocationProblem &problem,
                            const core::AllocationOutcome &outcome);

/** Run one mechanism and collect its scores. */
MechanismScore score(const core::Allocator &mechanism,
                     const core::AllocationProblem &problem);

/** Tuning for a BundleRunner sweep. */
struct BundleRunnerOptions
{
    /** Worker threads; 0 = REBUDGET_JOBS env, else hardware size. */
    unsigned jobs = 0;
    /** Cache regions per core (paper: 4). */
    double regionsPerCore = 4.0;
    /** Chip TDP per core (paper: 10 W). */
    double wattsPerCore = 10.0;
    /** Apply Talus convexification to the utility models. */
    bool convexify = true;
    /** Keep the full AllocationOutcome per mechanism (costs memory). */
    bool keepOutcomes = false;
    /**
     * Market tuning applied to every bundle problem.  Note that
     * recordPriceHistory defaults to off here: sweeps never read the
     * trajectories.
     */
    market::MarketConfig marketConfig;
    /**
     * Fault plan injected between problem setup and the mechanisms
     * (default disabled, which leaves every byte of the sweep
     * unchanged).  When enabled, each player's utility model is damaged
     * and possibly wrapped in a liar shim before the allocator sees it;
     * scoring always measures realized efficiency and fairness against
     * the TRUTH models, so degradation curves reflect what the faults
     * cost, not what the lies claim.  Fault streams are keyed by
     * (plan seed, hash of the bundle name, player), so results are
     * bit-identical at any job count.
     */
    faults::FaultPlan faultPlan;
};

/** One bundle's evaluation across every mechanism of the runner. */
struct BundleEvaluation
{
    /** Bundle identifier, e.g. "CPBN-07". */
    std::string bundle;
    /** Category the bundle was drawn from. */
    workloads::BundleCategory category = workloads::BundleCategory::CPBN;
    /** True if the bundle was skipped (see skipReason); scores empty. */
    bool skipped = false;
    /** Why the bundle was skipped (malformed problem, unknown app...). */
    std::string skipReason;
    /** One score per mechanism, in BundleRunner::mechanismNames order. */
    std::vector<MechanismScore> scores;
    /** Full outcomes (only if BundleRunnerOptions::keepOutcomes). */
    std::vector<core::AllocationOutcome> outcomes;
    /** Faults injected into this bundle (all zero when disabled). */
    faults::InjectionStats injectionStats;
    /**
     * Input-hardening telemetry from problem setup under faults
     * (sanitizedGrids, repairedCurves); separate from the per-mechanism
     * solver stats because the repair happens once per bundle, not once
     * per mechanism.
     */
    util::SolverStats hardeningStats;
};

/**
 * Evaluates a fixed mechanism set over bundle suites, in parallel.
 *
 * The mechanism pointers are non-owning and must outlive the runner;
 * their allocate() is invoked concurrently (see Allocator's contract).
 */
class BundleRunner
{
  public:
    /**
     * @param mechanisms  mechanisms to evaluate per bundle (non-owning)
     * @param options     sweep tuning
     *
     * A malformed mechanism set (empty, or containing null) does not
     * throw: it is recorded in setupStatus() and every evaluation is
     * reported as skipped with that reason.
     */
    explicit BundleRunner(
        std::vector<const core::Allocator *> mechanisms,
        const BundleRunnerOptions &options = {});

    /** Ok, or why this runner cannot evaluate (see the constructor). */
    const util::SolveStatus &setupStatus() const { return status_; }

    /** @return the mechanisms' display names, in evaluation order. */
    const std::vector<std::string> &mechanismNames() const
    {
        return names_;
    }

    /** @return the sweep options. */
    const BundleRunnerOptions &options() const { return options_; }

    /**
     * @return the index of the named mechanism, or std::nullopt if the
     * runner has no mechanism of that name.  Use this instead of
     * assuming a mechanism's position (e.g. "MaxEfficiency is last").
     */
    std::optional<size_t> mechanismIndex(const std::string &name) const;

    /** Evaluate one bundle across every mechanism (serially). */
    BundleEvaluation evaluate(const workloads::Bundle &bundle) const;

    /**
     * Evaluate a whole suite, parallelized over bundles with
     * options().jobs workers.  Results are in bundle order and
     * byte-identical at any job count.  Malformed bundles are skipped
     * with a warning (BundleEvaluation::skipped) instead of aborting
     * the sweep.
     */
    std::vector<BundleEvaluation> run(
        const std::vector<workloads::Bundle> &bundles) const;

    /**
     * Replay one bundle as a churn scenario (see eval/churn.h): the
     * bundle provides the initial roster and machine size, the spec the
     * arrival/departure schedule.  Each mechanism runs the whole
     * scenario with identity-migrated warm state and a persistent
     * KarmaBank; faults (options().faultPlan) re-damage the active
     * models every epoch with streams keyed by (bundle, epoch,
     * tenant id).  Epoch failures degrade to unscored epochs, never
     * fatals.
     */
    ChurnEvaluation evaluateChurn(const workloads::Bundle &bundle,
                                  const ChurnSpec &spec) const;

    /** Churn scenarios over a suite, parallelized like run(). */
    std::vector<ChurnEvaluation> runChurn(
        const std::vector<workloads::Bundle> &bundles,
        const ChurnSpec &spec) const;

  private:
    std::vector<const core::Allocator *> mechanisms_;
    std::vector<std::string> names_;
    BundleRunnerOptions options_;
    util::SolveStatus status_;
};

/** Aggregate solver telemetry for one mechanism across a sweep. */
struct MechanismSweepStats
{
    std::string mechanism;
    /** Bundles this mechanism was scored on (skipped bundles excluded). */
    std::int64_t bundlesEvaluated = 0;
    /** Scored bundles whose every equilibrium solve converged. */
    std::int64_t bundlesConverged = 0;
    /** Merged telemetry across the scored bundles. */
    util::SolverStats stats;
};

/**
 * Merge per-bundle telemetry into one MechanismSweepStats per
 * mechanism.  Counters are deterministic for a given suite; only the
 * embedded wall-clock timers vary run to run.
 *
 * @param evals            sweep results (skipped bundles contribute
 *                         nothing)
 * @param mechanism_names  names in score order (mechanismNames())
 */
std::vector<MechanismSweepStats> aggregateSweepStats(
    const std::vector<BundleEvaluation> &evals,
    const std::vector<std::string> &mechanism_names);

/**
 * As aggregateSweepStats, for churn scenarios: a bundle counts as
 * evaluated for a mechanism when its scenario ran (even with unscored
 * epochs), and as converged when every scored epoch converged.  The
 * merged SolverStats carry the churn counters (tenants_joined,
 * tenants_departed, migrated_warm_seeds, karma_donors,
 * karma_borrowers), so sweepStatsJson needs no churn-specific schema.
 */
std::vector<MechanismSweepStats> aggregateChurnStats(
    const std::vector<ChurnEvaluation> &evals,
    const std::vector<std::string> &mechanism_names);

/** Sweep-wide fault totals: what was injected and what was repaired. */
struct SweepFaultStats
{
    /** Bundles that received at least one injected fault. */
    std::int64_t bundlesFaulted = 0;
    /** Injection tallies summed over every bundle. */
    faults::InjectionStats injected;
    /** Setup-time hardening telemetry summed over every bundle. */
    util::SolverStats hardening;
};

/** Merge per-bundle fault telemetry (skipped bundles contribute too). */
SweepFaultStats aggregateFaultStats(
    const std::vector<BundleEvaluation> &evals);

/**
 * Schema-stable JSON for a sweep's solver telemetry
 * ("rebudget.solver_stats.v3"): fixed key order, counters as integers,
 * timers as fixed-point seconds.  The CLI prints this for
 * `--stats json`; tests parse it.  When @p fault_stats is non-null a
 * "faults" object reports the sweep's injection and hardening totals.
 */
std::string sweepStatsJson(const std::vector<MechanismSweepStats> &stats,
                           std::int64_t skipped_bundles,
                           const SweepFaultStats *fault_stats = nullptr);

/**
 * Scan argv for "--jobs N" and return N; 0 if absent (callers pass the
 * result as BundleRunnerOptions::jobs, where 0 defers to REBUDGET_JOBS
 * and then the hardware).  A malformed value yields an error Expected.
 */
util::Expected<unsigned> parseJobsArg(int argc, char **argv);

} // namespace rebudget::eval

#endif // REBUDGET_EVAL_BUNDLE_RUNNER_H_
