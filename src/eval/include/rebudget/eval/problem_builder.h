#ifndef REBUDGET_EVAL_PROBLEM_BUILDER_H_
#define REBUDGET_EVAL_PROBLEM_BUILDER_H_

/**
 * @file
 * Incremental bundle -> allocation-problem construction.
 *
 * makeBundleProblem() builds a whole problem from a name list in one
 * shot, which fits the sweep engine but not the serving daemon: there a
 * market's roster changes one tenant at a time (JoinTenant /
 * LeaveTenant) and an unknown app name must come back as a typed error
 * on that request, never a process fatal.  ProblemBuilder holds the
 * mutable roster -- shared catalog models plus the capacity bookkeeping
 * -- and can re-emit capacities after every change without re-profiling
 * anything.  makeBundleProblem() is now a thin wrapper over it, so the
 * sweeps and the daemon construct problems through one code path.
 *
 * Model sharing and the memoized per-(app, convexify) catalog cache are
 * inherited from the bundle_runner design (see BundleProblem's doc);
 * sharedCatalogModel() exposes the cache directly.
 */

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "rebudget/app/utility.h"
#include "rebudget/eval/bundle_runner.h"
#include "rebudget/util/status.h"

namespace rebudget::eval {

/**
 * Memoized catalog utility model for (name, convexify); one immutable
 * instance is shared process-wide across bundles, markets and threads.
 * @return the model, or InvalidArgument for an unknown catalog name.
 */
util::Expected<std::shared_ptr<const app::AppUtilityModel>>
sharedCatalogModel(const std::string &name, bool convexify);

/** Builds allocation problems from an editable roster of catalog apps. */
class ProblemBuilder
{
  public:
    /** Machine-shape knobs shared by every problem this builder emits. */
    struct Config
    {
        /** Cache regions per core (paper: 4). */
        double regionsPerCore = 4.0;
        /** Chip TDP per core (paper: 10 W). */
        double wattsPerCore = 10.0;
        /** Apply Talus convexification to the utility models. */
        bool convexify = true;
    };

    ProblemBuilder() = default;

    explicit ProblemBuilder(Config config) : config_(config) {}

    /**
     * As above, resolving profiles through @p lookup instead of the
     * catalog.  Lookup-backed models are built fresh (a lookup may
     * shadow catalog names with different profiles, so they must not
     * enter the shared cache) and the lookup itself may throw
     * util::FatalError for unknown names -- that contract belongs to
     * the caller who supplied it.
     */
    ProblemBuilder(Config config, ProfileLookup lookup)
        : config_(config), lookup_(std::move(lookup))
    {
    }

    /**
     * Append one app to the roster.  @return the new roster index, or
     * InvalidArgument naming the app when the catalog does not know it
     * (the roster is unchanged on error).
     */
    util::Expected<size_t> addApp(const std::string &name);

    /**
     * Append every name in order; stops at the first unknown app and
     * @return an error naming it, leaving the apps added so far in
     * place (callers who need all-or-nothing check the status and
     * discard the builder).
     */
    util::SolveStatus addApps(const std::vector<std::string> &names);

    /**
     * Remove the app at @p index (later apps shift down one slot, the
     * order of the survivors is preserved).  Out-of-range indices are
     * ignored.
     */
    void removeAt(size_t index);

    /** Drop the whole roster. */
    void clear();

    /** @return the roster size (= player count of emitted problems). */
    size_t size() const { return models_.size(); }

    /** @return the roster's shared utility models, in roster order. */
    const std::vector<std::shared_ptr<const app::AppUtilityModel>> &
    models() const
    {
        return models_;
    }

    /**
     * Write the machine capacities for the current roster --
     * {cache regions beyond the per-core minimum, watts beyond the
     * roster's idle draw} -- into @p out (resized to 2, no allocation
     * once @p out has capacity).
     */
    void capacitiesInto(std::vector<double> &out) const;

    /** Convenience allocating form of capacitiesInto(). */
    std::vector<double> capacities() const;

    /**
     * Snapshot the roster as a BundleProblem: shared model handles,
     * raw model pointers and capacities filled in; market config,
     * workspace and warm-start wiring stay with the caller.  The
     * builder remains usable (and editable) afterwards.
     */
    BundleProblem build() const;

  private:
    Config config_;
    ProfileLookup lookup_;
    std::vector<std::shared_ptr<const app::AppUtilityModel>> models_;
};

} // namespace rebudget::eval

#endif // REBUDGET_EVAL_PROBLEM_BUILDER_H_
