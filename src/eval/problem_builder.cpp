#include "rebudget/eval/problem_builder.h"

#include <map>
#include <mutex>
#include <utility>

#include "rebudget/app/catalog.h"
#include "rebudget/power/power_model.h"

namespace rebudget::eval {

namespace {

const power::PowerModel &
builderPowerModel()
{
    static const power::PowerModel power;
    return power;
}

} // namespace

util::Expected<std::shared_ptr<const app::AppUtilityModel>>
sharedCatalogModel(const std::string &name, bool convexify)
{
    // Process-wide memo keyed by (app, convexify).  Construction samples
    // and convexifies the 90-point utility grid -- by far the most
    // expensive part of problem setup -- and the result is immutable, so
    // every bundle, market and worker thread shares one instance per
    // app.  Only catalog-backed profiles are memoized; ProfileLookup
    // paths build fresh models (a lookup may shadow catalog names).
    static std::mutex mu;
    static std::map<std::pair<std::string, bool>,
                    std::shared_ptr<const app::AppUtilityModel>>
        cache;
    const std::lock_guard<std::mutex> lock(mu);
    auto &slot = cache[{name, convexify}];
    if (!slot) {
        const app::AppProfile *profile = app::tryFindCatalogProfile(name);
        if (profile == nullptr) {
            return util::SolveStatus::error(
                util::StatusCode::InvalidArgument,
                "unknown catalog application '%s'", name.c_str());
        }
        app::UtilityGridOptions options;
        options.convexify = convexify;
        slot = std::make_shared<const app::AppUtilityModel>(
            *profile, builderPowerModel(), options);
    }
    return slot;
}

util::Expected<size_t>
ProblemBuilder::addApp(const std::string &name)
{
    if (lookup_) {
        app::UtilityGridOptions options;
        options.convexify = config_.convexify;
        models_.push_back(std::make_shared<const app::AppUtilityModel>(
            lookup_(name), builderPowerModel(), options));
        return models_.size() - 1;
    }
    auto model = sharedCatalogModel(name, config_.convexify);
    if (!model.ok())
        return model.status();
    models_.push_back(std::move(model).value());
    return models_.size() - 1;
}

util::SolveStatus
ProblemBuilder::addApps(const std::vector<std::string> &names)
{
    for (const auto &name : names) {
        const auto added = addApp(name);
        if (!added.ok())
            return added.status();
    }
    return {};
}

void
ProblemBuilder::removeAt(size_t index)
{
    if (index >= models_.size())
        return;
    models_.erase(models_.begin() +
                  static_cast<std::ptrdiff_t>(index));
}

void
ProblemBuilder::clear()
{
    models_.clear();
}

void
ProblemBuilder::capacitiesInto(std::vector<double> &out) const
{
    // Capacities = machine resources minus the per-core minimums: one
    // region per core, plus the roster's summed idle draw.
    double min_watts = 0.0;
    for (const auto &model : models_)
        min_watts += model->minWatts();
    const double n = static_cast<double>(models_.size());
    out.resize(2);
    out[0] = n * config_.regionsPerCore - n * 1.0;
    out[1] = n * config_.wattsPerCore - min_watts;
}

std::vector<double>
ProblemBuilder::capacities() const
{
    std::vector<double> out;
    capacitiesInto(out);
    return out;
}

BundleProblem
ProblemBuilder::build() const
{
    BundleProblem bp;
    bp.models = models_;
    bp.problem.models.reserve(models_.size());
    for (const auto &model : bp.models)
        bp.problem.models.push_back(model.get());
    capacitiesInto(bp.problem.capacities);
    return bp;
}

} // namespace rebudget::eval
