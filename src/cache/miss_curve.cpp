#include "rebudget/cache/miss_curve.h"

#include "rebudget/util/logging.h"

namespace rebudget::cache {

MissCurve::MissCurve(std::vector<double> misses) : misses_(std::move(misses))
{
    if (misses_.empty())
        util::fatal("MissCurve requires at least one point");
    // The lower convex hull of (regions, misses) equals the upper concave
    // hull of (regions, -misses).
    std::vector<double> xs(misses_.size());
    std::vector<double> neg(misses_.size());
    for (size_t i = 0; i < misses_.size(); ++i) {
        xs[i] = static_cast<double>(i);
        neg[i] = -misses_[i];
    }
    pois_ = util::upperConcaveHullIndices(xs, neg);
    std::vector<util::Knot> knots;
    knots.reserve(pois_.size());
    for (size_t idx : pois_)
        knots.push_back(
            util::Knot{static_cast<double>(idx), misses_[idx]});
    hull_ = util::PiecewiseLinear(std::move(knots));
}

double
MissCurve::missesAt(size_t regions) const
{
    REBUDGET_ASSERT(valid(), "missesAt on empty curve");
    if (regions >= misses_.size())
        regions = misses_.size() - 1;
    return misses_[regions];
}

double
MissCurve::missesAtRaw(double regions) const
{
    REBUDGET_ASSERT(valid(), "missesAtRaw on empty curve");
    if (regions <= 0.0)
        return misses_.front();
    const double max_r = static_cast<double>(misses_.size() - 1);
    if (regions >= max_r)
        return misses_.back();
    const size_t lo = static_cast<size_t>(regions);
    const double frac = regions - static_cast<double>(lo);
    return misses_[lo] * (1.0 - frac) + misses_[lo + 1] * frac;
}

double
MissCurve::missesAtHull(double regions) const
{
    REBUDGET_ASSERT(valid(), "missesAtHull on empty curve");
    return hull_.eval(regions);
}

} // namespace rebudget::cache
