#include "rebudget/cache/umon.h"

#include <algorithm>

#include "rebudget/cache/curve_repair.h"
#include "rebudget/util/logging.h"

namespace rebudget::cache {

UMonitor::UMonitor(const UMonConfig &config) : config_(config)
{
    if (config_.maxRegions == 0)
        util::fatal("UMonitor requires maxRegions > 0");
    if (config_.lineBytes == 0 ||
        (config_.lineBytes & (config_.lineBytes - 1)) != 0)
        util::fatal("UMonitor line size must be a power of two");
    if (config_.regionBytes % config_.lineBytes != 0)
        util::fatal("UMonitor region size must be a line multiple");
    if (config_.samplingRatio == 0)
        util::fatal("UMonitor sampling ratio must be positive");
    // A full shadow cache of maxRegions capacity and maxRegions ways has
    // one set per line of a region.
    shadowSets_ = config_.regionBytes / config_.lineBytes;
    sampledSets_ = (shadowSets_ + config_.samplingRatio - 1) /
                   config_.samplingRatio;
    stacks_.assign(sampledSets_, {});
    hits_.assign(config_.maxRegions, 0);
}

void
UMonitor::observe(uint64_t addr)
{
    const uint64_t line = addr / config_.lineBytes;
    const uint64_t set = line % shadowSets_;
    if (set % config_.samplingRatio != 0)
        return; // not a sampled set
    const uint64_t sampled_idx = set / config_.samplingRatio;
    const uint64_t tag = line / shadowSets_;
    auto &stack = stacks_[sampled_idx];
    const auto it = std::find(stack.begin(), stack.end(), tag);
    if (it != stack.end()) {
        const auto d = static_cast<uint32_t>(it - stack.begin());
        ++hits_[d];
        stack.erase(it);
        stack.insert(stack.begin(), tag);
    } else {
        ++missesBeyond_;
        stack.insert(stack.begin(), tag);
        if (stack.size() > config_.maxRegions)
            stack.pop_back();
    }
}

MissCurve
UMonitor::missCurve() const
{
    uint64_t total = missesBeyond_;
    for (uint64_t h : hits_)
        total += h;
    const double scale = static_cast<double>(config_.samplingRatio);
    std::vector<double> misses(config_.maxRegions + 1);
    uint64_t hits_below = 0;
    misses[0] = static_cast<double>(total) * scale;
    for (uint32_t r = 1; r <= config_.maxRegions; ++r) {
        hits_below += hits_[r - 1];
        misses[r] = static_cast<double>(total - hits_below) * scale;
    }
    // Cumulative hit counts make this curve non-increasing already, so
    // the repair is a no-op here; it guards against future histogram
    // sources (sampled, decayed, or injected) that may not be.
    return repairedMissCurve(std::move(misses));
}

double
UMonitor::totalAccessesScaled() const
{
    uint64_t total = missesBeyond_;
    for (uint64_t h : hits_)
        total += h;
    return static_cast<double>(total) *
           static_cast<double>(config_.samplingRatio);
}

uint64_t
UMonitor::hitsAtDistance(uint32_t d) const
{
    REBUDGET_ASSERT(d < config_.maxRegions, "stack distance out of range");
    return hits_[d];
}

void
UMonitor::reset()
{
    for (auto &s : stacks_)
        s.clear();
    resetHistogram();
}

void
UMonitor::resetHistogram()
{
    std::fill(hits_.begin(), hits_.end(), 0);
    missesBeyond_ = 0;
}

uint64_t
UMonitor::storageOverheadBytes() const
{
    // Each shadow entry stores a partial tag (~4 bytes is representative
    // of the paper's 3.6 kB/core figure at ratio 32).
    return sampledSets_ * config_.maxRegions * 4;
}

} // namespace rebudget::cache
