#include "rebudget/cache/talus.h"

#include <algorithm>

#include "rebudget/util/logging.h"

namespace rebudget::cache {

TalusSplit
computeTalusSplit(const MissCurve &curve, double target_regions)
{
    REBUDGET_ASSERT(curve.valid(), "Talus split on empty curve");
    const auto &pois = curve.pointsOfInterest();
    const double max_r = static_cast<double>(curve.maxRegions());
    const double t = std::clamp(target_regions, 0.0, max_r);

    TalusSplit split;
    split.expectedMisses = curve.missesAtHull(t);

    // Find bracketing PoIs s1 <= t <= s2.
    size_t hi_idx = 0;
    while (hi_idx < pois.size() &&
           static_cast<double>(pois[hi_idx]) < t)
        ++hi_idx;
    if (hi_idx == 0) {
        // t at or below the first PoI (which is always 0).
        split.poiLow = split.poiHigh = static_cast<double>(pois[0]);
        split.sizeARegions = 0.0;
        split.sizeBRegions = t;
        split.fracA = 0.0;
        return split;
    }
    if (hi_idx >= pois.size()) {
        // t beyond the last PoI: single partition of the full size.
        split.poiLow = split.poiHigh = static_cast<double>(pois.back());
        split.sizeARegions = 0.0;
        split.sizeBRegions = t;
        split.fracA = 0.0;
        return split;
    }
    const double s2 = static_cast<double>(pois[hi_idx]);
    const double s1 = static_cast<double>(pois[hi_idx - 1]);
    split.poiLow = s1;
    split.poiHigh = s2;
    if (t >= s2) { // exactly at a PoI
        split.sizeARegions = 0.0;
        split.sizeBRegions = s2;
        split.fracA = 0.0;
        return split;
    }
    const double rho = (s2 - t) / (s2 - s1);
    split.fracA = rho;
    split.sizeARegions = rho * s1;
    split.sizeBRegions = (1.0 - rho) * s2;
    return split;
}

bool
talusRouteToA(uint64_t line_addr, double frac_a)
{
    if (frac_a <= 0.0)
        return false;
    if (frac_a >= 1.0)
        return true;
    // splitmix64 finalizer as a stable hash of the line address.
    uint64_t z = line_addr + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    return u < frac_a;
}

} // namespace rebudget::cache
