#include "rebudget/cache/futility_controller.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::cache {

FutilityController::FutilityController(SetAssocCache &cache,
                                       const FutilityControllerConfig &config)
    : cache_(cache), config_(config),
      targets_(cache.partitions(),
               cache.config().lines() / cache.partitions())
{
    if (config_.gain <= 0.0)
        util::fatal("futility controller gain must be positive");
    if (config_.updatePeriod == 0)
        util::fatal("futility controller period must be positive");
}

void
FutilityController::setTargetLines(uint32_t partition, uint64_t lines)
{
    REBUDGET_ASSERT(partition < targets_.size(), "partition out of range");
    targets_[partition] = std::max<uint64_t>(1, lines);
}

void
FutilityController::setTargetBytes(uint32_t partition, uint64_t bytes)
{
    setTargetLines(partition, bytes / cache_.config().lineBytes);
}

uint64_t
FutilityController::targetLines(uint32_t partition) const
{
    REBUDGET_ASSERT(partition < targets_.size(), "partition out of range");
    return targets_[partition];
}

void
FutilityController::tick()
{
    if (++sinceUpdate_ >= config_.updatePeriod) {
        sinceUpdate_ = 0;
        update();
    }
}

void
FutilityController::update()
{
    for (uint32_t p = 0; p < targets_.size(); ++p) {
        const double occ = static_cast<double>(cache_.occupancy(p));
        const double target = static_cast<double>(targets_[p]);
        if (occ <= 0.0) {
            // Nothing resident: make the partition maximally attractive so
            // it can grow toward its target.
            cache_.setScale(p, config_.minScale);
            continue;
        }
        const double ratio = occ / target;
        double scale = cache_.scale(p) * std::pow(ratio, config_.gain);
        scale = std::clamp(scale, config_.minScale, config_.maxScale);
        cache_.setScale(p, scale);
    }
}

} // namespace rebudget::cache
