#include "rebudget/cache/set_assoc_cache.h"

#include "rebudget/util/logging.h"

namespace rebudget::cache {

void
CacheConfig::validate() const
{
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        util::fatal("cache line size must be a power of two");
    if (assoc == 0)
        util::fatal("cache associativity must be positive");
    if (sizeBytes == 0 ||
        sizeBytes % (static_cast<uint64_t>(assoc) * lineBytes) != 0) {
        util::fatal("cache size %llu not divisible by assoc*line",
                    static_cast<unsigned long long>(sizeBytes));
    }
}

SetAssocCache::SetAssocCache(const CacheConfig &config, uint32_t partitions)
    : config_(config), numPartitions_(partitions), numSets_(config.sets())
{
    config_.validate();
    if (partitions == 0)
        util::fatal("cache requires at least one partition");
    lines_.assign(numSets_ * config_.assoc, Line{});
    scales_.assign(partitions, 1.0);
    occupancy_.assign(partitions, 0);
    stats_.assign(partitions, PartitionStats{});
}

AccessResult
SetAssocCache::access(uint32_t partition, uint64_t addr, bool write)
{
    REBUDGET_ASSERT(partition < numPartitions_, "partition out of range");
    ++now_;
    const uint64_t line_addr = addr / config_.lineBytes;
    const uint64_t set = line_addr % numSets_;
    const uint64_t tag = line_addr / numSets_;
    const uint64_t base = set * config_.assoc;

    AccessResult result;
    // Hit check: a line is shared state; any partition may hit on it, but
    // in the multiprogrammed setting address spaces are disjoint so hits
    // are always on own lines.
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            line.lastTouch = now_;
            line.dirty = line.dirty || write;
            result.hit = true;
            ++stats_[partition].hits;
            return result;
        }
    }

    // Miss: find a victim way.
    ++stats_[partition].misses;
    const uint32_t victim_way = findVictim(base);
    Line &line = lines_[base + victim_way];
    if (line.valid) {
        result.victimPartition = line.owner;
        REBUDGET_ASSERT(line.owner >= 0, "valid line without owner");
        --occupancy_[static_cast<uint32_t>(line.owner)];
        if (line.dirty) {
            result.writeback = true;
            ++stats_[static_cast<uint32_t>(line.owner)].writebacks;
        }
    }
    line.valid = true;
    line.tag = tag;
    line.owner = static_cast<int32_t>(partition);
    line.dirty = write;
    line.lastTouch = now_;
    ++occupancy_[partition];
    return result;
}

uint32_t
SetAssocCache::findVictim(uint64_t set_base)
{
    // Prefer an invalid way; otherwise evict the line with the largest
    // scaled futility (LRU age times the owner partition's scale).
    double best_futility = -1.0;
    uint32_t best_way = 0;
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        const Line &line = lines_[set_base + w];
        if (!line.valid)
            return w;
        const double age =
            static_cast<double>(now_ - line.lastTouch);
        const double futility =
            age * scales_[static_cast<uint32_t>(line.owner)];
        if (futility > best_futility) {
            best_futility = futility;
            best_way = w;
        }
    }
    return best_way;
}

void
SetAssocCache::setScale(uint32_t partition, double scale)
{
    REBUDGET_ASSERT(partition < numPartitions_, "partition out of range");
    if (scale <= 0.0)
        util::fatal("futility scale must be positive (got %f)", scale);
    scales_[partition] = scale;
}

double
SetAssocCache::scale(uint32_t partition) const
{
    REBUDGET_ASSERT(partition < numPartitions_, "partition out of range");
    return scales_[partition];
}

uint64_t
SetAssocCache::occupancy(uint32_t partition) const
{
    REBUDGET_ASSERT(partition < numPartitions_, "partition out of range");
    return occupancy_[partition];
}

const PartitionStats &
SetAssocCache::stats(uint32_t partition) const
{
    REBUDGET_ASSERT(partition < numPartitions_, "partition out of range");
    return stats_[partition];
}

void
SetAssocCache::resetStats()
{
    for (auto &s : stats_)
        s = PartitionStats{};
}

void
SetAssocCache::flush()
{
    for (auto &line : lines_)
        line = Line{};
    for (auto &o : occupancy_)
        o = 0;
    resetStats();
}

} // namespace rebudget::cache
