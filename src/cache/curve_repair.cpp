#include "rebudget/cache/curve_repair.h"

#include <cmath>

namespace rebudget::cache {

CurveRepairReport
repairMissCurveSamples(std::vector<double> &samples)
{
    CurveRepairReport report;

    // Zero-width curves cannot bracket any allocation: pad with zeros
    // (an empty curve) or duplicate the lone sample (a flat curve).
    while (samples.size() < 2) {
        samples.push_back(samples.empty() ? 0.0 : samples.back());
        report.padded = true;
    }

    // Non-finite cells: leading ones take the first finite value in the
    // curve (zero if there is none), later ones repeat the previous
    // cell, preserving the non-increasing shape around the hole.
    double first_finite = 0.0;
    for (const double v : samples) {
        if (std::isfinite(v)) {
            first_finite = v;
            break;
        }
    }
    double prev = first_finite;
    for (auto &v : samples) {
        if (!std::isfinite(v)) {
            v = prev;
            ++report.nonFiniteCells;
        }
        prev = v;
    }

    for (auto &v : samples) {
        if (v < 0.0) {
            v = 0.0;
            ++report.negativeCells;
        }
    }

    // Misses cannot grow with capacity: project onto the non-increasing
    // cone with a running minimum (the closest such curve from below).
    double running_min = samples.front();
    for (auto &v : samples) {
        if (v > running_min) {
            v = running_min;
            ++report.monotoneViolations;
        } else {
            running_min = v;
        }
    }

    return report;
}

MissCurve
repairedMissCurve(std::vector<double> samples, CurveRepairReport *report)
{
    const CurveRepairReport r = repairMissCurveSamples(samples);
    if (report != nullptr)
        *report = r;
    return MissCurve(std::move(samples));
}

} // namespace rebudget::cache
