#ifndef REBUDGET_CACHE_CACHE_CONFIG_H_
#define REBUDGET_CACHE_CACHE_CONFIG_H_

/**
 * @file
 * Geometry configuration for set-associative caches.
 */

#include <cstdint>

namespace rebudget::cache {

/** Geometry of a set-associative cache. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    uint64_t sizeBytes = 4 * 1024 * 1024;
    /** Ways per set. */
    uint32_t assoc = 16;
    /** Line size in bytes (power of two). */
    uint32_t lineBytes = 64;

    /** @return number of sets implied by the geometry. */
    uint64_t
    sets() const
    {
        return sizeBytes / (static_cast<uint64_t>(assoc) * lineBytes);
    }

    /** @return total number of lines. */
    uint64_t lines() const { return sizeBytes / lineBytes; }

    /** Validate the geometry; calls util::fatal() on bad parameters. */
    void validate() const;
};

} // namespace rebudget::cache

#endif // REBUDGET_CACHE_CACHE_CONFIG_H_
