#ifndef REBUDGET_CACHE_SET_ASSOC_CACHE_H_
#define REBUDGET_CACHE_SET_ASSOC_CACHE_H_

/**
 * @file
 * Partition-aware set-associative cache model.
 *
 * The cache tracks, for every resident line, the partition (player) that
 * owns it.  Replacement uses *Futility Scaling* [Wang & Chen, MICRO'14]:
 * the victim within a set is the line with the largest scaled futility,
 * where futility is the line's LRU age and the per-partition scale factor
 * is adjusted by a feedback controller (see FutilityController) to keep
 * each partition's occupancy near its target at cache-line granularity.
 *
 * With all scale factors equal the policy degenerates to plain global
 * LRU, which is also the single-partition behavior.
 */

#include <cstdint>
#include <vector>

#include "rebudget/cache/cache_config.h"

namespace rebudget::cache {

/** Outcome of one cache access. */
struct AccessResult
{
    /** True if the line was already resident. */
    bool hit = false;
    /** True if a dirty line was evicted (writeback generated). */
    bool writeback = false;
    /** Partition that lost a line to make room (-1 if none). */
    int32_t victimPartition = -1;
};

/** Per-partition hit/miss counters. */
struct PartitionStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;

    /** @return accesses observed. */
    uint64_t accesses() const { return hits + misses; }

    /** @return miss ratio in [0, 1] (0 when no accesses). */
    double
    missRatio() const
    {
        const uint64_t a = accesses();
        return a ? static_cast<double>(misses) / static_cast<double>(a) : 0.0;
    }
};

/**
 * Set-associative cache with futility-scaled, partition-aware
 * replacement.
 */
class SetAssocCache
{
  public:
    /**
     * @param config      cache geometry
     * @param partitions  number of partitions (players) sharing the cache
     */
    SetAssocCache(const CacheConfig &config, uint32_t partitions);

    /**
     * Perform one access on behalf of a partition.
     *
     * @param partition  owning partition of the access
     * @param addr       byte address
     * @param write      true for stores
     * @return hit/miss outcome and eviction details
     */
    AccessResult access(uint32_t partition, uint64_t addr, bool write);

    /**
     * Set the futility scale factor for a partition.  Larger scale makes
     * the partition's lines more likely to be victimized.
     */
    void setScale(uint32_t partition, double scale);

    /** @return the current futility scale of a partition. */
    double scale(uint32_t partition) const;

    /** @return lines currently owned by a partition. */
    uint64_t occupancy(uint32_t partition) const;

    /** @return cumulative statistics of a partition. */
    const PartitionStats &stats(uint32_t partition) const;

    /** Reset hit/miss statistics (occupancy is preserved). */
    void resetStats();

    /** Invalidate the entire cache contents and reset statistics. */
    void flush();

    /** @return the cache geometry. */
    const CacheConfig &config() const { return config_; }

    /** @return the number of partitions. */
    uint32_t partitions() const { return numPartitions_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lastTouch = 0;
        int32_t owner = -1;
        bool valid = false;
        bool dirty = false;
    };

    uint32_t findVictim(uint64_t set_base);

    CacheConfig config_;
    uint32_t numPartitions_;
    uint64_t numSets_;
    uint64_t now_ = 0;
    std::vector<Line> lines_; // sets * assoc, set-major
    std::vector<double> scales_;
    std::vector<uint64_t> occupancy_;
    std::vector<PartitionStats> stats_;
};

} // namespace rebudget::cache

#endif // REBUDGET_CACHE_SET_ASSOC_CACHE_H_
