#ifndef REBUDGET_CACHE_FUTILITY_CONTROLLER_H_
#define REBUDGET_CACHE_FUTILITY_CONTROLLER_H_

/**
 * @file
 * Feedback controller for Futility Scaling cache partitioning
 * [Wang & Chen, MICRO'14].
 *
 * The controller periodically compares each partition's occupancy against
 * its target (expressed in cache lines, i.e.\ 128 kB "cache regions" at
 * line granularity) and multiplicatively adjusts the partition's futility
 * scale: partitions above target have their lines' futility scaled up
 * (more likely to be victimized), partitions below target scaled down.
 * This enforces partition sizes precisely without way-granularity
 * restrictions, which is what lets the market treat cache capacity as a
 * continuous resource (Section 4.1.1 of the paper).
 */

#include <cstdint>
#include <vector>

#include "rebudget/cache/set_assoc_cache.h"

namespace rebudget::cache {

/** Tuning knobs for the futility controller. */
struct FutilityControllerConfig
{
    /** Multiplicative adjustment exponent per update. */
    double gain = 0.5;
    /** Scale clamp range (keeps the controller stable). */
    double minScale = 1e-4;
    double maxScale = 1e4;
    /** Accesses between controller updates. */
    uint64_t updatePeriod = 4096;
};

/** Drives SetAssocCache partition occupancies toward line targets. */
class FutilityController
{
  public:
    /**
     * @param cache   the controlled cache (must outlive the controller)
     * @param config  controller tuning
     */
    FutilityController(SetAssocCache &cache,
                       const FutilityControllerConfig &config = {});

    /**
     * Set the occupancy target of a partition in lines.  Targets need not
     * sum to the cache capacity; partitions with slack targets simply
     * yield to those under pressure.
     */
    void setTargetLines(uint32_t partition, uint64_t lines);

    /** Convenience: set a target in bytes (rounded down to lines). */
    void setTargetBytes(uint32_t partition, uint64_t bytes);

    /** @return a partition's current target in lines. */
    uint64_t targetLines(uint32_t partition) const;

    /**
     * Notify the controller that one access occurred; every
     * updatePeriod accesses the scales are recomputed.
     */
    void tick();

    /** Force a scale update now (used by tests and epoch boundaries). */
    void update();

  private:
    SetAssocCache &cache_;
    FutilityControllerConfig config_;
    std::vector<uint64_t> targets_;
    uint64_t sinceUpdate_ = 0;
};

} // namespace rebudget::cache

#endif // REBUDGET_CACHE_FUTILITY_CONTROLLER_H_
