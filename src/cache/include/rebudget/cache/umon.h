#ifndef REBUDGET_CACHE_UMON_H_
#define REBUDGET_CACHE_UMON_H_

/**
 * @file
 * UMON-DSS utility monitor [Qureshi & Patt, MICRO'06].
 *
 * A sampled shadow-tag array with true-LRU stacks records, for each
 * monitored access, the LRU stack distance at which it hits.  The
 * stack-distance histogram yields the application's miss curve for any
 * capacity up to the monitored maximum (the paper limits the stack
 * distance to 16, i.e.\ capacities of 128 kB to 2 MB in one-region
 * steps, with a dynamic sampling ratio of 32 -> 3.6 kB of tags per core).
 *
 * The monitor observes the *pre-L2* access stream of one core and is
 * independent of the actual partition the core currently owns, which is
 * exactly what lets the market evaluate "what if" allocations online.
 */

#include <cstdint>
#include <vector>

#include "rebudget/cache/miss_curve.h"

namespace rebudget::cache {

/** Geometry and sampling parameters of the monitor. */
struct UMonConfig
{
    /** Stack-distance limit: largest capacity monitored, in regions. */
    uint32_t maxRegions = 16;
    /** Bytes per cache region (allocation granularity). */
    uint64_t regionBytes = 128 * 1024;
    /** Cache line size in bytes. */
    uint32_t lineBytes = 64;
    /** Dynamic set sampling ratio (1 in samplingRatio sets monitored). */
    uint32_t samplingRatio = 32;
};

/** Sampled shadow-tag stack-distance monitor. */
class UMonitor
{
  public:
    explicit UMonitor(const UMonConfig &config = {});

    /** Observe one access (byte address) of the monitored core. */
    void observe(uint64_t addr);

    /**
     * @return the miss curve implied by the current histogram, scaled by
     * the sampling ratio: misses at region counts 0..maxRegions.
     * Capacities beyond maxRegions are assumed to yield no further hits
     * (paper Section 5, footnote 3).
     */
    MissCurve missCurve() const;

    /** @return scaled total accesses observed (all sampled, x ratio). */
    double totalAccessesScaled() const;

    /** @return raw hit count at stack distance d (0-based). */
    uint64_t hitsAtDistance(uint32_t d) const;

    /** @return raw count of accesses missing all monitored ways. */
    uint64_t missesBeyond() const { return missesBeyond_; }

    /** Clear the histogram and shadow tags (start of a new interval). */
    void reset();

    /** Clear only the histogram, retaining shadow tag state (avoids
     * cold-start transients between measurement intervals). */
    void resetHistogram();

    /** @return monitor SRAM overhead in bytes (tags only). */
    uint64_t storageOverheadBytes() const;

    /** @return the monitor configuration. */
    const UMonConfig &config() const { return config_; }

  private:
    UMonConfig config_;
    uint64_t shadowSets_;    // sets of the full-size shadow cache
    uint64_t sampledSets_;   // number of monitored sets
    // Per monitored set: LRU-ordered tags, front = MRU. Entry count is at
    // most maxRegions.
    std::vector<std::vector<uint64_t>> stacks_;
    std::vector<uint64_t> hits_; // hits_[d] = hits at stack distance d
    uint64_t missesBeyond_ = 0;
};

} // namespace rebudget::cache

#endif // REBUDGET_CACHE_UMON_H_
