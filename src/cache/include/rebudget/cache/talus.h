#ifndef REBUDGET_CACHE_TALUS_H_
#define REBUDGET_CACHE_TALUS_H_

/**
 * @file
 * Talus cache convexification [Beckmann & Sanchez, HPCA'15].
 *
 * Given an application's miss curve, Talus guarantees that any target
 * capacity t achieves the miss count of the curve's lower convex hull at
 * t.  It does so by splitting the application's partition into two
 * "shadow" partitions sized rho*s1 and (1-rho)*s2, where s1 <= t <= s2
 * are the bracketing hull vertices (points of interest) and
 * rho = (s2 - t)/(s2 - s1); a fraction rho of the access stream (chosen
 * by a stable hash of the line address) is routed to the first shadow
 * partition.  Each shadow partition then behaves like a proportionally
 * scaled-down cache of size s1 (resp.\ s2) observing the full stream, so
 * total misses interpolate linearly between m(s1) and m(s2).
 *
 * This is what makes cache capacity a *concave, continuous* resource for
 * the market (paper Section 4.1.1).
 */

#include <cstdint>

#include "rebudget/cache/miss_curve.h"

namespace rebudget::cache {

/** Shadow-partition configuration for one target capacity. */
struct TalusSplit
{
    /** Shadow partition A size in regions (rho * s1). */
    double sizeARegions = 0.0;
    /** Shadow partition B size in regions ((1-rho) * s2). */
    double sizeBRegions = 0.0;
    /** Fraction of the access stream routed to shadow partition A. */
    double fracA = 0.0;
    /** Bracketing points of interest (regions). */
    double poiLow = 0.0;
    double poiHigh = 0.0;
    /** Expected misses at the target (hull interpolation). */
    double expectedMisses = 0.0;
};

/**
 * Compute the Talus shadow-partition split realizing a target capacity.
 *
 * @param curve          the application's miss curve
 * @param target_regions desired capacity in (possibly fractional) regions;
 *                       clamped to [0, curve.maxRegions()]
 * @return the shadow partition sizes and stream split
 */
TalusSplit computeTalusSplit(const MissCurve &curve, double target_regions);

/**
 * Stable stream-splitting predicate: route the line containing addr to
 * shadow partition A with probability fracA, deterministically per line.
 *
 * @param line_addr  line-granular address (byte address / line size)
 * @param frac_a     stream fraction for shadow partition A
 */
bool talusRouteToA(uint64_t line_addr, double frac_a);

} // namespace rebudget::cache

#endif // REBUDGET_CACHE_TALUS_H_
