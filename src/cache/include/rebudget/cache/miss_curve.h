#ifndef REBUDGET_CACHE_MISS_CURVE_H_
#define REBUDGET_CACHE_MISS_CURVE_H_

/**
 * @file
 * Miss curves: misses as a function of allocated cache capacity.
 *
 * Capacity is expressed in "cache regions" (128 kB in the paper's setup).
 * A miss curve in general is neither convex nor continuous; Talus
 * operates on the curve's *lower convex hull*, whose vertices are the
 * points of interest (PoIs).  Any capacity between two PoIs is realized
 * by Talus shadow partitioning and achieves the linear interpolation of
 * the PoI miss counts (see talus.h).
 */

#include <cstddef>
#include <vector>

#include "rebudget/util/piecewise.h"

namespace rebudget::cache {

/** Misses vs. integer region allocation, with convex-hull utilities. */
class MissCurve
{
  public:
    MissCurve() = default;

    /**
     * @param misses  misses at region counts 0, 1, ..., N (index equals
     *                regions; misses[0] is the compulsory+full miss count
     *                with no cache).  Must be non-empty.
     */
    explicit MissCurve(std::vector<double> misses);

    /** @return the largest region count in the curve. */
    size_t maxRegions() const { return misses_.size() - 1; }

    /** @return raw misses at an integer region allocation. */
    double missesAt(size_t regions) const;

    /** @return raw misses, linearly interpolated between integer points. */
    double missesAtRaw(double regions) const;

    /**
     * @return region counts of the lower-convex-hull vertices (Talus
     * points of interest), in increasing order; always includes 0 and
     * maxRegions().
     */
    const std::vector<size_t> &pointsOfInterest() const { return pois_; }

    /**
     * @return misses at a (possibly fractional) region allocation when
     * the allocation is realized via Talus shadow partitioning: the
     * linear interpolation between the bracketing PoIs.  This is convex
     * and non-increasing in the allocation.
     */
    double missesAtHull(double regions) const;

    /** @return the hull as a piecewise-linear curve over regions. */
    const util::PiecewiseLinear &hull() const { return hull_; }

    /** @return the raw per-region miss samples. */
    const std::vector<double> &samples() const { return misses_; }

    /** @return true if the curve has data. */
    bool valid() const { return !misses_.empty(); }

  private:
    std::vector<double> misses_;
    std::vector<size_t> pois_;
    util::PiecewiseLinear hull_;
};

} // namespace rebudget::cache

#endif // REBUDGET_CACHE_MISS_CURVE_H_
