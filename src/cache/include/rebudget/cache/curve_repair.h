#ifndef REBUDGET_CACHE_CURVE_REPAIR_H_
#define REBUDGET_CACHE_CURVE_REPAIR_H_

/**
 * @file
 * Input hardening for miss-curve samples.
 *
 * UMON curves are non-increasing by construction (cumulative hit
 * counts), but curves that arrive from traces, faults or external
 * profilers may carry NaN/Inf cells, negative counts, non-monotone
 * runs, or too few points for Talus to bracket an allocation.  The
 * convex-hull machinery (util::upperConcaveHullIndices) treats such
 * input as a programming error and fatals, so every untrusted curve
 * must pass through repairMissCurveSamples() first.  On a well-formed
 * curve the repair is a provable no-op.
 */

#include <cstdint>
#include <vector>

#include "rebudget/cache/miss_curve.h"

namespace rebudget::cache {

/** What repairMissCurveSamples changed, for telemetry. */
struct CurveRepairReport
{
    /** NaN/Inf cells replaced by a neighboring finite value. */
    std::int64_t nonFiniteCells = 0;
    /** Negative miss counts clamped to zero. */
    std::int64_t negativeCells = 0;
    /** Cells raised/lowered to restore the non-increasing shape. */
    std::int64_t monotoneViolations = 0;
    /** True if the curve was padded to the two-point minimum. */
    bool padded = false;

    /** @return true if any cell was modified. */
    bool anyRepair() const
    {
        return nonFiniteCells > 0 || negativeCells > 0 ||
               monotoneViolations > 0 || padded;
    }
};

/**
 * Repair a miss-sample vector in place so that MissCurve construction
 * cannot fatal: replaces NaN/Inf cells (leading non-finite cells take
 * the first finite value, later ones the previous cell), clamps
 * negatives to zero, enforces the non-increasing invariant via a
 * running minimum, and pads zero-width input to two points.
 *
 * @return a report of every class of repair performed.
 */
CurveRepairReport repairMissCurveSamples(std::vector<double> &samples);

/**
 * Convenience wrapper: repair then construct.  Never fatals on finite-
 * size input.
 *
 * @param report  optional out-param receiving the repair report.
 */
MissCurve repairedMissCurve(std::vector<double> samples,
                            CurveRepairReport *report = nullptr);

} // namespace rebudget::cache

#endif // REBUDGET_CACHE_CURVE_REPAIR_H_
