#include "rebudget/faults/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace rebudget::faults {

namespace {

double
clampRate(double v)
{
    return std::clamp(v, 0.0, 1.0);
}

void
appendKnob(std::string &out, const char *key, double v)
{
    if (v == 0.0)
        return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s%s=%g", out.empty() ? "" : ",",
                  key, v);
    out += buf;
}

} // namespace

NoiseModel
NoiseModel::scaled(double level) const
{
    NoiseModel out;
    out.gaussianRel = gaussianRel * level;
    out.quantizeStep = quantizeStep * level;
    out.dropProbability = clampRate(dropProbability * level);
    return out;
}

bool
FaultPlan::enabled() const
{
    return curveNoise.active() || powerNoise.active() || powerBias != 0.0 ||
           gridNanRate > 0.0 || gridZeroColumnRate > 0.0 ||
           gridScrambleRate > 0.0 || staleProfileRate > 0.0 ||
           liarFraction > 0.0;
}

FaultPlan
FaultPlan::scaled(double level) const
{
    level = std::max(0.0, level);
    FaultPlan out;
    out.seed = seed;
    out.curveNoise = curveNoise.scaled(level);
    out.powerNoise = powerNoise.scaled(level);
    out.powerBias = powerBias * level;
    out.gridNanRate = clampRate(gridNanRate * level);
    out.gridZeroColumnRate = clampRate(gridZeroColumnRate * level);
    out.gridScrambleRate = clampRate(gridScrambleRate * level);
    out.staleProfileRate = clampRate(staleProfileRate * level);
    out.liarFraction = clampRate(liarFraction * level);
    // Interpolate the gain from honest (1) so level 0 means no lying
    // even if the fraction rounds above zero.
    out.liarGain = 1.0 + (liarGain - 1.0) * level;
    return out;
}

util::Expected<FaultPlan>
FaultPlan::parse(std::string_view spec, std::uint64_t seed)
{
    using util::SolveStatus;
    using util::StatusCode;

    FaultPlan plan;
    plan.seed = seed;

    std::vector<std::string> tokens;
    size_t start = 0;
    while (start <= spec.size()) {
        const size_t comma = spec.find(',', start);
        const size_t end = comma == std::string_view::npos ? spec.size()
                                                           : comma;
        if (end > start)
            tokens.emplace_back(spec.substr(start, end - start));
        if (comma == std::string_view::npos)
            break;
        start = comma + 1;
    }

    for (const std::string &token : tokens) {
        const size_t eq = token.find('=');
        if (eq == std::string::npos) {
            if (token == "liar") {
                plan.liarFraction = 0.25;
            } else if (token == "corrupt-grid") {
                plan.gridNanRate = 0.05;
                plan.gridZeroColumnRate = 0.05;
                plan.gridScrambleRate = 0.1;
            } else if (token == "noise") {
                plan.curveNoise.gaussianRel = 0.1;
                plan.curveNoise.dropProbability = 0.02;
                plan.powerNoise.gaussianRel = 0.05;
            } else {
                return SolveStatus::error(
                    StatusCode::InvalidArgument,
                    "unknown fault preset '%s' (try liar, corrupt-grid, "
                    "noise, or key=value)",
                    token.c_str());
            }
            continue;
        }

        const std::string key = token.substr(0, eq);
        const std::string value_str = token.substr(eq + 1);
        char *parse_end = nullptr;
        const double value = std::strtod(value_str.c_str(), &parse_end);
        if (value_str.empty() || parse_end == value_str.c_str() ||
            *parse_end != '\0' || !std::isfinite(value)) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "fault spec '%s' has a malformed number", token.c_str());
        }

        const bool is_rate = key == "curve-drop" || key == "grid-nan" ||
                             key == "grid-zero-col" ||
                             key == "grid-scramble" || key == "stale" ||
                             key == "liar";
        if (is_rate && (value < 0.0 || value > 1.0)) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "fault rate '%s' must be in [0, 1]", token.c_str());
        }

        if (key == "curve-noise") {
            plan.curveNoise.gaussianRel = value;
        } else if (key == "curve-drop") {
            plan.curveNoise.dropProbability = value;
        } else if (key == "curve-quant") {
            plan.curveNoise.quantizeStep = value;
        } else if (key == "grid-nan") {
            plan.gridNanRate = value;
        } else if (key == "grid-zero-col") {
            plan.gridZeroColumnRate = value;
        } else if (key == "grid-scramble") {
            plan.gridScrambleRate = value;
        } else if (key == "power-bias") {
            plan.powerBias = value;
        } else if (key == "power-noise") {
            plan.powerNoise.gaussianRel = value;
        } else if (key == "stale") {
            plan.staleProfileRate = value;
        } else if (key == "liar") {
            plan.liarFraction = value;
        } else if (key == "liar-gain") {
            if (value <= 0.0) {
                return SolveStatus::error(StatusCode::InvalidArgument,
                                          "liar-gain must be > 0");
            }
            plan.liarGain = value;
        } else {
            return SolveStatus::error(StatusCode::InvalidArgument,
                                      "unknown fault key '%s'",
                                      key.c_str());
        }
        if (value < 0.0 && key != "power-bias") {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "fault knob '%s' must be non-negative", token.c_str());
        }
    }
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::string out;
    appendKnob(out, "curve-noise", curveNoise.gaussianRel);
    appendKnob(out, "curve-quant", curveNoise.quantizeStep);
    appendKnob(out, "curve-drop", curveNoise.dropProbability);
    appendKnob(out, "power-noise", powerNoise.gaussianRel);
    appendKnob(out, "power-bias", powerBias);
    appendKnob(out, "grid-nan", gridNanRate);
    appendKnob(out, "grid-zero-col", gridZeroColumnRate);
    appendKnob(out, "grid-scramble", gridScrambleRate);
    appendKnob(out, "stale", staleProfileRate);
    appendKnob(out, "liar", liarFraction);
    if (liarFraction > 0.0)
        appendKnob(out, "liar-gain", liarGain);
    return out.empty() ? "disabled" : out;
}

} // namespace rebudget::faults
