#include "rebudget/faults/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "rebudget/cache/curve_repair.h"
#include "rebudget/util/logging.h"

namespace rebudget::faults {

void
InjectionStats::merge(const InjectionStats &other)
{
    curveCellsPerturbed += other.curveCellsPerturbed;
    curveSamplesDropped += other.curveSamplesDropped;
    gridCellsCorrupted += other.gridCellsCorrupted;
    gridColumnsZeroed += other.gridColumnsZeroed;
    gridRowsScrambled += other.gridRowsScrambled;
    liarPlayers += other.liarPlayers;
    powerReadingsBiased += other.powerReadingsBiased;
    staleProfiles += other.staleProfiles;
}

std::int64_t
InjectionStats::total() const
{
    return curveCellsPerturbed + curveSamplesDropped + gridCellsCorrupted +
           gridColumnsZeroed + gridRowsScrambled + liarPlayers +
           powerReadingsBiased + staleProfiles;
}

LiarUtilityModel::LiarUtilityModel(
    std::shared_ptr<const market::UtilityModel> truth, double gain)
    : truth_(std::move(truth)), gain_(gain)
{
    REBUDGET_ASSERT(truth_ != nullptr, "liar needs a truth model");
    REBUDGET_ASSERT(gain_ > 0.0 && std::isfinite(gain_),
                    "liar gain must be positive and finite");
}

void
LiarUtilityModel::gradient(std::span<const double> alloc,
                           std::span<double> out) const
{
    truth_->gradient(alloc, out);
    for (auto &g : out)
        g *= gain_;
}

std::string
LiarUtilityModel::name() const
{
    return truth_->name() + "+liar";
}

util::Rng
FaultInjector::fork(std::uint64_t scope, std::uint64_t player,
                    FaultStream stream, std::uint64_t salt) const
{
    return util::Rng::forStream(
        plan_.seed,
        {scope, player, static_cast<std::uint64_t>(stream), salt});
}

cache::MissCurve
FaultInjector::perturbMissCurve(const cache::MissCurve &curve,
                                std::uint64_t scope, std::uint64_t player,
                                std::uint64_t salt, InjectionStats &stats,
                                util::SolverStats *hardening) const
{
    const NoiseModel &noise = plan_.curveNoise;
    if (!noise.active() || !curve.valid())
        return curve;

    util::Rng rng = fork(scope, player, FaultStream::Curve, salt);
    std::vector<double> samples = curve.samples();
    for (auto &v : samples) {
        double perturbed = v;
        if (noise.gaussianRel > 0.0)
            perturbed *= 1.0 + rng.normal(0.0, noise.gaussianRel);
        if (noise.quantizeStep > 0.0)
            perturbed = std::round(perturbed / noise.quantizeStep) *
                        noise.quantizeStep;
        if (perturbed != v)
            ++stats.curveCellsPerturbed;
        if (noise.dropProbability > 0.0 &&
            rng.bernoulli(noise.dropProbability)) {
            perturbed = std::numeric_limits<double>::quiet_NaN();
            ++stats.curveSamplesDropped;
        }
        v = perturbed;
    }

    cache::CurveRepairReport report;
    cache::MissCurve repaired =
        cache::repairedMissCurve(std::move(samples), &report);
    if (report.anyRepair() && hardening != nullptr)
        ++hardening->repairedCurves;
    return repaired;
}

double
FaultInjector::biasPowerReading(double watts, std::uint64_t scope,
                                std::uint64_t player, std::uint64_t salt,
                                InjectionStats &stats) const
{
    if (plan_.powerBias == 0.0 && !plan_.powerNoise.active())
        return watts;

    double out = watts * (1.0 + plan_.powerBias);
    const NoiseModel &noise = plan_.powerNoise;
    if (noise.active()) {
        util::Rng rng = fork(scope, player, FaultStream::Power, salt);
        if (noise.gaussianRel > 0.0)
            out *= 1.0 + rng.normal(0.0, noise.gaussianRel);
        if (noise.quantizeStep > 0.0)
            out = std::round(out / noise.quantizeStep) * noise.quantizeStep;
    }
    out = std::max(0.0, out);
    if (out != watts)
        ++stats.powerReadingsBiased;
    return out;
}

bool
FaultInjector::staleProfile(std::uint64_t scope, std::uint64_t player,
                            std::uint64_t salt,
                            InjectionStats &stats) const
{
    if (plan_.staleProfileRate <= 0.0)
        return false;
    util::Rng rng = fork(scope, player, FaultStream::Stale, salt);
    if (!rng.bernoulli(plan_.staleProfileRate))
        return false;
    ++stats.staleProfiles;
    return true;
}

bool
FaultInjector::isLiar(std::uint64_t scope, std::uint64_t player) const
{
    if (plan_.liarFraction <= 0.0 || plan_.liarGain == 1.0)
        return false;
    util::Rng rng = fork(scope, player, FaultStream::Liar);
    return rng.bernoulli(plan_.liarFraction);
}

std::shared_ptr<const market::UtilityModel>
FaultInjector::maybeLiar(std::shared_ptr<const market::UtilityModel> model,
                         std::uint64_t scope, std::uint64_t player,
                         InjectionStats &stats) const
{
    if (model == nullptr || !isLiar(scope, player))
        return model;
    ++stats.liarPlayers;
    return std::make_shared<LiarUtilityModel>(std::move(model),
                                              plan_.liarGain);
}

std::shared_ptr<const app::AppUtilityModel>
FaultInjector::perturbModel(
    const std::shared_ptr<const app::AppUtilityModel> &model,
    std::uint64_t scope, std::uint64_t player, InjectionStats &stats,
    util::SolverStats *hardening) const
{
    if (model == nullptr ||
        (plan_.gridNanRate <= 0.0 && plan_.gridZeroColumnRate <= 0.0 &&
         plan_.gridScrambleRate <= 0.0)) {
        return model;
    }

    const size_t nc = model->cacheKnots().size();
    const size_t np = model->powerKnots().size();
    app::RawUtilityGrid raw;
    raw.name = model->name();
    raw.cacheKnots = model->cacheKnots();
    raw.powerKnots = model->powerKnots();
    raw.minRegions = model->minRegions();
    raw.minWatts = model->minWatts();
    raw.activity = model->activity();
    raw.grid.resize(nc * np);
    for (size_t ci = 0; ci < nc; ++ci)
        for (size_t pi = 0; pi < np; ++pi)
            raw.grid[ci * np + pi] = model->gridValue(ci, pi);

    util::Rng rng = fork(scope, player, FaultStream::Grid);
    bool corrupted = false;
    if (plan_.gridNanRate > 0.0) {
        for (auto &v : raw.grid) {
            if (rng.bernoulli(plan_.gridNanRate)) {
                // Alternate NaN and Inf holes so both repair paths see
                // traffic.
                v = rng.bernoulli(0.5)
                        ? std::numeric_limits<double>::quiet_NaN()
                        : std::numeric_limits<double>::infinity();
                ++stats.gridCellsCorrupted;
                corrupted = true;
            }
        }
    }
    if (plan_.gridZeroColumnRate > 0.0) {
        for (size_t pi = 0; pi < np; ++pi) {
            if (!rng.bernoulli(plan_.gridZeroColumnRate))
                continue;
            for (size_t ci = 0; ci < nc; ++ci)
                raw.grid[ci * np + pi] = 0.0;
            ++stats.gridColumnsZeroed;
            corrupted = true;
        }
    }
    if (plan_.gridScrambleRate > 0.0) {
        for (size_t ci = 0; ci < nc; ++ci) {
            if (!rng.bernoulli(plan_.gridScrambleRate))
                continue;
            std::vector<double> row(raw.grid.begin() + ci * np,
                                    raw.grid.begin() + (ci + 1) * np);
            rng.shuffle(row);
            std::copy(row.begin(), row.end(), raw.grid.begin() + ci * np);
            ++stats.gridRowsScrambled;
            corrupted = true;
        }
    }
    if (!corrupted)
        return model;

    auto rebuilt = std::make_shared<app::AppUtilityModel>(std::move(raw));
    if (hardening != nullptr &&
        (rebuilt->sanitizeReport().any() || !rebuilt->gridStatus().ok()))
        ++hardening->sanitizedGrids;
    return rebuilt;
}

} // namespace rebudget::faults
