#include "rebudget/faults/blob_damage.h"

namespace rebudget::faults {

const char *
blobDamageName(BlobDamage kind)
{
    switch (kind) {
    case BlobDamage::Truncate:
        return "truncate";
    case BlobDamage::BitFlip:
        return "bit-flip";
    case BlobDamage::ZeroRange:
        return "zero-range";
    case BlobDamage::LengthLie:
        return "length-lie";
    }
    return "unknown";
}

std::size_t
damageBlob(std::vector<std::uint8_t> &bytes, BlobDamage kind,
           util::Rng &rng, std::size_t lengthOffset)
{
    if (bytes.empty())
        return 0;
    switch (kind) {
    case BlobDamage::Truncate: {
        // Keep a strict prefix: anywhere from nothing to all-but-one
        // byte survives, covering both "file vanished mid-write" and
        // "one byte short" torn tails.
        const std::size_t keep = static_cast<std::size_t>(
            rng.uniformInt(static_cast<std::uint64_t>(bytes.size())));
        bytes.resize(keep);
        return keep;
    }
    case BlobDamage::BitFlip: {
        const std::size_t at = static_cast<std::size_t>(
            rng.uniformInt(static_cast<std::uint64_t>(bytes.size())));
        bytes[at] ^= static_cast<std::uint8_t>(
            1u << rng.uniformInt(static_cast<std::uint64_t>(8)));
        return at;
    }
    case BlobDamage::ZeroRange: {
        const std::size_t at = static_cast<std::size_t>(
            rng.uniformInt(static_cast<std::uint64_t>(bytes.size())));
        std::size_t len = 1 + static_cast<std::size_t>(
                                  rng.uniformInt(std::uint64_t{16}));
        if (at + len > bytes.size())
            len = bytes.size() - at;
        for (std::size_t i = 0; i < len; ++i)
            bytes[at + i] = 0;
        return at;
    }
    case BlobDamage::LengthLie: {
        std::size_t at = lengthOffset;
        if (at + 4 > bytes.size())
            at = bytes.size() >= 4 ? bytes.size() - 4 : 0;
        if (at + 4 > bytes.size())
            return 0; // blob too small to hold a u32 at all
        // Claim far more bytes than the blob holds; keep two low bits
        // random so repeated draws exercise different lies.
        const std::uint32_t lie =
            0x7fff0000u | static_cast<std::uint32_t>(
                              rng.uniformInt(std::uint64_t{0x10000}));
        for (int shift = 0; shift < 32; shift += 8)
            bytes[at + static_cast<std::size_t>(shift / 8)] =
                static_cast<std::uint8_t>(lie >> shift);
        return at;
    }
    }
    return 0;
}

} // namespace rebudget::faults
