#ifndef REBUDGET_FAULTS_FAULT_PLAN_H_
#define REBUDGET_FAULTS_FAULT_PLAN_H_

/**
 * @file
 * Declarative description of what to break.
 *
 * A FaultPlan is the configuration half of the fault-injection harness
 * (see fault_injector.h for the mechanism half): it names the noise
 * magnitudes, corruption rates and misreporting behaviors to apply to
 * the monitoring->market pipeline.  Plans are plain data -- copyable,
 * comparable by field, scalable for noise sweeps -- and are parsed from
 * the CLI's `--faults` spec.  A default-constructed plan injects
 * nothing, which is what keeps the clean evaluation paths bit-identical
 * to the no-faults baseline.
 *
 * Randomness never lives in the plan: every stochastic decision is
 * drawn from a per-(scope, player, stream) util::Rng fork keyed by the
 * plan's seed (see FaultInjector::fork), so identical plans reproduce
 * identical faults at any `--jobs` count.
 */

#include <cstdint>
#include <string>
#include <string_view>

#include "rebudget/util/status.h"

namespace rebudget::faults {

/** Measurement-noise shape applied to one scalar sample stream. */
struct NoiseModel
{
    /** Stddev of multiplicative Gaussian noise, relative to the value. */
    double gaussianRel = 0.0;
    /** Round values to multiples of this absolute step (0 = off). */
    double quantizeStep = 0.0;
    /** Probability a sample is dropped (becomes a hole to repair). */
    double dropProbability = 0.0;

    /** @return true if any knob is nonzero. */
    bool active() const
    {
        return gaussianRel > 0.0 || quantizeStep > 0.0 ||
               dropProbability > 0.0;
    }

    /** @return a copy with every knob multiplied by @p level. */
    NoiseModel scaled(double level) const;
};

/**
 * Everything the injector may do, with all knobs off by default.
 * Rates are probabilities in [0, 1]; magnitudes are relative.
 */
struct FaultPlan
{
    /** Root seed for every fault stream (fork keys layer on top). */
    std::uint64_t seed = 2016;

    /** Noise on UMON miss-curve samples. */
    NoiseModel curveNoise;
    /** Noise on power readings (RAPL-style meters). */
    NoiseModel powerNoise;
    /** Systematic relative bias on power readings (+0.1 = reads 10% high). */
    double powerBias = 0.0;

    /** Per-cell probability of a NaN/Inf hole in a utility grid. */
    double gridNanRate = 0.0;
    /** Per-column probability a utility grid power column reads zero. */
    double gridZeroColumnRate = 0.0;
    /** Per-row probability a grid row is scrambled (non-monotone). */
    double gridScrambleRate = 0.0;

    /** Probability a player's profile is stale (frozen from before). */
    double staleProfileRate = 0.0;

    /** Fraction of players that misreport utility ("liar players"). */
    double liarFraction = 0.0;
    /** Multiplicative gain a liar applies to its reported utility. */
    double liarGain = 4.0;

    /** @return true if this plan injects anything at all. */
    bool enabled() const;

    /**
     * @return a copy with every rate and magnitude multiplied by
     * @p level (probabilities clamp to 1; liarGain interpolates from 1
     * so level 0 means honest players).  Used by `--noise-sweep` to
     * trace degradation curves from one base plan.
     */
    FaultPlan scaled(double level) const;

    /**
     * Parse a comma-separated spec: `key=value` pairs and bare presets.
     *
     * Keys: curve-noise, curve-drop, curve-quant, grid-nan,
     * grid-zero-col, grid-scramble, power-bias, power-noise, stale,
     * liar, liar-gain.  Presets: `liar` (liar=0.25), `corrupt-grid`
     * (grid-nan=0.05, grid-zero-col=0.05, grid-scramble=0.1), `noise`
     * (curve-noise=0.1, curve-drop=0.02, power-noise=0.05).
     *
     * @param spec  e.g. "liar,grid-nan=0.05" or "curve-noise=0.2"
     * @param seed  root seed stored into the plan
     * @return the plan, or InvalidArgument for unknown keys, bad
     * numbers, or out-of-range rates.
     */
    static util::Expected<FaultPlan> parse(std::string_view spec,
                                           std::uint64_t seed);

    /** @return a one-line human-readable summary of the active knobs. */
    std::string describe() const;
};

} // namespace rebudget::faults

#endif // REBUDGET_FAULTS_FAULT_PLAN_H_
