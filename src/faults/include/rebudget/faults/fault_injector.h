#ifndef REBUDGET_FAULTS_FAULT_INJECTOR_H_
#define REBUDGET_FAULTS_FAULT_INJECTOR_H_

/**
 * @file
 * Deterministic fault injection for the monitoring->market pipeline.
 *
 * The injector executes a FaultPlan: it perturbs miss curves, corrupts
 * utility grids, biases power readings, freezes profiles, and wraps
 * utility models in misreporting "liar" shims.  Every stochastic
 * decision draws from util::Rng::forStream(plan.seed, {scope, player,
 * stream, salt}) -- keyed purely by values, never by shared generator
 * state -- so the same plan produces bit-identical faults regardless of
 * evaluation order, thread count, or which other faults fired.
 *
 * Scope identifies the experiment slice (hash of the bundle name for
 * sweeps, the sim seed for epoch simulation), player the position
 * within it, and salt a per-call discriminator (the epoch index).
 *
 * The injector is const and stateless beyond its plan: concurrent
 * sweep workers share one instance safely.  Tallies of what was
 * injected accumulate in caller-owned InjectionStats.
 */

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "rebudget/app/utility.h"
#include "rebudget/cache/miss_curve.h"
#include "rebudget/faults/fault_plan.h"
#include "rebudget/market/utility_model.h"
#include "rebudget/util/rng.h"
#include "rebudget/util/solver_stats.h"

namespace rebudget::faults {

/** Tally of injected faults, for the `--stats json` report. */
struct InjectionStats
{
    /** Miss-curve samples altered by noise or quantization. */
    std::int64_t curveCellsPerturbed = 0;
    /** Miss-curve samples dropped (holes handed to curve repair). */
    std::int64_t curveSamplesDropped = 0;
    /** Utility-grid cells turned into NaN/Inf holes. */
    std::int64_t gridCellsCorrupted = 0;
    /** Utility-grid power columns zeroed. */
    std::int64_t gridColumnsZeroed = 0;
    /** Utility-grid cache rows scrambled (non-monotone). */
    std::int64_t gridRowsScrambled = 0;
    /** Players wrapped in a liar shim. */
    std::int64_t liarPlayers = 0;
    /** Power readings biased or noised. */
    std::int64_t powerReadingsBiased = 0;
    /** Profile refreshes suppressed (stale profile reused). */
    std::int64_t staleProfiles = 0;

    /** Accumulate another tally into this one. */
    void merge(const InjectionStats &other);

    /** @return the sum of every counter. */
    std::int64_t total() const;
};

/** Independent RNG stream ids; part of the reproducibility contract. */
enum class FaultStream : std::uint64_t {
    Curve = 1,
    Grid = 2,
    Power = 3,
    Liar = 4,
    Stale = 5,
};

/**
 * A player that misreports utility: every reported value (and slope)
 * is the truth scaled by a fixed gain, the classic strategy for
 * inflating one's allocation in a proportional-share market.  The
 * wrapped truth model survives for scoring: evaluations always measure
 * realized utility against the *truth*, never the lie.
 */
class LiarUtilityModel : public market::UtilityModel
{
  public:
    /**
     * @param truth  the player's real utility (shared, immutable)
     * @param gain   multiplicative misreporting factor (> 0)
     */
    LiarUtilityModel(std::shared_ptr<const market::UtilityModel> truth,
                     double gain);

    size_t numResources() const override
    {
        return truth_->numResources();
    }
    double utility(std::span<const double> alloc) const override
    {
        return gain_ * truth_->utility(alloc);
    }
    double marginal(size_t resource,
                    std::span<const double> alloc) const override
    {
        return gain_ * truth_->marginal(resource, alloc);
    }
    void gradient(std::span<const double> alloc,
                  std::span<double> out) const override;
    std::string name() const override;

    /** @return the wrapped truth model. */
    const market::UtilityModel &truth() const { return *truth_; }

    /** @return the misreporting gain. */
    double gain() const { return gain_; }

  private:
    std::shared_ptr<const market::UtilityModel> truth_;
    double gain_;
};

/** Executes a FaultPlan deterministically (see the file comment). */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

    const FaultPlan &plan() const { return plan_; }

    /**
     * @return the independent RNG stream for (scope, player, stream,
     * salt) under this plan's seed.  Pure function of its arguments.
     */
    util::Rng fork(std::uint64_t scope, std::uint64_t player,
                   FaultStream stream, std::uint64_t salt = 0) const;

    /**
     * Apply curve noise (Gaussian, quantization, sample drops) to a
     * miss curve, then repair the result so Talus never sees the
     * damage raw.  Returns the input unchanged when curve noise is off.
     *
     * @param hardening  optional telemetry sink: repairedCurves is
     *                   bumped when the repair actually changed cells.
     */
    cache::MissCurve perturbMissCurve(
        const cache::MissCurve &curve, std::uint64_t scope,
        std::uint64_t player, std::uint64_t salt, InjectionStats &stats,
        util::SolverStats *hardening = nullptr) const;

    /**
     * @return the power reading with the plan's systematic bias and
     * noise applied (never below zero); unchanged when both are off.
     */
    double biasPowerReading(double watts, std::uint64_t scope,
                            std::uint64_t player, std::uint64_t salt,
                            InjectionStats &stats) const;

    /**
     * @return true if this player's profile refresh should be
     * suppressed this round (the caller keeps the previous profile).
     */
    bool staleProfile(std::uint64_t scope, std::uint64_t player,
                      std::uint64_t salt, InjectionStats &stats) const;

    /**
     * @return true if this player misreports utility under the plan.
     * Deterministic per (scope, player); independent of salt so a liar
     * lies for the whole run.
     */
    bool isLiar(std::uint64_t scope, std::uint64_t player) const;

    /**
     * Wrap @p model in a LiarUtilityModel when isLiar() says so;
     * otherwise return it unchanged.
     */
    std::shared_ptr<const market::UtilityModel> maybeLiar(
        std::shared_ptr<const market::UtilityModel> model,
        std::uint64_t scope, std::uint64_t player,
        InjectionStats &stats) const;

    /**
     * Apply grid corruption (NaN holes, zeroed power columns,
     * scrambled rows) to a utility model.  The corrupted grid is
     * rebuilt through the sanitizing RawUtilityGrid constructor, so the
     * result is always usable; `hardening->sanitizedGrids` is bumped
     * when sanitation had to repair cells.  Returns the original
     * pointer when no grid fault fires (the common case), so clean
     * players keep sharing the memoized catalog model.
     */
    std::shared_ptr<const app::AppUtilityModel> perturbModel(
        const std::shared_ptr<const app::AppUtilityModel> &model,
        std::uint64_t scope, std::uint64_t player, InjectionStats &stats,
        util::SolverStats *hardening = nullptr) const;

  private:
    FaultPlan plan_;
};

} // namespace rebudget::faults

#endif // REBUDGET_FAULTS_FAULT_INJECTOR_H_
