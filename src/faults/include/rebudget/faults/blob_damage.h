#ifndef REBUDGET_FAULTS_BLOB_DAMAGE_H_
#define REBUDGET_FAULTS_BLOB_DAMAGE_H_

/**
 * @file
 * Deterministic byte-level corruption injection for durability tests.
 *
 * The fault harness (fault_plan.h) perturbs *inputs* -- sensor noise,
 * strategic lies, churn storms.  This header perturbs *storage*: it
 * damages an encoded blob (a snapshot file image, a journal, a wire
 * frame) the way crashes and bad disks do, so recovery paths can be
 * proven against torn, truncated, bit-flipped and length-lying bytes
 * instead of hand-picked corruptions.
 *
 * Every operation draws from a caller-supplied util::Rng, so a corpus
 * seeded via Rng::forStream(seed, {...}) is reproducible bit-for-bit
 * across runs and platforms (the determinism contract every test in
 * this repo follows).  Damage never widens a blob except LengthLie,
 * which rewrites an existing 4-byte field in place.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rebudget/util/rng.h"

namespace rebudget::faults {

/** The crash/bit-rot failure modes recovery must grade, not crash on. */
enum class BlobDamage : std::uint8_t {
    /** Drop a random non-empty tail (a torn write / lost tail). */
    Truncate,
    /** Flip one random bit (media corruption past the page cache). */
    BitFlip,
    /** Zero a random short range (a hole from a sparse torn write). */
    ZeroRange,
    /** Inflate a little-endian u32 length field so it claims more
     * bytes than exist (framing attack / corrupted length prefix). */
    LengthLie,
};

/** Stable lowercase name for reports and test labels. */
const char *blobDamageName(BlobDamage kind);

/** All damage kinds, for table-driven corpus loops. */
inline constexpr BlobDamage kAllBlobDamage[] = {
    BlobDamage::Truncate,
    BlobDamage::BitFlip,
    BlobDamage::ZeroRange,
    BlobDamage::LengthLie,
};

/**
 * Damage @p bytes in place.  @p lengthOffset locates the u32 length
 * field LengthLie rewrites (the snapshot header's body length, a
 * journal record's payload length, a frame's length prefix); the
 * other kinds ignore it.  Empty blobs are left untouched.  Returns
 * the byte offset that was damaged (0 for an untouched empty blob),
 * so failures can name the corruption site.
 */
std::size_t damageBlob(std::vector<std::uint8_t> &bytes, BlobDamage kind,
                       util::Rng &rng, std::size_t lengthOffset = 0);

} // namespace rebudget::faults

#endif // REBUDGET_FAULTS_BLOB_DAMAGE_H_
