#include "rebudget/core/groups.h"

#include <vector>

#include "rebudget/util/logging.h"

namespace rebudget::core {

std::vector<std::vector<double>>
GroupedProblem::expand(const std::vector<std::vector<double>> &group_alloc,
                       size_t total_cores) const
{
    if (group_alloc.size() != groups.size())
        util::fatal("expand: expected %zu group allocations, got %zu",
                    groups.size(), group_alloc.size());
    const size_t m = problem.capacities.size();
    std::vector<std::vector<double>> out(total_cores,
                                         std::vector<double>(m, 0.0));
    for (size_t g = 0; g < groups.size(); ++g) {
        const double k = static_cast<double>(groups[g].cores.size());
        for (const uint32_t core : groups[g].cores) {
            if (core >= total_cores)
                util::fatal("group '%s' references core %u of %zu",
                            groups[g].name.c_str(), core, total_cores);
            for (size_t j = 0; j < m; ++j)
                out[core][j] = group_alloc[g][j] / k;
        }
    }
    return out;
}

GroupedProblem
makeGroupedProblem(const AllocationProblem &per_core,
                   std::vector<ThreadGroup> groups)
{
    validateProblem(per_core);
    if (groups.empty())
        util::fatal("makeGroupedProblem requires at least one group");
    // Check the groups partition the cores.
    std::vector<bool> seen(per_core.models.size(), false);
    for (const auto &group : groups) {
        if (group.cores.empty())
            util::fatal("group '%s' has no cores", group.name.c_str());
        for (const uint32_t core : group.cores) {
            if (core >= per_core.models.size())
                util::fatal("group '%s' references core %u of %zu",
                            group.name.c_str(), core,
                            per_core.models.size());
            if (seen[core])
                util::fatal("core %u appears in two groups", core);
            seen[core] = true;
        }
    }
    for (size_t c = 0; c < seen.size(); ++c) {
        if (!seen[c])
            util::fatal("core %zu belongs to no group", c);
    }

    GroupedProblem out;
    out.groups = std::move(groups);
    out.problem.capacities = per_core.capacities;
    out.problem.marketConfig = per_core.marketConfig;
    for (const auto &group : out.groups) {
        out.models.push_back(
            std::make_unique<market::SharedGroupUtility>(
                *per_core.models[group.cores.front()],
                group.cores.size()));
        out.problem.models.push_back(out.models.back().get());
    }
    return out;
}

} // namespace rebudget::core
