#include "rebudget/core/groups.h"

#include <vector>

#include "rebudget/util/logging.h"

namespace rebudget::core {

util::Matrix<double>
GroupedProblem::expand(const util::Matrix<double> &group_alloc,
                       size_t total_cores) const
{
    REBUDGET_ASSERT(group_alloc.rows() == groups.size(),
                    "expand: group allocation count mismatch");
    const size_t m = problem.capacities.size();
    util::Matrix<double> out(total_cores, m, 0.0);
    for (size_t g = 0; g < groups.size(); ++g) {
        const double k = static_cast<double>(groups[g].cores.size());
        for (const uint32_t core : groups[g].cores) {
            REBUDGET_ASSERT(core < total_cores,
                            "expand: group references an out-of-range core");
            for (size_t j = 0; j < m; ++j)
                out(core, j) = group_alloc(g, j) / k;
        }
    }
    return out;
}

GroupedProblem
makeGroupedProblem(const AllocationProblem &per_core,
                   std::vector<ThreadGroup> groups)
{
    using util::SolveStatus;
    using util::StatusCode;
    GroupedProblem out;
    auto reject = [&](SolveStatus status) {
        out.status = std::move(status);
        return std::move(out);
    };
    if (SolveStatus st = validateProblemStatus(per_core); !st.ok())
        return reject(std::move(st));
    if (groups.empty()) {
        return reject(SolveStatus::error(
            StatusCode::InvalidArgument,
            "makeGroupedProblem requires at least one group"));
    }
    // Check the groups partition the cores.
    std::vector<bool> seen(per_core.models.size(), false);
    for (const auto &group : groups) {
        if (group.cores.empty()) {
            return reject(SolveStatus::error(StatusCode::InvalidArgument,
                                             "group '%s' has no cores",
                                             group.name.c_str()));
        }
        for (const uint32_t core : group.cores) {
            if (core >= per_core.models.size()) {
                return reject(SolveStatus::error(
                    StatusCode::InvalidArgument,
                    "group '%s' references core %u of %zu",
                    group.name.c_str(), core, per_core.models.size()));
            }
            if (seen[core]) {
                return reject(SolveStatus::error(
                    StatusCode::InvalidArgument,
                    "core %u appears in two groups", core));
            }
            seen[core] = true;
        }
    }
    for (size_t c = 0; c < seen.size(); ++c) {
        if (!seen[c]) {
            return reject(SolveStatus::error(StatusCode::InvalidArgument,
                                             "core %zu belongs to no group",
                                             c));
        }
    }

    out.groups = std::move(groups);
    out.problem.capacities = per_core.capacities;
    out.problem.marketConfig = per_core.marketConfig;
    /*
     * Roster audit (dynamic-tenant refactor): grouping changes the
     * player space -- the grouped problem's players are GROUPS, indexed
     * densely 0..G-1, not the per-core players.  Per-core playerIds
     * therefore deliberately do not survive into out.problem (it keeps
     * the legacy empty/dense roster): carrying core identities across
     * would alias group g to whatever tenant happened to own its first
     * core.  The same shape argument keeps warmStart, workspace and
     * creditBank behind -- their rows/balances are per-core, not
     * per-group.  A caller running grouped problems under churn assigns
     * group-level identities itself (one PlayerId per tenant-group) on
     * the problem this function returns.  The loops below index
     * `groups[g]`/`out.problem.models[g]` positionally and never treat
     * g as a stable identity.
     */
    for (const auto &group : out.groups) {
        out.models.push_back(
            std::make_unique<market::SharedGroupUtility>(
                *per_core.models[group.cores.front()],
                group.cores.size()));
        out.problem.models.push_back(out.models.back().get());
    }
    return out;
}

} // namespace rebudget::core
