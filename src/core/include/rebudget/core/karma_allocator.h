#ifndef REBUDGET_CORE_KARMA_ALLOCATOR_H_
#define REBUDGET_CORE_KARMA_ALLOCATOR_H_

/**
 * @file
 * Karma: a credit-banking market mechanism over persistent identities.
 *
 * Every market mechanism above (EqualBudget, Balanced, ReBudget)
 * re-derives budgets from the current epoch alone, so a player whose
 * demand is momentarily low simply wastes its purchasing power.  Karma
 * lets it BANK that power instead: each epoch every active tenant
 * receives the same allowance A; tenants whose marginal utility of
 * money (lambda) is low relative to the epoch's peak donate part of
 * the allowance into per-tenant credit balances, and tenants whose
 * lambda is at the peak draw previously banked credit on top of the
 * allowance.  Balances persist across epochs in a caller-owned
 * KarmaBank keyed by core::PlayerId -- this is the first mechanism in
 * the repo that is only expressible with stable identity, which is why
 * it arrives together with the roster layer.
 *
 * The design follows the karma-economy literature (credit schemes for
 * repeated resource auctions): donors/borrowers, a public pool that
 * fully backs every outstanding credit, and bounded balances so no
 * tenant can hoard unbounded future purchasing power.
 *
 * Accounting invariant (checked by tests to 1e-9): with n active
 * players, pool P and spendable budgets s_i,
 *
 *     n * A + P_before = sum_i s_i + P_after
 *
 * i.e. every epoch's minted allowance is either spent in that epoch's
 * market or parked in the pool; credits are claims on the pool and
 * always satisfy sum_i credit_i <= P.  Departing tenants forfeit their
 * claim (the money stays in the pool and so flows to the survivors);
 * newcomers may be granted an initial credit line against the pool.
 */

#include <cstdint>
#include <map>

#include "rebudget/core/allocator.h"

namespace rebudget::core {

/** Karma tuning. */
struct KarmaConfig
{
    /** Per-epoch allowance A minted for every active tenant (> 0). */
    double allowance = 100.0;
    /** Fraction of A a donor banks per epoch (in [0, 1]). */
    double donateFraction = 0.25;
    /** Fraction of A a borrower tries to draw per epoch (>= 0). */
    double borrowFraction = 0.5;
    /**
     * A player donates when its probe lambda is below this fraction of
     * the epoch's maximum lambda (in [0, 1]).
     */
    double donateThreshold = 0.5;
    /**
     * A player borrows when its probe lambda is at or above this
     * fraction of the epoch's maximum lambda (in [donateThreshold, 1]).
     */
    double borrowThreshold = 0.9;
    /** Credit balances are capped at this multiple of A (> 0). */
    double maxCreditFraction = 3.0;
    /**
     * Credit line granted to a newcomer, as a fraction of A, limited
     * to what the pool can back (>= 0; default: none).
     */
    double initialCreditFraction = 0.0;
};

/**
 * Persistent credit state for one allocation chain (one bundle, one
 * simulated machine).  Caller-owned, like SolveWorkspace: hold one per
 * chain and pass it via AllocationProblem::creditBank; concurrent
 * allocate() calls must use distinct banks.  std::map keeps iteration
 * deterministic in tenant-id order.
 */
struct KarmaBank
{
    /** Outstanding credit per tenant (claims against the pool). */
    std::map<PlayerId, double> credits;
    /** Public pool backing every outstanding credit. */
    double publicPool = 0.0;
    /** Donation events across the bank's lifetime (telemetry). */
    std::int64_t donations = 0;
    /** Borrow events across the bank's lifetime (telemetry). */
    std::int64_t borrows = 0;
    /** Credits forfeited to the pool by departing tenants. */
    double forfeited = 0.0;

    /** @return the sum of outstanding credits. */
    double totalCredits() const;
};

/** Credit-banking market mechanism (see the file comment). */
class KarmaAllocator : public Allocator
{
  public:
    explicit KarmaAllocator(const KarmaConfig &config = {});

    /** Ok, or why this allocator cannot run. */
    const util::SolveStatus &configStatus() const { return configStatus_; }

    /** @return the tuning. */
    const KarmaConfig &config() const { return config_; }

    const std::string &name() const override
    {
        static const std::string kName = "Karma";
        return kName;
    }

    /**
     * Two market solves per call: a probe at the uniform allowance to
     * read every tenant's lambda, then the real solve at the
     * credit-adjusted budgets (the probe's equilibrium warm-starts it).
     * Reads AND updates problem.creditBank; with a null bank the call
     * runs a transient bank (no memory, so no donations ever return).
     */
    AllocationOutcome allocate(
        const AllocationProblem &problem) const override;

    /**
     * Karma's departing-budget policy: a departing tenant's banked
     * credits are forfeited to the public pool (survivors inherit the
     * purchasing power through future borrows); newcomers get
     * initialCreditFraction * A, limited to what the pool can back.
     */
    void onRosterChange(const RosterChange &change,
                        AllocationProblem &problem) const override;

  private:
    KarmaConfig config_;
    util::SolveStatus configStatus_;
};

} // namespace rebudget::core

#endif // REBUDGET_CORE_KARMA_ALLOCATOR_H_
