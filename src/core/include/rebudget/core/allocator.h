#ifndef REBUDGET_CORE_ALLOCATOR_H_
#define REBUDGET_CORE_ALLOCATOR_H_

/**
 * @file
 * Common interface for multicore resource-allocation mechanisms.
 *
 * An allocation problem consists of one utility model per player and the
 * market capacities (resources *beyond* the guaranteed per-core
 * minimums; see app::AppUtilityModel).  Mechanisms return the allocation
 * plus, for market-based mechanisms, the final budgets, lambdas and
 * convergence accounting used by the evaluation (Sections 6.1-6.4).
 */

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rebudget/core/roster.h"
#include "rebudget/market/market.h"
#include "rebudget/market/utility_model.h"
#include "rebudget/util/matrix.h"
#include "rebudget/util/solver_stats.h"
#include "rebudget/util/status.h"

namespace rebudget::core {

struct KarmaBank;

/** Inputs of one allocation decision. */
struct AllocationProblem
{
    /** One utility model per player (non-owning). */
    std::vector<const market::UtilityModel *> models;
    /**
     * Stable identity per player, aligned with `models` (see
     * core/roster.h).  Empty means the legacy dense roster 0..n-1 --
     * the default for every fixed-roster caller, and deliberately so:
     * an empty vector keeps the fixed-roster path byte-identical to
     * the pre-roster code.  When non-empty it must have one unique id
     * per model (validated).  Allocators that keep per-tenant state
     * across epochs (KarmaAllocator) key it by these ids; stateless
     * mechanisms ignore them.
     */
    std::vector<PlayerId> playerIds;
    /** Market capacities per resource. */
    std::vector<double> capacities;
    /** Market engine tuning (used by market-based mechanisms). */
    market::MarketConfig marketConfig;
    /**
     * Optional warm-start hint: the equilibrium seed published by a
     * prior allocate() on a similar problem (the previous epoch in the
     * online setting, where consecutive profiles are alike).  Non-owning
     * and only read during allocate(); null means cold start.  Market
     * mechanisms seed their first equilibrium solve from it, the
     * MaxEfficiency oracle resumes hill climbing from its allocation,
     * and mechanisms with closed-form solutions ignore it.  Honored only
     * when marketConfig.warmStart is set (the default).
     */
    const market::EquilibriumResult *warmStart = nullptr;
    /**
     * Record the budget vector of every equilibrium solve into
     * AllocationOutcome::budgetHistory.  Off by default (sweeps solve
     * hundreds of thousands of problems and never read trajectories);
     * the warm-start benchmark and the warm/cold agreement tests turn
     * it on to replay a mechanism's exact solve sequence.
     */
    bool recordBudgetHistory = false;
    /**
     * Optional reusable solver scratch (non-owning).  Market mechanisms
     * run every equilibrium solve through it, so a caller that solves
     * many problems of the same shape (the epoch simulator, a sweep
     * worker) amortizes all solver buffers to zero steady-state heap
     * allocations.  Null means allocate() uses a call-local workspace.
     * Not thread-safe: concurrent allocate() calls must pass distinct
     * workspaces (or null).
     */
    market::SolveWorkspace *workspace = nullptr;
    /**
     * Optional persistent credit state for banking mechanisms
     * (non-owning).  KarmaAllocator reads and UPDATES it on every
     * allocate(), so it follows the workspace's ownership contract,
     * not warmStart's: the caller holds one bank per allocation chain
     * and concurrent allocate() calls must pass distinct banks (or
     * null, which makes banking mechanisms run a call-local transient
     * bank -- correct for one-shot problems, no memory across calls).
     * Non-banking mechanisms ignore it.
     */
    KarmaBank *creditBank = nullptr;

    /** @return the stable identity at dense index i (see playerIds). */
    PlayerId playerIdAt(size_t i) const
    {
        return playerIds.empty() ? static_cast<PlayerId>(i)
                                 : playerIds[i];
    }

    /** @return the dense index of an identity, if present. */
    std::optional<size_t> indexOfPlayer(PlayerId id) const;

    /**
     * Add a tenant at the end of the dense order, between epochs.
     * Materializes playerIds from the implicit dense roster first if
     * needed.  The model pointer follows the same non-owning contract
     * as `models`.
     *
     * @return the new dense index, or an error if the identity is
     * already active.
     */
    util::Expected<size_t> addTenant(PlayerId id,
                                     const market::UtilityModel *model);

    /**
     * Remove a tenant between epochs, shifting later players down one
     * dense index (order-preserving, like Roster::remove).
     *
     * @return the departed tenant's former dense index, or an error if
     * the identity is not active.
     */
    util::Expected<size_t> removeTenant(PlayerId id);
};

/** Outputs of one allocation decision. */
struct AllocationOutcome
{
    /**
     * Ok, or why the mechanism could not produce an allocation (bad
     * config, malformed problem, failed solve).  On error the
     * allocation is empty and only `mechanism`, `status` and `stats`
     * are meaningful.  Non-convergence is NOT an error: a fail-safe
     * allocation returns Ok with converged=false.
     */
    util::SolveStatus status;
    /** Solver health telemetry for this call (see util::SolverStats). */
    util::SolverStats stats;
    /** Mechanism that produced the outcome. */
    std::string mechanism;
    /** Allocation [player][resource] (flat row-major). */
    util::Matrix<double> alloc;
    /** Final budgets per player (market mechanisms only). */
    std::vector<double> budgets;
    /** Final lambda_i per player (market mechanisms only). */
    std::vector<double> lambdas;
    /** Total bidding-pricing rounds across all equilibrium solves. */
    int marketIterations = 0;
    /** ReBudget outer budget-reassignment rounds. */
    int budgetRounds = 0;
    /** False if any equilibrium solve hit the fail-safe. */
    bool converged = true;
    /**
     * Warm-start seed for the next allocate() on a similar problem:
     * market mechanisms publish their final equilibrium; non-market
     * mechanisms that can resume from an allocation (MaxEfficiency, EP)
     * publish an allocation-only seed (bids empty).  Shared so chaining
     * consumers (sim::EpochSimulator) can hold the seed across epochs
     * while outcomes are moved or copied freely.
     */
    std::shared_ptr<const market::EquilibriumResult> equilibrium;
    /**
     * Budget vector of every equilibrium solve, in solve order (only
     * when AllocationProblem::recordBudgetHistory is set; market
     * mechanisms only).  Elided rounds (see
     * ReBudgetConfig::elideStepFraction) are excluded: the history is
     * exactly the sequence of real solves, so replaying it cold/warm
     * reproduces the mechanism's market work.
     */
    std::vector<std::vector<double>> budgetHistory;
};

/** Abstract allocation mechanism. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /**
     * @return the mechanism's display name.  The reference must stay
     * valid for the allocator's lifetime: implementations compute the
     * name once at construction (or return a literal-backed static)
     * instead of formatting it on every call.
     */
    virtual const std::string &name() const = 0;

    /**
     * Solve one allocation problem.
     *
     * Thread-safety contract (relied on by eval::BundleRunner, which
     * calls allocate() concurrently from pool workers): implementations
     * must keep all scratch state local to the call -- no mutable
     * members, no globals, no global RNG.  Distinct problems may then
     * be solved concurrently through the same Allocator instance.
     */
    virtual AllocationOutcome allocate(
        const AllocationProblem &problem) const = 0;

    /**
     * Roster-change notification: called by chaining drivers (the eval
     * churn runner, the epoch simulator) after tenants joined or left
     * `problem` and before the first allocate() over the new roster.
     *
     * The default is a no-op, which IS the departing-budget policy for
     * every budget-recomputing mechanism: EqualShare/EqualBudget/
     * Balanced/ReBudget derive budgets from the roster on each call,
     * so a departure implicitly redistributes the departed player's
     * purchasing power across the survivors.  Mechanisms with
     * persistent per-tenant state override this to apply their own
     * policy (KarmaAllocator forfeits a departing tenant's banked
     * credits to the public pool and grants newcomers their initial
     * credit line).
     *
     * Like allocate(), implementations must keep the Allocator itself
     * immutable; any state they touch lives in the problem (e.g.
     * problem.creditBank).
     */
    virtual void onRosterChange(const RosterChange &change,
                                AllocationProblem &problem) const
    {
        (void)change;
        (void)problem;
    }
};

/**
 * Check problem arity without side effects.
 *
 * @return std::nullopt if the problem is well-formed, else a diagnostic
 * describing the first inconsistency.  Used by the eval layer to skip a
 * malformed bundle with a warning instead of killing a whole sweep.
 */
std::optional<std::string> tryValidateProblem(
    const AllocationProblem &problem);

/** @return tryValidateProblem()'s verdict as a SolveStatus. */
util::SolveStatus validateProblemStatus(const AllocationProblem &problem);

/**
 * Fold one equilibrium solve's accounting into an outcome: iteration
 * and hill-climb counters, warm/cold and fail-safe tallies, phase
 * timers, the converged flag (real solves only; an approximated
 * rescale inherits the prior's flag and is counted as an elided round
 * instead), and the solve's status on failure.
 */
void accumulateSolve(AllocationOutcome &outcome,
                     const market::EquilibriumResult &eq);

} // namespace rebudget::core

#endif // REBUDGET_CORE_ALLOCATOR_H_
