#ifndef REBUDGET_CORE_BASELINES_H_
#define REBUDGET_CORE_BASELINES_H_

/**
 * @file
 * Baseline allocation mechanisms evaluated by the paper (Section 6):
 *
 * - EqualShare: resources partitioned equally among cores (no market).
 * - EqualBudget: XChange market with the same budget for every player.
 * - Balanced: XChange's wealth-redistribution heuristic -- each player's
 *   budget is proportional to the utility difference between its maximum
 *   and minimum possible allocations, normalized to the former.
 */

#include "rebudget/core/allocator.h"

namespace rebudget::core {

/** Equal static partitioning of every resource. */
class EqualShareAllocator : public Allocator
{
  public:
    const std::string &name() const override
    {
        static const std::string kName = "EqualShare";
        return kName;
    }
    AllocationOutcome allocate(
        const AllocationProblem &problem) const override;
};

/** Market equilibrium with equal budgets (XChange EqualBudget). */
class EqualBudgetAllocator : public Allocator
{
  public:
    /**
     * @param initial_budget  budget given to every player (> 0; a
     * non-positive budget is recorded in configStatus() and every
     * allocate() returns that status).
     */
    explicit EqualBudgetAllocator(double initial_budget = 100.0);

    /** Ok, or why this allocator cannot run. */
    const util::SolveStatus &configStatus() const { return configStatus_; }

    const std::string &name() const override
    {
        static const std::string kName = "EqualBudget";
        return kName;
    }
    AllocationOutcome allocate(
        const AllocationProblem &problem) const override;

  private:
    double initialBudget_;
    util::SolveStatus configStatus_;
};

/** Market equilibrium with XChange's Balanced budget heuristic. */
class BalancedBudgetAllocator : public Allocator
{
  public:
    /**
     * @param mean_budget  budgets are scaled to this mean (> 0; a
     * non-positive mean is recorded in configStatus()).
     */
    explicit BalancedBudgetAllocator(double mean_budget = 100.0);

    /** Ok, or why this allocator cannot run. */
    const util::SolveStatus &configStatus() const { return configStatus_; }

    const std::string &name() const override
    {
        static const std::string kName = "Balanced";
        return kName;
    }
    AllocationOutcome allocate(
        const AllocationProblem &problem) const override;

  private:
    double meanBudget_;
    util::SolveStatus configStatus_;
};

} // namespace rebudget::core

#endif // REBUDGET_CORE_BASELINES_H_
