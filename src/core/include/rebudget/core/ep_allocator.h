#ifndef REBUDGET_CORE_EP_ALLOCATOR_H_
#define REBUDGET_CORE_EP_ALLOCATOR_H_

/**
 * @file
 * Elasticities-Proportional (EP) allocation [Zahedi & Lee, ASPLOS'14].
 *
 * The REF mechanism the paper discusses in Section 1: each player's
 * utility is curve-fitted to a Cobb-Douglas function
 *   u_i(r) = prod_j r_ij^{a_ij}   with  sum_j a_ij = 1,
 * whose exponents ("elasticities") measure how strongly the player's
 * performance responds to each resource.  Resources are then divided
 * proportionally to elasticities: player i receives
 *   r_ij = C_j * a_ij / sum_k a_kj.
 * Under exact Cobb-Douglas utilities this is Pareto-efficient and
 * envy-free; the paper's criticism (which this implementation lets you
 * measure, see bench/ext_ep_comparison) is that real cache/power
 * utilities -- with plateaus, cliffs and satiation -- fit Cobb-Douglas
 * poorly, and EP's guarantees silently degrade.
 */

#include "rebudget/core/allocator.h"

namespace rebudget::core {

/** Cobb-Douglas fit of one player's utility surface. */
struct CobbDouglasFit
{
    /**
     * Ok, or why the fit could not run (capacity arity mismatch, too
     * few grid points); on error the elasticities are the uniform
     * fallback.
     */
    util::SolveStatus status;
    /** Normalized elasticities per resource (non-negative, sum to 1). */
    std::vector<double> elasticities;
    /** R^2 of the log-log regression (1 = exact Cobb-Douglas). */
    double r2 = 0.0;
};

/**
 * Fit Cobb-Douglas elasticities to a utility model by least squares in
 * log space over a geometric grid of allocations.
 *
 * @param model        the utility to fit
 * @param capacities   per-resource upper bounds of the sample grid
 * @param grid_points  samples per axis (>= 3)
 */
CobbDouglasFit fitCobbDouglas(const market::UtilityModel &model,
                              const std::vector<double> &capacities,
                              int grid_points = 8);

/** The REF elasticities-proportional mechanism. */
class EpAllocator : public Allocator
{
  public:
    /**
     * @param grid_points  samples per axis for the curve fit (>= 3; a
     * smaller grid is recorded in configStatus() and every allocate()
     * returns that status).
     */
    explicit EpAllocator(int grid_points = 8);

    /** Ok, or why this allocator cannot run. */
    const util::SolveStatus &configStatus() const { return configStatus_; }

    const std::string &name() const override
    {
        static const std::string kName = "EP";
        return kName;
    }
    AllocationOutcome allocate(
        const AllocationProblem &problem) const override;

  private:
    int gridPoints_;
    util::SolveStatus configStatus_;
};

} // namespace rebudget::core

#endif // REBUDGET_CORE_EP_ALLOCATOR_H_
