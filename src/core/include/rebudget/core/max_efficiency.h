#ifndef REBUDGET_CORE_MAX_EFFICIENCY_H_
#define REBUDGET_CORE_MAX_EFFICIENCY_H_

/**
 * @file
 * MaxEfficiency oracle: the (infeasible-at-runtime) allocation that
 * maximizes system efficiency, obtained by very fine-grained hill
 * climbing on the true utilities (paper Section 6).  Because the
 * utilities are concave per resource, a greedy marginal-utility fill
 * followed by exchange refinement converges to the optimum up to the
 * quantum granularity.
 */

#include "rebudget/core/allocator.h"

namespace rebudget::core {

/** Tuning for the oracle's hill climbing. */
struct MaxEfficiencyConfig
{
    /** Allocation quantum as a fraction of each capacity. */
    double quantumFraction = 1.0 / 512.0;
    /** Maximum exchange-refinement sweeps after the greedy fill. */
    int refinePasses = 64;
};

/** Efficiency-maximizing oracle allocator. */
class MaxEfficiencyAllocator : public Allocator
{
  public:
    /**
     * A malformed config does not throw: it is recorded in
     * configStatus() and every allocate() returns that status.
     */
    explicit MaxEfficiencyAllocator(const MaxEfficiencyConfig &config = {});

    /** Ok, or why this allocator cannot run. */
    const util::SolveStatus &configStatus() const { return configStatus_; }

    const std::string &name() const override
    {
        static const std::string kName = "MaxEfficiency";
        return kName;
    }
    AllocationOutcome allocate(
        const AllocationProblem &problem) const override;

  private:
    MaxEfficiencyConfig config_;
    util::SolveStatus configStatus_;
};

} // namespace rebudget::core

#endif // REBUDGET_CORE_MAX_EFFICIENCY_H_
