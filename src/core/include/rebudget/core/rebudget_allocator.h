#ifndef REBUDGET_CORE_REBUDGET_ALLOCATOR_H_
#define REBUDGET_CORE_REBUDGET_ALLOCATOR_H_

/**
 * @file
 * ReBudget: runtime budget reassignment (paper Section 4.2).
 *
 * ReBudget runs the market to equilibrium, inspects each player's
 * marginal utility of money lambda_i, and cuts the budget of players
 * whose lambda_i is below half of the market maximum (they are
 * over-budgeted: their money buys little utility).  The cut amount
 * (*step*) halves every round (exponential back-off), and the market
 * re-converges between rounds.  The process stops when the step falls
 * below 1% of the initial budget or no player was cut.
 *
 * Two aggressiveness knobs are supported:
 *
 * - **ByStep** (the paper's ReBudget-20 / ReBudget-40): the first-round
 *   step is given explicitly.  The minimum reachable budget is
 *   B - 2*step0 (geometric series), which bounds MBR and hence, via
 *   Theorem 2, worst-case envy-freeness.
 * - **ByFairnessTarget**: the administrator sets the lowest acceptable
 *   envy-freeness; Theorem 2 is inverted to an MBR floor, the initial
 *   step is (1 - MBR) * B / 2, and budgets are clamped to MBR * B, so
 *   the fairness guarantee holds by construction.
 */

#include "rebudget/core/allocator.h"

namespace rebudget::core {

/** ReBudget configuration. */
struct ReBudgetConfig
{
    /** Budget every player starts with. */
    double initialBudget = 100.0;
    /**
     * Explicit first-round reassignment step (ReBudget-step mode).
     * Ignored when efTarget >= 0.  Must be < initialBudget / 2 so the
     * geometric cut series keeps budgets positive.
     */
    double step0 = 20.0;
    /**
     * Lowest acceptable envy-freeness; when >= 0 the step and budget
     * floor are derived from it via Theorem 2 (ByFairnessTarget mode).
     */
    double efTarget = -1.0;
    /**
     * Explicit budget floor as a fraction of the initial budget (MBR
     * floor).  In ByFairnessTarget mode this is overwritten by the
     * Theorem 2 inversion.
     */
    double mbrFloor = 0.0;
    /**
     * Hard lower bound on any player's budget as a fraction of the
     * initial budget, applied in BOTH modes on top of the mode-derived
     * floor.  This is an input-hardening guardrail: a corrupted or
     * misreported utility can hold a victim's lambda below the cut
     * threshold round after round, and without a floor the geometric
     * cut series would strip that player's purchasing power entirely.
     * The default (5%) sits well below the worst-case MBR of every
     * paper configuration (ReBudget-40 bottoms out at 21.25%), so it
     * never binds on clean inputs.
     */
    double guardrailFloor = 0.05;
    /** Players with lambda_i below this fraction of max lambda are cut. */
    double lambdaCutThreshold = 0.5;
    /** Stop when step < this fraction of the initial budget. */
    double minStepFraction = 0.01;
    /** Safety cap on budget-reassignment rounds. */
    int maxRounds = 16;
    /**
     * Warm-start solve elision threshold.  When the market runs warm
     * (MarketConfig::warmStart) and the cut applied before a round was
     * at most this fraction of the initial budget, the round reuses the
     * previous equilibrium rescaled to the new budgets (zero
     * bidding-pricing sweeps; lambdas re-evaluated exactly at the
     * rescaled point) instead of running a full solve.  A cut this
     * small perturbs prices by a few percent at most, and the round
     * consumes only the lambda ORDERING against the 2x cut threshold,
     * which such perturbations do not move (on the fig04 bundle suite,
     * mean efficiency and envy-freeness are unchanged vs. elision
     * disabled).  The final published equilibrium is always a real
     * solve.  Set 0 to disable; elision is never active in cold mode,
     * so the A/B baseline (--warm-start off) is unaffected.
     */
    double elideStepFraction = 0.10;
};

/** The ReBudget allocation mechanism. */
class ReBudgetAllocator : public Allocator
{
  public:
    /**
     * A malformed config does not throw: it is recorded in
     * configStatus() and every allocate() returns that status.
     */
    explicit ReBudgetAllocator(const ReBudgetConfig &config = {});

    /** Ok, or why this allocator cannot run (see the constructor). */
    const util::SolveStatus &configStatus() const { return configStatus_; }

    /** Convenience: the paper's ReBudget-step variant. */
    static ReBudgetAllocator withStep(double step0,
                                      double initial_budget = 100.0);

    /** Convenience: administrator fairness-target variant. */
    static ReBudgetAllocator withFairnessTarget(
        double ef_target, double initial_budget = 100.0);

    const std::string &name() const override { return name_; }
    AllocationOutcome allocate(
        const AllocationProblem &problem) const override;

    /** @return the effective budget floor (fraction of initial). */
    double budgetFloorFraction() const { return floorFraction_; }

    /** @return the effective first-round step. */
    double step0() const { return step0_; }

    /**
     * @return the worst-case MBR this configuration can produce, i.e.
     * the guaranteed lower bound on min budget / max budget.
     */
    double worstCaseMbr() const;

  private:
    ReBudgetConfig config_;
    double step0_ = 0.0;
    double floorFraction_ = 0.0;
    util::SolveStatus configStatus_;
    /** Display name, formatted once at construction. */
    std::string name_;
};

} // namespace rebudget::core

#endif // REBUDGET_CORE_REBUDGET_ALLOCATOR_H_
