#ifndef REBUDGET_CORE_ROSTER_H_
#define REBUDGET_CORE_ROSTER_H_

/**
 * @file
 * Stable tenant identity over dense solver indices.
 *
 * Every layer below core solves over players indexed 0..n-1 (the SoA
 * bid matrices, SolveWorkspace, the bidding loops) and must keep doing
 * so -- dense indices are what make the hot path flat.  A Roster is
 * the thin mapping that sits on top: position i of the roster names
 * the PlayerId occupying dense index i right now.  When tenants join
 * or leave between epochs the dense indices shift, but identities do
 * not, which is what lets chaining consumers migrate warm-start state
 * (market::migrateEquilibrium), bank per-tenant credit across epochs
 * (KarmaAllocator) and score fairness over a tenant's lifetime (the
 * eval churn runner) instead of forgetting everything on every churn
 * event.
 *
 * Determinism: removal is order-preserving (an erase, not a
 * swap-with-last), so the dense order of the survivors -- and with it
 * every downstream solve trajectory -- is a pure function of the event
 * sequence, never of container internals.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace rebudget::core {

/**
 * Stable tenant identity.  Ids are assigned by the roster's owner (the
 * churn schedule, the simulator) and never reused within a run; a
 * fixed-roster problem uses the dense identities 0..n-1.
 */
using PlayerId = std::uint64_t;

/** Mapping between stable PlayerIds and dense solver indices. */
class Roster
{
  public:
    Roster() = default;

    /** @return the legacy fixed roster: identities 0..n-1 in order. */
    static Roster dense(size_t n);

    /** @return the number of active players. */
    size_t size() const { return ids_.size(); }

    /** @return true if no players are active. */
    bool empty() const { return ids_.empty(); }

    /** @return the identity at dense index i (i < size()). */
    PlayerId idAt(size_t i) const { return ids_[i]; }

    /** @return all identities in dense-index order. */
    const std::vector<PlayerId> &ids() const { return ids_; }

    /** @return the dense index of an identity, if active. */
    std::optional<size_t> indexOf(PlayerId id) const;

    /** @return true if the roster is exactly the identities 0..n-1. */
    bool isDense() const;

    /**
     * Add a tenant at the end of the dense order.
     *
     * @return the new dense index, or std::nullopt if the identity is
     * already active (duplicate ids would make indexOf ambiguous).
     */
    std::optional<size_t> add(PlayerId id);

    /**
     * Remove a tenant, shifting later players down one dense index
     * (order-preserving; see the determinism note above).
     *
     * @return the departed tenant's former dense index, or
     * std::nullopt if the identity was not active.
     */
    std::optional<size_t> remove(PlayerId id);

    /**
     * Dense-index mapping from a prior roster snapshot to this one,
     * for warm-state migration: out[i] is the dense index the identity
     * now at index i held in `prior`, or -1 for a newcomer.  Departed
     * tenants simply do not appear.
     */
    std::vector<std::ptrdiff_t> mapFrom(const Roster &prior) const;

  private:
    std::vector<PlayerId> ids_;
};

/**
 * One epoch's roster delta, handed to Allocator::onRosterChange before
 * the first allocate() over the new roster.
 */
struct RosterChange
{
    /** A departed tenant and the budget it last held (0 if unknown). */
    struct Departure
    {
        PlayerId id = 0;
        double lastBudget = 0.0;
    };

    /** Tenants that joined this epoch, in arrival order. */
    std::vector<PlayerId> joined;
    /** Tenants that departed this epoch, in departure order. */
    std::vector<Departure> departed;

    /** @return true if the roster actually changed. */
    bool any() const { return !joined.empty() || !departed.empty(); }
};

} // namespace rebudget::core

#endif // REBUDGET_CORE_ROSTER_H_
