#ifndef REBUDGET_CORE_GROUPS_H_
#define REBUDGET_CORE_GROUPS_H_

/**
 * @file
 * Application-granularity allocation problems.
 *
 * Wraps a per-core allocation problem into one with one player per
 * thread group (see market::SharedGroupUtility), and expands a group
 * allocation back to per-core allocations (even split among members).
 */

#include <memory>
#include <string>
#include <vector>

#include "rebudget/core/allocator.h"
#include "rebudget/market/group_utility.h"

namespace rebudget::core {

/** A thread group: the cores one multithreaded application occupies. */
struct ThreadGroup
{
    /** Application/tenant name. */
    std::string name;
    /** Member core indices into the per-core problem. */
    std::vector<uint32_t> cores;
};

/** A grouped view over a per-core allocation problem. */
struct GroupedProblem
{
    /**
     * Ok, or why the grouping was rejected (empty/overlapping groups,
     * out-of-range cores, malformed per-core problem).  On error the
     * models and the grouped problem are empty.
     */
    util::SolveStatus status;
    /** One player per group (owned group utilities). */
    std::vector<std::unique_ptr<market::SharedGroupUtility>> models;
    /** The grouped allocation problem (one entry per group). */
    AllocationProblem problem;
    /** The groups, in player order. */
    std::vector<ThreadGroup> groups;

    /**
     * Expand a per-group allocation to the per-core allocation: each
     * member core receives an even share of its group's bundle.
     *
     * @param group_alloc  allocation per group ([group][resource])
     * @param total_cores  size of the per-core problem
     */
    util::Matrix<double> expand(
        const util::Matrix<double> &group_alloc,
        size_t total_cores) const;
};

/**
 * Build a grouped problem from a per-core problem.
 *
 * Every core must belong to exactly one group, and all members of a
 * group are assumed to run the same application (the group utility is
 * derived from the first member's model).
 *
 * A malformed grouping does not throw: the rejection is recorded in
 * GroupedProblem::status and the returned problem is empty.
 *
 * @param per_core  the original problem (one model per core)
 * @param groups    a partition of the cores
 */
GroupedProblem makeGroupedProblem(const AllocationProblem &per_core,
                                  std::vector<ThreadGroup> groups);

} // namespace rebudget::core

#endif // REBUDGET_CORE_GROUPS_H_
