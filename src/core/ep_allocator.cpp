#include "rebudget/core/ep_allocator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rebudget/util/logging.h"

namespace rebudget::core {

namespace {

// Solve the linear system A x = b by Gaussian elimination with partial
// pivoting; A is n x n row-major.  Returns false if singular.
bool
solveLinear(std::vector<double> a, std::vector<double> b,
            std::vector<double> &x)
{
    const size_t n = b.size();
    for (size_t col = 0; col < n; ++col) {
        // Pivot.
        size_t pivot = col;
        for (size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row * n + col]) >
                std::abs(a[pivot * n + col]))
                pivot = row;
        }
        if (std::abs(a[pivot * n + col]) < 1e-12)
            return false;
        if (pivot != col) {
            for (size_t k = 0; k < n; ++k)
                std::swap(a[col * n + k], a[pivot * n + k]);
            std::swap(b[col], b[pivot]);
        }
        // Eliminate below.
        for (size_t row = col + 1; row < n; ++row) {
            const double f = a[row * n + col] / a[col * n + col];
            for (size_t k = col; k < n; ++k)
                a[row * n + k] -= f * a[col * n + k];
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    x.assign(n, 0.0);
    for (size_t row = n; row-- > 0;) {
        double acc = b[row];
        for (size_t k = row + 1; k < n; ++k)
            acc -= a[row * n + k] * x[k];
        x[row] = acc / a[row * n + row];
    }
    return true;
}

} // namespace

CobbDouglasFit
fitCobbDouglas(const market::UtilityModel &model,
               const std::vector<double> &capacities, int grid_points)
{
    const size_t m = model.numResources();
    if (capacities.size() != m || grid_points < 3) {
        // Malformed inputs degrade to the uniform-elasticity fallback
        // the fit itself uses for degenerate utilities, with the reason
        // recorded on the fit.
        CobbDouglasFit fit;
        fit.elasticities.assign(m > 0 ? m : 1,
                                1.0 / static_cast<double>(m > 0 ? m : 1));
        if (capacities.size() != m) {
            fit.status = util::SolveStatus::error(
                util::StatusCode::InvalidArgument,
                "fitCobbDouglas: capacity arity %zu != model arity %zu",
                capacities.size(), m);
        } else {
            fit.status = util::SolveStatus::error(
                util::StatusCode::InvalidArgument,
                "fitCobbDouglas needs at least 3 grid points (got %d)",
                grid_points);
        }
        return fit;
    }

    // Geometric per-axis grid from 5% to 100% of capacity.
    std::vector<std::vector<double>> axis(m);
    for (size_t j = 0; j < m; ++j) {
        const double lo = 0.05 * capacities[j];
        const double hi = capacities[j];
        const double ratio =
            std::pow(hi / lo, 1.0 / (grid_points - 1));
        double v = lo;
        for (int k = 0; k < grid_points; ++k) {
            axis[j].push_back(v);
            v *= ratio;
        }
    }

    // Enumerate the full grid and collect log-space samples:
    // log U = b0 + sum_j a_j log r_j.
    const size_t vars = m + 1; // intercept + elasticities
    std::vector<double> ata(vars * vars, 0.0);
    std::vector<double> atb(vars, 0.0);
    std::vector<double> logu_all;
    std::vector<std::vector<double>> rows;
    std::vector<size_t> idx(m, 0);
    const size_t total = static_cast<size_t>(
        std::pow(static_cast<double>(grid_points),
                 static_cast<double>(m)));
    std::vector<double> alloc(m);
    for (size_t cell = 0; cell < total; ++cell) {
        size_t rem = cell;
        for (size_t j = 0; j < m; ++j) {
            idx[j] = rem % grid_points;
            rem /= grid_points;
        }
        for (size_t j = 0; j < m; ++j)
            alloc[j] = axis[j][idx[j]];
        const double u = model.utility(alloc);
        if (u <= 1e-9)
            continue; // log undefined; Cobb-Douglas cannot be zero
        std::vector<double> row(vars);
        row[0] = 1.0;
        for (size_t j = 0; j < m; ++j)
            row[j + 1] = std::log(alloc[j]);
        const double y = std::log(u);
        for (size_t r = 0; r < vars; ++r) {
            for (size_t c = 0; c < vars; ++c)
                ata[r * vars + c] += row[r] * row[c];
            atb[r] += row[r] * y;
        }
        rows.push_back(std::move(row));
        logu_all.push_back(y);
    }

    CobbDouglasFit fit;
    fit.elasticities.assign(m, 1.0 / static_cast<double>(m));
    if (rows.size() < vars)
        return fit; // degenerate utility: fall back to uniform

    std::vector<double> coeff;
    if (!solveLinear(ata, atb, coeff))
        return fit;

    // R^2 in log space.
    double mean_y = 0.0;
    for (double y : logu_all)
        mean_y += y;
    mean_y /= static_cast<double>(logu_all.size());
    double ss_tot = 0.0;
    double ss_res = 0.0;
    for (size_t s = 0; s < rows.size(); ++s) {
        double pred = 0.0;
        for (size_t v = 0; v < vars; ++v)
            pred += coeff[v] * rows[s][v];
        ss_res += (logu_all[s] - pred) * (logu_all[s] - pred);
        ss_tot += (logu_all[s] - mean_y) * (logu_all[s] - mean_y);
    }
    fit.r2 = ss_tot > 0.0 ? std::max(0.0, 1.0 - ss_res / ss_tot) : 1.0;

    // Elasticities: clamp to >= 0 and normalize to sum 1 (REF's
    // convention; constant returns to scale).
    double sum = 0.0;
    for (size_t j = 0; j < m; ++j) {
        fit.elasticities[j] = std::max(0.0, coeff[j + 1]);
        sum += fit.elasticities[j];
    }
    if (sum <= 0.0) {
        fit.elasticities.assign(m, 1.0 / static_cast<double>(m));
    } else {
        for (auto &a : fit.elasticities)
            a /= sum;
    }
    return fit;
}

EpAllocator::EpAllocator(int grid_points) : gridPoints_(grid_points)
{
    if (grid_points < 3) {
        configStatus_ = util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "EpAllocator needs at least 3 grid points (got %d)",
            grid_points);
    }
}

AllocationOutcome
EpAllocator::allocate(const AllocationProblem &problem) const
{
    const double t0 = util::monotonicSeconds();
    AllocationOutcome outcome;
    outcome.mechanism = name();
    if (!configStatus_.ok()) {
        outcome.status = configStatus_;
        outcome.converged = false;
        outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
        return outcome;
    }
    if (util::SolveStatus st = validateProblemStatus(problem); !st.ok()) {
        outcome.status = std::move(st);
        outcome.converged = false;
        outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
        return outcome;
    }
    const size_t n = problem.models.size();
    const size_t m = problem.capacities.size();

    // The Cobb-Douglas share rule is closed-form, so problem.warmStart is
    // ignored: there is no iteration to seed.  An allocation-only seed is
    // still published below so downstream epochs that switch mechanism
    // (e.g. to MaxEfficiency) can resume from this epoch's allocation.
    std::vector<CobbDouglasFit> fits;
    fits.reserve(n);
    for (const auto *model : problem.models)
        fits.push_back(
            fitCobbDouglas(*model, problem.capacities, gridPoints_));

    outcome.alloc.assign(n, m, 0.0);
    for (size_t j = 0; j < m; ++j) {
        double total = 0.0;
        for (size_t i = 0; i < n; ++i)
            total += fits[i].elasticities[j];
        for (size_t i = 0; i < n; ++i) {
            const double share =
                total > 0.0 ? fits[i].elasticities[j] / total
                            : 1.0 / static_cast<double>(n);
            outcome.alloc(i, j) = problem.capacities[j] * share;
        }
    }
    auto seed = std::make_shared<market::EquilibriumResult>();
    seed->alloc = outcome.alloc;
    outcome.equilibrium = std::move(seed);
    outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
    return outcome;
}

} // namespace rebudget::core
