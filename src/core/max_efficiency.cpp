#include "rebudget/core/max_efficiency.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::core {

MaxEfficiencyAllocator::MaxEfficiencyAllocator(
    const MaxEfficiencyConfig &config)
    : config_(config)
{
    if (config_.quantumFraction <= 0.0 || config_.quantumFraction > 1.0) {
        configStatus_ = util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "quantumFraction must be in (0, 1] (got %g)",
            config_.quantumFraction);
    }
}

namespace {

/**
 * @return true if `prior` carries an allocation usable as a hill-climb
 * starting point for this problem: matching shape, non-negative
 * entries, and columns summing to the capacities (the invariant the
 * exchange refinement preserves).
 */
bool
usableWarmAlloc(const AllocationProblem &problem,
                const market::EquilibriumResult *prior)
{
    if (!problem.marketConfig.warmStart || prior == nullptr)
        return false;
    const size_t n = problem.models.size();
    const size_t m = problem.capacities.size();
    if (prior->alloc.rows() != n || prior->alloc.cols() != m)
        return false;
    for (auto row : prior->alloc) {
        for (double v : row) {
            if (v < 0.0)
                return false;
        }
    }
    for (size_t j = 0; j < m; ++j) {
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i)
            sum += prior->alloc(i, j);
        if (std::abs(sum - problem.capacities[j]) >
            1e-6 * problem.capacities[j])
            return false;
    }
    return true;
}

} // namespace

AllocationOutcome
MaxEfficiencyAllocator::allocate(const AllocationProblem &problem) const
{
    const double t0 = util::monotonicSeconds();
    AllocationOutcome outcome;
    outcome.mechanism = name();
    if (!configStatus_.ok()) {
        outcome.status = configStatus_;
        outcome.converged = false;
        outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
        return outcome;
    }
    if (util::SolveStatus st = validateProblemStatus(problem); !st.ok()) {
        outcome.status = std::move(st);
        outcome.converged = false;
        outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
        return outcome;
    }
    const size_t n = problem.models.size();
    const size_t m = problem.capacities.size();
    auto &alloc = outcome.alloc;

    std::vector<double> quantum(m);
    for (size_t j = 0; j < m; ++j)
        quantum[j] = problem.capacities[j] * config_.quantumFraction;

    if (usableWarmAlloc(problem, problem.warmStart)) {
        // Warm start: resume from the prior allocation (the previous
        // epoch's optimum is a near-optimal point when utilities drift
        // slowly) and let the exchange refinement move what changed.
        // This skips the greedy fill, the expensive O(N * M / quantum)
        // phase, without losing optimality: for per-resource concave
        // utilities, exchange-local optimality is quantum-optimal from
        // any full allocation.
        alloc = problem.warmStart->alloc;
    } else {
        alloc.assign(n, m, 0.0);
        std::vector<double> remaining = problem.capacities;

        auto best_marginal_player = [&](size_t j) {
            size_t best = 0;
            double best_m = -1.0;
            for (size_t i = 0; i < n; ++i) {
                const double mg = problem.models[i]->marginal(j, alloc[i]);
                if (mg > best_m) {
                    best_m = mg;
                    best = i;
                }
            }
            return best;
        };

        // Greedy fill: hand out quanta of each resource, interleaved, to
        // the player with the largest marginal utility at its current
        // bundle.
        bool any = true;
        while (any) {
            any = false;
            for (size_t j = 0; j < m; ++j) {
                if (remaining[j] <= 1e-12 * problem.capacities[j])
                    continue;
                const double q = std::min(quantum[j], remaining[j]);
                const size_t i = best_marginal_player(j);
                alloc(i, j) += q;
                remaining[j] -= q;
                any = true;
            }
        }
    }

    // Exchange refinement: try moving one quantum between every ordered
    // player pair; accept any exchange that improves total utility.
    // Marginals are only local slopes, so the acceptance test evaluates
    // the actual utilities across the whole quantum.  When no pair
    // exchange improves, the allocation is optimal up to the quantum
    // granularity (utilities are concave per resource).
    for (int pass = 0; pass < config_.refinePasses; ++pass) {
        bool improved = false;
        for (size_t j = 0; j < m; ++j) {
            const double q = quantum[j];
            for (size_t donor = 0; donor < n; ++donor) {
                for (size_t rcpt = 0; rcpt < n; ++rcpt) {
                    if (rcpt == donor || alloc(donor, j) < q)
                        continue;
                    const double before =
                        problem.models[donor]->utility(alloc[donor]) +
                        problem.models[rcpt]->utility(alloc[rcpt]);
                    alloc(donor, j) -= q;
                    alloc(rcpt, j) += q;
                    const double after =
                        problem.models[donor]->utility(alloc[donor]) +
                        problem.models[rcpt]->utility(alloc[rcpt]);
                    if (after > before + 1e-12) {
                        improved = true;
                        ++outcome.stats.hillClimbSteps;
                    } else {
                        alloc(donor, j) += q; // revert
                        alloc(rcpt, j) -= q;
                    }
                }
            }
        }
        if (!improved)
            break;
    }
    // Allocation-only warm-start seed (bids empty: the oracle never runs
    // a market); the next epoch resumes refinement from here.
    auto seed = std::make_shared<market::EquilibriumResult>();
    seed->alloc = alloc;
    outcome.equilibrium = std::move(seed);
    outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
    return outcome;
}

} // namespace rebudget::core
