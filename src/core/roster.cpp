#include "rebudget/core/roster.h"

#include <algorithm>

namespace rebudget::core {

Roster
Roster::dense(size_t n)
{
    Roster r;
    r.ids_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        r.ids_.push_back(static_cast<PlayerId>(i));
    return r;
}

std::optional<size_t>
Roster::indexOf(PlayerId id) const
{
    // Rosters are core-count sized (tens of entries); a linear scan
    // beats a side map and keeps the class trivially copyable state.
    const auto it = std::find(ids_.begin(), ids_.end(), id);
    if (it == ids_.end())
        return std::nullopt;
    return static_cast<size_t>(it - ids_.begin());
}

bool
Roster::isDense() const
{
    for (size_t i = 0; i < ids_.size(); ++i) {
        if (ids_[i] != static_cast<PlayerId>(i))
            return false;
    }
    return true;
}

std::optional<size_t>
Roster::add(PlayerId id)
{
    if (indexOf(id))
        return std::nullopt;
    ids_.push_back(id);
    return ids_.size() - 1;
}

std::optional<size_t>
Roster::remove(PlayerId id)
{
    const auto idx = indexOf(id);
    if (!idx)
        return std::nullopt;
    ids_.erase(ids_.begin() + static_cast<std::ptrdiff_t>(*idx));
    return idx;
}

std::vector<std::ptrdiff_t>
Roster::mapFrom(const Roster &prior) const
{
    std::vector<std::ptrdiff_t> map(ids_.size(), -1);
    for (size_t i = 0; i < ids_.size(); ++i) {
        if (const auto old = prior.indexOf(ids_[i]))
            map[i] = static_cast<std::ptrdiff_t>(*old);
    }
    return map;
}

} // namespace rebudget::core
