#include "rebudget/core/karma_allocator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "rebudget/util/logging.h"

namespace rebudget::core {

namespace {

using util::SolveStatus;
using util::StatusCode;

/** Stamp an error outcome: empty allocation, reason in status. */
AllocationOutcome
failedOutcome(const std::string &mechanism, SolveStatus status, double t0)
{
    AllocationOutcome outcome;
    outcome.mechanism = mechanism;
    outcome.status = std::move(status);
    outcome.converged = false;
    outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
    return outcome;
}

SolveStatus
validateConfig(const KarmaConfig &c)
{
    if (c.allowance <= 0.0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "Karma allowance must be positive "
                                  "(got %g)", c.allowance);
    }
    if (c.donateFraction < 0.0 || c.donateFraction > 1.0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "Karma donateFraction must be in "
                                  "[0, 1] (got %g)", c.donateFraction);
    }
    if (c.borrowFraction < 0.0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "Karma borrowFraction must be >= 0 "
                                  "(got %g)", c.borrowFraction);
    }
    if (c.donateThreshold < 0.0 || c.donateThreshold > 1.0 ||
        c.borrowThreshold < c.donateThreshold ||
        c.borrowThreshold > 1.0) {
        return SolveStatus::error(
            StatusCode::InvalidArgument,
            "Karma thresholds need 0 <= donate <= borrow <= 1 "
            "(got donate %g, borrow %g)", c.donateThreshold,
            c.borrowThreshold);
    }
    if (c.maxCreditFraction <= 0.0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "Karma maxCreditFraction must be "
                                  "positive (got %g)",
                                  c.maxCreditFraction);
    }
    if (c.initialCreditFraction < 0.0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "Karma initialCreditFraction must be "
                                  ">= 0 (got %g)",
                                  c.initialCreditFraction);
    }
    return SolveStatus();
}

} // namespace

double
KarmaBank::totalCredits() const
{
    double sum = 0.0;
    for (const auto &[id, c] : credits)
        sum += c;
    return sum;
}

KarmaAllocator::KarmaAllocator(const KarmaConfig &config)
    : config_(config), configStatus_(validateConfig(config))
{
}

AllocationOutcome
KarmaAllocator::allocate(const AllocationProblem &problem) const
{
    const double t0 = util::monotonicSeconds();
    if (!configStatus_.ok())
        return failedOutcome(name(), configStatus_, t0);
    if (SolveStatus st = validateProblemStatus(problem); !st.ok())
        return failedOutcome(name(), std::move(st), t0);
    market::ProportionalMarket mkt(problem.models, problem.capacities,
                                   problem.marketConfig);
    if (!mkt.setupStatus().ok())
        return failedOutcome(name(), mkt.setupStatus(), t0);

    const size_t n = problem.models.size();
    const double A = config_.allowance;

    // Transient fallback bank: correct one-shot semantics (donations
    // leave, nothing ever returns) when the caller keeps no state.
    KarmaBank local_bank;
    KarmaBank &bank =
        problem.creditBank != nullptr ? *problem.creditBank : local_bank;
    market::SolveWorkspace local_ws;
    market::SolveWorkspace &ws =
        problem.workspace != nullptr ? *problem.workspace : local_ws;

    AllocationOutcome outcome;
    outcome.mechanism = name();

    // Probe solve at the uniform allowance: reads every tenant's
    // marginal utility of money at equal purchasing power, which is
    // what classifies donors and borrowers this epoch.
    std::vector<double> budgets(n, A);
    if (problem.recordBudgetHistory)
        outcome.budgetHistory.push_back(budgets);
    market::EquilibriumResult probe;
    mkt.findEquilibriumInto(budgets, problem.warmStart, ws, probe);
    accumulateSolve(outcome, probe);
    if (!outcome.status.ok()) {
        outcome.converged = false;
        outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
        return outcome;
    }

    double lambda_max = 0.0;
    for (size_t i = 0; i < n; ++i)
        lambda_max = std::max(lambda_max, probe.lambdas[i]);

    // Reassign purchasing power through the bank.  Order matters for
    // determinism only (dense index order); the pool grows by every
    // donation before borrows draw on it, so same-epoch recycling is
    // allowed and the backing invariant sum(credits) <= pool holds
    // throughout.
    const double credit_cap = config_.maxCreditFraction * A;
    if (lambda_max > 0.0) {
        const double donate_below = config_.donateThreshold * lambda_max;
        const double borrow_at = config_.borrowThreshold * lambda_max;
        double want_total = 0.0;
        std::vector<double> want(n, 0.0);
        for (size_t i = 0; i < n; ++i) {
            const PlayerId id = problem.playerIdAt(i);
            double &credit = bank.credits[id];
            if (probe.lambdas[i] < donate_below) {
                const double d = std::min(config_.donateFraction * A,
                                          credit_cap - credit);
                if (d > 0.0) {
                    credit += d;
                    bank.publicPool += d;
                    budgets[i] = A - d;
                    bank.donations += 1;
                    outcome.stats.karmaDonors += 1;
                }
            } else if (probe.lambdas[i] >= borrow_at) {
                want[i] = std::min(config_.borrowFraction * A, credit);
                want_total += want[i];
            }
        }
        if (want_total > 0.0) {
            // Credits are fully backed, so the pool normally covers
            // every draw; the rationing scale only guards FP drift.
            const double scale =
                std::min(1.0, bank.publicPool / want_total);
            for (size_t i = 0; i < n; ++i) {
                if (want[i] <= 0.0)
                    continue;
                const double x = want[i] * scale;
                const PlayerId id = problem.playerIdAt(i);
                bank.credits[id] =
                    std::max(0.0, bank.credits[id] - x);
                bank.publicPool -= x;
                budgets[i] = A + x;
                bank.borrows += 1;
                outcome.stats.karmaBorrowers += 1;
            }
        }
    }

    // Real solve at the credit-adjusted budgets, warm-started from the
    // probe equilibrium (the budget perturbation is small, so the
    // probe's bid point is an excellent seed).
    outcome.budgetRounds = 1;
    if (problem.recordBudgetHistory)
        outcome.budgetHistory.push_back(budgets);
    market::EquilibriumResult final_eq;
    mkt.findEquilibriumInto(budgets, &probe, ws, final_eq);
    accumulateSolve(outcome, final_eq);
    if (!outcome.status.ok()) {
        outcome.converged = false;
        outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
        return outcome;
    }
    auto seed = std::make_shared<const market::EquilibriumResult>(
        std::move(final_eq));
    outcome.alloc = seed->alloc;
    outcome.lambdas = seed->lambdas;
    outcome.budgets = std::move(budgets);
    outcome.equilibrium = std::move(seed);
    outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
    return outcome;
}

void
KarmaAllocator::onRosterChange(const RosterChange &change,
                               AllocationProblem &problem) const
{
    if (problem.creditBank == nullptr)
        return;
    KarmaBank &bank = *problem.creditBank;
    for (const auto &dep : change.departed) {
        const auto it = bank.credits.find(dep.id);
        if (it == bank.credits.end())
            continue;
        // Forfeit the claim; the backing money stays in the pool and
        // flows to the survivors through future borrows.
        bank.forfeited += it->second;
        bank.credits.erase(it);
    }
    if (config_.initialCreditFraction > 0.0) {
        for (const PlayerId id : change.joined) {
            if (bank.credits.count(id))
                continue;
            // A newcomer's credit line is a claim like any other: it
            // must stay backed by the pool.
            const double backable =
                std::max(0.0, bank.publicPool - bank.totalCredits());
            const double grant =
                std::min(config_.initialCreditFraction *
                             config_.allowance, backable);
            if (grant > 0.0)
                bank.credits[id] = grant;
        }
    }
}

} // namespace rebudget::core
