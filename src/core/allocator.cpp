#include "rebudget/core/allocator.h"

#include <sstream>

#include "rebudget/util/logging.h"

namespace rebudget::core {

std::optional<std::string>
tryValidateProblem(const AllocationProblem &problem)
{
    if (problem.models.empty())
        return "allocation problem has no players";
    if (problem.capacities.empty())
        return "allocation problem has no resources";
    for (size_t i = 0; i < problem.models.size(); ++i) {
        const auto *m = problem.models[i];
        if (m == nullptr) {
            std::ostringstream ss;
            ss << "allocation problem has a null utility model (player "
               << i << ")";
            return ss.str();
        }
        if (m->numResources() != problem.capacities.size()) {
            std::ostringstream ss;
            ss << "utility arity " << m->numResources()
               << " != resource count " << problem.capacities.size()
               << " (player " << i << ", model '" << m->name() << "')";
            return ss.str();
        }
    }
    for (size_t j = 0; j < problem.capacities.size(); ++j) {
        if (problem.capacities[j] <= 0.0) {
            std::ostringstream ss;
            ss << "capacities must be positive (resource " << j << " is "
               << problem.capacities[j] << ")";
            return ss.str();
        }
    }
    return std::nullopt;
}

void
validateProblem(const AllocationProblem &problem)
{
    if (const auto err = tryValidateProblem(problem))
        util::fatal("%s", err->c_str());
}

} // namespace rebudget::core
