#include "rebudget/core/allocator.h"

#include <sstream>

#include "rebudget/util/logging.h"

namespace rebudget::core {

std::optional<std::string>
tryValidateProblem(const AllocationProblem &problem)
{
    if (problem.models.empty())
        return "allocation problem has no players";
    if (problem.capacities.empty())
        return "allocation problem has no resources";
    for (size_t i = 0; i < problem.models.size(); ++i) {
        const auto *m = problem.models[i];
        if (m == nullptr) {
            std::ostringstream ss;
            ss << "allocation problem has a null utility model (player "
               << i << ")";
            return ss.str();
        }
        if (m->numResources() != problem.capacities.size()) {
            std::ostringstream ss;
            ss << "utility arity " << m->numResources()
               << " != resource count " << problem.capacities.size()
               << " (player " << i << ", model '" << m->name() << "')";
            return ss.str();
        }
    }
    for (size_t j = 0; j < problem.capacities.size(); ++j) {
        if (problem.capacities[j] <= 0.0) {
            std::ostringstream ss;
            ss << "capacities must be positive (resource " << j << " is "
               << problem.capacities[j] << ")";
            return ss.str();
        }
    }
    if (!problem.playerIds.empty()) {
        if (problem.playerIds.size() != problem.models.size()) {
            std::ostringstream ss;
            ss << "player id count " << problem.playerIds.size()
               << " != player count " << problem.models.size();
            return ss.str();
        }
        for (size_t i = 0; i < problem.playerIds.size(); ++i) {
            for (size_t k = i + 1; k < problem.playerIds.size(); ++k) {
                if (problem.playerIds[i] == problem.playerIds[k]) {
                    std::ostringstream ss;
                    ss << "duplicate player id "
                       << problem.playerIds[i] << " (dense indices "
                       << i << " and " << k << ")";
                    return ss.str();
                }
            }
        }
    }
    return std::nullopt;
}

std::optional<size_t>
AllocationProblem::indexOfPlayer(PlayerId id) const
{
    if (playerIds.empty()) {
        const size_t i = static_cast<size_t>(id);
        if (i < models.size())
            return i;
        return std::nullopt;
    }
    for (size_t i = 0; i < playerIds.size(); ++i) {
        if (playerIds[i] == id)
            return i;
    }
    return std::nullopt;
}

util::Expected<size_t>
AllocationProblem::addTenant(PlayerId id,
                             const market::UtilityModel *model)
{
    if (model == nullptr) {
        return util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "addTenant: null utility model for player id %llu",
            static_cast<unsigned long long>(id));
    }
    if (indexOfPlayer(id)) {
        return util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "addTenant: player id %llu is already active",
            static_cast<unsigned long long>(id));
    }
    if (playerIds.empty() && !models.empty()) {
        // Materialize the implicit dense roster so existing players
        // keep their identities when the first churn event lands.
        playerIds.reserve(models.size() + 1);
        for (size_t i = 0; i < models.size(); ++i)
            playerIds.push_back(static_cast<PlayerId>(i));
    }
    models.push_back(model);
    playerIds.push_back(id);
    return models.size() - 1;
}

util::Expected<size_t>
AllocationProblem::removeTenant(PlayerId id)
{
    const auto idx = indexOfPlayer(id);
    if (!idx) {
        return util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "removeTenant: player id %llu is not active",
            static_cast<unsigned long long>(id));
    }
    if (playerIds.empty() && !models.empty()) {
        playerIds.reserve(models.size());
        for (size_t i = 0; i < models.size(); ++i)
            playerIds.push_back(static_cast<PlayerId>(i));
    }
    models.erase(models.begin() + static_cast<std::ptrdiff_t>(*idx));
    playerIds.erase(playerIds.begin() +
                    static_cast<std::ptrdiff_t>(*idx));
    return *idx;
}

util::SolveStatus
validateProblemStatus(const AllocationProblem &problem)
{
    if (const auto err = tryValidateProblem(problem)) {
        return util::SolveStatus::error(util::StatusCode::InvalidArgument,
                                        "%s", err->c_str());
    }
    return util::SolveStatus();
}

void
accumulateSolve(AllocationOutcome &outcome,
                const market::EquilibriumResult &eq)
{
    util::SolverStats &s = outcome.stats;
    outcome.marketIterations += eq.iterations;
    if (eq.approximated) {
        s.elidedRescales += 1;
        s.rescaleSeconds += eq.solveSeconds;
    } else {
        s.equilibriumSolves += 1;
        s.sweepIterations += eq.iterations;
        s.hillClimbSteps += eq.hillClimbSteps;
        s.solveSeconds += eq.solveSeconds;
        if (eq.warmStarted)
            s.warmStartedSolves += 1;
        else
            s.coldStartedSolves += 1;
        if (eq.status.ok() && !eq.converged)
            s.failSafeTrips += 1;
        outcome.converged = outcome.converged && eq.converged;
    }
    if (!eq.status.ok()) {
        s.failedSolves += 1;
        outcome.status = eq.status;
    }
}

} // namespace rebudget::core
