#include "rebudget/core/allocator.h"

#include <sstream>

#include "rebudget/util/logging.h"

namespace rebudget::core {

std::optional<std::string>
tryValidateProblem(const AllocationProblem &problem)
{
    if (problem.models.empty())
        return "allocation problem has no players";
    if (problem.capacities.empty())
        return "allocation problem has no resources";
    for (size_t i = 0; i < problem.models.size(); ++i) {
        const auto *m = problem.models[i];
        if (m == nullptr) {
            std::ostringstream ss;
            ss << "allocation problem has a null utility model (player "
               << i << ")";
            return ss.str();
        }
        if (m->numResources() != problem.capacities.size()) {
            std::ostringstream ss;
            ss << "utility arity " << m->numResources()
               << " != resource count " << problem.capacities.size()
               << " (player " << i << ", model '" << m->name() << "')";
            return ss.str();
        }
    }
    for (size_t j = 0; j < problem.capacities.size(); ++j) {
        if (problem.capacities[j] <= 0.0) {
            std::ostringstream ss;
            ss << "capacities must be positive (resource " << j << " is "
               << problem.capacities[j] << ")";
            return ss.str();
        }
    }
    return std::nullopt;
}

util::SolveStatus
validateProblemStatus(const AllocationProblem &problem)
{
    if (const auto err = tryValidateProblem(problem)) {
        return util::SolveStatus::error(util::StatusCode::InvalidArgument,
                                        "%s", err->c_str());
    }
    return util::SolveStatus();
}

void
accumulateSolve(AllocationOutcome &outcome,
                const market::EquilibriumResult &eq)
{
    util::SolverStats &s = outcome.stats;
    outcome.marketIterations += eq.iterations;
    if (eq.approximated) {
        s.elidedRescales += 1;
        s.rescaleSeconds += eq.solveSeconds;
    } else {
        s.equilibriumSolves += 1;
        s.sweepIterations += eq.iterations;
        s.hillClimbSteps += eq.hillClimbSteps;
        s.solveSeconds += eq.solveSeconds;
        if (eq.warmStarted)
            s.warmStartedSolves += 1;
        else
            s.coldStartedSolves += 1;
        if (eq.status.ok() && !eq.converged)
            s.failSafeTrips += 1;
        outcome.converged = outcome.converged && eq.converged;
    }
    if (!eq.status.ok()) {
        s.failedSolves += 1;
        outcome.status = eq.status;
    }
}

} // namespace rebudget::core
