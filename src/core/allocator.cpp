#include "rebudget/core/allocator.h"

#include "rebudget/util/logging.h"

namespace rebudget::core {

void
validateProblem(const AllocationProblem &problem)
{
    if (problem.models.empty())
        util::fatal("allocation problem has no players");
    if (problem.capacities.empty())
        util::fatal("allocation problem has no resources");
    for (const auto *m : problem.models) {
        if (m == nullptr)
            util::fatal("allocation problem has a null utility model");
        if (m->numResources() != problem.capacities.size()) {
            util::fatal("utility arity %zu != resource count %zu",
                        m->numResources(), problem.capacities.size());
        }
    }
    for (double c : problem.capacities) {
        if (c <= 0.0)
            util::fatal("capacities must be positive");
    }
}

} // namespace rebudget::core
