#include "rebudget/core/baselines.h"

#include <algorithm>

#include "rebudget/util/logging.h"

namespace rebudget::core {

namespace {

using util::SolveStatus;
using util::StatusCode;

/** Stamp an error outcome: empty allocation, reason in status. */
AllocationOutcome
failedOutcome(const std::string &mechanism, SolveStatus status, double t0)
{
    AllocationOutcome outcome;
    outcome.mechanism = mechanism;
    outcome.status = std::move(status);
    outcome.converged = false;
    outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
    return outcome;
}

/**
 * Package a final equilibrium into an outcome, publishing it as the
 * warm-start seed for the next allocate() on a similar problem.
 * Propagates the solve's status and telemetry.
 */
void
publishEquilibrium(AllocationOutcome &outcome,
                   market::EquilibriumResult &&eq)
{
    accumulateSolve(outcome, eq);
    if (!outcome.status.ok()) {
        outcome.converged = false;
        return;
    }
    auto seed =
        std::make_shared<const market::EquilibriumResult>(std::move(eq));
    outcome.alloc = seed->alloc;
    outcome.lambdas = seed->lambdas;
    outcome.equilibrium = std::move(seed);
}

} // namespace

AllocationOutcome
EqualShareAllocator::allocate(const AllocationProblem &problem) const
{
    const double t0 = util::monotonicSeconds();
    if (SolveStatus st = validateProblemStatus(problem); !st.ok())
        return failedOutcome(name(), std::move(st), t0);
    const size_t n = problem.models.size();
    const size_t m = problem.capacities.size();
    AllocationOutcome outcome;
    outcome.mechanism = name();
    outcome.alloc.assign(n, m, 0.0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < m; ++j)
            outcome.alloc(i, j) =
                problem.capacities[j] / static_cast<double>(n);
    }
    outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
    return outcome;
}

EqualBudgetAllocator::EqualBudgetAllocator(double initial_budget)
    : initialBudget_(initial_budget)
{
    if (initial_budget <= 0.0) {
        configStatus_ = SolveStatus::error(
            StatusCode::InvalidArgument,
            "initial budget must be positive (got %g)", initial_budget);
    }
}

AllocationOutcome
EqualBudgetAllocator::allocate(const AllocationProblem &problem) const
{
    const double t0 = util::monotonicSeconds();
    if (!configStatus_.ok())
        return failedOutcome(name(), configStatus_, t0);
    if (SolveStatus st = validateProblemStatus(problem); !st.ok())
        return failedOutcome(name(), std::move(st), t0);
    market::ProportionalMarket mkt(problem.models, problem.capacities,
                                   problem.marketConfig);
    if (!mkt.setupStatus().ok())
        return failedOutcome(name(), mkt.setupStatus(), t0);
    const std::vector<double> budgets(problem.models.size(),
                                      initialBudget_);
    AllocationOutcome outcome;
    outcome.mechanism = name();
    outcome.budgets = budgets;
    if (problem.recordBudgetHistory)
        outcome.budgetHistory.push_back(budgets);
    market::SolveWorkspace local_ws;
    market::SolveWorkspace &ws =
        problem.workspace != nullptr ? *problem.workspace : local_ws;
    market::EquilibriumResult eq;
    mkt.findEquilibriumInto(budgets, problem.warmStart, ws, eq);
    publishEquilibrium(outcome, std::move(eq));
    outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
    return outcome;
}

BalancedBudgetAllocator::BalancedBudgetAllocator(double mean_budget)
    : meanBudget_(mean_budget)
{
    if (mean_budget <= 0.0) {
        configStatus_ = SolveStatus::error(
            StatusCode::InvalidArgument,
            "mean budget must be positive (got %g)", mean_budget);
    }
}

AllocationOutcome
BalancedBudgetAllocator::allocate(const AllocationProblem &problem) const
{
    const double t0 = util::monotonicSeconds();
    if (!configStatus_.ok())
        return failedOutcome(name(), configStatus_, t0);
    if (SolveStatus st = validateProblemStatus(problem); !st.ok())
        return failedOutcome(name(), std::move(st), t0);
    const size_t n = problem.models.size();
    const size_t m = problem.capacities.size();
    // Budget_i proportional to (U_max - U_min) / U_max: the utility at
    // the largest possible allocation (all market capacity) vs. the
    // guaranteed minimum (zero market allocation).
    const std::vector<double> none(m, 0.0);
    std::vector<double> budgets(n, 0.0);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double u_min = problem.models[i]->utility(none);
        const double u_max = problem.models[i]->utility(problem.capacities);
        const double potential =
            u_max > 0.0 ? (u_max - u_min) / u_max : 0.0;
        budgets[i] = std::max(potential, 1e-3); // keep players in market
        sum += budgets[i];
    }
    const double scale = meanBudget_ * static_cast<double>(n) / sum;
    for (auto &b : budgets)
        b *= scale;

    market::ProportionalMarket mkt(problem.models, problem.capacities,
                                   problem.marketConfig);
    if (!mkt.setupStatus().ok())
        return failedOutcome(name(), mkt.setupStatus(), t0);
    AllocationOutcome outcome;
    outcome.mechanism = name();
    if (problem.recordBudgetHistory)
        outcome.budgetHistory.push_back(budgets);
    market::SolveWorkspace local_ws;
    market::SolveWorkspace &ws =
        problem.workspace != nullptr ? *problem.workspace : local_ws;
    market::EquilibriumResult eq;
    mkt.findEquilibriumInto(budgets, problem.warmStart, ws, eq);
    publishEquilibrium(outcome, std::move(eq));
    outcome.budgets = std::move(budgets);
    outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
    return outcome;
}

} // namespace rebudget::core
