#include "rebudget/core/baselines.h"

#include <algorithm>

#include "rebudget/util/logging.h"

namespace rebudget::core {

AllocationOutcome
EqualShareAllocator::allocate(const AllocationProblem &problem) const
{
    validateProblem(problem);
    const size_t n = problem.models.size();
    const size_t m = problem.capacities.size();
    AllocationOutcome outcome;
    outcome.mechanism = name();
    outcome.alloc.assign(n, std::vector<double>(m, 0.0));
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < m; ++j)
            outcome.alloc[i][j] =
                problem.capacities[j] / static_cast<double>(n);
    }
    return outcome;
}

EqualBudgetAllocator::EqualBudgetAllocator(double initial_budget)
    : initialBudget_(initial_budget)
{
    if (initial_budget <= 0.0)
        util::fatal("initial budget must be positive");
}

namespace {

/**
 * Package a final equilibrium into an outcome, publishing it as the
 * warm-start seed for the next allocate() on a similar problem.
 */
void
publishEquilibrium(AllocationOutcome &outcome,
                   market::EquilibriumResult &&eq)
{
    outcome.marketIterations += eq.iterations;
    outcome.converged = outcome.converged && eq.converged;
    auto seed =
        std::make_shared<const market::EquilibriumResult>(std::move(eq));
    outcome.alloc = seed->alloc;
    outcome.lambdas = seed->lambdas;
    outcome.equilibrium = std::move(seed);
}

} // namespace

AllocationOutcome
EqualBudgetAllocator::allocate(const AllocationProblem &problem) const
{
    validateProblem(problem);
    market::ProportionalMarket mkt(problem.models, problem.capacities,
                                   problem.marketConfig);
    const std::vector<double> budgets(problem.models.size(),
                                      initialBudget_);
    AllocationOutcome outcome;
    outcome.mechanism = name();
    outcome.budgets = budgets;
    if (problem.recordBudgetHistory)
        outcome.budgetHistory.push_back(budgets);
    publishEquilibrium(outcome,
                       mkt.findEquilibrium(budgets, problem.warmStart));
    return outcome;
}

BalancedBudgetAllocator::BalancedBudgetAllocator(double mean_budget)
    : meanBudget_(mean_budget)
{
    if (mean_budget <= 0.0)
        util::fatal("mean budget must be positive");
}

AllocationOutcome
BalancedBudgetAllocator::allocate(const AllocationProblem &problem) const
{
    validateProblem(problem);
    const size_t n = problem.models.size();
    const size_t m = problem.capacities.size();
    // Budget_i proportional to (U_max - U_min) / U_max: the utility at
    // the largest possible allocation (all market capacity) vs. the
    // guaranteed minimum (zero market allocation).
    const std::vector<double> none(m, 0.0);
    std::vector<double> budgets(n, 0.0);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double u_min = problem.models[i]->utility(none);
        const double u_max = problem.models[i]->utility(problem.capacities);
        const double potential =
            u_max > 0.0 ? (u_max - u_min) / u_max : 0.0;
        budgets[i] = std::max(potential, 1e-3); // keep players in market
        sum += budgets[i];
    }
    const double scale = meanBudget_ * static_cast<double>(n) / sum;
    for (auto &b : budgets)
        b *= scale;

    market::ProportionalMarket mkt(problem.models, problem.capacities,
                                   problem.marketConfig);
    AllocationOutcome outcome;
    outcome.mechanism = name();
    if (problem.recordBudgetHistory)
        outcome.budgetHistory.push_back(budgets);
    publishEquilibrium(outcome,
                       mkt.findEquilibrium(budgets, problem.warmStart));
    outcome.budgets = std::move(budgets);
    return outcome;
}

} // namespace rebudget::core
