#include "rebudget/core/rebudget_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "rebudget/market/metrics.h"
#include "rebudget/util/logging.h"

namespace rebudget::core {

namespace {

using util::SolveStatus;
using util::StatusCode;

/** Validate a ReBudget config; Ok when allocate() may run. */
SolveStatus
validateReBudgetConfig(const ReBudgetConfig &config)
{
    if (config.initialBudget <= 0.0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "ReBudget initial budget must be positive");
    }
    if (config.lambdaCutThreshold <= 0.0 ||
        config.lambdaCutThreshold >= 1.0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "lambdaCutThreshold must be in (0, 1)");
    }
    if (config.maxRounds <= 0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "maxRounds must be positive");
    }
    if (config.elideStepFraction < 0.0 ||
        config.elideStepFraction >= 0.5) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "elideStepFraction must be in [0, 0.5)");
    }
    if (config.guardrailFloor < 0.0 || config.guardrailFloor >= 1.0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "guardrailFloor must be in [0, 1)");
    }
    if (config.efTarget < 0.0) {
        if (config.step0 <= 0.0 ||
            config.step0 >= config.initialBudget / 2.0) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "ReBudget step0 must be in (0, B/2) = (0, %f)",
                config.initialBudget / 2.0);
        }
        if (config.mbrFloor < 0.0 || config.mbrFloor > 1.0) {
            return SolveStatus::error(StatusCode::InvalidArgument,
                                      "mbrFloor must be in [0, 1]");
        }
    }
    return SolveStatus();
}

} // namespace

ReBudgetAllocator::ReBudgetAllocator(const ReBudgetConfig &config)
    : config_(config), configStatus_(validateReBudgetConfig(config))
{
    if (configStatus_.ok()) {
        if (config_.efTarget >= 0.0) {
            // ByFairnessTarget: derive the MBR floor from Theorem 2 and
            // the initial step from Section 4.2 step (1).
            floorFraction_ =
                market::mbrForEnvyFreenessTarget(config_.efTarget);
            step0_ = (1.0 - floorFraction_) * config_.initialBudget / 2.0;
        } else {
            step0_ = config_.step0;
            floorFraction_ = config_.mbrFloor;
        }
    }
    // Display name, formatted once here instead of on every name() call
    // (sweeps ask for the mechanism name per bundle).
    std::ostringstream ss;
    if (config_.efTarget >= 0.0)
        ss << "ReBudget-EF" << config_.efTarget;
    else
        ss << "ReBudget-" << std::llround(step0_);
    name_ = ss.str();
}

ReBudgetAllocator
ReBudgetAllocator::withStep(double step0, double initial_budget)
{
    ReBudgetConfig cfg;
    cfg.initialBudget = initial_budget;
    cfg.step0 = step0;
    return ReBudgetAllocator(cfg);
}

ReBudgetAllocator
ReBudgetAllocator::withFairnessTarget(double ef_target,
                                      double initial_budget)
{
    ReBudgetConfig cfg;
    cfg.initialBudget = initial_budget;
    cfg.efTarget = ef_target;
    return ReBudgetAllocator(cfg);
}

double
ReBudgetAllocator::worstCaseMbr() const
{
    // A player cut in every round loses at most step0 * (1 + 1/2 + 1/4 +
    // ...) < 2 * step0 before the 1% stopping rule, and never drops below
    // the explicit floor.
    double cuts = 0.0;
    double step = step0_;
    const double min_step =
        config_.minStepFraction * config_.initialBudget;
    for (int r = 0; r < config_.maxRounds && step >= min_step; ++r) {
        cuts += step;
        step *= 0.5;
    }
    const double floor_fraction =
        std::max(floorFraction_, config_.guardrailFloor);
    const double min_budget =
        std::max(config_.initialBudget - cuts,
                 floor_fraction * config_.initialBudget);
    return min_budget / config_.initialBudget;
}

AllocationOutcome
ReBudgetAllocator::allocate(const AllocationProblem &problem) const
{
    const double t0 = util::monotonicSeconds();
    AllocationOutcome outcome;
    outcome.mechanism = name();
    auto fail = [&](util::SolveStatus status) {
        outcome.status = std::move(status);
        outcome.converged = false;
        outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
        return std::move(outcome);
    };
    if (!configStatus_.ok())
        return fail(configStatus_);
    if (util::SolveStatus st = validateProblemStatus(problem); !st.ok())
        return fail(std::move(st));
    const size_t n = problem.models.size();
    market::ProportionalMarket mkt(problem.models, problem.capacities,
                                   problem.marketConfig);
    if (!mkt.setupStatus().ok())
        return fail(mkt.setupStatus());

    // The guardrail floor backstops the mode-derived floor so budget
    // cuts stay bounded even when lambdas are corrupted (see
    // ReBudgetConfig::guardrailFloor).
    const double floor = std::max(floorFraction_, config_.guardrailFloor) *
                         config_.initialBudget;
    std::vector<double> budgets(n, config_.initialBudget);
    double step = step0_;
    const double min_step =
        config_.minStepFraction * config_.initialBudget;

    // Warm-start chain: the first round may be seeded by the caller
    // (epoch-to-epoch), every later round by the previous round's
    // equilibrium -- consecutive budget vectors differ only by the cut
    // step, so re-convergence from the prior bids is fast.  With
    // marketConfig.warmStart off, the solver ignores the hint and every
    // round cold-starts (the A/B baseline).
    //
    // The rounds solve through a shared workspace and ping-pong between
    // two result slots (the solver requires result != prior), so a
    // multi-round allocate performs no solver heap allocation after the
    // first round -- and none at all when the caller supplies
    // problem.workspace warmed by a previous allocate.
    market::SolveWorkspace local_ws;
    market::SolveWorkspace &ws =
        problem.workspace != nullptr ? *problem.workspace : local_ws;
    market::EquilibriumResult slots[2];
    int cur = 0;
    market::EquilibriumResult *eq = nullptr;
    const market::EquilibriumResult *prior = problem.warmStart;
    const bool warm_mode = problem.marketConfig.warmStart;
    const double elide_below =
        config_.elideStepFraction * config_.initialBudget;
    bool next_elidable = false;
    for (int round = 0; round < config_.maxRounds; ++round) {
        eq = &slots[cur];
        cur ^= 1;
        if (warm_mode && next_elidable) {
            // The cut that produced these budgets was below the elision
            // threshold: reuse the previous equilibrium rescaled to the
            // new budgets (zero sweeps) for this round's lambda
            // ordering instead of re-solving.  The result carries
            // approximated=true; budget-history and convergence
            // accounting key off that flag.
            mkt.rescaleEquilibriumInto(*prior, budgets, ws, *eq);
        } else {
            mkt.findEquilibriumInto(budgets, prior, ws, *eq);
        }
        if (problem.recordBudgetHistory && !eq->approximated)
            outcome.budgetHistory.push_back(budgets);
        prior = eq;
        accumulateSolve(outcome, *eq);
        ++outcome.budgetRounds;
        if (!outcome.status.ok())
            return fail(outcome.status);
        if (step < min_step)
            break; // step exhausted: this equilibrium is final
        // Cut over-budgeted players: lambda below the threshold fraction
        // of the market maximum.  Lambdas are untrusted under fault
        // injection: only finite values participate in the ranking, and
        // a round with no finite positive lambda makes no cuts (the
        // equilibrium just solved is final, exactly as if no player
        // qualified).
        double max_lambda = -std::numeric_limits<double>::infinity();
        for (const double l : eq->lambdas) {
            if (std::isfinite(l))
                max_lambda = std::max(max_lambda, l);
        }
        if (!(max_lambda > 0.0))
            break;
        bool any_cut = false;
        for (size_t i = 0; i < n; ++i) {
            if (std::isfinite(eq->lambdas[i]) &&
                eq->lambdas[i] <
                config_.lambdaCutThreshold * max_lambda) {
                const double cut_to =
                    std::max(budgets[i] - step, floor);
                if (cut_to < budgets[i] - 1e-12) {
                    budgets[i] = cut_to;
                    any_cut = true;
                }
            }
        }
        if (!any_cut)
            break; // stable: this equilibrium is final
        next_elidable = step <= elide_below;
        step *= 0.5;
    }
    if (eq->approximated) {
        // The loop ended on an elided round; the published equilibrium
        // must be real.  Budgets are unchanged since the approximation,
        // which seeds the solve, so this re-converges in a sweep or two.
        market::EquilibriumResult *fin = &slots[cur];
        mkt.findEquilibriumInto(budgets, eq, ws, *fin);
        eq = fin;
        if (problem.recordBudgetHistory && !eq->approximated)
            outcome.budgetHistory.push_back(budgets);
        accumulateSolve(outcome, *eq);
        if (!outcome.status.ok())
            return fail(outcome.status);
    }

    outcome.budgets = std::move(budgets);
    outcome.stats.budgetRounds = outcome.budgetRounds;
    auto seed =
        std::make_shared<market::EquilibriumResult>(std::move(*eq));
    outcome.alloc = seed->alloc;
    outcome.lambdas = seed->lambdas;
    outcome.equilibrium = std::move(seed);
    outcome.stats.allocateSeconds = util::monotonicSeconds() - t0;
    return outcome;
}

} // namespace rebudget::core
