#include "rebudget/core/rebudget_allocator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "rebudget/market/metrics.h"
#include "rebudget/util/logging.h"

namespace rebudget::core {

ReBudgetAllocator::ReBudgetAllocator(const ReBudgetConfig &config)
    : config_(config)
{
    if (config_.initialBudget <= 0.0)
        util::fatal("ReBudget initial budget must be positive");
    if (config_.lambdaCutThreshold <= 0.0 ||
        config_.lambdaCutThreshold >= 1.0)
        util::fatal("lambdaCutThreshold must be in (0, 1)");
    if (config_.maxRounds <= 0)
        util::fatal("maxRounds must be positive");
    if (config_.elideStepFraction < 0.0 || config_.elideStepFraction >= 0.5)
        util::fatal("elideStepFraction must be in [0, 0.5)");
    if (config_.efTarget >= 0.0) {
        // ByFairnessTarget: derive the MBR floor from Theorem 2 and the
        // initial step from Section 4.2 step (1).
        floorFraction_ =
            market::mbrForEnvyFreenessTarget(config_.efTarget);
        step0_ = (1.0 - floorFraction_) * config_.initialBudget / 2.0;
    } else {
        if (config_.step0 <= 0.0 ||
            config_.step0 >= config_.initialBudget / 2.0) {
            util::fatal("ReBudget step0 must be in (0, B/2) = (0, %f)",
                        config_.initialBudget / 2.0);
        }
        if (config_.mbrFloor < 0.0 || config_.mbrFloor > 1.0)
            util::fatal("mbrFloor must be in [0, 1]");
        step0_ = config_.step0;
        floorFraction_ = config_.mbrFloor;
    }
}

ReBudgetAllocator
ReBudgetAllocator::withStep(double step0, double initial_budget)
{
    ReBudgetConfig cfg;
    cfg.initialBudget = initial_budget;
    cfg.step0 = step0;
    return ReBudgetAllocator(cfg);
}

ReBudgetAllocator
ReBudgetAllocator::withFairnessTarget(double ef_target,
                                      double initial_budget)
{
    ReBudgetConfig cfg;
    cfg.initialBudget = initial_budget;
    cfg.efTarget = ef_target;
    return ReBudgetAllocator(cfg);
}

std::string
ReBudgetAllocator::name() const
{
    std::ostringstream ss;
    if (config_.efTarget >= 0.0)
        ss << "ReBudget-EF" << config_.efTarget;
    else
        ss << "ReBudget-" << std::llround(step0_);
    return ss.str();
}

double
ReBudgetAllocator::worstCaseMbr() const
{
    // A player cut in every round loses at most step0 * (1 + 1/2 + 1/4 +
    // ...) < 2 * step0 before the 1% stopping rule, and never drops below
    // the explicit floor.
    double cuts = 0.0;
    double step = step0_;
    const double min_step =
        config_.minStepFraction * config_.initialBudget;
    for (int r = 0; r < config_.maxRounds && step >= min_step; ++r) {
        cuts += step;
        step *= 0.5;
    }
    const double min_budget = std::max(config_.initialBudget - cuts,
                                       floorFraction_ *
                                           config_.initialBudget);
    return min_budget / config_.initialBudget;
}

AllocationOutcome
ReBudgetAllocator::allocate(const AllocationProblem &problem) const
{
    validateProblem(problem);
    const size_t n = problem.models.size();
    market::ProportionalMarket mkt(problem.models, problem.capacities,
                                   problem.marketConfig);

    const double floor = floorFraction_ * config_.initialBudget;
    std::vector<double> budgets(n, config_.initialBudget);
    double step = step0_;
    const double min_step =
        config_.minStepFraction * config_.initialBudget;

    AllocationOutcome outcome;
    outcome.mechanism = name();
    market::EquilibriumResult eq;
    // Warm-start chain: the first round may be seeded by the caller
    // (epoch-to-epoch), every later round by the previous round's
    // equilibrium -- consecutive budget vectors differ only by the cut
    // step, so re-convergence from the prior bids is fast.  With
    // marketConfig.warmStart off, findEquilibrium ignores the hint and
    // every round cold-starts (the A/B baseline).
    const market::EquilibriumResult *prior = problem.warmStart;
    const bool warm_mode = problem.marketConfig.warmStart;
    const double elide_below =
        config_.elideStepFraction * config_.initialBudget;
    // True while `eq` is a rescaled approximation rather than a real
    // solve; set when a sub-tolerance cut round elides its solve.
    bool eq_approx = false;
    bool next_elidable = false;
    for (int round = 0; round < config_.maxRounds; ++round) {
        // Passing &eq while assigning to eq is safe: both solvers only
        // read the prior during the call and their result is a separate
        // temporary, move-assigned after the call returns.
        if (warm_mode && next_elidable) {
            // The cut that produced these budgets was below the elision
            // threshold: reuse the previous equilibrium rescaled to the
            // new budgets (zero sweeps) for this round's lambda
            // ordering instead of re-solving.
            eq = mkt.rescaleEquilibrium(eq, budgets);
            eq_approx = true;
        } else {
            if (problem.recordBudgetHistory)
                outcome.budgetHistory.push_back(budgets);
            eq = mkt.findEquilibrium(budgets, prior);
            eq_approx = false;
        }
        prior = &eq;
        outcome.marketIterations += eq.iterations;
        outcome.converged = outcome.converged && eq.converged;
        ++outcome.budgetRounds;
        if (step < min_step)
            break; // step exhausted: this equilibrium is final
        // Cut over-budgeted players: lambda below the threshold fraction
        // of the market maximum.
        const double max_lambda =
            *std::max_element(eq.lambdas.begin(), eq.lambdas.end());
        bool any_cut = false;
        for (size_t i = 0; i < n; ++i) {
            if (eq.lambdas[i] <
                config_.lambdaCutThreshold * max_lambda) {
                const double cut_to =
                    std::max(budgets[i] - step, floor);
                if (cut_to < budgets[i] - 1e-12) {
                    budgets[i] = cut_to;
                    any_cut = true;
                }
            }
        }
        if (!any_cut)
            break; // stable: this equilibrium is final
        next_elidable = step <= elide_below;
        step *= 0.5;
    }
    if (eq_approx) {
        // The loop ended on an elided round; the published equilibrium
        // must be real.  Budgets are unchanged since the approximation,
        // which seeds the solve, so this re-converges in a sweep or two.
        if (problem.recordBudgetHistory)
            outcome.budgetHistory.push_back(budgets);
        eq = mkt.findEquilibrium(budgets, &eq);
        outcome.marketIterations += eq.iterations;
        outcome.converged = outcome.converged && eq.converged;
    }

    outcome.budgets = std::move(budgets);
    auto seed =
        std::make_shared<market::EquilibriumResult>(std::move(eq));
    outcome.alloc = seed->alloc;
    outcome.lambdas = seed->lambdas;
    outcome.equilibrium = std::move(seed);
    return outcome;
}

} // namespace rebudget::core
