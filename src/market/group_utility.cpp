#include "rebudget/market/group_utility.h"

#include "rebudget/util/logging.h"

namespace rebudget::market {

SharedGroupUtility::SharedGroupUtility(const UtilityModel &member,
                                       size_t threads)
    : member_(member), threads_(threads)
{
    if (threads == 0) {
        // Degrade to a single-thread group; setupStatus() records why.
        threads_ = 1;
        status_ = util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "SharedGroupUtility requires at least one thread");
    }
}

size_t
SharedGroupUtility::numResources() const
{
    return member_.numResources();
}

std::vector<double>
SharedGroupUtility::split(std::span<const double> alloc) const
{
    std::vector<double> share(alloc.begin(), alloc.end());
    for (auto &s : share)
        s /= static_cast<double>(threads_);
    return share;
}

double
SharedGroupUtility::utility(std::span<const double> alloc) const
{
    return member_.utility(split(alloc));
}

double
SharedGroupUtility::marginal(size_t resource,
                             std::span<const double> alloc) const
{
    return member_.marginal(resource, split(alloc)) /
           static_cast<double>(threads_);
}

void
SharedGroupUtility::gradient(std::span<const double> alloc,
                             std::span<double> out) const
{
    member_.gradient(split(alloc), out);
    for (auto &g : out)
        g /= static_cast<double>(threads_);
}

std::string
SharedGroupUtility::name() const
{
    return member_.name() + "x" + std::to_string(threads_);
}

} // namespace rebudget::market
