#include "rebudget/market/utility_model.h"

#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::market {

double
UtilityModel::marginal(size_t resource, std::span<const double> alloc) const
{
    REBUDGET_ASSERT(resource < numResources(), "resource out of range");
    std::vector<double> bumped(alloc.begin(), alloc.end());
    bumped[resource] += kFiniteDiffStep;
    return (utility(bumped) - utility(alloc)) / kFiniteDiffStep;
}

void
UtilityModel::gradient(std::span<const double> alloc,
                       std::span<double> out) const
{
    REBUDGET_ASSERT(out.size() == numResources(),
                    "gradient output arity mismatch");
    for (size_t j = 0; j < out.size(); ++j)
        out[j] = marginal(j, alloc);
}

namespace {

/** Validate power-law parameters; Ok when the model is well-formed. */
util::SolveStatus
validatePowerLaw(const std::vector<double> &weights,
                 const std::vector<double> &exponents,
                 const std::vector<double> &capacities)
{
    using util::SolveStatus;
    using util::StatusCode;
    if (weights.empty() || weights.size() != exponents.size() ||
        weights.size() != capacities.size()) {
        return SolveStatus::error(
            StatusCode::InvalidArgument,
            "PowerLawUtility: mismatched parameter vectors "
            "(%zu weights, %zu exponents, %zu capacities)",
            weights.size(), exponents.size(), capacities.size());
    }
    double wsum = 0.0;
    for (size_t j = 0; j < weights.size(); ++j) {
        if (weights[j] < 0.0) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "PowerLawUtility weights must be non-negative (got %g)",
                weights[j]);
        }
        if (exponents[j] <= 0.0 || exponents[j] > 1.0) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "PowerLawUtility exponents must be in (0, 1] (got %g)",
                exponents[j]);
        }
        if (capacities[j] <= 0.0) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "PowerLawUtility capacities must be positive (got %g)",
                capacities[j]);
        }
        wsum += weights[j];
    }
    if (wsum <= 0.0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "PowerLawUtility requires a positive "
                                  "weight sum");
    }
    return SolveStatus();
}

} // namespace

PowerLawUtility::PowerLawUtility(std::vector<double> weights,
                                 std::vector<double> exponents,
                                 std::vector<double> capacities)
    : weights_(std::move(weights)), exponents_(std::move(exponents)),
      capacities_(std::move(capacities)),
      status_(validatePowerLaw(weights_, exponents_, capacities_))
{
    if (!status_.ok()) {
        // Degrade to a harmless single-resource model so the object is
        // safe to call; consumers check setupStatus() before trusting it.
        weights_ = {1.0};
        exponents_ = {1.0};
        capacities_ = {1.0};
        return;
    }
    double wsum = 0.0;
    for (double w : weights_)
        wsum += w;
    for (auto &w : weights_)
        w /= wsum;
}

double
PowerLawUtility::utility(std::span<const double> alloc) const
{
    REBUDGET_ASSERT(alloc.size() == weights_.size(),
                    "allocation arity mismatch");
    double u = 0.0;
    for (size_t j = 0; j < weights_.size(); ++j) {
        const double x = std::max(0.0, alloc[j]) / capacities_[j];
        u += weights_[j] * std::pow(x, exponents_[j]);
    }
    return u;
}

double
PowerLawUtility::marginal(size_t resource,
                          std::span<const double> alloc) const
{
    REBUDGET_ASSERT(resource < weights_.size(), "resource out of range");
    REBUDGET_ASSERT(alloc.size() == weights_.size(),
                    "allocation arity mismatch");
    const double c = capacities_[resource];
    const double e = exponents_[resource];
    const double x = std::max(1e-12, alloc[resource] / c);
    return weights_[resource] * e * std::pow(x, e - 1.0) / c;
}

void
PowerLawUtility::gradient(std::span<const double> alloc,
                          std::span<double> out) const
{
    REBUDGET_ASSERT(alloc.size() == weights_.size(),
                    "allocation arity mismatch");
    REBUDGET_ASSERT(out.size() == weights_.size(),
                    "gradient output arity mismatch");
    // The per-resource terms are separable, so the combined pass is the
    // same expression as marginal() without the per-call dispatch.
    for (size_t j = 0; j < weights_.size(); ++j) {
        const double c = capacities_[j];
        const double e = exponents_[j];
        const double x = std::max(1e-12, alloc[j] / c);
        out[j] = weights_[j] * e * std::pow(x, e - 1.0) / c;
    }
}

} // namespace rebudget::market
