#include "rebudget/market/utility_model.h"

#include <cmath>

#include "rebudget/util/logging.h"

#if defined(__SSE2__) && defined(__GLIBC__)
#include <emmintrin.h>
// glibc's vector math library (libmvec, linked via libm's AS_NEEDED
// script).  Calling the SSE2 2-lane variant by its mangled name pins
// ONE implementation -- no ISA dispatch -- so results are stable on a
// given glibc regardless of host vector width.  Max error is 4 ulp by
// glibc's contract (measured 1 ulp over the market's operating range),
// well inside gradientFast()'s ~1e-12 agreement budget.
extern "C" __m128d _ZGVbN2vv_pow(__m128d x, __m128d y);
#define REBUDGET_HAVE_MVEC_POW 1
#endif

namespace rebudget::market {

double
UtilityModel::marginal(size_t resource, std::span<const double> alloc) const
{
    REBUDGET_ASSERT(resource < numResources(), "resource out of range");
    std::vector<double> bumped(alloc.begin(), alloc.end());
    bumped[resource] += kFiniteDiffStep;
    return (utility(bumped) - utility(alloc)) / kFiniteDiffStep;
}

void
UtilityModel::gradient(std::span<const double> alloc,
                       std::span<double> out) const
{
    REBUDGET_ASSERT(out.size() == numResources(),
                    "gradient output arity mismatch");
    for (size_t j = 0; j < out.size(); ++j)
        out[j] = marginal(j, alloc);
}

namespace {

/** Validate power-law parameters; Ok when the model is well-formed. */
util::SolveStatus
validatePowerLaw(const std::vector<double> &weights,
                 const std::vector<double> &exponents,
                 const std::vector<double> &capacities)
{
    using util::SolveStatus;
    using util::StatusCode;
    if (weights.empty() || weights.size() != exponents.size() ||
        weights.size() != capacities.size()) {
        return SolveStatus::error(
            StatusCode::InvalidArgument,
            "PowerLawUtility: mismatched parameter vectors "
            "(%zu weights, %zu exponents, %zu capacities)",
            weights.size(), exponents.size(), capacities.size());
    }
    double wsum = 0.0;
    for (size_t j = 0; j < weights.size(); ++j) {
        if (weights[j] < 0.0) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "PowerLawUtility weights must be non-negative (got %g)",
                weights[j]);
        }
        if (exponents[j] <= 0.0 || exponents[j] > 1.0) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "PowerLawUtility exponents must be in (0, 1] (got %g)",
                exponents[j]);
        }
        if (capacities[j] <= 0.0) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "PowerLawUtility capacities must be positive (got %g)",
                capacities[j]);
        }
        wsum += weights[j];
    }
    if (wsum <= 0.0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "PowerLawUtility requires a positive "
                                  "weight sum");
    }
    return SolveStatus();
}

} // namespace

PowerLawUtility::PowerLawUtility(std::vector<double> weights,
                                 std::vector<double> exponents,
                                 std::vector<double> capacities)
    : weights_(std::move(weights)), exponents_(std::move(exponents)),
      capacities_(std::move(capacities)),
      status_(validatePowerLaw(weights_, exponents_, capacities_))
{
    if (!status_.ok()) {
        // Degrade to a harmless single-resource model so the object is
        // safe to call; consumers check setupStatus() before trusting it.
        weights_ = {1.0};
        exponents_ = {1.0};
        capacities_ = {1.0};
    } else {
        double wsum = 0.0;
        for (double w : weights_)
            wsum += w;
        for (auto &w : weights_)
            w /= wsum;
    }
    hot_.resize(4 * weights_.size());
    for (size_t j = 0; j < weights_.size(); ++j) {
        hot_[4 * j + 0] = capacities_[j];
        hot_[4 * j + 1] = weights_[j] * exponents_[j];
        hot_[4 * j + 2] = exponents_[j] - 1.0;
        hot_[4 * j + 3] = 1.0 / capacities_[j];
    }
}

double
PowerLawUtility::utility(std::span<const double> alloc) const
{
    REBUDGET_ASSERT(alloc.size() == weights_.size(),
                    "allocation arity mismatch");
    double u = 0.0;
    for (size_t j = 0; j < weights_.size(); ++j) {
        const double x = std::max(0.0, alloc[j]) / capacities_[j];
        u += weights_[j] * std::pow(x, exponents_[j]);
    }
    return u;
}

double
PowerLawUtility::marginal(size_t resource,
                          std::span<const double> alloc) const
{
    REBUDGET_ASSERT(resource < weights_.size(), "resource out of range");
    REBUDGET_ASSERT(alloc.size() == weights_.size(),
                    "allocation arity mismatch");
    const double c = capacities_[resource];
    const double e = exponents_[resource];
    const double x = std::max(1e-12, alloc[resource] / c);
    return weights_[resource] * e * std::pow(x, e - 1.0) / c;
}

void
PowerLawUtility::gradient(std::span<const double> alloc,
                          std::span<double> out) const
{
    REBUDGET_ASSERT(alloc.size() == weights_.size(),
                    "allocation arity mismatch");
    REBUDGET_ASSERT(out.size() == weights_.size(),
                    "gradient output arity mismatch");
    // The per-resource terms are separable, so the combined pass is the
    // same expression as marginal() without the per-call dispatch: the
    // hot_ triplets carry [c, w*e, e-1] folded at construction, and
    // (coeff * pow) / c preserves marginal()'s association order, so
    // the two entry points agree exactly.
    const size_t m = weights_.size();
    const double *h = hot_.data();
    for (size_t j = 0; j < m; ++j, h += 4) {
        const double c = h[0];
        const double x = std::max(1e-12, alloc[j] / c);
        out[j] = h[1] * std::pow(x, h[2]) / c;
    }
}

void
PowerLawUtility::gradientFast(std::span<const double> alloc,
                              std::span<double> out) const
{
    REBUDGET_ASSERT(alloc.size() == weights_.size(),
                    "allocation arity mismatch");
    REBUDGET_ASSERT(out.size() == weights_.size(),
                    "gradient output arity mismatch");
    // Same expression as gradient() with the two per-resource divides
    // replaced by the precomputed reciprocal: a few ulps apart, half
    // the divider-port pressure.  Only the best-response reply calls
    // this, so the hill climber's pinned bit-identity is untouched.
    const size_t m = weights_.size();
    const double *h = hot_.data();
#if REBUDGET_HAVE_MVEC_POW
    if (m == 2) {
        // Both pow evaluations ride one 2-lane libmvec call: ~23ns for
        // the pair against ~32ns for two scalar std::pow on the
        // machines this was tuned on -- the reply's single biggest
        // cost at 10k-100k players.
        const double inv0 = h[3], inv1 = h[7];
        const double x0 = std::max(1e-12, alloc[0] * inv0);
        const double x1 = std::max(1e-12, alloc[1] * inv1);
        double pr[2];
        _mm_storeu_pd(pr, _ZGVbN2vv_pow(_mm_setr_pd(x0, x1),
                                        _mm_setr_pd(h[2], h[6])));
        out[0] = h[1] * pr[0] * inv0;
        out[1] = h[5] * pr[1] * inv1;
        return;
    }
#endif
    for (size_t j = 0; j < m; ++j, h += 4) {
        const double inv_c = h[3];
        const double x = std::max(1e-12, alloc[j] * inv_c);
        out[j] = h[1] * std::pow(x, h[2]) * inv_c;
    }
}

} // namespace rebudget::market
