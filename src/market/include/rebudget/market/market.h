#ifndef REBUDGET_MARKET_MARKET_H_
#define REBUDGET_MARKET_MARKET_H_

/**
 * @file
 * Proportional-share market and equilibrium finding (paper Section 2).
 *
 * The market collects bids b_ij from all players, prices each resource
 * p_j = sum_i b_ij / C_j (Equation 1) and allocates proportionally:
 * r_ij = b_ij / p_j.  Equilibrium is found with the iterative
 * bidding-pricing procedure of Section 2.1: broadcast prices, let each
 * player re-optimize its bids (see bidding.h), repeat until prices
 * fluctuate by less than 1%, with a 30-iteration fail-safe (Section 6.4).
 *
 * Memory discipline: bid and allocation matrices are flat row-major
 * util::Matrix buffers, and the solver exposes an Into-style API
 * (findEquilibriumInto / rescaleEquilibriumInto) writing into a
 * caller-owned EquilibriumResult with scratch supplied via
 * SolveWorkspace.  Repeated solves at a fixed market shape reuse every
 * buffer, so steady-state solving performs zero heap allocations (the
 * contract bench/perf_equilibrium's allocation audit enforces; see
 * DESIGN.md "Solver memory layout").  Prices are maintained as
 * incrementally-updated per-resource bid column sums -- O(1) per bid
 * shift instead of O(n*m) per sweep -- with a full-recompute
 * cross-check available behind MarketConfig::validatePriceSums.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rebudget/market/bidding.h"
#include "rebudget/market/utility_model.h"
#include "rebudget/util/matrix.h"
#include "rebudget/util/status.h"

namespace rebudget::market {

/** Market tuning (paper defaults). */
struct MarketConfig
{
    /** Relative price-fluctuation threshold for convergence. */
    double priceTol = 0.01;
    /** Fail-safe iteration cap (paper Section 6.4 uses 30). */
    int maxIterations = 30;
    /**
     * Honor warm-start hints: findEquilibrium(budgets, prior) seeds the
     * solve from the prior equilibrium and multi-round consumers
     * (ReBudget's budget rounds, the epoch simulator) chain solves.
     * When false every solve cold-starts from the equal split, which is
     * the A/B baseline for the incremental engine (rebudget_cli
     * --warm-start off, bench/perf_equilibrium).
     */
    bool warmStart = true;
    /**
     * Record a price snapshot after every bidding-pricing round into
     * EquilibriumResult::priceHistory.  Off by default: sweep workloads
     * solve hundreds of thousands of equilibria and never read the
     * trajectories, so the per-round snapshot allocations are pure
     * overhead.  Convergence/trajectory consumers opt in.
     */
    bool recordPriceHistory = false;
    /**
     * Debug cross-check for the incremental price engine: after every
     * sweep, recompute the per-resource bid column sums from scratch and
     * REBUDGET_ASSERT that they agree with the incrementally maintained
     * sums within FP noise (1e-9 relative).  Costs the O(n*m) recompute
     * the incremental engine exists to avoid, so it is off by default
     * and enabled by the solver test-suite and ad-hoc debugging only.
     */
    bool validatePriceSums = false;
    /**
     * Replace the hill-climb bid update with the closed-form
     * price-anticipating best response (see bestResponseBidsInto in
     * bidding.h): each player answers the sweep's current competing
     * bids with the exact optimizer of its linearized utility instead
     * of shift-halving toward it.  Off by default -- the default path
     * must stay bit-identical to the reference hill-climb solver
     * (tests/market/reference_solver_test, BENCH_market.json).  The
     * two modes converge to the same equilibrium within the market's
     * price-tolerance class (tests/market/best_response_test); the
     * best response gets there with one gradient call per player per
     * sweep, which is what makes the 10k-100k player regime tractable
     * (bench/perf_equilibrium --scaling).
     */
    bool bestResponse = false;
    /**
     * Best-response step blend in (0, 1]: 1.0 takes the full reply.
     * Lightly damped replies oscillate (period-2 price flips: players
     * over-correct against stale prices, exactly the instability
     * Feldman et al. describe for synchronous best-response dynamics;
     * the block-Jacobi sweep makes 1/16 of the market reply
     * simultaneously, see findEquilibriumInto).  The default quarter
     * step converges on every roster probed from 8 to 100k players --
     * including small heterogeneous rosters where 0.4+ never settles
     * -- at one to two sweeps per warm solve.
     */
    double bestResponseDamping = 0.25;
    /** Player bid-optimizer tuning. */
    BidOptimizerConfig bid;
};

/** Outcome of an equilibrium computation. */
struct EquilibriumResult
{
    /**
     * Ok, or why the solve could not run at all (bad market setup, bad
     * budgets).  On error the result carries no allocation; callers
     * must check before consuming any other field.  Non-convergence is
     * NOT an error: a fail-safe solve returns Ok with converged=false.
     */
    util::SolveStatus status;
    /** Final bids, [player][resource] (flat row-major). */
    util::Matrix<double> bids;
    /** Final allocation, [player][resource]; columns sum to capacity. */
    util::Matrix<double> alloc;
    /** Final prices per resource. */
    std::vector<double> prices;
    /** Final lambda_i (marginal utility of money) per player. */
    std::vector<double> lambdas;
    /** Budgets the equilibrium was computed with. */
    std::vector<double> budgets;
    /** Bidding-pricing rounds executed. */
    int iterations = 0;
    /**
     * False if the iteration fail-safe triggered.  On an approximated
     * (rescaled) result this is inherited from the prior real solve,
     * not a statement about this round; see `approximated`.
     */
    bool converged = false;
    /** True if this solve was seeded from a prior equilibrium. */
    bool warmStarted = false;
    /**
     * True when this result came from rescaleEquilibrium: a zero-sweep
     * approximation, never a converged equilibrium of its own.
     * Consumers that track convergence or exclude elided rounds (e.g.
     * ReBudget's budgetHistory) must key off this flag.
     */
    bool approximated = false;
    /** Bid hill-climb steps summed over all players and rounds. */
    std::int64_t hillClimbSteps = 0;
    /** Wall-clock seconds spent inside the solve. */
    double solveSeconds = 0.0;
    /**
     * Price snapshot after every bidding-pricing round (size equals
     * iterations; the last entry equals prices).  Used by the
     * convergence analysis and for plotting price trajectories.
     * Only populated when MarketConfig::recordPriceHistory is set;
     * empty otherwise.
     */
    std::vector<std::vector<double>> priceHistory;
};

/**
 * Reusable scratch buffers for the equilibrium solver.  A caller that
 * holds one SolveWorkspace (and one EquilibriumResult per chain slot)
 * across repeated solves of a fixed-shape market performs zero heap
 * allocations per solve after the first: every vector here and every
 * buffer inside the result is resized once and reused.
 *
 * Not thread-safe: concurrent solves need one workspace each (the
 * parallel eval sweeps hold one per worker task).  A workspace carries
 * no market state between solves -- any workspace works with any
 * market; buffers are reshaped on entry.
 */
struct SolveWorkspace
{
    /** Incrementally maintained per-resource bid column sums. */
    std::vector<double> colSums;
    /** Previous sweep's prices (convergence reference). */
    std::vector<double> prices;
    /** Current sweep's prices. */
    std::vector<double> newPrices;
    /** y_j: competing bids seen by the player being optimized. */
    std::vector<double> others;
    /** Next sweep's column sums, accumulated by the Jacobi
     * best-response sweep (see findEquilibriumInto). */
    std::vector<double> nextSums;
    /** Predicted allocation scratch (rescale path). */
    std::vector<double> pred;
    /** Utility gradient scratch (rescale path). */
    std::vector<double> grad;
    /** Per-player bid optimization result, reused across players. */
    BidResult bid;
    /** Hill-climber scratch, reused across players and rounds. */
    BidScratch scratch;
};

/** Proportional-share market over a fixed set of players and resources. */
class ProportionalMarket
{
  public:
    /**
     * @param models      one utility model per player (non-owning; must
     *                    outlive the market); all must have the same
     *                    number of resources
     * @param capacities  C_j per resource (> 0)
     * @param config      market tuning
     *
     * A malformed setup (empty players/resources, null model, arity
     * mismatch, non-positive capacity or maxIterations) does not throw:
     * it is recorded in setupStatus() and every subsequent solve
     * returns that status without running.
     */
    ProportionalMarket(std::vector<const UtilityModel *> models,
                       std::vector<double> capacities,
                       const MarketConfig &config = {});

    /** Ok, or why this market cannot solve (see the constructor). */
    const util::SolveStatus &setupStatus() const { return status_; }

    /**
     * Run the iterative bidding-pricing procedure to (approximate)
     * equilibrium under the given budgets.
     *
     * Re-entrant: all solver scratch state is local to the call, so one
     * market instance may run concurrent solves on distinct budget
     * vectors (and distinct markets are fully independent).  The eval
     * layer's parallel sweeps depend on this.
     *
     * Convenience wrapper over findEquilibriumInto with a call-local
     * workspace; multi-solve callers should hold a SolveWorkspace and
     * use the Into form to stay allocation-free.
     *
     * @param budgets  B_i per player (>= 0; values within FP noise of
     *                 zero are clamped to 0, genuinely negative budgets
     *                 yield an InvalidArgument status)
     */
    EquilibriumResult findEquilibrium(
        const std::vector<double> &budgets) const;

    /**
     * As above, warm-started from a prior equilibrium of this market
     * (or one of identical shape).
     *
     * Each player's bids are seeded from its prior bids scaled by its
     * budget ratio B_i / B_i^prior (renormalized so they sum exactly to
     * B_i) instead of the equal split, and every bidding round seeds
     * the player's hill climb from its current bids.  Because the seed
     * is a per-player function of that player's own prior bids and
     * budget, the distributed bidding semantics of Section 2.1 are
     * preserved; only the starting point of the fixed-point iteration
     * changes, so the converged equilibrium agrees with a cold solve
     * within the price tolerance.
     *
     * The hint is ignored (cold start) when `prior` is null, when
     * MarketConfig::warmStart is off, or when the prior's shape does
     * not match this market (wrong player/resource count, e.g. a seed
     * produced by a different machine configuration).
     *
     * Re-entrant like the cold overload; `prior` is only read.
     */
    EquilibriumResult findEquilibrium(
        const std::vector<double> &budgets,
        const EquilibriumResult *prior) const;

    /**
     * Allocation-free core of findEquilibrium: solve into a
     * caller-owned result, with scratch buffers supplied by the caller.
     * Semantics are identical to findEquilibrium(budgets, prior) --
     * same convergence behavior, bit-identical numbers.
     *
     * `result` must not alias `prior` (asserted): chained consumers
     * keep two result slots and ping-pong between them (see
     * ReBudgetAllocator).  Every field of `result` is reset; buffers
     * keep their capacity, which is what makes repeated same-shape
     * solves allocation-free.
     *
     * Re-entrant provided each concurrent call uses its own `ws` and
     * `result`.
     */
    void findEquilibriumInto(const std::vector<double> &budgets,
                             const EquilibriumResult *prior,
                             SolveWorkspace &ws,
                             EquilibriumResult &result) const;

    /**
     * Cheap approximate equilibrium for a small budget perturbation:
     * the prior bids are rescaled row-wise to the new budgets (the same
     * seeding rule the warm solve uses) and prices, allocations and
     * every player's lambda_i are re-evaluated at that point -- one
     * utility-gradient call per player, no bidding-pricing sweeps
     * (EquilibriumResult::iterations is 0).
     *
     * The result is NOT a converged equilibrium; it inherits the
     * prior's error plus the (second-order) response the other players
     * would have made to the perturbation.  Multi-round consumers use
     * it to elide full solves for budget deltas below the solver's own
     * price tolerance (e.g. ReBudget's sub-tolerance cut rounds, where
     * only the lambda ordering is consumed) and must finish with a real
     * findEquilibrium before publishing an allocation.
     *
     * The prior must match this market's shape; re-entrant like
     * findEquilibrium.
     */
    EquilibriumResult rescaleEquilibrium(
        const EquilibriumResult &prior,
        const std::vector<double> &budgets) const;

    /**
     * Allocation-free core of rescaleEquilibrium (same result-reuse and
     * no-aliasing contract as findEquilibriumInto).
     */
    void rescaleEquilibriumInto(const EquilibriumResult &prior,
                                const std::vector<double> &budgets,
                                SolveWorkspace &ws,
                                EquilibriumResult &result) const;

    /** @return the number of players N. */
    size_t numPlayers() const { return models_.size(); }

    /** @return the number of resources M. */
    size_t numResources() const { return capacities_.size(); }

    /** @return resource capacities. */
    const std::vector<double> &capacities() const { return capacities_; }

    /** @return the players' utility models. */
    const std::vector<const UtilityModel *> &models() const
    {
        return models_;
    }

    /** @return the market tuning. */
    const MarketConfig &config() const { return config_; }

  private:
    std::vector<const UtilityModel *> models_;
    std::vector<double> capacities_;
    MarketConfig config_;
    util::SolveStatus status_;
    /**
     * Per-player UtilityModel::hotQuads() pointers, cached at
     * construction so the best-response sweep's eligibility test for
     * the fused SIMD kernel (best_response_kernel.h) is one pointer
     * load instead of a virtual call per player per sweep.  nullptr
     * entries fall back to the virtual gradientFast() reply.
     */
    std::vector<const double *> hotQuads_;
};

/**
 * Migrate a warm-start seed across a roster change.
 *
 * `prior_index` gives, for each player of the NEW dense order, the
 * dense index that player held in the market `prior` was solved on, or
 * -1 for a newcomer (core::Roster::mapFrom computes exactly this; the
 * market layer deliberately takes the dense mapping, not identities,
 * to stay below core in the layering).  The migrated seed has the new
 * player count: surviving players carry over their prior bid row,
 * allocation row, budget and lambda, so the next
 * findEquilibrium(budgets, &seed) warm-starts them exactly as if the
 * roster had never changed (the per-row budget-ratio seeding rule does
 * the rescale); newcomers get a zero bid row and a zero budget, which
 * the solver treats as "no usable prior row" and cold-seeds with the
 * equal split.  Prices carry over verbatim -- the surviving bids imply
 * nearly the same price point, which is the whole value of migrating.
 *
 * Allocation-only seeds (bids empty, published by MaxEfficiency/EP)
 * migrate their allocation rows the same way and keep bids empty.
 *
 * The seed is marked `approximated` (it is not an equilibrium of the
 * new market) and inherits the prior's `converged` flag.  A failed or
 * shape-inconsistent prior yields a seed whose status says why; the
 * caller falls back to a cold start.
 *
 * @param prior          equilibrium of the market before the change
 * @param prior_index    prior dense index per new player, -1 = newcomer
 * @param num_resources  resource count (must match the prior's)
 * @param seed           output (must not alias `prior`; reset like
 *                       findEquilibriumInto, buffers reused)
 * @return the number of surviving players whose state was migrated
 */
size_t migrateEquilibriumInto(const EquilibriumResult &prior,
                              const std::vector<std::ptrdiff_t> &prior_index,
                              size_t num_resources,
                              EquilibriumResult &seed);

/** Allocating convenience wrapper over migrateEquilibriumInto. */
EquilibriumResult migrateEquilibrium(
    const EquilibriumResult &prior,
    const std::vector<std::ptrdiff_t> &prior_index,
    size_t num_resources);

/**
 * @return prices p_j = sum_i b_ij / C_j for a bid matrix (Equation 1).
 * An empty bid matrix prices every resource at zero; a column count that
 * does not match `capacities` violates the caller contract (asserts).
 */
std::vector<double> computePrices(
    const util::Matrix<double> &bids,
    const std::vector<double> &capacities);

/**
 * @return the proportional allocation r_ij = b_ij / p_j; resources with
 * zero price (no bids) are left unallocated.
 */
util::Matrix<double> proportionalAllocation(
    const util::Matrix<double> &bids,
    const std::vector<double> &capacities);

/**
 * @return true if every resource has at least two players with positive
 * bids (Zhang's strong competitiveness condition, Lemma 1).
 */
bool stronglyCompetitive(const util::Matrix<double> &bids);

} // namespace rebudget::market

#endif // REBUDGET_MARKET_MARKET_H_
