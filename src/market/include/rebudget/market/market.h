#ifndef REBUDGET_MARKET_MARKET_H_
#define REBUDGET_MARKET_MARKET_H_

/**
 * @file
 * Proportional-share market and equilibrium finding (paper Section 2).
 *
 * The market collects bids b_ij from all players, prices each resource
 * p_j = sum_i b_ij / C_j (Equation 1) and allocates proportionally:
 * r_ij = b_ij / p_j.  Equilibrium is found with the iterative
 * bidding-pricing procedure of Section 2.1: broadcast prices, let each
 * player re-optimize its bids (see bidding.h), repeat until prices
 * fluctuate by less than 1%, with a 30-iteration fail-safe (Section 6.4).
 */

#include <cstdint>
#include <vector>

#include "rebudget/market/bidding.h"
#include "rebudget/market/utility_model.h"

namespace rebudget::market {

/** Market tuning (paper defaults). */
struct MarketConfig
{
    /** Relative price-fluctuation threshold for convergence. */
    double priceTol = 0.01;
    /** Fail-safe iteration cap (paper Section 6.4 uses 30). */
    int maxIterations = 30;
    /**
     * Record a price snapshot after every bidding-pricing round into
     * EquilibriumResult::priceHistory.  Off by default: sweep workloads
     * solve hundreds of thousands of equilibria and never read the
     * trajectories, so the per-round snapshot allocations are pure
     * overhead.  Convergence/trajectory consumers opt in.
     */
    bool recordPriceHistory = false;
    /** Player bid-optimizer tuning. */
    BidOptimizerConfig bid;
};

/** Outcome of an equilibrium computation. */
struct EquilibriumResult
{
    /** Final bids, [player][resource]. */
    std::vector<std::vector<double>> bids;
    /** Final allocation, [player][resource]; columns sum to capacity. */
    std::vector<std::vector<double>> alloc;
    /** Final prices per resource. */
    std::vector<double> prices;
    /** Final lambda_i (marginal utility of money) per player. */
    std::vector<double> lambdas;
    /** Budgets the equilibrium was computed with. */
    std::vector<double> budgets;
    /** Bidding-pricing rounds executed. */
    int iterations = 0;
    /** False if the 30-iteration fail-safe triggered. */
    bool converged = false;
    /**
     * Price snapshot after every bidding-pricing round (size equals
     * iterations; the last entry equals prices).  Used by the
     * convergence analysis and for plotting price trajectories.
     * Only populated when MarketConfig::recordPriceHistory is set;
     * empty otherwise.
     */
    std::vector<std::vector<double>> priceHistory;
};

/** Proportional-share market over a fixed set of players and resources. */
class ProportionalMarket
{
  public:
    /**
     * @param models      one utility model per player (non-owning; must
     *                    outlive the market); all must have the same
     *                    number of resources
     * @param capacities  C_j per resource (> 0)
     * @param config      market tuning
     */
    ProportionalMarket(std::vector<const UtilityModel *> models,
                       std::vector<double> capacities,
                       const MarketConfig &config = {});

    /**
     * Run the iterative bidding-pricing procedure to (approximate)
     * equilibrium under the given budgets.
     *
     * Re-entrant: all solver scratch state is local to the call, so one
     * market instance may run concurrent solves on distinct budget
     * vectors (and distinct markets are fully independent).  The eval
     * layer's parallel sweeps depend on this.
     *
     * @param budgets  B_i per player (>= 0)
     */
    EquilibriumResult findEquilibrium(
        const std::vector<double> &budgets) const;

    /** @return the number of players N. */
    size_t numPlayers() const { return models_.size(); }

    /** @return the number of resources M. */
    size_t numResources() const { return capacities_.size(); }

    /** @return resource capacities. */
    const std::vector<double> &capacities() const { return capacities_; }

    /** @return the players' utility models. */
    const std::vector<const UtilityModel *> &models() const
    {
        return models_;
    }

    /** @return the market tuning. */
    const MarketConfig &config() const { return config_; }

  private:
    std::vector<const UtilityModel *> models_;
    std::vector<double> capacities_;
    MarketConfig config_;
};

/**
 * @return prices p_j = sum_i b_ij / C_j for a bid matrix (Equation 1).
 */
std::vector<double> computePrices(
    const std::vector<std::vector<double>> &bids,
    const std::vector<double> &capacities);

/**
 * @return the proportional allocation r_ij = b_ij / p_j; resources with
 * zero price (no bids) are left unallocated.
 */
std::vector<std::vector<double>> proportionalAllocation(
    const std::vector<std::vector<double>> &bids,
    const std::vector<double> &capacities);

/**
 * @return true if every resource has at least two players with positive
 * bids (Zhang's strong competitiveness condition, Lemma 1).
 */
bool stronglyCompetitive(const std::vector<std::vector<double>> &bids);

} // namespace rebudget::market

#endif // REBUDGET_MARKET_MARKET_H_
