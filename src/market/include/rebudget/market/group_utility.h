#ifndef REBUDGET_MARKET_GROUP_UTILITY_H_
#define REBUDGET_MARKET_GROUP_UTILITY_H_

/**
 * @file
 * Thread-group (application-granularity) utility.
 *
 * The paper's Section 5 discusses two granularities for multithreaded
 * workloads: per-thread players, or one player per application whose
 * threads share the purchased resources.  SharedGroupUtility implements
 * the latter: a group of k identical threads appears in the market as
 * one player; a group allocation a is divided evenly among the threads
 * (each runs with a/k), and the group's utility is the per-thread
 * utility at that share -- the application's normalized speedup, since
 * data-parallel threads progress together.
 *
 * The practical consequence (bench/ext_thread_groups): at thread
 * granularity an application multiplies its market power by spawning
 * threads (k budgets); at application granularity every application has
 * one budget regardless of thread count, which is the fair multi-tenant
 * semantics.
 */

#include "rebudget/market/utility_model.h"

namespace rebudget::market {

/** One market player standing for k identical threads. */
class SharedGroupUtility : public UtilityModel
{
  public:
    /**
     * @param member   per-thread utility (non-owning; must outlive this)
     * @param threads  group size k (>= 1).  A zero group size degrades
     *                 to k = 1 with the rejection in setupStatus().
     */
    SharedGroupUtility(const UtilityModel &member, size_t threads);

    /** Ok, or why the group size was rejected. */
    const util::SolveStatus &setupStatus() const { return status_; }

    size_t numResources() const override;

    /** Group utility: per-thread utility at the even split alloc/k. */
    double utility(std::span<const double> alloc) const override;

    /** Chain rule: (1/k) * member marginal at the split. */
    double marginal(size_t resource,
                    std::span<const double> alloc) const override;

    /** Member gradient at the split, scaled by 1/k (one split only). */
    void gradient(std::span<const double> alloc,
                  std::span<double> out) const override;

    std::string name() const override;

    /** @return the group size k. */
    size_t threads() const { return threads_; }

    /** @return the member (per-thread) utility. */
    const UtilityModel &member() const { return member_; }

  private:
    std::vector<double> split(std::span<const double> alloc) const;

    const UtilityModel &member_;
    size_t threads_;
    util::SolveStatus status_;
};

} // namespace rebudget::market

#endif // REBUDGET_MARKET_GROUP_UTILITY_H_
