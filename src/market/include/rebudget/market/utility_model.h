#ifndef REBUDGET_MARKET_UTILITY_MODEL_H_
#define REBUDGET_MARKET_UTILITY_MODEL_H_

/**
 * @file
 * Player utility interface (paper Section 2).
 *
 * A utility model maps an allocation vector r = (r_1, ..., r_M) over the
 * market's M resources to a scalar utility.  The theory requires
 * utilities to be concave, non-decreasing, and continuous; in the CMP
 * instantiation utilities are IPC normalized to the run-alone IPC
 * (Section 4.1.1), hence in [0, 1], and cache utilities are convexified
 * via Talus to meet the concavity requirement.
 */

#include <span>
#include <string>
#include <vector>

#include "rebudget/util/status.h"

namespace rebudget::market {

/**
 * Abstract concave utility over an M-resource allocation.
 *
 * Implementations must be immutable after construction (const methods
 * with no mutable caches): markets and allocators evaluate them
 * concurrently from parallel eval sweeps.
 */
class UtilityModel
{
  public:
    virtual ~UtilityModel() = default;

    /** @return the number of resources M this utility is defined over. */
    virtual size_t numResources() const = 0;

    /**
     * @return utility at the given allocation (one entry per resource,
     * in resource units).
     */
    virtual double utility(std::span<const double> alloc) const = 0;

    /**
     * @return the marginal utility dU/dr_j at the given allocation
     * (right-hand derivative).  The default implementation uses a
     * forward finite difference; concrete models may override with an
     * analytic slope.
     *
     * @param resource  index j of the resource
     * @param alloc     allocation at which to evaluate
     */
    virtual double marginal(size_t resource,
                            std::span<const double> alloc) const;

    /**
     * Compute every marginal dU/dr_j at once into `out` (size M).
     *
     * Semantically identical to calling marginal() for each resource;
     * the contract is exact agreement, so callers may use either
     * interchangeably.  The default implementation loops over
     * marginal().  Models whose per-resource marginals share work (the
     * bilinear AppUtilityModel locates the grid cell once for both
     * axes) override this as the bid optimizer's fast path: the hill
     * climber evaluates the full gradient every step.
     */
    virtual void gradient(std::span<const double> alloc,
                          std::span<double> out) const;

    /**
     * Gradient for approximation-tolerant hot paths (the
     * price-anticipating best-response reply, which re-linearizes
     * every sweep and tolerates a few ulps of slack in the slope).
     *
     * Contract: agrees with gradient() to ~1e-12 relative, but is NOT
     * required to match it bit for bit -- overrides may reorder FP
     * operations (reciprocal-multiply instead of divide) for speed.
     * Results must still be deterministic: the same (model, alloc)
     * always yields the same bytes, so eval stays byte-identical at
     * any job count.  The exact-agreement hill-climb path must keep
     * calling gradient(); its counters are pinned by the committed
     * benchmarks.  The default forwards to gradient().
     */
    virtual void gradientFast(std::span<const double> alloc,
                              std::span<double> out) const
    {
        gradient(alloc, out);
    }

    /**
     * Optional power-law hot-coefficient block enabling the market's
     * fused SIMD best-response kernel (best_response_kernel.h):
     * 4 doubles per resource, [c_j, w_j * e_j, e_j - 1, 1/c_j], such
     * that dU/dr_j = (w_j * e_j) * pow(max(1e-12, r_j / c_j), e_j - 1)
     * / c_j -- i.e. the model's gradientFast() is exactly this closed
     * form.  Models whose gradient does not have the form return
     * nullptr (the default) and the market falls back to the virtual
     * gradientFast() reply.  The pointer must stay valid and the
     * coefficients immutable for the model's lifetime.
     */
    virtual const double *hotQuads() const { return nullptr; }

    /** @return a human-readable name for diagnostics. */
    virtual std::string name() const { return "utility"; }

  protected:
    /** Step used by the finite-difference default marginal. */
    static constexpr double kFiniteDiffStep = 1e-4;
};

/**
 * Simple concrete model for tests and examples: a weighted sum of
 * per-resource concave power curves,
 *   U(r) = sum_j w_j * (r_j / c_j)^e_j  with 0 < e_j <= 1,
 * normalized so that U(c) = 1 at full capacity c.
 */
class PowerLawUtility : public UtilityModel
{
  public:
    /**
     * @param weights    per-resource weights (sum normalized internally)
     * @param exponents  per-resource exponents in (0, 1]
     * @param capacities per-resource normalization constants (> 0)
     *
     * Malformed parameters do not throw: the model degrades to a
     * harmless single-resource constant and setupStatus() records why.
     */
    PowerLawUtility(std::vector<double> weights,
                    std::vector<double> exponents,
                    std::vector<double> capacities);

    /** Ok, or why the parameters were rejected (see the constructor). */
    const util::SolveStatus &setupStatus() const { return status_; }

    size_t numResources() const override { return weights_.size(); }
    double utility(std::span<const double> alloc) const override;
    double marginal(size_t resource,
                    std::span<const double> alloc) const override;
    void gradient(std::span<const double> alloc,
                  std::span<double> out) const override;
    void gradientFast(std::span<const double> alloc,
                      std::span<double> out) const override;
    const double *hotQuads() const override { return hot_.data(); }
    std::string name() const override { return "power-law"; }

  private:
    std::vector<double> weights_;
    std::vector<double> exponents_;
    std::vector<double> capacities_;
    /**
     * Hot-path precomputation for gradient()/gradientFast():
     * interleaved per-resource quads [c_j, w_j * e_j, e_j - 1.0,
     * 1/c_j], folded once at construction so the per-call loop is one
     * contiguous pass (32 bytes per resource -- the sweep loop walks
     * thousands of scattered models, so locality matters).  gradient()
     * computes coeff * pow(x, em1) / c with x = alloc/c -- the
     * identical association order the inline expression had, hence
     * bit-identical results.  gradientFast() substitutes the
     * precomputed reciprocal (two multiplies instead of two divides
     * per resource), trading a few ulps for half the divider-port
     * pressure.
     */
    std::vector<double> hot_;
    util::SolveStatus status_;
};

} // namespace rebudget::market

#endif // REBUDGET_MARKET_UTILITY_MODEL_H_
