#ifndef REBUDGET_MARKET_BEST_RESPONSE_KERNEL_H_
#define REBUDGET_MARKET_BEST_RESPONSE_KERNEL_H_

/**
 * @file
 * Fused two-player best-response kernel (AVX2 + glibc libmvec).
 *
 * The block-Jacobi best-response sweep (see findEquilibriumInto) makes
 * every player inside a block reply to the SAME frozen column sums, so
 * consecutive players are fully independent -- which is exactly the
 * shape a lane-per-player SIMD kernel wants.  This kernel executes two
 * complete m == 2 replies (bestResponsePair in bidding.h) at once:
 * both players' proportional shares, the utility gradients, the
 * water-filling inclusion test, the damped blend and the published
 * lambdas all run lane-parallel, and the four pow() evaluations the
 * two gradients need ride ONE 4-lane libmvec call (_ZGVdN4vv_pow),
 * which costs about as much as a single 2-lane call.  At 100k players
 * the pow pair is the scalar reply's single biggest cost, so pairing
 * players roughly halves it.
 *
 * Numerical contract: the kernel makes the same decisions as
 * bestResponsePair (same inclusion logic, same clamps, same blend) but
 * is NOT bit-identical to it -- the 4-lane libmvec pow and the 2-lane
 * variant the scalar reply uses may differ in the last ulp (both are
 * within glibc's 4-ulp bound of correctly rounded).  Agreement is
 * ~1e-15 relative, far inside the market's price tolerance;
 * tests/market/simd_kernel_test pins it.  Results are deterministic:
 * lane assignment is fixed by player order, so the same roster and
 * budgets always produce the same bytes.
 *
 * Unlike util/simd.h's bit-identical kernels this one lives in its own
 * translation unit compiled with -mavx2 (src/market/CMakeLists.txt)
 * and is guarded at runtime by a CPU check, so portable builds still
 * carry it and sanitizer CI still executes it.  It honors the same
 * util::simd runtime toggle as the rest of the SIMD surface, which is
 * how the equivalence tests drive the scalar and fused paths from one
 * binary.
 */

namespace rebudget::market {

/**
 * @return true when the fused kernel is compiled in (x86-64 glibc
 * build) and the host CPU supports AVX2.  Cheap after the first call;
 * callers hoist it per solve anyway.  Does NOT consult the
 * util::simd::enabled() toggle -- the market combines both.
 */
bool bestResponseDuoAvailable();

/**
 * Two damped m == 2 best-response replies, lane-parallel.
 *
 * Players A and B must both satisfy the scalar fast path's
 * preconditions, checked by the caller because it has the scalars at
 * hand: budget > 0, both current bids > 0 and both competing bids > 0
 * (the steady state of every converging market), and a hot-quad block
 * from UtilityModel::hotQuads().
 *
 * @param qa, qb            per-player hot quads [c, w*e, e-1, 1/c] x 2
 *                          resources (UtilityModel::hotQuads())
 * @param budget_a, budget_b  player budgets (> 0)
 * @param bids_a, bids_b    in: current bids (2 each, > 0); out: the
 *                          damped replies
 * @param oa0..ob1          competing bids y_ij per player/resource (> 0)
 * @param c0, c1            market resource capacities
 * @param damping           blend factor in (0, 1]
 * @param lambda_a, lambda_b  out: each player's published lambda_i
 * @param steps             += number of players whose bids moved (0-2)
 * @param acc0, acc1        += both players' bid deltas per resource
 *                          (the block's column-sum advance)
 *
 * Must only be called when bestResponseDuoAvailable() is true.
 */
void bestResponseDuo(const double *qa, const double *qb, double budget_a,
                     double budget_b, double *bids_a, double *bids_b,
                     double oa0, double oa1, double ob0, double ob1,
                     double c0, double c1, double damping,
                     double *lambda_a, double *lambda_b, int *steps,
                     double *acc0, double *acc1);

} // namespace rebudget::market

#endif // REBUDGET_MARKET_BEST_RESPONSE_KERNEL_H_
