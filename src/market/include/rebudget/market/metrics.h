#ifndef REBUDGET_MARKET_METRICS_H_
#define REBUDGET_MARKET_METRICS_H_

/**
 * @file
 * Efficiency and fairness metrics and the paper's theoretical bounds.
 *
 * - Efficiency (Definition 1): sum of player utilities; in the CMP
 *   instantiation this is weighted speedup (Equation 5).
 * - Envy-freeness (Definition 3): min_i U_i(r_i) / max_j U_i(r_j).
 * - Market Utility Range, MUR (Definition 5): min_i lambda_i /
 *   max_i lambda_i.
 * - Market Budget Range, MBR (Definition 6): min_i B_i / max_i B_i.
 * - Theorem 1: PoA >= 1 - 1/(4 MUR) when MUR >= 1/2, else PoA >= MUR.
 * - Theorem 2: equilibrium is (2 sqrt(1 + MBR) - 2)-approximate
 *   envy-free.
 *
 * Error policy: the range metrics take solver outputs, which can carry
 * floating-point noise (a lambda of -1e-15 from the incremental
 * gradient path); values within a small tolerance of zero are clamped
 * to 0 and only genuinely negative inputs are rejected, via an error
 * Expected rather than process death.  The utility metrics take
 * parallel arrays whose sizes the caller controls; a mismatch is a
 * caller bug and asserts.
 */

#include <vector>

#include "rebudget/market/utility_model.h"
#include "rebudget/util/matrix.h"
#include "rebudget/util/status.h"

namespace rebudget::market {

/** @return per-player utilities at the given allocation. */
std::vector<double> perPlayerUtilities(
    const std::vector<const UtilityModel *> &models,
    const util::Matrix<double> &alloc);

/** @return efficiency = sum of utilities (Definition 1 / Equation 5). */
double efficiency(const std::vector<const UtilityModel *> &models,
                  const util::Matrix<double> &alloc);

/**
 * @return envy-freeness of an allocation (Definition 3): for each player
 * i compute U_i(r_i) / max_j U_i(r_j) (the max includes j = i, so each
 * term is <= 1) and return the minimum over players.  Players whose
 * utility is zero everywhere contribute 1 (nothing to envy).
 */
double envyFreeness(const std::vector<const UtilityModel *> &models,
                    const util::Matrix<double> &alloc);

/**
 * @return MUR = min_i lambda_i / max_i lambda_i (Definition 5); 1 when
 * all lambdas are zero (fully satiated market).  Lambdas within FP
 * noise of zero count as zero; an empty set or a genuinely negative
 * lambda yields an error.
 */
util::Expected<double> marketUtilityRange(
    const std::vector<double> &lambdas);

/**
 * @return MBR = min_i B_i / max_i B_i (Definition 6), with the same
 * noise clamp and error conditions as marketUtilityRange.
 */
util::Expected<double> marketBudgetRange(
    const std::vector<double> &budgets);

/**
 * Time-integrated envy-freeness over tenant lifetimes (the churn
 * extension of Definition 3): `own[i]` is the utility tenant i
 * accumulated over the epochs it was present, `best_other[i]` the best
 * utility any single competitor's allocations would have accumulated
 * for i over those same epochs (the competitor set includes i itself,
 * so each ratio is <= 1).  Returns min_i own[i] / best_other[i];
 * tenants with nothing to envy (best_other <= 0) contribute 1.
 * Parallel-array sizes are the caller's contract (asserts) -- entries
 * are matched positionally, so the caller aligns both vectors in the
 * same tenant order (identity-keyed accumulation handles roster churn
 * before this function is reached).
 */
double lifetimeEnvyFreeness(const std::vector<double> &own,
                            const std::vector<double> &best_other);

/**
 * @return the Theorem 1 Price-of-Anarchy lower bound at the given MUR:
 * 1 - 1/(4 MUR) for MUR >= 1/2, MUR otherwise.  The input is clamped
 * into [0, 1] (ratios can exceed the interval only by FP noise).
 */
double poaLowerBound(double mur);

/**
 * @return the Theorem 2 envy-freeness lower bound at the given MBR:
 * 2 sqrt(1 + MBR) - 2, with the input clamped into [0, 1].
 */
double envyFreenessLowerBound(double mbr);

/**
 * @return the smallest MBR whose Theorem 2 bound meets an envy-freeness
 * target c (inverse of envyFreenessLowerBound): ((c + 2)/2)^2 - 1,
 * clamped into [0, 1].  Used by administrators to translate a fairness
 * requirement into a budget floor (Section 4.2).
 */
double mbrForEnvyFreenessTarget(double target_ef);

} // namespace rebudget::market

#endif // REBUDGET_MARKET_METRICS_H_
