#ifndef REBUDGET_MARKET_BIDDING_H_
#define REBUDGET_MARKET_BIDDING_H_

/**
 * @file
 * Player-local bid optimization (paper Section 4.1.2).
 *
 * Given the other players' bids y_j on each resource, a player predicts
 * the allocation it would receive for candidate bids b_j via the
 * proportional rule r_j = b_j / (b_j + y_j) * C_j (Equation 2) and hill
 * climbs toward the bids that maximize its utility: starting from an
 * equal split with shift amount S = bid/2, it repeatedly moves S units of
 * budget from the resource with the lowest marginal-utility-per-dollar
 * (lambda_j) to the one with the highest, halving S each step, until all
 * lambdas agree within 5% or S drops below 1% of the budget.
 *
 * Implementation note: because one shift changes the bids of exactly two
 * resources, the climber maintains the predicted allocations and the
 * price-response slopes dr_j/db_j incrementally (refreshing only the two
 * touched entries) and evaluates all marginal utilities through one
 * UtilityModel::gradient() call per step, instead of recomputing every
 * predicted allocation for every resource (O(M^2) per step).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "rebudget/market/utility_model.h"
#include "rebudget/util/status.h"

namespace rebudget::market {

/**
 * Tiny competing-bid floor: avoids an infinite marginal when a resource
 * currently has no bids at all (the first epsilon of money would buy
 * the whole capacity).  Shared by the hill climber, the best-response
 * reply, and priceResponse().
 */
inline constexpr double kMinCompetingBid = 1e-9;

/** Tuning knobs for the bid hill climber (paper defaults). */
struct BidOptimizerConfig
{
    /** Relative lambda agreement threshold for termination. */
    double lambdaTol = 0.05;
    /** Terminate when the shift drops below this fraction of budget. */
    double minShiftFraction = 0.01;
    /** Hard safety cap on hill-climbing steps. */
    int maxSteps = 64;
};

/** Result of one player bid optimization. */
struct BidResult
{
    /**
     * Ok, or why the optimization could not run (arity mismatch,
     * genuinely negative budget).  On error the bids are all zero.
     */
    util::SolveStatus status;
    /** Optimized bids, one per resource; sums to the budget. */
    std::vector<double> bids;
    /** Marginal utility of money per resource at the final bids. */
    std::vector<double> lambdas;
    /** The player's lambda_i: max over per-resource lambdas. */
    double lambda = 0.0;
    /** Hill-climbing steps taken. */
    int steps = 0;
};

/**
 * Reusable scratch buffers for optimizeBidsInto.  The hill climber
 * maintains the predicted allocation and the price-response slope
 * dr_j/db_j incrementally (a bid shift touches exactly two resources),
 * and evaluates the utility gradient into a caller-owned buffer, so a
 * solver that holds one BidScratch across players and rounds performs
 * no heap allocation per optimization.
 */
struct BidScratch
{
    /** Predicted allocation r_j at the current bids. */
    std::vector<double> alloc;
    /** Utility gradient dU/dr_j at the current allocation. */
    std::vector<double> grad;
    /** Price response dr_j/db_j at the current bids. */
    std::vector<double> drdb;
    /** Best-response path: sqrt(w_j * y_j) per resource. */
    std::vector<double> weight;
    /** Best-response path: floored competing bids y_j. */
    std::vector<double> compete;
    /** Best-response path: resource order by marginal-at-zero. */
    std::vector<uint32_t> order;
};

/**
 * Predict the allocation for a bid against fixed competing bids
 * (Equation 2): r = b / (b + y) * C, with the conventions r = C when the
 * player is the sole bidder (y = 0, b > 0) and r = 0 when b = 0.
 */
double predictedAllocation(double bid, double others_bids, double capacity);

/**
 * @return the price response dr_j/db_j = C_j * y_j / (b_j + y_j)^2 of the
 * proportional rule, with the same tiny competing-bid floor on y_j the
 * hill climber applies (avoids an infinite marginal on an unbid
 * resource).
 */
double priceResponse(double bid, double others_bids, double capacity);

/**
 * @return lambda_j = dU/db_j at the given bids via the chain rule
 * dU/dr_j * dr_j/db_j with dr_j/db_j = C_j * y_j / (b_j + y_j)^2.
 */
double bidMarginal(const UtilityModel &model, size_t resource,
                   std::span<const double> bids,
                   std::span<const double> others,
                   std::span<const double> capacities);

/**
 * Optimize a player's bids for a fixed view of the competition.
 *
 * Re-entrant: pure function of its arguments with call-local scratch
 * only, safe to invoke concurrently (the parallel eval sweeps do).
 *
 * @param model       the player's utility
 * @param budget      the player's budget B_i (>= 0)
 * @param others      y_j: summed competing bids per resource
 * @param capacities  C_j per resource
 * @param config      hill-climber tuning
 */
BidResult optimizeBids(const UtilityModel &model, double budget,
                       std::span<const double> others,
                       std::span<const double> capacities,
                       const BidOptimizerConfig &config = {});

/**
 * Allocation-free core of optimizeBids: writes into `result` (reusing
 * its vector capacity) with scratch buffers supplied by the caller.
 *
 * @param initial  optional warm-start bids (length M, non-negative,
 *                 summing to the budget).  When null the climber starts
 *                 from the paper's equal split.  A near-optimal seed
 *                 terminates via the lambda-agreement rule after few
 *                 (often zero) shifts.
 *
 * Same re-entrancy contract as optimizeBids provided each concurrent
 * call uses its own `result` and `scratch`.
 */
void optimizeBidsInto(const UtilityModel &model, double budget,
                      std::span<const double> others,
                      std::span<const double> capacities,
                      const BidOptimizerConfig &config,
                      const double *initial, BidResult &result,
                      BidScratch &scratch);

/**
 * Price-anticipating closed-form best response (Feldman, Lai and
 * Zhang, "A price-anticipating resource allocation mechanism for
 * distributed shared clusters"; see PAPERS.md and DESIGN.md 3.2).
 *
 * The player's concave utility is linearized at its current operating
 * point: with g_j = dU/dr_j evaluated at the predicted allocation
 * under `current` bids, the local model is U ~ sum_j g_j C_j x_j with
 * x_j = b_j / (b_j + y_j) the proportional share.  Against fixed
 * competing bids y_j, the exact maximizer of the linearized utility
 * under sum_j b_j = B is a water-filling solution: include resources
 * in decreasing order of marginal-at-zero w_j / y_j (w_j = g_j C_j),
 * and for the included set T bid
 *
 *     b_j = sqrt(w_j y_j) * (B + sum_T y) / sum_T sqrt(w y)  -  y_j,
 *
 * which is positive exactly for the resources T admits.  One utility
 * gradient call and O(m log m) arithmetic replace the hill climb's
 * gradient call per shift, and because the reply lands on the
 * anticipated optimum instead of stepping toward it, the market's
 * sweep count stops thrashing at large n (each player's own bid is a
 * vanishing fraction of the column sums, so the linearization error
 * per sweep is O(1/n)).
 *
 * `damping` in (0, 1] blends the reply with the current bids
 * (b <- b + damping * (reply - b)); 1.0 takes the full reply.
 * `current` supplies the operating point (and the blend base); when
 * null the equal split is used.  Reported lambdas use the operating
 * point gradient with the price response at the NEW bids -- at a
 * fixed point of the sweep map the two coincide, which is where
 * consumers (ReBudget's cut ordering) read them.
 *
 * All degenerate inputs behave like optimizeBidsInto (arity/budget
 * validation, zero-budget and single-resource shortcuts); a fully
 * saturated player (all-zero gradient) keeps its current bids.
 * Zero-allocation and re-entrancy contracts match optimizeBidsInto.
 */
void bestResponseBidsInto(const UtilityModel &model, double budget,
                          std::span<const double> others,
                          std::span<const double> capacities,
                          double damping, const double *current,
                          BidResult &result, BidScratch &scratch);

/** Damped m == 2 best-response reply (see bestResponsePair). */
struct BestResponsePairReply
{
    /** New bids after the damped blend. */
    double b0 = 0.0, b1 = 0.0;
    /** Per-resource lambdas at the published bids. */
    double l0 = 0.0, l1 = 0.0;
    /** The player's lambda_i: max over per-resource lambdas. */
    double lambda = 0.0;
    /** 1 when the blend moved either bid, else 0. */
    int steps = 0;
};

/**
 * m == 2 core of bestResponseBidsInto (every CMP market: cache +
 * power), inlined so the market's sweep loop can bypass the
 * function-call and BidResult marshalling per player -- at 100k
 * players the per-call overhead is most of the reply's cost.  The
 * sorted water-fill degenerates to one cross-multiplied pair
 * comparison, so the whole reply runs straight-line on stack scalars.
 * It makes the same decisions as the generic path (same inclusion
 * logic, same clamps) but reassociates FP freely -- the paired
 * divides are folded into one reciprocal each, and the model is
 * queried through gradientFast() -- which is safe because every
 * m == 2 call deterministically takes this path, so there is no
 * scalar/fast divergence to observe.
 *
 * Precondition: budget > 0 (callers route zero/negative budgets
 * through bestResponseBidsInto's degenerate handling).
 */
inline BestResponsePairReply
bestResponsePair(const UtilityModel &model, double budget, double b0,
                 double b1, double o0, double o1, double c0, double c1,
                 double damping)
{
    const double y0 = o0 > kMinCompetingBid ? o0 : kMinCompetingBid;
    const double y1 = o1 > kMinCompetingBid ? o1 : kMinCompetingBid;
    double op[2];
    const double t0 = b0 + o0, t1 = b1 + o1;
    if (b0 > 0.0 && b1 > 0.0 && o0 > 0.0 && o1 > 0.0) {
        // Common case: both shares well-defined; one divide serves
        // both via the combined reciprocal.
        const double inv = 1.0 / (t0 * t1);
        op[0] = b0 * t1 * inv * c0;
        op[1] = b1 * t0 * inv * c1;
    } else {
        op[0] = b0 <= 0.0 ? 0.0 : (o0 <= 0.0 ? c0 : b0 / t0 * c0);
        op[1] = b1 <= 0.0 ? 0.0 : (o1 <= 0.0 ? c1 : b1 / t1 * c1);
    }
    double grad[2];
    model.gradientFast(std::span<const double>(op, 2),
                       std::span<double>(grad, 2));

    BestResponsePairReply out;
    out.b0 = b0;
    out.b1 = b1;
    const double s0 = std::sqrt(std::max(grad[0], 0.0) * c0 * y0);
    const double s1 = std::sqrt(std::max(grad[1], 0.0) * c1 * y1);
    if (s0 > 0.0 || s1 > 0.0) {
        // Order by s_j / y_j descending; ties keep resource 0 first
        // like the stable generic sort.
        const bool hi0 = s0 * y1 >= s1 * y0;
        const double sh = hi0 ? s0 : s1, yh = hi0 ? y0 : y1;
        const double sl = hi0 ? s1 : s0, yl = hi0 ? y1 : y0;
        // The top resource is always included (its bid is positive
        // whenever it has any weight); the second joins if its bid
        // stays positive under the shared scale.
        double rh, rl;
        if (sl > 0.0 && sl * (budget + (yh + yl)) > yl * (sh + sl)) {
            const double scale = (budget + (yh + yl)) / (sh + sl);
            rh = std::max(0.0, sh * scale - yh);
            rl = std::max(0.0, sl * scale - yl);
        } else {
            const double scale = (budget + yh) / sh;
            rh = std::max(0.0, sh * scale - yh);
            rl = 0.0;
        }
        const double r0 = hi0 ? rh : rl, r1 = hi0 ? rl : rh;
        const double n0 = b0 + damping * (r0 - b0);
        const double n1 = b1 + damping * (r1 - b1);
        out.b0 = n0;
        out.b1 = n1;
        out.steps = (n0 != b0 || n1 != b1) ? 1 : 0;
    }
    // Lambdas at the published bids: grad * dr/db, matching the
    // generic publish (priceResponse floors y and clamps b), with the
    // two divides folded into one combined reciprocal (d0, d1 are
    // strictly positive: y >= kMinCompetingBid).
    const double pb0 = std::max(out.b0, 0.0);
    const double pb1 = std::max(out.b1, 0.0);
    const double d0 = (pb0 + y0) * (pb0 + y0);
    const double d1 = (pb1 + y1) * (pb1 + y1);
    const double inv_d = 1.0 / (d0 * d1);
    out.l0 = grad[0] * (c0 * y0 * d1 * inv_d);
    out.l1 = grad[1] * (c1 * y1 * d0 * inv_d);
    out.lambda = std::max(out.l0, out.l1);
    return out;
}

} // namespace rebudget::market

#endif // REBUDGET_MARKET_BIDDING_H_
