#ifndef REBUDGET_MARKET_BIDDING_H_
#define REBUDGET_MARKET_BIDDING_H_

/**
 * @file
 * Player-local bid optimization (paper Section 4.1.2).
 *
 * Given the other players' bids y_j on each resource, a player predicts
 * the allocation it would receive for candidate bids b_j via the
 * proportional rule r_j = b_j / (b_j + y_j) * C_j (Equation 2) and hill
 * climbs toward the bids that maximize its utility: starting from an
 * equal split with shift amount S = bid/2, it repeatedly moves S units of
 * budget from the resource with the lowest marginal-utility-per-dollar
 * (lambda_j) to the one with the highest, halving S each step, until all
 * lambdas agree within 5% or S drops below 1% of the budget.
 *
 * Implementation note: because one shift changes the bids of exactly two
 * resources, the climber maintains the predicted allocations and the
 * price-response slopes dr_j/db_j incrementally (refreshing only the two
 * touched entries) and evaluates all marginal utilities through one
 * UtilityModel::gradient() call per step, instead of recomputing every
 * predicted allocation for every resource (O(M^2) per step).
 */

#include <span>
#include <vector>

#include "rebudget/market/utility_model.h"
#include "rebudget/util/status.h"

namespace rebudget::market {

/** Tuning knobs for the bid hill climber (paper defaults). */
struct BidOptimizerConfig
{
    /** Relative lambda agreement threshold for termination. */
    double lambdaTol = 0.05;
    /** Terminate when the shift drops below this fraction of budget. */
    double minShiftFraction = 0.01;
    /** Hard safety cap on hill-climbing steps. */
    int maxSteps = 64;
};

/** Result of one player bid optimization. */
struct BidResult
{
    /**
     * Ok, or why the optimization could not run (arity mismatch,
     * genuinely negative budget).  On error the bids are all zero.
     */
    util::SolveStatus status;
    /** Optimized bids, one per resource; sums to the budget. */
    std::vector<double> bids;
    /** Marginal utility of money per resource at the final bids. */
    std::vector<double> lambdas;
    /** The player's lambda_i: max over per-resource lambdas. */
    double lambda = 0.0;
    /** Hill-climbing steps taken. */
    int steps = 0;
};

/**
 * Reusable scratch buffers for optimizeBidsInto.  The hill climber
 * maintains the predicted allocation and the price-response slope
 * dr_j/db_j incrementally (a bid shift touches exactly two resources),
 * and evaluates the utility gradient into a caller-owned buffer, so a
 * solver that holds one BidScratch across players and rounds performs
 * no heap allocation per optimization.
 */
struct BidScratch
{
    /** Predicted allocation r_j at the current bids. */
    std::vector<double> alloc;
    /** Utility gradient dU/dr_j at the current allocation. */
    std::vector<double> grad;
    /** Price response dr_j/db_j at the current bids. */
    std::vector<double> drdb;
};

/**
 * Predict the allocation for a bid against fixed competing bids
 * (Equation 2): r = b / (b + y) * C, with the conventions r = C when the
 * player is the sole bidder (y = 0, b > 0) and r = 0 when b = 0.
 */
double predictedAllocation(double bid, double others_bids, double capacity);

/**
 * @return the price response dr_j/db_j = C_j * y_j / (b_j + y_j)^2 of the
 * proportional rule, with the same tiny competing-bid floor on y_j the
 * hill climber applies (avoids an infinite marginal on an unbid
 * resource).
 */
double priceResponse(double bid, double others_bids, double capacity);

/**
 * @return lambda_j = dU/db_j at the given bids via the chain rule
 * dU/dr_j * dr_j/db_j with dr_j/db_j = C_j * y_j / (b_j + y_j)^2.
 */
double bidMarginal(const UtilityModel &model, size_t resource,
                   std::span<const double> bids,
                   std::span<const double> others,
                   std::span<const double> capacities);

/**
 * Optimize a player's bids for a fixed view of the competition.
 *
 * Re-entrant: pure function of its arguments with call-local scratch
 * only, safe to invoke concurrently (the parallel eval sweeps do).
 *
 * @param model       the player's utility
 * @param budget      the player's budget B_i (>= 0)
 * @param others      y_j: summed competing bids per resource
 * @param capacities  C_j per resource
 * @param config      hill-climber tuning
 */
BidResult optimizeBids(const UtilityModel &model, double budget,
                       std::span<const double> others,
                       std::span<const double> capacities,
                       const BidOptimizerConfig &config = {});

/**
 * Allocation-free core of optimizeBids: writes into `result` (reusing
 * its vector capacity) with scratch buffers supplied by the caller.
 *
 * @param initial  optional warm-start bids (length M, non-negative,
 *                 summing to the budget).  When null the climber starts
 *                 from the paper's equal split.  A near-optimal seed
 *                 terminates via the lambda-agreement rule after few
 *                 (often zero) shifts.
 *
 * Same re-entrancy contract as optimizeBids provided each concurrent
 * call uses its own `result` and `scratch`.
 */
void optimizeBidsInto(const UtilityModel &model, double budget,
                      std::span<const double> others,
                      std::span<const double> capacities,
                      const BidOptimizerConfig &config,
                      const double *initial, BidResult &result,
                      BidScratch &scratch);

} // namespace rebudget::market

#endif // REBUDGET_MARKET_BIDDING_H_
