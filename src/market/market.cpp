#include "rebudget/market/market.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"
#include "rebudget/util/solver_stats.h"

namespace rebudget::market {

namespace {

using util::Matrix;
using util::SolveStatus;
using util::StatusCode;

/** Validate a market setup; Ok when every solve precondition holds. */
SolveStatus
validateSetup(const std::vector<const UtilityModel *> &models,
              const std::vector<double> &capacities,
              const MarketConfig &config)
{
    if (models.empty()) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "market requires at least one player");
    }
    if (capacities.empty()) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "market requires at least one resource");
    }
    for (const auto *m : models) {
        if (m == nullptr) {
            return SolveStatus::error(StatusCode::InvalidArgument,
                                      "market has a null utility model");
        }
        if (m->numResources() != capacities.size()) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "utility model arity %zu != resource count %zu",
                m->numResources(), capacities.size());
        }
    }
    for (double c : capacities) {
        if (c <= 0.0) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "resource capacities must be positive (got %g)", c);
        }
    }
    if (config.maxIterations <= 0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "market maxIterations must be positive");
    }
    return SolveStatus();
}

/**
 * Clamp FP-noise negative budgets to zero in place; a genuinely
 * negative budget (beyond noise tolerance) is an error.
 */
SolveStatus
sanitizeBudgets(std::vector<double> &budgets)
{
    double scale = 1.0;
    for (double b : budgets)
        scale = std::max(scale, std::abs(b));
    const double tol = 1e-9 * scale;
    for (double &b : budgets) {
        if (b < 0.0) {
            if (b < -tol) {
                return SolveStatus::error(
                    StatusCode::InvalidArgument,
                    "budgets must be non-negative (got %g)", b);
            }
            b = 0.0;
        }
    }
    return SolveStatus();
}

/**
 * Per-resource bid column sums, accumulated per column in ascending
 * player order -- the solver's canonical summation order.  The
 * incremental engine reproduces these sums up to FP drift; prices
 * published in results always come from this full recompute so they are
 * independent of the solve's shift history.
 */
void
computeColumnSumsInto(const Matrix<double> &bids, std::vector<double> &out)
{
    const size_t n = bids.rows();
    const size_t m = bids.cols();
    out.assign(m, 0.0);
    for (size_t i = 0; i < n; ++i) {
        const double *row = bids.row(i);
        for (size_t j = 0; j < m; ++j)
            out[j] += row[j];
    }
}

/** computePrices into a reusable buffer (no per-iteration allocation). */
void
computePricesInto(const Matrix<double> &bids,
                  const std::vector<double> &capacities,
                  std::vector<double> &out)
{
    computeColumnSumsInto(bids, out);
    for (size_t j = 0; j < capacities.size(); ++j)
        out[j] /= capacities[j];
}

/** proportionalAllocation against known prices, into a reused matrix. */
void
allocationFromPricesInto(const Matrix<double> &bids,
                         const std::vector<double> &prices,
                         Matrix<double> &alloc)
{
    const size_t n = bids.rows();
    const size_t m = bids.cols();
    alloc.resize(n, m);
    for (size_t i = 0; i < n; ++i) {
        const double *b = bids.row(i);
        double *a = alloc.row(i);
        for (size_t j = 0; j < m; ++j)
            a[j] = prices[j] > 0.0 ? b[j] / prices[j] : 0.0;
    }
}

/**
 * Reset every field of a possibly-reused result to its freshly
 * constructed state without releasing buffer capacity.
 */
void
resetResult(EquilibriumResult &result)
{
    result.status = SolveStatus();
    result.prices.clear();
    result.lambdas.clear();
    result.budgets.clear();
    result.iterations = 0;
    result.converged = false;
    result.warmStarted = false;
    result.approximated = false;
    result.hillClimbSteps = 0;
    result.solveSeconds = 0.0;
    result.priceHistory.clear();
}

/**
 * validatePriceSums cross-check: the incrementally maintained column
 * sums must match a from-scratch recompute within FP drift.
 */
void
crossCheckColumnSums(const Matrix<double> &bids,
                     const std::vector<double> &incremental,
                     std::vector<double> &scratch)
{
    computeColumnSumsInto(bids, scratch);
    for (size_t j = 0; j < incremental.size(); ++j) {
        const double ref = scratch[j];
        const double tol = 1e-9 * std::max(1.0, std::abs(ref));
        REBUDGET_ASSERT(std::abs(incremental[j] - ref) <= tol,
                        "incremental price sums drifted from recompute");
    }
}

} // namespace

ProportionalMarket::ProportionalMarket(
    std::vector<const UtilityModel *> models, std::vector<double> capacities,
    const MarketConfig &config)
    : models_(std::move(models)), capacities_(std::move(capacities)),
      config_(config), status_(validateSetup(models_, capacities_, config_))
{
}

EquilibriumResult
ProportionalMarket::findEquilibrium(const std::vector<double> &budgets) const
{
    return findEquilibrium(budgets, nullptr);
}

EquilibriumResult
ProportionalMarket::findEquilibrium(const std::vector<double> &budgets,
                                    const EquilibriumResult *prior) const
{
    SolveWorkspace ws;
    EquilibriumResult result;
    findEquilibriumInto(budgets, prior, ws, result);
    return result;
}

void
ProportionalMarket::findEquilibriumInto(const std::vector<double> &budgets,
                                        const EquilibriumResult *prior,
                                        SolveWorkspace &ws,
                                        EquilibriumResult &result) const
{
    REBUDGET_ASSERT(&result != prior,
                    "findEquilibriumInto: result must not alias prior "
                    "(ping-pong two result slots)");
    const double t0 = util::monotonicSeconds();
    const size_t n = models_.size();
    const size_t m = capacities_.size();
    resetResult(result);
    result.budgets.assign(budgets.begin(), budgets.end());
    if (!status_.ok()) {
        result.status = status_;
        return;
    }
    if (budgets.size() != n) {
        result.status = SolveStatus::error(StatusCode::InvalidArgument,
                                           "expected %zu budgets, got %zu",
                                           n, budgets.size());
        return;
    }
    if (SolveStatus st = sanitizeBudgets(result.budgets); !st.ok()) {
        result.status = st;
        return;
    }

    // A warm hint is usable only when enabled and shape-compatible; an
    // incompatible prior (different machine) degrades to a cold start.
    const bool warm = config_.warmStart && prior != nullptr &&
                      prior->bids.rows() == n && prior->bids.cols() == m &&
                      prior->budgets.size() == n;

    const std::vector<double> &b = result.budgets;
    result.warmStarted = warm;
    result.lambdas.assign(n, 0.0);
    result.bids.assign(n, m, 0.0);
    for (size_t i = 0; i < n; ++i) {
        double *bids_i = result.bids.row(i);
        // Warm start: seed from the player's prior bids scaled by its
        // budget ratio, renormalized so the row sums exactly to B_i.
        // Cold start (and players without a usable prior row): equal
        // split (step 1 of the bidding strategy).
        bool seeded = false;
        if (warm && prior->budgets[i] > 0.0) {
            const double *prior_i = prior->bids.row(i);
            double sum = 0.0;
            for (size_t j = 0; j < m; ++j)
                sum += prior_i[j];
            if (sum > 0.0) {
                const double scale = b[i] / sum;
                for (size_t j = 0; j < m; ++j)
                    bids_i[j] = prior_i[j] * scale;
                seeded = true;
            }
        }
        if (!seeded) {
            for (size_t j = 0; j < m; ++j)
                bids_i[j] = b[i] / static_cast<double>(m);
        }
    }

    // Column sums are the price engine: maintained incrementally on bid
    // deltas below, recomputed from scratch only at entry, at exit (the
    // published prices) and under validatePriceSums.
    computeColumnSumsInto(result.bids, ws.colSums);
    ws.prices.resize(m);
    for (size_t j = 0; j < m; ++j)
        ws.prices[j] = ws.colSums[j] / capacities_[j];

    ws.others.resize(m);
    ws.newPrices.resize(m);
    for (int iter = 0; iter < config_.maxIterations; ++iter) {
        ++result.iterations;
        // Each player re-optimizes against the latest bids (players see
        // prices, from which they infer y_ij = p_j*C_j - b_ij; updating
        // column sums in place is equivalent and matches the distributed
        // semantics).
        for (size_t i = 0; i < n; ++i) {
            double *bids_i = result.bids.row(i);
            for (size_t j = 0; j < m; ++j)
                ws.others[j] = std::max(0.0, ws.colSums[j] - bids_i[j]);
            // Cold solves restart every climb from equal split (the
            // paper's step 1).  Warm solves seed each climb from the
            // player's current bids: the seeded climb expands its shift
            // from the 1% floor (see optimizeBidsInto), so a settled
            // player is an exact no-op and the sweep map reaches a true
            // fixed point instead of re-rolling each climb's
            // quantization noise every sweep.
            optimizeBidsInto(*models_[i], b[i], ws.others, capacities_,
                             config_.bid, warm ? bids_i : nullptr, ws.bid,
                             ws.scratch);
            for (size_t j = 0; j < m; ++j) {
                ws.colSums[j] += ws.bid.bids[j] - bids_i[j];
                bids_i[j] = ws.bid.bids[j];
            }
            result.lambdas[i] = ws.bid.lambda;
            result.hillClimbSteps += ws.bid.steps;
        }
        // Sweep-end prices straight from the incremental column sums:
        // O(m), not the historical O(n*m) full recompute.  The
        // incremental sums track the recompute up to ulp-level FP drift
        // (non-associativity of the += deltas); convergence is checked
        // against them consistently on every sweep, and the published
        // prices below come from a full recompute, so results do not
        // depend on the drift.
        for (size_t j = 0; j < m; ++j)
            ws.newPrices[j] = ws.colSums[j] / capacities_[j];
        if (config_.validatePriceSums)
            crossCheckColumnSums(result.bids, ws.colSums, ws.pred);
        if (config_.recordPriceHistory) {
            // History entries stay full-recompute prices (bit-identical
            // to the historical trajectory; the last entry must equal
            // the published prices exactly).
            computePricesInto(result.bids, capacities_, ws.pred);
            result.priceHistory.push_back(ws.pred);
        }
        bool stable = true;
        for (size_t j = 0; j < m; ++j) {
            const double old_p = ws.prices[j];
            const double new_p = ws.newPrices[j];
            const double denom = std::max(old_p, 1e-12);
            if (std::abs(new_p - old_p) / denom > config_.priceTol) {
                stable = false;
                break;
            }
        }
        std::swap(ws.prices, ws.newPrices);
        if (stable) {
            result.converged = true;
            break;
        }
    }

    // Published prices: full recompute over the final bids in canonical
    // order, so they are bit-identical to the historical per-sweep
    // recompute path and independent of incremental drift.
    computePricesInto(result.bids, capacities_, result.prices);
    allocationFromPricesInto(result.bids, result.prices, result.alloc);
    if (!result.converged) {
        util::warn("market fail-safe: no equilibrium within %d iterations",
                   config_.maxIterations);
    }
    result.solveSeconds = util::monotonicSeconds() - t0;
}

EquilibriumResult
ProportionalMarket::rescaleEquilibrium(
    const EquilibriumResult &prior,
    const std::vector<double> &budgets) const
{
    SolveWorkspace ws;
    EquilibriumResult result;
    rescaleEquilibriumInto(prior, budgets, ws, result);
    return result;
}

void
ProportionalMarket::rescaleEquilibriumInto(
    const EquilibriumResult &prior, const std::vector<double> &budgets,
    SolveWorkspace &ws, EquilibriumResult &result) const
{
    REBUDGET_ASSERT(&result != &prior,
                    "rescaleEquilibriumInto: result must not alias prior");
    const double t0 = util::monotonicSeconds();
    const size_t n = models_.size();
    const size_t m = capacities_.size();
    resetResult(result);
    result.budgets.assign(budgets.begin(), budgets.end());
    // The rescaled point is an approximation by construction; its
    // converged flag merely carries the prior real solve's verdict.
    result.approximated = true;
    if (!status_.ok()) {
        result.status = status_;
        return;
    }
    if (budgets.size() != n) {
        result.status = SolveStatus::error(StatusCode::InvalidArgument,
                                           "expected %zu budgets, got %zu",
                                           n, budgets.size());
        return;
    }
    if (prior.bids.rows() != n) {
        result.status = SolveStatus::error(
            StatusCode::FailedPrecondition,
            "rescaleEquilibrium: prior has %zu players, market %zu",
            prior.bids.rows(), n);
        return;
    }
    if (prior.bids.cols() != m) {
        result.status = SolveStatus::error(
            StatusCode::FailedPrecondition,
            "rescaleEquilibrium: prior arity %zu, market %zu",
            prior.bids.cols(), m);
        return;
    }
    if (SolveStatus st = sanitizeBudgets(result.budgets); !st.ok()) {
        result.status = st;
        return;
    }

    const std::vector<double> &b = result.budgets;
    result.warmStarted = true;
    result.converged = prior.converged;
    result.iterations = 0;
    result.lambdas.assign(n, 0.0);
    result.bids.resize(n, m);
    for (size_t i = 0; i < n; ++i) {
        const double *prior_i = prior.bids.row(i);
        double *bids_i = result.bids.row(i);
        double sum = 0.0;
        for (size_t j = 0; j < m; ++j)
            sum += prior_i[j];
        if (sum > 0.0) {
            const double scale = b[i] / sum;
            for (size_t j = 0; j < m; ++j)
                bids_i[j] = prior_i[j] * scale;
        } else {
            for (size_t j = 0; j < m; ++j)
                bids_i[j] = b[i] / static_cast<double>(m);
        }
    }

    computeColumnSumsInto(result.bids, ws.colSums);
    result.prices.resize(m);
    for (size_t j = 0; j < m; ++j)
        result.prices[j] = ws.colSums[j] / capacities_[j];
    allocationFromPricesInto(result.bids, result.prices, result.alloc);

    // lambda_i = max_j dU_i/dr_j * dr_j/db_j, evaluated exactly like the
    // hill climber does at its final bids (predicted allocation against
    // the other players' money, one gradient call per player).
    ws.pred.resize(m);
    ws.grad.resize(m);
    for (size_t i = 0; i < n; ++i) {
        const double *bids_i = result.bids.row(i);
        for (size_t j = 0; j < m; ++j) {
            const double others =
                std::max(0.0, ws.colSums[j] - bids_i[j]);
            ws.pred[j] = predictedAllocation(bids_i[j], others,
                                             capacities_[j]);
        }
        models_[i]->gradient(ws.pred, ws.grad);
        double lambda = 0.0;
        bool first = true;
        for (size_t j = 0; j < m; ++j) {
            const double others =
                std::max(0.0, ws.colSums[j] - bids_i[j]);
            const double l =
                ws.grad[j] * priceResponse(bids_i[j], others,
                                           capacities_[j]);
            if (first || l > lambda) {
                lambda = l;
                first = false;
            }
        }
        result.lambdas[i] = lambda;
    }
    result.solveSeconds = util::monotonicSeconds() - t0;
}

size_t
migrateEquilibriumInto(const EquilibriumResult &prior,
                       const std::vector<std::ptrdiff_t> &prior_index,
                       size_t num_resources, EquilibriumResult &seed)
{
    REBUDGET_ASSERT(&seed != &prior,
                    "migrateEquilibriumInto: seed must not alias prior");
    resetResult(seed);
    seed.bids.assign(0, 0, 0.0);
    seed.alloc.assign(0, 0, 0.0);
    if (!prior.status.ok()) {
        seed.status = prior.status;
        return 0;
    }
    const size_t n = prior_index.size();
    const size_t m = num_resources;
    const bool have_bids = !prior.bids.empty();
    const bool have_alloc = !prior.alloc.empty();
    if ((have_bids && prior.bids.cols() != m) ||
        (have_alloc && prior.alloc.cols() != m)) {
        seed.status = SolveStatus::error(
            StatusCode::InvalidArgument,
            "migrateEquilibrium: prior has %zu resources, market has %zu",
            have_bids ? prior.bids.cols() : prior.alloc.cols(), m);
        return 0;
    }
    const size_t prior_n =
        have_bids ? prior.bids.rows()
                  : (have_alloc ? prior.alloc.rows()
                                : prior.budgets.size());
    for (size_t i = 0; i < n; ++i) {
        if (prior_index[i] >= static_cast<std::ptrdiff_t>(prior_n)) {
            seed.status = SolveStatus::error(
                StatusCode::InvalidArgument,
                "migrateEquilibrium: prior index %td out of range "
                "(prior has %zu players)", prior_index[i], prior_n);
            return 0;
        }
    }

    if (have_bids)
        seed.bids.assign(n, m, 0.0);
    if (have_alloc)
        seed.alloc.assign(n, m, 0.0);
    seed.budgets.assign(n, 0.0);
    seed.lambdas.assign(n, 0.0);
    seed.prices = prior.prices;
    size_t migrated = 0;
    for (size_t i = 0; i < n; ++i) {
        const std::ptrdiff_t pi = prior_index[i];
        if (pi < 0)
            continue; // newcomer: zero row + zero budget = cold seed
        const size_t p = static_cast<size_t>(pi);
        if (have_bids) {
            const double *src = prior.bids.row(p);
            double *dst = seed.bids.row(i);
            for (size_t j = 0; j < m; ++j)
                dst[j] = src[j];
        }
        if (have_alloc) {
            const double *src = prior.alloc.row(p);
            double *dst = seed.alloc.row(i);
            for (size_t j = 0; j < m; ++j)
                dst[j] = src[j];
        }
        if (p < prior.budgets.size())
            seed.budgets[i] = prior.budgets[p];
        if (p < prior.lambdas.size())
            seed.lambdas[i] = prior.lambdas[p];
        ++migrated;
    }
    // Not an equilibrium of the new market: zero sweeps ran over it.
    seed.approximated = true;
    seed.converged = prior.converged;
    return migrated;
}

EquilibriumResult
migrateEquilibrium(const EquilibriumResult &prior,
                   const std::vector<std::ptrdiff_t> &prior_index,
                   size_t num_resources)
{
    EquilibriumResult seed;
    migrateEquilibriumInto(prior, prior_index, num_resources, seed);
    return seed;
}

std::vector<double>
computePrices(const Matrix<double> &bids,
              const std::vector<double> &capacities)
{
    std::vector<double> prices(capacities.size(), 0.0);
    if (bids.empty())
        return prices;
    REBUDGET_ASSERT(bids.cols() == capacities.size(),
                    "computePrices: bid arity mismatch");
    computePricesInto(bids, capacities, prices);
    return prices;
}

Matrix<double>
proportionalAllocation(const Matrix<double> &bids,
                       const std::vector<double> &capacities)
{
    const std::vector<double> prices = computePrices(bids, capacities);
    Matrix<double> alloc;
    allocationFromPricesInto(bids, prices, alloc);
    return alloc;
}

bool
stronglyCompetitive(const Matrix<double> &bids)
{
    if (bids.empty())
        return false;
    const size_t m = bids.cols();
    for (size_t j = 0; j < m; ++j) {
        int bidders = 0;
        for (size_t i = 0; i < bids.rows(); ++i) {
            if (bids(i, j) > 0.0)
                ++bidders;
        }
        if (bidders < 2)
            return false;
    }
    return true;
}

} // namespace rebudget::market
