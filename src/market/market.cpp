#include "rebudget/market/market.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::market {

ProportionalMarket::ProportionalMarket(
    std::vector<const UtilityModel *> models, std::vector<double> capacities,
    const MarketConfig &config)
    : models_(std::move(models)), capacities_(std::move(capacities)),
      config_(config)
{
    if (models_.empty())
        util::fatal("market requires at least one player");
    if (capacities_.empty())
        util::fatal("market requires at least one resource");
    for (const auto *m : models_) {
        if (m == nullptr)
            util::fatal("market has a null utility model");
        if (m->numResources() != capacities_.size()) {
            util::fatal("utility model arity %zu != resource count %zu",
                        m->numResources(), capacities_.size());
        }
    }
    for (double c : capacities_) {
        if (c <= 0.0)
            util::fatal("resource capacities must be positive");
    }
    if (config_.maxIterations <= 0)
        util::fatal("market maxIterations must be positive");
}

EquilibriumResult
ProportionalMarket::findEquilibrium(const std::vector<double> &budgets) const
{
    const size_t n = models_.size();
    const size_t m = capacities_.size();
    if (budgets.size() != n)
        util::fatal("expected %zu budgets, got %zu", n, budgets.size());
    for (double b : budgets) {
        if (b < 0.0)
            util::fatal("budgets must be non-negative");
    }

    EquilibriumResult result;
    result.budgets = budgets;
    result.lambdas.assign(n, 0.0);
    // Initial bids: every player splits its budget equally (step 1 of the
    // bidding strategy).
    result.bids.assign(n, std::vector<double>(m, 0.0));
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < m; ++j)
            result.bids[i][j] = budgets[i] / static_cast<double>(m);
    }

    std::vector<double> col_sums(m, 0.0);
    for (size_t j = 0; j < m; ++j) {
        for (size_t i = 0; i < n; ++i)
            col_sums[j] += result.bids[i][j];
    }
    std::vector<double> prices = computePrices(result.bids, capacities_);

    std::vector<double> others(m);
    for (int iter = 0; iter < config_.maxIterations; ++iter) {
        ++result.iterations;
        // Each player re-optimizes against the latest bids (players see
        // prices, from which they infer y_ij = p_j*C_j - b_ij; updating
        // column sums in place is equivalent and matches the distributed
        // semantics).
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < m; ++j)
                others[j] = std::max(0.0, col_sums[j] - result.bids[i][j]);
            BidResult br = optimizeBids(*models_[i], budgets[i], others,
                                        capacities_, config_.bid);
            for (size_t j = 0; j < m; ++j) {
                col_sums[j] += br.bids[j] - result.bids[i][j];
                result.bids[i][j] = br.bids[j];
            }
            result.lambdas[i] = br.lambda;
        }
        const std::vector<double> new_prices =
            computePrices(result.bids, capacities_);
        if (config_.recordPriceHistory)
            result.priceHistory.push_back(new_prices);
        bool stable = true;
        for (size_t j = 0; j < m; ++j) {
            const double old_p = prices[j];
            const double new_p = new_prices[j];
            const double denom = std::max(old_p, 1e-12);
            if (std::abs(new_p - old_p) / denom > config_.priceTol) {
                stable = false;
                break;
            }
        }
        prices = new_prices;
        if (stable) {
            result.converged = true;
            break;
        }
    }

    result.prices = prices;
    result.alloc = proportionalAllocation(result.bids, capacities_);
    if (!result.converged) {
        util::warn("market fail-safe: no equilibrium within %d iterations",
                   config_.maxIterations);
    }
    return result;
}

std::vector<double>
computePrices(const std::vector<std::vector<double>> &bids,
              const std::vector<double> &capacities)
{
    if (bids.empty())
        util::fatal("computePrices: no players");
    const size_t m = capacities.size();
    std::vector<double> prices(m, 0.0);
    for (const auto &row : bids) {
        if (row.size() != m)
            util::fatal("computePrices: bid arity mismatch");
        for (size_t j = 0; j < m; ++j)
            prices[j] += row[j];
    }
    for (size_t j = 0; j < m; ++j)
        prices[j] /= capacities[j];
    return prices;
}

std::vector<std::vector<double>>
proportionalAllocation(const std::vector<std::vector<double>> &bids,
                       const std::vector<double> &capacities)
{
    const std::vector<double> prices = computePrices(bids, capacities);
    std::vector<std::vector<double>> alloc(
        bids.size(), std::vector<double>(capacities.size(), 0.0));
    for (size_t i = 0; i < bids.size(); ++i) {
        for (size_t j = 0; j < capacities.size(); ++j) {
            if (prices[j] > 0.0)
                alloc[i][j] = bids[i][j] / prices[j];
        }
    }
    return alloc;
}

bool
stronglyCompetitive(const std::vector<std::vector<double>> &bids)
{
    if (bids.empty())
        return false;
    const size_t m = bids.front().size();
    for (size_t j = 0; j < m; ++j) {
        int bidders = 0;
        for (const auto &row : bids) {
            if (row[j] > 0.0)
                ++bidders;
        }
        if (bidders < 2)
            return false;
    }
    return true;
}

} // namespace rebudget::market
