#include "rebudget/market/market.h"

#include <algorithm>
#include <cmath>

#include "rebudget/market/best_response_kernel.h"

#include "rebudget/util/logging.h"
#include "rebudget/util/simd.h"
#include "rebudget/util/solver_stats.h"

namespace rebudget::market {

namespace {

using util::Matrix;
using util::SolveStatus;
using util::StatusCode;

/** Validate a market setup; Ok when every solve precondition holds. */
SolveStatus
validateSetup(const std::vector<const UtilityModel *> &models,
              const std::vector<double> &capacities,
              const MarketConfig &config)
{
    if (models.empty()) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "market requires at least one player");
    }
    if (capacities.empty()) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "market requires at least one resource");
    }
    for (const auto *m : models) {
        if (m == nullptr) {
            return SolveStatus::error(StatusCode::InvalidArgument,
                                      "market has a null utility model");
        }
        if (m->numResources() != capacities.size()) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "utility model arity %zu != resource count %zu",
                m->numResources(), capacities.size());
        }
    }
    for (double c : capacities) {
        if (c <= 0.0) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "resource capacities must be positive (got %g)", c);
        }
    }
    if (config.maxIterations <= 0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "market maxIterations must be positive");
    }
    return SolveStatus();
}

/**
 * Clamp FP-noise negative budgets to zero in place; a genuinely
 * negative budget (beyond noise tolerance) is an error.
 */
SolveStatus
sanitizeBudgets(std::vector<double> &budgets)
{
    double scale = 1.0;
    for (double b : budgets)
        scale = std::max(scale, std::abs(b));
    const double tol = 1e-9 * scale;
    for (double &b : budgets) {
        if (b < 0.0) {
            if (b < -tol) {
                return SolveStatus::error(
                    StatusCode::InvalidArgument,
                    "budgets must be non-negative (got %g)", b);
            }
            b = 0.0;
        }
    }
    return SolveStatus();
}

/**
 * Per-resource bid column sums, accumulated per column in ascending
 * player order -- the solver's canonical summation order.  The
 * incremental engine reproduces these sums up to FP drift; prices
 * published in results always come from this full recompute so they are
 * independent of the solve's shift history.  Dispatched through the
 * SIMD shim, whose tiers preserve the canonical order exactly (see
 * util/simd.h), so the vectorized path stays bit-identical to the
 * scalar one.
 */
void
computeColumnSumsInto(const Matrix<double> &bids, std::vector<double> &out)
{
    out.resize(bids.cols());
    util::simd::columnSums(bids.data(), bids.rows(), bids.cols(),
                           out.data());
}

/** computePrices into a reusable buffer (no per-iteration allocation). */
void
computePricesInto(const Matrix<double> &bids,
                  const std::vector<double> &capacities,
                  std::vector<double> &out)
{
    computeColumnSumsInto(bids, out);
    for (size_t j = 0; j < capacities.size(); ++j)
        out[j] /= capacities[j];
}

/** proportionalAllocation against known prices, into a reused matrix.
 * Elementwise, so the SIMD tiers are exact (see util/simd.h). */
void
allocationFromPricesInto(const Matrix<double> &bids,
                         const std::vector<double> &prices,
                         Matrix<double> &alloc)
{
    alloc.resize(bids.rows(), bids.cols());
    util::simd::allocationFromPrices(bids.data(), bids.rows(),
                                     bids.cols(), prices.data(),
                                     alloc.data());
}

/**
 * Reset every field of a possibly-reused result to its freshly
 * constructed state without releasing buffer capacity.
 */
void
resetResult(EquilibriumResult &result)
{
    result.status = SolveStatus();
    result.prices.clear();
    result.lambdas.clear();
    result.budgets.clear();
    result.iterations = 0;
    result.converged = false;
    result.warmStarted = false;
    result.approximated = false;
    result.hillClimbSteps = 0;
    result.solveSeconds = 0.0;
    result.priceHistory.clear();
}

/**
 * validatePriceSums cross-check: the incrementally maintained column
 * sums must match a from-scratch recompute within FP drift.
 */
void
crossCheckColumnSums(const Matrix<double> &bids,
                     const std::vector<double> &incremental,
                     std::vector<double> &scratch)
{
    computeColumnSumsInto(bids, scratch);
    for (size_t j = 0; j < incremental.size(); ++j) {
        const double ref = scratch[j];
        const double tol = 1e-9 * std::max(1.0, std::abs(ref));
        REBUDGET_ASSERT(std::abs(incremental[j] - ref) <= tol,
                        "incremental price sums drifted from recompute");
    }
}

} // namespace

ProportionalMarket::ProportionalMarket(
    std::vector<const UtilityModel *> models, std::vector<double> capacities,
    const MarketConfig &config)
    : models_(std::move(models)), capacities_(std::move(capacities)),
      config_(config), status_(validateSetup(models_, capacities_, config_))
{
    if (status_.ok()) {
        hotQuads_.reserve(models_.size());
        for (const UtilityModel *model : models_)
            hotQuads_.push_back(model->hotQuads());
    }
}

EquilibriumResult
ProportionalMarket::findEquilibrium(const std::vector<double> &budgets) const
{
    return findEquilibrium(budgets, nullptr);
}

EquilibriumResult
ProportionalMarket::findEquilibrium(const std::vector<double> &budgets,
                                    const EquilibriumResult *prior) const
{
    SolveWorkspace ws;
    EquilibriumResult result;
    findEquilibriumInto(budgets, prior, ws, result);
    return result;
}

void
ProportionalMarket::findEquilibriumInto(const std::vector<double> &budgets,
                                        const EquilibriumResult *prior,
                                        SolveWorkspace &ws,
                                        EquilibriumResult &result) const
{
    REBUDGET_ASSERT(&result != prior,
                    "findEquilibriumInto: result must not alias prior "
                    "(ping-pong two result slots)");
    const double t0 = util::monotonicSeconds();
    const size_t n = models_.size();
    const size_t m = capacities_.size();
    resetResult(result);
    result.budgets.assign(budgets.begin(), budgets.end());
    if (!status_.ok()) {
        result.status = status_;
        return;
    }
    if (budgets.size() != n) {
        result.status = SolveStatus::error(StatusCode::InvalidArgument,
                                           "expected %zu budgets, got %zu",
                                           n, budgets.size());
        return;
    }
    if (SolveStatus st = sanitizeBudgets(result.budgets); !st.ok()) {
        result.status = st;
        return;
    }

    // A warm hint is usable only when enabled and shape-compatible; an
    // incompatible prior (different machine) degrades to a cold start.
    const bool warm = config_.warmStart && prior != nullptr &&
                      prior->bids.rows() == n && prior->bids.cols() == m &&
                      prior->budgets.size() == n;

    const std::vector<double> &b = result.budgets;
    result.warmStarted = warm;
    result.lambdas.assign(n, 0.0);
    // resize, not assign: the seeding loop below writes every entry of
    // every row (warm-scaled prior or equal split), so a zero-fill
    // would be n*m dead stores per solve.
    result.bids.resize(n, m);
    for (size_t i = 0; i < n; ++i) {
        double *bids_i = result.bids.row(i);
        // Warm start: seed from the player's prior bids scaled by its
        // budget ratio, renormalized so the row sums exactly to B_i.
        // Cold start (and players without a usable prior row): equal
        // split (step 1 of the bidding strategy).
        bool seeded = false;
        if (warm && prior->budgets[i] > 0.0) {
            const double *prior_i = prior->bids.row(i);
            double sum = 0.0;
            for (size_t j = 0; j < m; ++j)
                sum += prior_i[j];
            if (sum > 0.0) {
                const double scale = b[i] / sum;
                for (size_t j = 0; j < m; ++j)
                    bids_i[j] = prior_i[j] * scale;
                seeded = true;
            }
        }
        if (!seeded) {
            for (size_t j = 0; j < m; ++j)
                bids_i[j] = b[i] / static_cast<double>(m);
        }
    }

    // Column sums are the price engine: maintained incrementally on bid
    // deltas below, recomputed from scratch only at entry, at exit (the
    // published prices) and under validatePriceSums.
    computeColumnSumsInto(result.bids, ws.colSums);
    ws.prices.resize(m);
    for (size_t j = 0; j < m; ++j)
        ws.prices[j] = ws.colSums[j] / capacities_[j];

    ws.others.resize(m);
    ws.newPrices.resize(m);
    ws.nextSums.resize(m);
    for (int iter = 0; iter < config_.maxIterations; ++iter) {
        ++result.iterations;
        if (config_.bestResponse) {
            // Block-Jacobi sweep: the players are processed in 16
            // sequential blocks; within a block every player replies
            // to the SAME block-start column sums, and the sums
            // advance once per block.  Freezing the sums inside a
            // block breaks the Gauss-Seidel dependency chain that
            // threads one player's published bid into the next
            // player's competing bids -- each reply (a divide, a
            // gradient, two sqrts, another divide: >= 100 cycles of
            // pure latency) becomes independent of its in-block
            // neighbors, so the out-of-order window overlaps several
            // players instead of serializing the whole sweep.  The 16
            // sequential block updates keep the damped dynamics
            // stable at every size (fully simultaneous replies --
            // one block -- oscillate even at damping 0.15 for some
            // rosters; 16 blocks converges like plain Gauss-Seidel
            // from 8 to 100k players while recovering the in-block
            // parallelism the --scaling acceptance numbers in
            // BENCH_market.json rest on).
            const size_t kBlocks = 16;
            const size_t block = (n + kBlocks - 1) / kBlocks;
            const double damping = config_.bestResponseDamping;
            if (m == 2) {
                // Two-resource specialization (every CMP market):
                // the inline pair reply skips the function call and
                // BidResult marshalling per player, and the frozen
                // block-start sums live in registers.
                const double c0 = capacities_[0], c1 = capacities_[1];
                // The fused SIMD kernel replies for two players per
                // call (one 4-lane pow instead of two 2-lane ones);
                // it shares util/simd.h's runtime toggle so tests and
                // the scaling bench can drive the scalar reply from
                // the same binary.
                const bool duo = bestResponseDuoAvailable() &&
                                 util::simd::enabled();
                const auto scalarReply = [&](size_t i, double o0,
                                             double o1, double &a0,
                                             double &a1) {
                    double *bids_i = result.bids.row(i);
                    if (b[i] > 0.0) [[likely]] {
                        const BestResponsePairReply r =
                            bestResponsePair(*models_[i], b[i],
                                             bids_i[0], bids_i[1], o0,
                                             o1, c0, c1, damping);
                        a0 += r.b0 - bids_i[0];
                        a1 += r.b1 - bids_i[1];
                        bids_i[0] = r.b0;
                        bids_i[1] = r.b1;
                        result.lambdas[i] = r.lambda;
                        result.hillClimbSteps += r.steps;
                    } else {
                        // Degenerate budgets keep the general
                        // entry's validation semantics.
                        ws.others[0] = o0;
                        ws.others[1] = o1;
                        bestResponseBidsInto(*models_[i], b[i],
                                             ws.others, capacities_,
                                             damping, bids_i, ws.bid,
                                             ws.scratch);
                        a0 += ws.bid.bids[0] - bids_i[0];
                        a1 += ws.bid.bids[1] - bids_i[1];
                        bids_i[0] = ws.bid.bids[0];
                        bids_i[1] = ws.bid.bids[1];
                        result.lambdas[i] = ws.bid.lambda;
                        result.hillClimbSteps += ws.bid.steps;
                    }
                };
                for (size_t lo = 0; lo < n; lo += block) {
                    const size_t hi = std::min(n, lo + block);
                    const double cs0 = ws.colSums[0];
                    const double cs1 = ws.colSums[1];
                    double acc0 = 0.0, acc1 = 0.0;
                    size_t i = lo;
                    if (duo) {
                        for (; i + 1 < hi; i += 2) {
                            double *ba = result.bids.row(i);
                            double *bb = result.bids.row(i + 1);
                            const double oa0 =
                                std::max(0.0, cs0 - ba[0]);
                            const double oa1 =
                                std::max(0.0, cs1 - ba[1]);
                            const double ob0 =
                                std::max(0.0, cs0 - bb[0]);
                            const double ob1 =
                                std::max(0.0, cs1 - bb[1]);
                            const double *qa = hotQuads_[i];
                            const double *qb = hotQuads_[i + 1];
                            // The kernel covers the all-positive
                            // steady state; anything degenerate (zero
                            // budget, zeroed bid, lone bidder, model
                            // without hot quads) takes the scalar
                            // reply, which handles every case.
                            if (qa != nullptr && qb != nullptr &&
                                b[i] > 0.0 && b[i + 1] > 0.0 &&
                                ba[0] > 0.0 && ba[1] > 0.0 &&
                                bb[0] > 0.0 && bb[1] > 0.0 &&
                                oa0 > 0.0 && oa1 > 0.0 &&
                                ob0 > 0.0 && ob1 > 0.0) [[likely]] {
                                int moved = 0;
                                bestResponseDuo(
                                    qa, qb, b[i], b[i + 1], ba, bb,
                                    oa0, oa1, ob0, ob1, c0, c1,
                                    damping, &result.lambdas[i],
                                    &result.lambdas[i + 1], &moved,
                                    &acc0, &acc1);
                                result.hillClimbSteps += moved;
                            } else {
                                // The block's sums are frozen at
                                // cs0/cs1, so player i's move cannot
                                // change ob0/ob1.
                                scalarReply(i, oa0, oa1, acc0, acc1);
                                scalarReply(i + 1, ob0, ob1, acc0,
                                            acc1);
                            }
                        }
                    }
                    for (; i < hi; ++i) {
                        const double *bids_i = result.bids.row(i);
                        const double o0 =
                            std::max(0.0, cs0 - bids_i[0]);
                        const double o1 =
                            std::max(0.0, cs1 - bids_i[1]);
                        scalarReply(i, o0, o1, acc0, acc1);
                    }
                    ws.colSums[0] = cs0 + acc0;
                    ws.colSums[1] = cs1 + acc1;
                }
            } else {
                for (size_t lo = 0; lo < n; lo += block) {
                    const size_t hi = std::min(n, lo + block);
                    for (size_t j = 0; j < m; ++j)
                        ws.nextSums[j] = 0.0;
                    for (size_t i = lo; i < hi; ++i) {
                        double *bids_i = result.bids.row(i);
                        for (size_t j = 0; j < m; ++j)
                            ws.others[j] = std::max(
                                0.0, ws.colSums[j] - bids_i[j]);
                        // The best response always linearizes at the
                        // current bids -- the seeded row is the
                        // operating point whether the solve is warm
                        // or cold.
                        bestResponseBidsInto(*models_[i], b[i],
                                             ws.others, capacities_,
                                             damping, bids_i, ws.bid,
                                             ws.scratch);
                        for (size_t j = 0; j < m; ++j) {
                            ws.nextSums[j] +=
                                ws.bid.bids[j] - bids_i[j];
                            bids_i[j] = ws.bid.bids[j];
                        }
                        result.lambdas[i] = ws.bid.lambda;
                        result.hillClimbSteps += ws.bid.steps;
                    }
                    for (size_t j = 0; j < m; ++j)
                        ws.colSums[j] += ws.nextSums[j];
                }
            }
        } else {
            // Gauss-Seidel sweep: each player re-optimizes against the
            // latest bids (players see prices, from which they infer
            // y_ij = p_j*C_j - b_ij; updating column sums in place is
            // equivalent and matches the distributed semantics).
            for (size_t i = 0; i < n; ++i) {
                double *bids_i = result.bids.row(i);
                for (size_t j = 0; j < m; ++j)
                    ws.others[j] =
                        std::max(0.0, ws.colSums[j] - bids_i[j]);
                // Cold solves restart every climb from equal split
                // (the paper's step 1).  Warm solves seed each climb
                // from the player's current bids: the seeded climb
                // expands its shift from the 1% floor (see
                // optimizeBidsInto), so a settled player is an exact
                // no-op and the sweep map reaches a true fixed point
                // instead of re-rolling each climb's quantization
                // noise every sweep.
                optimizeBidsInto(*models_[i], b[i], ws.others,
                                 capacities_, config_.bid,
                                 warm ? bids_i : nullptr, ws.bid,
                                 ws.scratch);
                for (size_t j = 0; j < m; ++j) {
                    ws.colSums[j] += ws.bid.bids[j] - bids_i[j];
                    bids_i[j] = ws.bid.bids[j];
                }
                result.lambdas[i] = ws.bid.lambda;
                result.hillClimbSteps += ws.bid.steps;
            }
        }
        // Sweep-end prices straight from the incremental column sums:
        // O(m), not the historical O(n*m) full recompute.  The
        // incremental sums track the recompute up to ulp-level FP drift
        // (non-associativity of the += deltas); convergence is checked
        // against them consistently on every sweep, and the published
        // prices below come from a full recompute, so results do not
        // depend on the drift.
        for (size_t j = 0; j < m; ++j)
            ws.newPrices[j] = ws.colSums[j] / capacities_[j];
        if (config_.validatePriceSums)
            crossCheckColumnSums(result.bids, ws.colSums, ws.pred);
        if (config_.recordPriceHistory) {
            // History entries stay full-recompute prices (bit-identical
            // to the historical trajectory; the last entry must equal
            // the published prices exactly).
            computePricesInto(result.bids, capacities_, ws.pred);
            result.priceHistory.push_back(ws.pred);
        }
        bool stable = true;
        for (size_t j = 0; j < m; ++j) {
            const double old_p = ws.prices[j];
            const double new_p = ws.newPrices[j];
            const double denom = std::max(old_p, 1e-12);
            if (std::abs(new_p - old_p) / denom > config_.priceTol) {
                stable = false;
                break;
            }
        }
        std::swap(ws.prices, ws.newPrices);
        if (stable) {
            result.converged = true;
            break;
        }
    }

    // Published prices: full recompute over the final bids in canonical
    // order, so they are bit-identical to the historical per-sweep
    // recompute path and independent of incremental drift.
    computePricesInto(result.bids, capacities_, result.prices);
    allocationFromPricesInto(result.bids, result.prices, result.alloc);
    if (!result.converged) {
        util::warn("market fail-safe: no equilibrium within %d iterations",
                   config_.maxIterations);
    }
    result.solveSeconds = util::monotonicSeconds() - t0;
}

EquilibriumResult
ProportionalMarket::rescaleEquilibrium(
    const EquilibriumResult &prior,
    const std::vector<double> &budgets) const
{
    SolveWorkspace ws;
    EquilibriumResult result;
    rescaleEquilibriumInto(prior, budgets, ws, result);
    return result;
}

void
ProportionalMarket::rescaleEquilibriumInto(
    const EquilibriumResult &prior, const std::vector<double> &budgets,
    SolveWorkspace &ws, EquilibriumResult &result) const
{
    REBUDGET_ASSERT(&result != &prior,
                    "rescaleEquilibriumInto: result must not alias prior");
    const double t0 = util::monotonicSeconds();
    const size_t n = models_.size();
    const size_t m = capacities_.size();
    resetResult(result);
    result.budgets.assign(budgets.begin(), budgets.end());
    // The rescaled point is an approximation by construction; its
    // converged flag merely carries the prior real solve's verdict.
    result.approximated = true;
    if (!status_.ok()) {
        result.status = status_;
        return;
    }
    if (budgets.size() != n) {
        result.status = SolveStatus::error(StatusCode::InvalidArgument,
                                           "expected %zu budgets, got %zu",
                                           n, budgets.size());
        return;
    }
    if (prior.bids.rows() != n) {
        result.status = SolveStatus::error(
            StatusCode::FailedPrecondition,
            "rescaleEquilibrium: prior has %zu players, market %zu",
            prior.bids.rows(), n);
        return;
    }
    if (prior.bids.cols() != m) {
        result.status = SolveStatus::error(
            StatusCode::FailedPrecondition,
            "rescaleEquilibrium: prior arity %zu, market %zu",
            prior.bids.cols(), m);
        return;
    }
    if (SolveStatus st = sanitizeBudgets(result.budgets); !st.ok()) {
        result.status = st;
        return;
    }

    const std::vector<double> &b = result.budgets;
    result.warmStarted = true;
    result.converged = prior.converged;
    result.iterations = 0;
    result.lambdas.assign(n, 0.0);
    result.bids.resize(n, m);
    for (size_t i = 0; i < n; ++i) {
        const double *prior_i = prior.bids.row(i);
        double *bids_i = result.bids.row(i);
        double sum = 0.0;
        for (size_t j = 0; j < m; ++j)
            sum += prior_i[j];
        if (sum > 0.0) {
            const double scale = b[i] / sum;
            for (size_t j = 0; j < m; ++j)
                bids_i[j] = prior_i[j] * scale;
        } else {
            for (size_t j = 0; j < m; ++j)
                bids_i[j] = b[i] / static_cast<double>(m);
        }
    }

    computeColumnSumsInto(result.bids, ws.colSums);
    result.prices.resize(m);
    for (size_t j = 0; j < m; ++j)
        result.prices[j] = ws.colSums[j] / capacities_[j];
    allocationFromPricesInto(result.bids, result.prices, result.alloc);

    // lambda_i = max_j dU_i/dr_j * dr_j/db_j, evaluated exactly like the
    // hill climber does at its final bids (predicted allocation against
    // the other players' money, one gradient call per player).
    ws.pred.resize(m);
    ws.grad.resize(m);
    for (size_t i = 0; i < n; ++i) {
        const double *bids_i = result.bids.row(i);
        for (size_t j = 0; j < m; ++j) {
            const double others =
                std::max(0.0, ws.colSums[j] - bids_i[j]);
            ws.pred[j] = predictedAllocation(bids_i[j], others,
                                             capacities_[j]);
        }
        models_[i]->gradient(ws.pred, ws.grad);
        double lambda = 0.0;
        bool first = true;
        for (size_t j = 0; j < m; ++j) {
            const double others =
                std::max(0.0, ws.colSums[j] - bids_i[j]);
            const double l =
                ws.grad[j] * priceResponse(bids_i[j], others,
                                           capacities_[j]);
            if (first || l > lambda) {
                lambda = l;
                first = false;
            }
        }
        result.lambdas[i] = lambda;
    }
    result.solveSeconds = util::monotonicSeconds() - t0;
}

size_t
migrateEquilibriumInto(const EquilibriumResult &prior,
                       const std::vector<std::ptrdiff_t> &prior_index,
                       size_t num_resources, EquilibriumResult &seed)
{
    REBUDGET_ASSERT(&seed != &prior,
                    "migrateEquilibriumInto: seed must not alias prior");
    resetResult(seed);
    seed.bids.assign(0, 0, 0.0);
    seed.alloc.assign(0, 0, 0.0);
    if (!prior.status.ok()) {
        seed.status = prior.status;
        return 0;
    }
    const size_t n = prior_index.size();
    const size_t m = num_resources;
    const bool have_bids = !prior.bids.empty();
    const bool have_alloc = !prior.alloc.empty();
    if ((have_bids && prior.bids.cols() != m) ||
        (have_alloc && prior.alloc.cols() != m)) {
        seed.status = SolveStatus::error(
            StatusCode::InvalidArgument,
            "migrateEquilibrium: prior has %zu resources, market has %zu",
            have_bids ? prior.bids.cols() : prior.alloc.cols(), m);
        return 0;
    }
    const size_t prior_n =
        have_bids ? prior.bids.rows()
                  : (have_alloc ? prior.alloc.rows()
                                : prior.budgets.size());
    for (size_t i = 0; i < n; ++i) {
        if (prior_index[i] >= static_cast<std::ptrdiff_t>(prior_n)) {
            seed.status = SolveStatus::error(
                StatusCode::InvalidArgument,
                "migrateEquilibrium: prior index %td out of range "
                "(prior has %zu players)", prior_index[i], prior_n);
            return 0;
        }
    }

    if (have_bids)
        seed.bids.assign(n, m, 0.0);
    if (have_alloc)
        seed.alloc.assign(n, m, 0.0);
    seed.budgets.assign(n, 0.0);
    seed.lambdas.assign(n, 0.0);
    seed.prices = prior.prices;
    size_t migrated = 0;
    for (size_t i = 0; i < n; ++i) {
        const std::ptrdiff_t pi = prior_index[i];
        if (pi < 0)
            continue; // newcomer: zero row + zero budget = cold seed
        const size_t p = static_cast<size_t>(pi);
        if (have_bids) {
            const double *src = prior.bids.row(p);
            double *dst = seed.bids.row(i);
            for (size_t j = 0; j < m; ++j)
                dst[j] = src[j];
        }
        if (have_alloc) {
            const double *src = prior.alloc.row(p);
            double *dst = seed.alloc.row(i);
            for (size_t j = 0; j < m; ++j)
                dst[j] = src[j];
        }
        if (p < prior.budgets.size())
            seed.budgets[i] = prior.budgets[p];
        if (p < prior.lambdas.size())
            seed.lambdas[i] = prior.lambdas[p];
        ++migrated;
    }
    // Not an equilibrium of the new market: zero sweeps ran over it.
    seed.approximated = true;
    seed.converged = prior.converged;
    return migrated;
}

EquilibriumResult
migrateEquilibrium(const EquilibriumResult &prior,
                   const std::vector<std::ptrdiff_t> &prior_index,
                   size_t num_resources)
{
    EquilibriumResult seed;
    migrateEquilibriumInto(prior, prior_index, num_resources, seed);
    return seed;
}

std::vector<double>
computePrices(const Matrix<double> &bids,
              const std::vector<double> &capacities)
{
    std::vector<double> prices(capacities.size(), 0.0);
    if (bids.empty())
        return prices;
    REBUDGET_ASSERT(bids.cols() == capacities.size(),
                    "computePrices: bid arity mismatch");
    computePricesInto(bids, capacities, prices);
    return prices;
}

Matrix<double>
proportionalAllocation(const Matrix<double> &bids,
                       const std::vector<double> &capacities)
{
    const std::vector<double> prices = computePrices(bids, capacities);
    Matrix<double> alloc;
    allocationFromPricesInto(bids, prices, alloc);
    return alloc;
}

bool
stronglyCompetitive(const Matrix<double> &bids)
{
    if (bids.empty())
        return false;
    const size_t m = bids.cols();
    for (size_t j = 0; j < m; ++j) {
        int bidders = 0;
        for (size_t i = 0; i < bids.rows(); ++i) {
            if (bids(i, j) > 0.0)
                ++bidders;
        }
        if (bidders < 2)
            return false;
    }
    return true;
}

} // namespace rebudget::market
