#include "rebudget/market/market.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"
#include "rebudget/util/solver_stats.h"

namespace rebudget::market {

namespace {

using util::SolveStatus;
using util::StatusCode;

/** Validate a market setup; Ok when every solve precondition holds. */
SolveStatus
validateSetup(const std::vector<const UtilityModel *> &models,
              const std::vector<double> &capacities,
              const MarketConfig &config)
{
    if (models.empty()) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "market requires at least one player");
    }
    if (capacities.empty()) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "market requires at least one resource");
    }
    for (const auto *m : models) {
        if (m == nullptr) {
            return SolveStatus::error(StatusCode::InvalidArgument,
                                      "market has a null utility model");
        }
        if (m->numResources() != capacities.size()) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "utility model arity %zu != resource count %zu",
                m->numResources(), capacities.size());
        }
    }
    for (double c : capacities) {
        if (c <= 0.0) {
            return SolveStatus::error(
                StatusCode::InvalidArgument,
                "resource capacities must be positive (got %g)", c);
        }
    }
    if (config.maxIterations <= 0) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "market maxIterations must be positive");
    }
    return SolveStatus();
}

/**
 * Clamp FP-noise negative budgets to zero in place; a genuinely
 * negative budget (beyond noise tolerance) is an error.
 */
SolveStatus
sanitizeBudgets(std::vector<double> &budgets)
{
    double scale = 1.0;
    for (double b : budgets)
        scale = std::max(scale, std::abs(b));
    const double tol = 1e-9 * scale;
    for (double &b : budgets) {
        if (b < 0.0) {
            if (b < -tol) {
                return SolveStatus::error(
                    StatusCode::InvalidArgument,
                    "budgets must be non-negative (got %g)", b);
            }
            b = 0.0;
        }
    }
    return SolveStatus();
}

/** computePrices into a reusable buffer (no per-iteration allocation). */
void
computePricesInto(const std::vector<std::vector<double>> &bids,
                  const std::vector<double> &capacities,
                  std::vector<double> &out)
{
    const size_t m = capacities.size();
    out.assign(m, 0.0);
    for (const auto &row : bids) {
        for (size_t j = 0; j < m; ++j)
            out[j] += row[j];
    }
    for (size_t j = 0; j < m; ++j)
        out[j] /= capacities[j];
}

} // namespace

ProportionalMarket::ProportionalMarket(
    std::vector<const UtilityModel *> models, std::vector<double> capacities,
    const MarketConfig &config)
    : models_(std::move(models)), capacities_(std::move(capacities)),
      config_(config), status_(validateSetup(models_, capacities_, config_))
{
}

EquilibriumResult
ProportionalMarket::findEquilibrium(const std::vector<double> &budgets) const
{
    return findEquilibrium(budgets, nullptr);
}

EquilibriumResult
ProportionalMarket::findEquilibrium(const std::vector<double> &budgets,
                                    const EquilibriumResult *prior) const
{
    const double t0 = util::monotonicSeconds();
    const size_t n = models_.size();
    const size_t m = capacities_.size();
    EquilibriumResult result;
    result.budgets = budgets;
    if (!status_.ok()) {
        result.status = status_;
        return result;
    }
    if (budgets.size() != n) {
        result.status = SolveStatus::error(StatusCode::InvalidArgument,
                                           "expected %zu budgets, got %zu",
                                           n, budgets.size());
        return result;
    }
    if (SolveStatus st = sanitizeBudgets(result.budgets); !st.ok()) {
        result.status = st;
        return result;
    }

    // A warm hint is usable only when enabled and shape-compatible; an
    // incompatible prior (different machine) degrades to a cold start.
    bool warm = config_.warmStart && prior != nullptr &&
                prior->bids.size() == n && prior->budgets.size() == n;
    if (warm) {
        for (const auto &row : prior->bids) {
            if (row.size() != m) {
                warm = false;
                break;
            }
        }
    }

    const std::vector<double> &b = result.budgets;
    result.warmStarted = warm;
    result.lambdas.assign(n, 0.0);
    result.bids.assign(n, std::vector<double>(m, 0.0));
    for (size_t i = 0; i < n; ++i) {
        // Warm start: seed from the player's prior bids scaled by its
        // budget ratio, renormalized so the row sums exactly to B_i.
        // Cold start (and players without a usable prior row): equal
        // split (step 1 of the bidding strategy).
        bool seeded = false;
        if (warm && prior->budgets[i] > 0.0) {
            double sum = 0.0;
            for (size_t j = 0; j < m; ++j)
                sum += prior->bids[i][j];
            if (sum > 0.0) {
                const double scale = b[i] / sum;
                for (size_t j = 0; j < m; ++j)
                    result.bids[i][j] = prior->bids[i][j] * scale;
                seeded = true;
            }
        }
        if (!seeded) {
            for (size_t j = 0; j < m; ++j)
                result.bids[i][j] = b[i] / static_cast<double>(m);
        }
    }

    std::vector<double> col_sums(m, 0.0);
    for (size_t j = 0; j < m; ++j) {
        for (size_t i = 0; i < n; ++i)
            col_sums[j] += result.bids[i][j];
    }
    std::vector<double> prices;
    computePricesInto(result.bids, capacities_, prices);

    // Solver scratch, reused across rounds and players: after this
    // setup the iteration loop performs no heap allocation.
    std::vector<double> others(m);
    std::vector<double> new_prices(m);
    BidResult br;
    BidScratch scratch;
    for (int iter = 0; iter < config_.maxIterations; ++iter) {
        ++result.iterations;
        // Each player re-optimizes against the latest bids (players see
        // prices, from which they infer y_ij = p_j*C_j - b_ij; updating
        // column sums in place is equivalent and matches the distributed
        // semantics).
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < m; ++j)
                others[j] = std::max(0.0, col_sums[j] - result.bids[i][j]);
            // Cold solves restart every climb from equal split (the
            // paper's step 1).  Warm solves seed each climb from the
            // player's current bids: the seeded climb expands its shift
            // from the 1% floor (see optimizeBidsInto), so a settled
            // player is an exact no-op and the sweep map reaches a true
            // fixed point instead of re-rolling each climb's
            // quantization noise every sweep.
            optimizeBidsInto(*models_[i], b[i], others, capacities_,
                             config_.bid,
                             warm ? result.bids[i].data() : nullptr, br,
                             scratch);
            for (size_t j = 0; j < m; ++j) {
                col_sums[j] += br.bids[j] - result.bids[i][j];
                result.bids[i][j] = br.bids[j];
            }
            result.lambdas[i] = br.lambda;
            result.hillClimbSteps += br.steps;
        }
        computePricesInto(result.bids, capacities_, new_prices);
        if (config_.recordPriceHistory)
            result.priceHistory.push_back(new_prices);
        bool stable = true;
        for (size_t j = 0; j < m; ++j) {
            const double old_p = prices[j];
            const double new_p = new_prices[j];
            const double denom = std::max(old_p, 1e-12);
            if (std::abs(new_p - old_p) / denom > config_.priceTol) {
                stable = false;
                break;
            }
        }
        std::swap(prices, new_prices);
        if (stable) {
            result.converged = true;
            break;
        }
    }

    result.prices = std::move(prices);
    result.alloc = proportionalAllocation(result.bids, capacities_);
    if (!result.converged) {
        util::warn("market fail-safe: no equilibrium within %d iterations",
                   config_.maxIterations);
    }
    result.solveSeconds = util::monotonicSeconds() - t0;
    return result;
}

EquilibriumResult
ProportionalMarket::rescaleEquilibrium(
    const EquilibriumResult &prior,
    const std::vector<double> &budgets) const
{
    const double t0 = util::monotonicSeconds();
    const size_t n = models_.size();
    const size_t m = capacities_.size();
    EquilibriumResult result;
    result.budgets = budgets;
    // The rescaled point is an approximation by construction; its
    // converged flag merely carries the prior real solve's verdict.
    result.approximated = true;
    if (!status_.ok()) {
        result.status = status_;
        return result;
    }
    if (budgets.size() != n) {
        result.status = SolveStatus::error(StatusCode::InvalidArgument,
                                           "expected %zu budgets, got %zu",
                                           n, budgets.size());
        return result;
    }
    if (prior.bids.size() != n) {
        result.status = SolveStatus::error(
            StatusCode::FailedPrecondition,
            "rescaleEquilibrium: prior has %zu players, market %zu",
            prior.bids.size(), n);
        return result;
    }
    for (const auto &row : prior.bids) {
        if (row.size() != m) {
            result.status = SolveStatus::error(
                StatusCode::FailedPrecondition,
                "rescaleEquilibrium: prior arity %zu, market %zu",
                row.size(), m);
            return result;
        }
    }
    if (SolveStatus st = sanitizeBudgets(result.budgets); !st.ok()) {
        result.status = st;
        return result;
    }

    const std::vector<double> &b = result.budgets;
    result.warmStarted = true;
    result.converged = prior.converged;
    result.iterations = 0;
    result.lambdas.assign(n, 0.0);
    result.bids.assign(n, std::vector<double>(m, 0.0));
    for (size_t i = 0; i < n; ++i) {
        double sum = 0.0;
        for (size_t j = 0; j < m; ++j)
            sum += prior.bids[i][j];
        if (sum > 0.0) {
            const double scale = b[i] / sum;
            for (size_t j = 0; j < m; ++j)
                result.bids[i][j] = prior.bids[i][j] * scale;
        } else {
            for (size_t j = 0; j < m; ++j)
                result.bids[i][j] = b[i] / static_cast<double>(m);
        }
    }

    computePricesInto(result.bids, capacities_, result.prices);
    result.alloc = proportionalAllocation(result.bids, capacities_);

    // lambda_i = max_j dU_i/dr_j * dr_j/db_j, evaluated exactly like the
    // hill climber does at its final bids (predicted allocation against
    // the other players' money, one gradient call per player).
    std::vector<double> col_sums(m, 0.0);
    for (size_t j = 0; j < m; ++j) {
        for (size_t i = 0; i < n; ++i)
            col_sums[j] += result.bids[i][j];
    }
    std::vector<double> pred(m);
    std::vector<double> grad(m);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < m; ++j) {
            const double others =
                std::max(0.0, col_sums[j] - result.bids[i][j]);
            pred[j] = predictedAllocation(result.bids[i][j], others,
                                          capacities_[j]);
        }
        models_[i]->gradient(pred, grad);
        double lambda = 0.0;
        bool first = true;
        for (size_t j = 0; j < m; ++j) {
            const double others =
                std::max(0.0, col_sums[j] - result.bids[i][j]);
            const double l =
                grad[j] * priceResponse(result.bids[i][j], others,
                                        capacities_[j]);
            if (first || l > lambda) {
                lambda = l;
                first = false;
            }
        }
        result.lambdas[i] = lambda;
    }
    result.solveSeconds = util::monotonicSeconds() - t0;
    return result;
}

std::vector<double>
computePrices(const std::vector<std::vector<double>> &bids,
              const std::vector<double> &capacities)
{
    const size_t m = capacities.size();
    std::vector<double> prices(m, 0.0);
    for (const auto &row : bids) {
        REBUDGET_ASSERT(row.size() == m, "computePrices: bid arity mismatch");
        for (size_t j = 0; j < m; ++j)
            prices[j] += row[j];
    }
    for (size_t j = 0; j < m; ++j)
        prices[j] /= capacities[j];
    return prices;
}

std::vector<std::vector<double>>
proportionalAllocation(const std::vector<std::vector<double>> &bids,
                       const std::vector<double> &capacities)
{
    const std::vector<double> prices = computePrices(bids, capacities);
    std::vector<std::vector<double>> alloc(
        bids.size(), std::vector<double>(capacities.size(), 0.0));
    for (size_t i = 0; i < bids.size(); ++i) {
        for (size_t j = 0; j < capacities.size(); ++j) {
            if (prices[j] > 0.0)
                alloc[i][j] = bids[i][j] / prices[j];
        }
    }
    return alloc;
}

bool
stronglyCompetitive(const std::vector<std::vector<double>> &bids)
{
    if (bids.empty())
        return false;
    const size_t m = bids.front().size();
    for (size_t j = 0; j < m; ++j) {
        int bidders = 0;
        for (const auto &row : bids) {
            if (row[j] > 0.0)
                ++bidders;
        }
        if (bidders < 2)
            return false;
    }
    return true;
}

} // namespace rebudget::market
