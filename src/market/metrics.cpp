#include "rebudget/market/metrics.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::market {

namespace {

using util::Expected;
using util::SolveStatus;
using util::StatusCode;

/**
 * min/max ratio with an FP-noise clamp: values within tolerance below
 * zero count as zero; genuinely negative values are an error.
 */
Expected<double>
clampedRange(const std::vector<double> &values, const char *what)
{
    if (values.empty()) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "%s of empty set", what);
    }
    auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
    double mn = *mn_it;
    const double mx = *mx_it;
    const double tol = 1e-9 * std::max(1.0, std::abs(mx));
    if (mn < 0.0) {
        if (mn < -tol) {
            return SolveStatus::error(StatusCode::Numerical,
                                      "%s: genuinely negative value %g",
                                      what, mn);
        }
        mn = 0.0; // FP noise (e.g. -1e-15 from the incremental gradient)
    }
    if (mx <= 0.0)
        return 1.0; // fully satiated market: no reassignment potential
    return mn / mx;
}

} // namespace

/*
 * Roster audit (dynamic-tenant refactor): every player loop in this
 * file indexes PARALLEL arrays (models[i] with alloc row i, or a
 * single per-player vector), so `i` is a dense position, never an
 * identity.  Under churn the caller rebuilds these arrays in the
 * current roster's dense order each epoch, which keeps the loops
 * correct by construction; anything lifetime-scoped is accumulated by
 * identity upstream (eval/churn.cpp) and reaches this layer as
 * positionally-aligned vectors (see lifetimeEnvyFreeness).  No loop
 * here assumes player == stable id.
 */

std::vector<double>
perPlayerUtilities(const std::vector<const UtilityModel *> &models,
                   const util::Matrix<double> &alloc)
{
    REBUDGET_ASSERT(models.size() == alloc.size(),
                    "perPlayerUtilities: players/allocations mismatch");
    std::vector<double> utils(models.size());
    for (size_t i = 0; i < models.size(); ++i)
        utils[i] = models[i]->utility(alloc[i]);
    return utils;
}

double
efficiency(const std::vector<const UtilityModel *> &models,
           const util::Matrix<double> &alloc)
{
    double sum = 0.0;
    for (double u : perPlayerUtilities(models, alloc))
        sum += u;
    return sum;
}

double
envyFreeness(const std::vector<const UtilityModel *> &models,
             const util::Matrix<double> &alloc)
{
    REBUDGET_ASSERT(models.size() == alloc.size(),
                    "envyFreeness: players/allocations mismatch");
    double ef = 1.0;
    for (size_t i = 0; i < models.size(); ++i) {
        const double own = models[i]->utility(alloc[i]);
        double best_other = own;
        for (size_t j = 0; j < alloc.size(); ++j) {
            if (j == i)
                continue;
            best_other = std::max(best_other,
                                  models[i]->utility(alloc[j]));
        }
        if (best_other <= 0.0)
            continue; // utility zero everywhere: nothing to envy
        ef = std::min(ef, own / best_other);
    }
    return ef;
}

util::Expected<double>
marketUtilityRange(const std::vector<double> &lambdas)
{
    return clampedRange(lambdas, "marketUtilityRange");
}

util::Expected<double>
marketBudgetRange(const std::vector<double> &budgets)
{
    return clampedRange(budgets, "marketBudgetRange");
}

double
lifetimeEnvyFreeness(const std::vector<double> &own,
                     const std::vector<double> &best_other)
{
    REBUDGET_ASSERT(own.size() == best_other.size(),
                    "lifetimeEnvyFreeness: tenant array mismatch");
    double ef = 1.0;
    for (size_t i = 0; i < own.size(); ++i) {
        if (best_other[i] <= 0.0)
            continue; // zero utility everywhere: nothing to envy
        ef = std::min(ef, own[i] / best_other[i]);
    }
    return ef;
}

double
poaLowerBound(double mur)
{
    mur = std::clamp(mur, 0.0, 1.0);
    if (mur >= 0.5)
        return 1.0 - 1.0 / (4.0 * mur);
    return mur;
}

double
envyFreenessLowerBound(double mbr)
{
    mbr = std::clamp(mbr, 0.0, 1.0);
    return 2.0 * std::sqrt(1.0 + mbr) - 2.0;
}

double
mbrForEnvyFreenessTarget(double target_ef)
{
    if (target_ef < 0.0)
        return 0.0;
    const double half = (target_ef + 2.0) / 2.0;
    const double mbr = half * half - 1.0;
    return std::clamp(mbr, 0.0, 1.0);
}

} // namespace rebudget::market
