#include "rebudget/market/metrics.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::market {

std::vector<double>
perPlayerUtilities(const std::vector<const UtilityModel *> &models,
                   const std::vector<std::vector<double>> &alloc)
{
    if (models.size() != alloc.size())
        util::fatal("perPlayerUtilities: players/allocations mismatch");
    std::vector<double> utils(models.size());
    for (size_t i = 0; i < models.size(); ++i)
        utils[i] = models[i]->utility(alloc[i]);
    return utils;
}

double
efficiency(const std::vector<const UtilityModel *> &models,
           const std::vector<std::vector<double>> &alloc)
{
    double sum = 0.0;
    for (double u : perPlayerUtilities(models, alloc))
        sum += u;
    return sum;
}

double
envyFreeness(const std::vector<const UtilityModel *> &models,
             const std::vector<std::vector<double>> &alloc)
{
    if (models.size() != alloc.size())
        util::fatal("envyFreeness: players/allocations mismatch");
    double ef = 1.0;
    for (size_t i = 0; i < models.size(); ++i) {
        const double own = models[i]->utility(alloc[i]);
        double best_other = own;
        for (size_t j = 0; j < alloc.size(); ++j) {
            if (j == i)
                continue;
            best_other = std::max(best_other,
                                  models[i]->utility(alloc[j]));
        }
        if (best_other <= 0.0)
            continue; // utility zero everywhere: nothing to envy
        ef = std::min(ef, own / best_other);
    }
    return ef;
}

double
marketUtilityRange(const std::vector<double> &lambdas)
{
    if (lambdas.empty())
        util::fatal("marketUtilityRange of empty lambda set");
    const auto [mn, mx] =
        std::minmax_element(lambdas.begin(), lambdas.end());
    if (*mn < 0.0)
        util::fatal("negative lambda %f", *mn);
    if (*mx <= 0.0)
        return 1.0; // fully satiated market: no reassignment potential
    return *mn / *mx;
}

double
marketBudgetRange(const std::vector<double> &budgets)
{
    if (budgets.empty())
        util::fatal("marketBudgetRange of empty budget set");
    const auto [mn, mx] =
        std::minmax_element(budgets.begin(), budgets.end());
    if (*mn < 0.0)
        util::fatal("negative budget %f", *mn);
    if (*mx <= 0.0)
        return 1.0;
    return *mn / *mx;
}

double
poaLowerBound(double mur)
{
    if (mur < 0.0 || mur > 1.0)
        util::fatal("MUR must be in [0,1], got %f", mur);
    if (mur >= 0.5)
        return 1.0 - 1.0 / (4.0 * mur);
    return mur;
}

double
envyFreenessLowerBound(double mbr)
{
    if (mbr < 0.0 || mbr > 1.0)
        util::fatal("MBR must be in [0,1], got %f", mbr);
    return 2.0 * std::sqrt(1.0 + mbr) - 2.0;
}

double
mbrForEnvyFreenessTarget(double target_ef)
{
    if (target_ef < 0.0)
        return 0.0;
    const double half = (target_ef + 2.0) / 2.0;
    const double mbr = half * half - 1.0;
    return std::clamp(mbr, 0.0, 1.0);
}

} // namespace rebudget::market
