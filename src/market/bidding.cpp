#include "rebudget/market/bidding.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::market {

namespace {

// Tiny competing-bid floor: avoids an infinite marginal when a resource
// currently has no bids at all (the first epsilon of money would buy the
// whole capacity).
constexpr double kMinCompetingBid = 1e-9;

std::vector<double>
predictAll(const std::vector<double> &bids, const std::vector<double> &others,
           const std::vector<double> &capacities)
{
    std::vector<double> alloc(bids.size());
    for (size_t j = 0; j < bids.size(); ++j)
        alloc[j] = predictedAllocation(bids[j], others[j], capacities[j]);
    return alloc;
}

} // namespace

double
predictedAllocation(double bid, double others_bids, double capacity)
{
    if (bid <= 0.0)
        return 0.0;
    if (others_bids <= 0.0)
        return capacity;
    return bid / (bid + others_bids) * capacity;
}

double
bidMarginal(const UtilityModel &model, size_t resource,
            const std::vector<double> &bids,
            const std::vector<double> &others,
            const std::vector<double> &capacities)
{
    REBUDGET_ASSERT(resource < bids.size(), "resource out of range");
    const std::vector<double> alloc = predictAll(bids, others, capacities);
    const double du_dr = model.marginal(resource, alloc);
    const double y = std::max(others[resource], kMinCompetingBid);
    const double b = std::max(bids[resource], 0.0);
    const double denom = (b + y) * (b + y);
    const double dr_db = capacities[resource] * y / denom;
    return du_dr * dr_db;
}

BidResult
optimizeBids(const UtilityModel &model, double budget,
             const std::vector<double> &others,
             const std::vector<double> &capacities,
             const BidOptimizerConfig &config)
{
    const size_t m = model.numResources();
    if (others.size() != m || capacities.size() != m)
        util::fatal("optimizeBids: arity mismatch");
    if (budget < 0.0)
        util::fatal("optimizeBids: negative budget");

    BidResult result;
    result.bids.assign(m, budget / static_cast<double>(m));
    result.lambdas.assign(m, 0.0);

    auto compute_lambdas = [&]() {
        for (size_t j = 0; j < m; ++j) {
            result.lambdas[j] =
                bidMarginal(model, j, result.bids, others, capacities);
        }
    };

    if (budget <= 0.0 || m == 1) {
        compute_lambdas();
        result.lambda =
            *std::max_element(result.lambdas.begin(), result.lambdas.end());
        return result;
    }

    // Shift amount S starts at half of the (equal) per-resource bid and
    // halves every step (paper Section 4.1.2).
    double shift = budget / static_cast<double>(m) / 2.0;
    const double min_shift = config.minShiftFraction * budget;

    for (int step = 0; step < config.maxSteps; ++step) {
        compute_lambdas();
        // Highest-lambda resource receives money; lowest-lambda resource
        // with a non-zero bid provides it.
        size_t jmax = 0;
        for (size_t j = 1; j < m; ++j) {
            if (result.lambdas[j] > result.lambdas[jmax])
                jmax = j;
        }
        size_t jmin = m;
        for (size_t j = 0; j < m; ++j) {
            if (result.bids[j] > 0.0 &&
                (jmin == m || result.lambdas[j] < result.lambdas[jmin])) {
                jmin = j;
            }
        }
        if (jmin == m || jmin == jmax)
            break;
        const double lmax = result.lambdas[jmax];
        const double lmin = result.lambdas[jmin];
        if (lmax <= 0.0 || (lmax - lmin) <= config.lambdaTol * lmax)
            break; // condition (a): lambdas agree within tolerance
        const double amount = std::min(shift, result.bids[jmin]);
        result.bids[jmin] -= amount;
        result.bids[jmax] += amount;
        ++result.steps;
        shift *= 0.5;
        if (shift < min_shift)
            break; // condition (b): shift below 1% of budget
    }

    compute_lambdas();
    result.lambda =
        *std::max_element(result.lambdas.begin(), result.lambdas.end());
    return result;
}

} // namespace rebudget::market
