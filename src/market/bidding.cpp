#include "rebudget/market/bidding.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::market {

namespace {

// Tiny competing-bid floor: avoids an infinite marginal when a resource
// currently has no bids at all (the first epsilon of money would buy the
// whole capacity).
constexpr double kMinCompetingBid = 1e-9;

std::vector<double>
predictAll(std::span<const double> bids, std::span<const double> others,
           std::span<const double> capacities)
{
    std::vector<double> alloc(bids.size());
    for (size_t j = 0; j < bids.size(); ++j)
        alloc[j] = predictedAllocation(bids[j], others[j], capacities[j]);
    return alloc;
}

} // namespace

double
priceResponse(double bid, double others_bids, double capacity)
{
    const double y = std::max(others_bids, kMinCompetingBid);
    const double b = std::max(bid, 0.0);
    const double denom = (b + y) * (b + y);
    return capacity * y / denom;
}

double
predictedAllocation(double bid, double others_bids, double capacity)
{
    if (bid <= 0.0)
        return 0.0;
    if (others_bids <= 0.0)
        return capacity;
    return bid / (bid + others_bids) * capacity;
}

double
bidMarginal(const UtilityModel &model, size_t resource,
            std::span<const double> bids, std::span<const double> others,
            std::span<const double> capacities)
{
    REBUDGET_ASSERT(resource < bids.size(), "resource out of range");
    const std::vector<double> alloc = predictAll(bids, others, capacities);
    const double du_dr = model.marginal(resource, alloc);
    const double dr_db =
        priceResponse(bids[resource], others[resource],
                      capacities[resource]);
    return du_dr * dr_db;
}

BidResult
optimizeBids(const UtilityModel &model, double budget,
             std::span<const double> others,
             std::span<const double> capacities,
             const BidOptimizerConfig &config)
{
    BidResult result;
    BidScratch scratch;
    optimizeBidsInto(model, budget, others, capacities, config, nullptr,
                     result, scratch);
    return result;
}

void
optimizeBidsInto(const UtilityModel &model, double budget,
                 std::span<const double> others,
                 std::span<const double> capacities,
                 const BidOptimizerConfig &config, const double *initial,
                 BidResult &result, BidScratch &scratch)
{
    const size_t m = model.numResources();
    result.status = util::SolveStatus();
    result.lambda = 0.0;
    result.steps = 0;
    if (others.size() != m || capacities.size() != m) {
        result.status = util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "optimizeBids: arity mismatch (model %zu, others %zu, "
            "capacities %zu)", m, others.size(), capacities.size());
        result.bids.assign(m, 0.0);
        result.lambdas.assign(m, 0.0);
        return;
    }
    if (budget < 0.0) {
        // FP noise from budget arithmetic upstream is treated as zero;
        // a genuinely negative budget is a caller error.
        if (budget > -1e-9 * std::max(1.0, std::abs(budget))) {
            budget = 0.0;
        } else {
            result.status = util::SolveStatus::error(
                util::StatusCode::InvalidArgument,
                "optimizeBids: negative budget %g", budget);
            result.bids.assign(m, 0.0);
            result.lambdas.assign(m, 0.0);
            return;
        }
    }
    if (initial != nullptr)
        result.bids.assign(initial, initial + m);
    else
        result.bids.assign(m, budget / static_cast<double>(m));
    result.lambdas.assign(m, 0.0);
    scratch.alloc.resize(m);
    scratch.grad.resize(m);
    scratch.drdb.resize(m);

    // Predicted allocation and price response per resource, maintained
    // incrementally: a bid shift touches exactly two resources, so only
    // those two entries are refreshed afterwards.
    auto refresh = [&](size_t j) {
        scratch.alloc[j] =
            predictedAllocation(result.bids[j], others[j], capacities[j]);
        scratch.drdb[j] =
            priceResponse(result.bids[j], others[j], capacities[j]);
    };
    for (size_t j = 0; j < m; ++j)
        refresh(j);

    auto compute_lambdas = [&]() {
        model.gradient(scratch.alloc, scratch.grad);
        for (size_t j = 0; j < m; ++j)
            result.lambdas[j] = scratch.grad[j] * scratch.drdb[j];
    };

    if (budget <= 0.0 || m == 1) {
        compute_lambdas();
        result.lambda =
            *std::max_element(result.lambdas.begin(), result.lambdas.end());
        return;
    }

    // Shift amount S.  Cold start (equal split): S begins at half the
    // per-resource bid and halves every step (paper Section 4.1.2).
    // Seeded start: the bids are presumed near-optimal, so S begins at
    // the 1% floor and doubles while the climb keeps moving money in the
    // same direction (capped at the cold start's B/(2m)), then halves
    // once the direction flips -- a player already within the lambda
    // tolerance makes no move at all, so re-optimizing a settled player
    // is an exact no-op instead of re-rolling the climb's quantization
    // noise.
    const double shift_cap = budget / static_cast<double>(m) / 2.0;
    const double min_shift = config.minShiftFraction * budget;
    double shift = initial != nullptr ? std::min(min_shift, shift_cap)
                                      : shift_cap;
    bool expanding = initial != nullptr;
    size_t prev_jmin = m;
    size_t prev_jmax = m;

    // True while result.lambdas reflects the current bids; avoids a
    // redundant recomputation when the loop exits right after a sweep.
    bool lambdas_current = false;
    for (int step = 0; step < config.maxSteps; ++step) {
        compute_lambdas();
        lambdas_current = true;
        // Highest-lambda resource receives money; lowest-lambda resource
        // with a non-zero bid provides it.
        size_t jmax = 0;
        for (size_t j = 1; j < m; ++j) {
            if (result.lambdas[j] > result.lambdas[jmax])
                jmax = j;
        }
        size_t jmin = m;
        for (size_t j = 0; j < m; ++j) {
            if (result.bids[j] > 0.0 &&
                (jmin == m || result.lambdas[j] < result.lambdas[jmin])) {
                jmin = j;
            }
        }
        if (jmin == m || jmin == jmax)
            break;
        const double lmax = result.lambdas[jmax];
        const double lmin = result.lambdas[jmin];
        if (lmax <= 0.0 || (lmax - lmin) <= config.lambdaTol * lmax)
            break; // condition (a): lambdas agree within tolerance
        if (expanding && prev_jmin != m &&
            (jmin != prev_jmin || jmax != prev_jmax))
            expanding = false; // direction flipped: start contracting
        prev_jmin = jmin;
        prev_jmax = jmax;
        const double amount = std::min(shift, result.bids[jmin]);
        result.bids[jmin] -= amount;
        result.bids[jmax] += amount;
        refresh(jmin);
        refresh(jmax);
        lambdas_current = false;
        ++result.steps;
        if (expanding) {
            shift *= 2.0;
            if (shift >= shift_cap) {
                shift = shift_cap;
                expanding = false;
            }
        } else {
            shift *= 0.5;
            if (shift < min_shift)
                break; // condition (b): shift below 1% of budget
        }
    }

    if (!lambdas_current)
        compute_lambdas();
    result.lambda =
        *std::max_element(result.lambdas.begin(), result.lambdas.end());
}

} // namespace rebudget::market
