#include "rebudget/market/bidding.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::market {

namespace {

std::vector<double>
predictAll(std::span<const double> bids, std::span<const double> others,
           std::span<const double> capacities)
{
    std::vector<double> alloc(bids.size());
    for (size_t j = 0; j < bids.size(); ++j)
        alloc[j] = predictedAllocation(bids[j], others[j], capacities[j]);
    return alloc;
}

} // namespace

double
priceResponse(double bid, double others_bids, double capacity)
{
    const double y = std::max(others_bids, kMinCompetingBid);
    const double b = std::max(bid, 0.0);
    const double denom = (b + y) * (b + y);
    return capacity * y / denom;
}

double
predictedAllocation(double bid, double others_bids, double capacity)
{
    if (bid <= 0.0)
        return 0.0;
    if (others_bids <= 0.0)
        return capacity;
    return bid / (bid + others_bids) * capacity;
}

double
bidMarginal(const UtilityModel &model, size_t resource,
            std::span<const double> bids, std::span<const double> others,
            std::span<const double> capacities)
{
    REBUDGET_ASSERT(resource < bids.size(), "resource out of range");
    const std::vector<double> alloc = predictAll(bids, others, capacities);
    const double du_dr = model.marginal(resource, alloc);
    const double dr_db =
        priceResponse(bids[resource], others[resource],
                      capacities[resource]);
    return du_dr * dr_db;
}

BidResult
optimizeBids(const UtilityModel &model, double budget,
             std::span<const double> others,
             std::span<const double> capacities,
             const BidOptimizerConfig &config)
{
    BidResult result;
    BidScratch scratch;
    optimizeBidsInto(model, budget, others, capacities, config, nullptr,
                     result, scratch);
    return result;
}

void
optimizeBidsInto(const UtilityModel &model, double budget,
                 std::span<const double> others,
                 std::span<const double> capacities,
                 const BidOptimizerConfig &config, const double *initial,
                 BidResult &result, BidScratch &scratch)
{
    const size_t m = model.numResources();
    result.status = util::SolveStatus();
    result.lambda = 0.0;
    result.steps = 0;
    if (others.size() != m || capacities.size() != m) {
        result.status = util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "optimizeBids: arity mismatch (model %zu, others %zu, "
            "capacities %zu)", m, others.size(), capacities.size());
        result.bids.assign(m, 0.0);
        result.lambdas.assign(m, 0.0);
        return;
    }
    if (budget < 0.0) {
        // FP noise from budget arithmetic upstream is treated as zero;
        // a genuinely negative budget is a caller error.
        if (budget > -1e-9 * std::max(1.0, std::abs(budget))) {
            budget = 0.0;
        } else {
            result.status = util::SolveStatus::error(
                util::StatusCode::InvalidArgument,
                "optimizeBids: negative budget %g", budget);
            result.bids.assign(m, 0.0);
            result.lambdas.assign(m, 0.0);
            return;
        }
    }
    if (initial != nullptr)
        result.bids.assign(initial, initial + m);
    else
        result.bids.assign(m, budget / static_cast<double>(m));
    result.lambdas.assign(m, 0.0);
    scratch.alloc.resize(m);
    scratch.grad.resize(m);
    scratch.drdb.resize(m);

    // Predicted allocation and price response per resource, maintained
    // incrementally: a bid shift touches exactly two resources, so only
    // those two entries are refreshed afterwards.
    auto refresh = [&](size_t j) {
        scratch.alloc[j] =
            predictedAllocation(result.bids[j], others[j], capacities[j]);
        scratch.drdb[j] =
            priceResponse(result.bids[j], others[j], capacities[j]);
    };
    for (size_t j = 0; j < m; ++j)
        refresh(j);

    auto compute_lambdas = [&]() {
        model.gradient(scratch.alloc, scratch.grad);
        for (size_t j = 0; j < m; ++j)
            result.lambdas[j] = scratch.grad[j] * scratch.drdb[j];
    };

    if (budget <= 0.0 || m == 1) {
        compute_lambdas();
        result.lambda =
            *std::max_element(result.lambdas.begin(), result.lambdas.end());
        return;
    }

    // Shift amount S.  Cold start (equal split): S begins at half the
    // per-resource bid and halves every step (paper Section 4.1.2).
    // Seeded start: the bids are presumed near-optimal, so S begins at
    // the 1% floor and doubles while the climb keeps moving money in the
    // same direction (capped at the cold start's B/(2m)), then halves
    // once the direction flips -- a player already within the lambda
    // tolerance makes no move at all, so re-optimizing a settled player
    // is an exact no-op instead of re-rolling the climb's quantization
    // noise.
    const double shift_cap = budget / static_cast<double>(m) / 2.0;
    const double min_shift = config.minShiftFraction * budget;
    double shift = initial != nullptr ? std::min(min_shift, shift_cap)
                                      : shift_cap;
    bool expanding = initial != nullptr;
    size_t prev_jmin = m;
    size_t prev_jmax = m;

    // True while result.lambdas reflects the current bids; avoids a
    // redundant recomputation when the loop exits right after a sweep.
    bool lambdas_current = false;
    for (int step = 0; step < config.maxSteps; ++step) {
        compute_lambdas();
        lambdas_current = true;
        // Highest-lambda resource receives money; lowest-lambda resource
        // with a non-zero bid provides it.
        size_t jmax = 0;
        for (size_t j = 1; j < m; ++j) {
            if (result.lambdas[j] > result.lambdas[jmax])
                jmax = j;
        }
        size_t jmin = m;
        for (size_t j = 0; j < m; ++j) {
            if (result.bids[j] > 0.0 &&
                (jmin == m || result.lambdas[j] < result.lambdas[jmin])) {
                jmin = j;
            }
        }
        if (jmin == m || jmin == jmax)
            break;
        const double lmax = result.lambdas[jmax];
        const double lmin = result.lambdas[jmin];
        if (lmax <= 0.0 || (lmax - lmin) <= config.lambdaTol * lmax)
            break; // condition (a): lambdas agree within tolerance
        if (expanding && prev_jmin != m &&
            (jmin != prev_jmin || jmax != prev_jmax))
            expanding = false; // direction flipped: start contracting
        prev_jmin = jmin;
        prev_jmax = jmax;
        const double amount = std::min(shift, result.bids[jmin]);
        result.bids[jmin] -= amount;
        result.bids[jmax] += amount;
        refresh(jmin);
        refresh(jmax);
        lambdas_current = false;
        ++result.steps;
        if (expanding) {
            shift *= 2.0;
            if (shift >= shift_cap) {
                shift = shift_cap;
                expanding = false;
            }
        } else {
            shift *= 0.5;
            if (shift < min_shift)
                break; // condition (b): shift below 1% of budget
        }
    }

    if (!lambdas_current)
        compute_lambdas();
    result.lambda =
        *std::max_element(result.lambdas.begin(), result.lambdas.end());
}

void
bestResponseBidsInto(const UtilityModel &model, double budget,
                     std::span<const double> others,
                     std::span<const double> capacities, double damping,
                     const double *current, BidResult &result,
                     BidScratch &scratch)
{
    const size_t m = model.numResources();
    result.status = util::SolveStatus();
    result.lambda = 0.0;
    result.steps = 0;
    if (others.size() != m || capacities.size() != m) {
        result.status = util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "bestResponseBids: arity mismatch (model %zu, others %zu, "
            "capacities %zu)", m, others.size(), capacities.size());
        result.bids.assign(m, 0.0);
        result.lambdas.assign(m, 0.0);
        return;
    }
    if (budget < 0.0) {
        // Same FP-noise tolerance as the hill climber.
        if (budget > -1e-9 * std::max(1.0, std::abs(budget))) {
            budget = 0.0;
        } else {
            result.status = util::SolveStatus::error(
                util::StatusCode::InvalidArgument,
                "bestResponseBids: negative budget %g", budget);
            result.bids.assign(m, 0.0);
            result.lambdas.assign(m, 0.0);
            return;
        }
    }
    if (current != nullptr)
        result.bids.assign(current, current + m);
    else
        result.bids.assign(m, budget / static_cast<double>(m));
    result.lambdas.resize(m);

    // m == 2 fast path: delegate to the inline pair reply shared with
    // the market's sweep loop (see bestResponsePair in bidding.h), so
    // both entry points publish identical bids.
    if (m == 2 && budget > 0.0) {
        const BestResponsePairReply r = bestResponsePair(
            model, budget, result.bids[0], result.bids[1], others[0],
            others[1], capacities[0], capacities[1], damping);
        result.bids[0] = r.b0;
        result.bids[1] = r.b1;
        result.lambdas[0] = r.l0;
        result.lambdas[1] = r.l1;
        result.lambda = r.lambda;
        result.steps = r.steps;
        return;
    }

    scratch.alloc.resize(m);
    scratch.grad.resize(m);
    scratch.compete.resize(m);
    scratch.weight.resize(m);
    scratch.order.resize(m);

    // Operating point: predicted allocation under the current bids, one
    // gradient call.  This is the only model evaluation on this path.
    for (size_t j = 0; j < m; ++j) {
        scratch.alloc[j] = predictedAllocation(result.bids[j], others[j],
                                               capacities[j]);
        scratch.compete[j] = std::max(others[j], kMinCompetingBid);
    }
    model.gradientFast(scratch.alloc, scratch.grad);

    // Reported lambdas: operating-point gradient times the price
    // response at whatever bids this function publishes (set at exit).
    auto publish_lambdas = [&]() {
        double lambda = 0.0;
        for (size_t j = 0; j < m; ++j) {
            const double l =
                scratch.grad[j] * priceResponse(result.bids[j],
                                                others[j],
                                                capacities[j]);
            result.lambdas[j] = l;
            if (j == 0 || l > lambda)
                lambda = l;
        }
        result.lambda = lambda;
    };

    if (budget <= 0.0) {
        std::fill(result.bids.begin(), result.bids.end(), 0.0);
        publish_lambdas();
        return;
    }
    if (m == 1) {
        if (result.bids[0] != budget) {
            result.bids[0] = budget;
            result.steps = 1;
        }
        publish_lambdas();
        return;
    }

    // Linearized per-share weights w_j = g_j * C_j; sqrt(w_j y_j) is
    // the water-filling kernel.  A fully saturated player (all w = 0)
    // has no signal and keeps its current bids.
    bool any_weight = false;
    for (size_t j = 0; j < m; ++j) {
        const double w =
            std::max(scratch.grad[j], 0.0) * capacities[j];
        scratch.weight[j] = std::sqrt(w * scratch.compete[j]);
        any_weight = any_weight || scratch.weight[j] > 0.0;
        scratch.order[j] = static_cast<uint32_t>(j);
    }
    if (!any_weight) {
        publish_lambdas();
        return;
    }

    // Deterministic insertion sort (m is small; no allocation, stable
    // on ties unlike std::sort) by marginal-at-zero w_j / y_j
    // descending, i.e. weight_j / y_j since weight = sqrt(w y) and
    // w / y = (weight / y)^2.
    for (size_t a = 1; a < m; ++a) {
        const uint32_t key = scratch.order[a];
        const double rk = scratch.weight[key] / scratch.compete[key];
        size_t b = a;
        while (b > 0) {
            const uint32_t prev = scratch.order[b - 1];
            if (scratch.weight[prev] / scratch.compete[prev] >= rk)
                break;
            scratch.order[b] = prev;
            --b;
        }
        scratch.order[b] = key;
    }

    // Water-fill: grow the included set T in sorted order while the
    // next resource's bid would still be positive.
    double sum_y = 0.0;
    double sum_sqrt = 0.0;
    size_t included = 0;
    for (size_t k = 0; k < m; ++k) {
        const uint32_t j = scratch.order[k];
        if (scratch.weight[j] <= 0.0)
            break;
        const double trial_y = sum_y + scratch.compete[j];
        const double trial_s = sum_sqrt + scratch.weight[j];
        // b_j > 0 iff weight_j * (B + sum_T y) / sum_T sqrt > y_j with
        // j included in T.
        if (scratch.weight[j] * (budget + trial_y) <=
            scratch.compete[j] * trial_s)
            break;
        sum_y = trial_y;
        sum_sqrt = trial_s;
        ++included;
    }
    if (included == 0) {
        publish_lambdas();
        return;
    }

    const double scale = (budget + sum_y) / sum_sqrt;
    bool moved = false;
    for (size_t k = 0; k < m; ++k) {
        const uint32_t j = scratch.order[k];
        const double reply =
            k < included
                ? std::max(0.0, scratch.weight[j] * scale -
                                    scratch.compete[j])
                : 0.0;
        const double prev = result.bids[j];
        const double next = prev + damping * (reply - prev);
        result.bids[j] = next;
        moved = moved || next != prev;
    }
    result.steps = moved ? 1 : 0;
    publish_lambdas();
}

} // namespace rebudget::market
