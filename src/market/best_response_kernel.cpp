#include "rebudget/market/best_response_kernel.h"

#include "rebudget/market/bidding.h"
#include "rebudget/util/logging.h"

/*
 * Compiled with -mavx2 regardless of the project-wide architecture
 * flags (see src/market/CMakeLists.txt) so portable builds carry the
 * fused kernel too; bestResponseDuoAvailable() gates execution on a
 * runtime CPU check, mirroring how a dispatching libc would.  Keep
 * everything AVX2-specific inside this translation unit.
 */
#if defined(__x86_64__) && defined(__GLIBC__) && defined(__AVX2__)
#define REBUDGET_BR_DUO 1
#include <immintrin.h>
// glibc libmvec's AVX2 4-lane pow, by its vector-ABI mangled name (the
// same library the 2-lane gradientFast path uses, see
// utility_model.cpp).  Linked through libm's AS_NEEDED linker script.
extern "C" __m256d _ZGVdN4vv_pow(__m256d x, __m256d y);
#endif

namespace rebudget::market {

bool
bestResponseDuoAvailable()
{
#if REBUDGET_BR_DUO
    static const bool ok = __builtin_cpu_supports("avx2");
    return ok;
#else
    return false;
#endif
}

#if REBUDGET_BR_DUO

void
bestResponseDuo(const double *qa, const double *qb, double budget_a,
                double budget_b, double *bids_a, double *bids_b,
                double oa0, double oa1, double ob0, double ob1, double c0,
                double c1, double damping, double *lambda_a,
                double *lambda_b, int *steps, double *acc0, double *acc1)
{
    // Lane convention: lane 0 = player A, lane 1 = player B, for every
    // player-wise __m128d below.  The arithmetic tracks
    // bestResponsePair expression for expression (same association
    // order) so the two paths agree to the ulps the pow variants
    // differ by.
    const __m128d bud = _mm_setr_pd(budget_a, budget_b);
    const __m128d b0 = _mm_setr_pd(bids_a[0], bids_b[0]);
    const __m128d b1 = _mm_setr_pd(bids_a[1], bids_b[1]);
    const __m128d o0 = _mm_setr_pd(oa0, ob0);
    const __m128d o1 = _mm_setr_pd(oa1, ob1);
    const __m128d zero = _mm_setzero_pd();
    const __m128d ones = _mm_set1_pd(1.0);
    const __m128d kmin = _mm_set1_pd(kMinCompetingBid);
    const __m128d vc0 = _mm_set1_pd(c0);
    const __m128d vc1 = _mm_set1_pd(c1);

    const __m128d y0 = _mm_max_pd(o0, kmin);
    const __m128d y1 = _mm_max_pd(o1, kmin);

    // Proportional shares at the operating point: the caller
    // guarantees the all-positive fast path, so the combined
    // reciprocal serves both resources (one divide per player pair).
    const __m128d t0 = _mm_add_pd(b0, o0);
    const __m128d t1 = _mm_add_pd(b1, o1);
    const __m128d inv = _mm_div_pd(ones, _mm_mul_pd(t0, t1));
    const __m128d op0 =
        _mm_mul_pd(_mm_mul_pd(_mm_mul_pd(b0, t1), inv), vc0);
    const __m128d op1 =
        _mm_mul_pd(_mm_mul_pd(_mm_mul_pd(b1, t0), inv), vc1);

    // Power-law gradient from the hot quads [c, w*e, e-1, 1/c]:
    // g_j = (w*e) * pow(max(1e-12, op_j / c), e-1) / c with the
    // divides as reciprocal multiplies, exactly like
    // PowerLawUtility::gradientFast -- except all four pow lanes ride
    // one libmvec call.
    const __m128d ic0 = _mm_setr_pd(qa[3], qb[3]);
    const __m128d ic1 = _mm_setr_pd(qa[7], qb[7]);
    const __m128d floor12 = _mm_set1_pd(1e-12);
    const __m128d x0 = _mm_max_pd(_mm_mul_pd(op0, ic0), floor12);
    const __m128d x1 = _mm_max_pd(_mm_mul_pd(op1, ic1), floor12);
    const __m256d x = _mm256_set_m128d(x1, x0);
    const __m256d e = _mm256_setr_pd(qa[2], qb[2], qa[6], qb[6]);
    const __m256d p = _ZGVdN4vv_pow(x, e);
    const __m128d p0 = _mm256_castpd256_pd128(p);
    const __m128d p1 = _mm256_extractf128_pd(p, 1);
    const __m128d we0 = _mm_setr_pd(qa[1], qb[1]);
    const __m128d we1 = _mm_setr_pd(qa[5], qb[5]);
    const __m128d g0 = _mm_mul_pd(_mm_mul_pd(we0, p0), ic0);
    const __m128d g1 = _mm_mul_pd(_mm_mul_pd(we1, p1), ic1);

    // Water-fill weights s_j = sqrt(max(g_j, 0) * C_j * y_j); one
    // packed sqrt covers both players per resource.
    const __m128d s0 = _mm_sqrt_pd(
        _mm_mul_pd(_mm_mul_pd(_mm_max_pd(g0, zero), vc0), y0));
    const __m128d s1 = _mm_sqrt_pd(
        _mm_mul_pd(_mm_mul_pd(_mm_max_pd(g1, zero), vc1), y1));

    // Branchless water-fill, per lane: order the two resources by
    // s_j / y_j (cross-multiplied, ties keep resource 0 on top like
    // the stable generic sort), include the second iff its bid stays
    // positive under the shared scale.
    const __m128d hi0 =
        _mm_cmpge_pd(_mm_mul_pd(s0, y1), _mm_mul_pd(s1, y0));
    const __m128d sh = _mm_blendv_pd(s1, s0, hi0);
    const __m128d yh = _mm_blendv_pd(y1, y0, hi0);
    const __m128d sl = _mm_blendv_pd(s0, s1, hi0);
    const __m128d yl = _mm_blendv_pd(y0, y1, hi0);
    const __m128d tot = _mm_add_pd(bud, _mm_add_pd(yh, yl));
    const __m128d ssum = _mm_add_pd(sh, sl);
    const __m128d both =
        _mm_and_pd(_mm_cmpgt_pd(sl, zero),
                   _mm_cmpgt_pd(_mm_mul_pd(sl, tot),
                                _mm_mul_pd(yl, ssum)));
    // A fully saturated player (both s zero) keeps its bids; its lane
    // divides by 1 instead of sh == 0 so no spurious FP exception is
    // raised on the masked-out result.
    const __m128d active =
        _mm_or_pd(_mm_cmpgt_pd(s0, zero), _mm_cmpgt_pd(s1, zero));
    const __m128d num = _mm_blendv_pd(_mm_add_pd(bud, yh), tot, both);
    const __m128d den =
        _mm_blendv_pd(ones, _mm_blendv_pd(sh, ssum, both), active);
    const __m128d scale = _mm_div_pd(num, den);
    const __m128d rh =
        _mm_max_pd(zero, _mm_sub_pd(_mm_mul_pd(sh, scale), yh));
    const __m128d rl = _mm_and_pd(
        both, _mm_max_pd(zero, _mm_sub_pd(_mm_mul_pd(sl, scale), yl)));
    const __m128d r0 = _mm_blendv_pd(rl, rh, hi0);
    const __m128d r1 = _mm_blendv_pd(rh, rl, hi0);

    // Damped blend toward the reply; saturated lanes stay put exactly,
    // so the moved test below is false for them automatically.
    const __m128d vdamp = _mm_set1_pd(damping);
    const __m128d n0 = _mm_blendv_pd(
        b0, _mm_add_pd(b0, _mm_mul_pd(vdamp, _mm_sub_pd(r0, b0))),
        active);
    const __m128d n1 = _mm_blendv_pd(
        b1, _mm_add_pd(b1, _mm_mul_pd(vdamp, _mm_sub_pd(r1, b1))),
        active);
    const __m128d moved =
        _mm_or_pd(_mm_cmpneq_pd(n0, b0), _mm_cmpneq_pd(n1, b1));
    *steps += __builtin_popcount(
        static_cast<unsigned>(_mm_movemask_pd(moved)));

    // Published lambdas at the new bids: grad * dr/db with the two
    // divides folded into one combined reciprocal, matching
    // bestResponsePair's publish.
    const __m128d pb0 = _mm_max_pd(n0, zero);
    const __m128d pb1 = _mm_max_pd(n1, zero);
    __m128d d0 = _mm_add_pd(pb0, y0);
    d0 = _mm_mul_pd(d0, d0);
    __m128d d1 = _mm_add_pd(pb1, y1);
    d1 = _mm_mul_pd(d1, d1);
    const __m128d inv_d = _mm_div_pd(ones, _mm_mul_pd(d0, d1));
    const __m128d l0 = _mm_mul_pd(
        g0, _mm_mul_pd(_mm_mul_pd(_mm_mul_pd(vc0, y0), d1), inv_d));
    const __m128d l1 = _mm_mul_pd(
        g1, _mm_mul_pd(_mm_mul_pd(_mm_mul_pd(vc1, y1), d0), inv_d));
    const __m128d lam = _mm_max_pd(l0, l1);

    // Publish: new bids in place, per-resource delta accumulators (the
    // block's frozen-sum advance), per-player lambdas.
    double nb0[2], nb1[2], dl0[2], dl1[2], lv[2];
    _mm_storeu_pd(nb0, n0);
    _mm_storeu_pd(nb1, n1);
    _mm_storeu_pd(dl0, _mm_sub_pd(n0, b0));
    _mm_storeu_pd(dl1, _mm_sub_pd(n1, b1));
    _mm_storeu_pd(lv, lam);
    bids_a[0] = nb0[0];
    bids_a[1] = nb1[0];
    bids_b[0] = nb0[1];
    bids_b[1] = nb1[1];
    *acc0 += dl0[0] + dl0[1];
    *acc1 += dl1[0] + dl1[1];
    *lambda_a = lv[0];
    *lambda_b = lv[1];
}

#else // !REBUDGET_BR_DUO

void
bestResponseDuo(const double *, const double *, double, double, double *,
                double *, double, double, double, double, double, double,
                double, double *, double *, int *, double *, double *)
{
    util::fatal("bestResponseDuo called on a build without the fused "
                "kernel (bestResponseDuoAvailable() is false)");
}

#endif // REBUDGET_BR_DUO

} // namespace rebudget::market
