#ifndef REBUDGET_APP_PROFILER_H_
#define REBUDGET_APP_PROFILER_H_

/**
 * @file
 * Application profiling: measure an app's L2 miss curve and memory
 * intensity by replaying its reference stream through a private L1 model
 * into a UMON shadow-tag monitor.
 *
 * This is the same machinery the online system uses (Section 4.1.1); the
 * offline profiler simply runs it on a long window, which is how the
 * paper's first evaluation phase obtains "perfectly modeled" utilities
 * (Section 6).
 */

#include <cstdint>

#include "rebudget/app/app_params.h"
#include "rebudget/app/perf_model.h"
#include "rebudget/cache/miss_curve.h"
#include "rebudget/cache/set_assoc_cache.h"
#include "rebudget/cache/umon.h"

namespace rebudget::app {

/** Profiling run parameters. */
struct ProfilerConfig
{
    /** Private L1D geometry (Table 1: 32 kB, 4-way). */
    cache::CacheConfig l1{32 * 1024, 4, 64};
    /** Monitor geometry (16 regions of 128 kB, sampling 32). */
    cache::UMonConfig umon;
    /** Memory references replayed before measuring. */
    uint64_t warmupAccesses = 200 * 1000;
    /** Memory references in the measurement window. */
    uint64_t measureAccesses = 1000 * 1000;
};

/** Measured per-instruction characterization of one application. */
struct AppProfile
{
    /** The generating parameters. */
    AppParams params;
    /** Absolute L2 misses over the window vs. regions (UMON output). */
    cache::MissCurve l2Curve;
    /** Instructions represented by the measurement window. */
    double instructions = 0.0;
    /** L2 accesses (post-L1) per instruction. */
    double l2AccessesPerInstr = 0.0;
    /** Core timing constants. */
    TimingParams timing;

    /**
     * @return per-instruction work counts at a cache allocation.
     *
     * @param regions   allocated cache in (possibly fractional) regions
     * @param use_hull  true: misses from the Talus convex hull of the
     *                  curve; false: raw (non-convexified) curve
     */
    WorkCounts workAt(double regions, bool use_hull) const;

    /**
     * @return performance (instructions per second, per instruction of
     * work) at a cache allocation and frequency.
     */
    double perfAt(double regions, double f_ghz, bool use_hull) const;

    /** @return perfAt with all monitored cache at max frequency. */
    double perfAlone(double f_max_ghz, bool use_hull) const;
};

/**
 * Profile an application by trace replay.
 *
 * @param params  the application description
 * @param config  profiling run parameters
 * @param seed    reference-stream seed (determinism)
 */
AppProfile profileApp(const AppParams &params,
                      const ProfilerConfig &config = {},
                      uint64_t seed = 1);

/**
 * Profile an arbitrary reference stream (e.g.\ a recorded trace played
 * through trace::ReplayGen) without an AppParams description.
 *
 * The returned profile's params carry the supplied name and timing
 * knobs so it can feed app::AppUtilityModel and the simulator exactly
 * like a catalog application.
 *
 * @param gen            the stream to profile (consumed)
 * @param name           display name for the resulting profile
 * @param mem_per_instr  memory references per instruction of the traced
 *                       program (> 0)
 * @param compute_cpi    cycles per instruction excluding L2 stalls
 * @param activity       dynamic-power activity factor in (0, 1]
 * @param config         profiling run parameters
 */
AppProfile profileStream(trace::AddressGenerator &gen,
                         const std::string &name, double mem_per_instr,
                         double compute_cpi = 0.5, double activity = 0.7,
                         const ProfilerConfig &config = {});

} // namespace rebudget::app

#endif // REBUDGET_APP_PROFILER_H_
