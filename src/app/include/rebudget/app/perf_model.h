#ifndef REBUDGET_APP_PERF_MODEL_H_
#define REBUDGET_APP_PERF_MODEL_H_

/**
 * @file
 * Critical-path core timing model (compute phase / memory phase).
 *
 * Following the paper's monitoring approach (Section 4.1.1, after
 * Miftakhutdinov et al.), execution time decomposes into a compute phase
 * whose length scales inversely with core frequency (pipeline work plus
 * on-chip cache hits) and a memory phase pinned to DRAM latency,
 * insensitive to frequency:
 *
 *   T(c, f) = (I*cpi + A_l2*l2HitCycles) / f  +  misses(c) * t_mem
 *
 * where I is the instruction count, A_l2 the L2 accesses (post-L1),
 * misses(c) the L2 misses at cache allocation c, and t_mem the DRAM
 * round trip.  Performance is instructions per second; utility
 * normalizes it to the run-alone configuration.
 */

#include <cstdint>

namespace rebudget::app {

/** Timing constants of the analytic core model. */
struct TimingParams
{
    /** Cycles per instruction excluding L2-level stalls. */
    double computeCpi = 0.5;
    /** L2 hit latency in core cycles (scales with frequency). */
    double l2HitCycles = 12.0;
    /** Effective DRAM round trip in nanoseconds (frequency-invariant). */
    double memLatencyNs = 70.0;
};

/** Work counts of one measurement interval. */
struct WorkCounts
{
    /** Instructions executed. */
    double instructions = 0.0;
    /** L2 accesses (post-L1 misses). */
    double l2Accesses = 0.0;
    /** L2 misses (DRAM round trips). */
    double l2Misses = 0.0;
};

/**
 * @return execution time in seconds for the given work at frequency f.
 *
 * @param work    interval work counts
 * @param f_ghz   core frequency in GHz (> 0)
 * @param timing  model constants
 */
double execTimeSeconds(const WorkCounts &work, double f_ghz,
                       const TimingParams &timing);

/** @return performance in instructions per second. */
double instructionsPerSecond(const WorkCounts &work, double f_ghz,
                             const TimingParams &timing);

/** @return IPC with respect to the core's own clock. */
double ipc(const WorkCounts &work, double f_ghz,
           const TimingParams &timing);

} // namespace rebudget::app

#endif // REBUDGET_APP_PERF_MODEL_H_
