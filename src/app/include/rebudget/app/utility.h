#ifndef REBUDGET_APP_UTILITY_H_
#define REBUDGET_APP_UTILITY_H_

/**
 * @file
 * Application utility over (cache, power) allocations.
 *
 * Utility is performance normalized to the run-alone configuration
 * (Section 4.1.1): U(c, P) = Perf(c, f(P)) / Perf(16 regions, f_max),
 * hence in [0, 1].  Performance is instructions per second, i.e. IPC
 * measured against a fixed reference clock, which is what makes Equation
 * 5 weighted speedup.
 *
 * The model samples the paper's 90-point grid ({1..6, 8, 10, 12, 16}
 * regions x {0.8, 1.2, ..., 4.0} GHz), optionally convexifies the
 * sampled surface per axis (Talus for cache, concave DVFS power for
 * frequency), and interpolates bilinearly.  The market trades *extra*
 * resources above the guaranteed minimum (1 region, min-frequency
 * power), so the model's allocation inputs are extras; the minimum is
 * baked in.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "rebudget/app/profiler.h"
#include "rebudget/market/utility_model.h"
#include "rebudget/power/power_model.h"
#include "rebudget/util/status.h"

namespace rebudget::app {

/** What sanitizeUtilityGrid changed, for telemetry. */
struct GridSanitizeReport
{
    /** NaN/Inf cells replaced by a preceding finite value. */
    std::int64_t nonFiniteCells = 0;
    /** Negative utilities clamped to zero. */
    std::int64_t negativeCells = 0;
    /** Cells raised by the monotone (running-max) projection. */
    std::int64_t monotoneRaised = 0;
    /** True when every cell ended up equal (degenerate flat surface). */
    bool flatGrid = false;

    /** @return true if any cell was repaired (flatness alone counts). */
    bool any() const
    {
        return nonFiniteCells > 0 || negativeCells > 0 ||
               monotoneRaised > 0 || flatGrid;
    }
};

/**
 * Repair a sampled utility grid in place so bilinear interpolation and
 * the bid optimizer stay well-defined: replaces NaN/Inf cells with the
 * last finite value in row-major scan order (zero when none precedes),
 * clamps negatives to zero, then enforces monotone non-decreasing
 * utility along the cache axis and then the power axis via running
 * maxima -- the exact projection AppUtilityModel has always applied, so
 * clean grids are bit-identical before and after.
 *
 * @param grid  row-major grid, grid[ci * np + pi]
 * @param nc    number of cache knots (rows)
 * @param np    number of power knots (columns)
 */
GridSanitizeReport sanitizeUtilityGrid(std::vector<double> &grid,
                                       size_t nc, size_t np);

/**
 * An externally supplied (possibly corrupted) utility surface, the
 * untrusted-input counterpart of profile-driven construction.  Fault
 * injection and external profile importers build models from this.
 */
struct RawUtilityGrid
{
    std::string name = "raw";
    /** Total cache regions per knot, strictly increasing, >= 2 knots. */
    std::vector<double> cacheKnots;
    /** Total watts per knot, strictly increasing, >= 2 knots. */
    std::vector<double> powerKnots;
    /** Row-major utilities, grid[ci * powerKnots.size() + pi]. */
    std::vector<double> grid;
    double minRegions = 1.0;
    double minWatts = 0.0;
    double activity = 1.0;
};

/** Grid and convexification options for utility construction. */
struct UtilityGridOptions
{
    /** Cache sample points in total regions (paper Section 6). */
    std::vector<double> cacheRegions = {1, 2, 3, 4, 5, 6, 8, 10, 12, 16};
    /** Frequency sample points in GHz (paper Section 6). */
    std::vector<double> freqsGhz = {0.8, 1.2, 1.6, 2.0, 2.4,
                                    2.8, 3.2, 3.6, 4.0};
    /**
     * Convexify: use the Talus hull of the miss curve and take the
     * per-axis concave majorant of the sampled utility surface.  When
     * false, the raw sampled surface is used (original-XChange ablation).
     */
    bool convexify = true;
    /** Guaranteed free cache per core, in regions. */
    double minRegions = 1.0;
};

/**
 * Concave, continuous, non-decreasing utility of one application over
 * two market resources: extra cache regions and extra watts.
 */
class AppUtilityModel : public market::UtilityModel
{
  public:
    /** Resource indices within allocation vectors. */
    static constexpr size_t kCache = 0;
    static constexpr size_t kPower = 1;

    /**
     * @param profile  the application's measured profile
     * @param power    the power model (frequency <-> watts mapping)
     * @param options  grid and convexification options
     */
    AppUtilityModel(const AppProfile &profile,
                    const power::PowerModel &power,
                    const UtilityGridOptions &options = {});

    /**
     * Construct from an untrusted raw grid.  Never fatals: malformed
     * knots or a size-mismatched grid degrade to a flat zero surface
     * with gridStatus() explaining why, and repairable damage (NaN/Inf
     * cells, negative or non-monotone utilities) is sanitized with the
     * repairs recorded in sanitizeReport().
     */
    explicit AppUtilityModel(RawUtilityGrid raw);

    size_t numResources() const override { return 2; }

    /** Utility at (extra cache regions, extra watts). */
    double utility(std::span<const double> alloc) const override;

    /** Analytic per-axis slope of the bilinear interpolant. */
    double marginal(size_t resource,
                    std::span<const double> alloc) const override;

    /**
     * Both axis slopes from a single grid-cell lookup: the two
     * marginal() calls share the clamping, the per-axis binary searches
     * and the four cell corners, so the combined pass does that work
     * once.  Produces exactly the values of the two marginal() calls
     * (the bid optimizer's hot path depends on the equivalence).
     */
    void gradient(std::span<const double> alloc,
                  std::span<double> out) const override;

    std::string name() const override { return name_; }

    /** Utility at *total* (regions, watts), bypassing the minimums. */
    double utilityTotal(double regions, double watts) const;

    /** @return guaranteed free cache in regions. */
    double minRegions() const { return minRegions_; }

    /** @return guaranteed free power in watts (min-frequency power). */
    double minWatts() const { return minWatts_; }

    /** @return largest useful total cache in regions. */
    double maxRegions() const { return cacheKnots_.back(); }

    /** @return power at which the core reaches max frequency (watts). */
    double maxWatts() const { return powerKnots_.back(); }

    /** @return the app's activity factor (needed to map watts->freq). */
    double activity() const { return activity_; }

    /** @return sampled utility value at grid cell (ci, pi) (testing). */
    double gridValue(size_t ci, size_t pi) const;

    /** @return cache grid knots (total regions). */
    const std::vector<double> &cacheKnots() const { return cacheKnots_; }

    /** @return power grid knots (total watts). */
    const std::vector<double> &powerKnots() const { return powerKnots_; }

    /**
     * @return Ok, or why the supplied grid was unusable and the model
     * fell back to a flat zero surface (raw-grid construction only).
     */
    const util::SolveStatus &gridStatus() const { return gridStatus_; }

    /** @return what grid sanitation repaired during construction. */
    const GridSanitizeReport &sanitizeReport() const
    {
        return sanitizeReport_;
    }

  private:
    double interpolate(double regions, double watts) const;

    std::string name_;
    double activity_ = 1.0;
    double minRegions_ = 1.0;
    double minWatts_ = 0.0;
    std::vector<double> cacheKnots_; // total regions, increasing
    std::vector<double> powerKnots_; // total watts, increasing
    // grid_[ci * powerKnots_.size() + pi]
    std::vector<double> grid_;
    util::SolveStatus gridStatus_;
    GridSanitizeReport sanitizeReport_;
};

/**
 * Per-axis concave majorant of sampled values: evaluates the upper
 * concave hull of (xs, ys) back at each xs.  Exposed for tests.
 */
std::vector<double> concavifySamples(const std::vector<double> &xs,
                                     const std::vector<double> &ys);

} // namespace rebudget::app

#endif // REBUDGET_APP_UTILITY_H_
