#ifndef REBUDGET_APP_PARAMS_IO_H_
#define REBUDGET_APP_PARAMS_IO_H_

/**
 * @file
 * Textual application definitions.
 *
 * Users can describe their own applications in a small INI-style file
 * and run them through the whole pipeline (profiling, markets,
 * simulation) without recompiling:
 *
 * @code
 * [myapp]
 * pattern = zipf              # uniform | zipf | chase | stream
 * working_set_kb = 1024
 * zipf_alpha = 0.9
 * mem_per_instr = 0.12
 * cold_stream_fraction = 0.15
 * compute_cpi = 0.5
 * activity = 0.6
 * write_fraction = 0.2
 * phase_accesses = 0          # optional coarse phases
 * @endcode
 *
 * Lines starting with '#' or ';' are comments; unknown keys are fatal
 * (typos should not silently produce a default app).
 */

#include <string>
#include <vector>

#include "rebudget/app/app_params.h"

namespace rebudget::app {

/** Parse application definitions from a file. */
std::vector<AppParams> loadAppParamsFile(const std::string &path);

/** Parse application definitions from an in-memory string (testing). */
std::vector<AppParams> parseAppParams(const std::string &text,
                                      const std::string &origin = "<mem>");

} // namespace rebudget::app

#endif // REBUDGET_APP_PARAMS_IO_H_
