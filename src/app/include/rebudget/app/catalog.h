#ifndef REBUDGET_APP_CATALOG_H_
#define REBUDGET_APP_CATALOG_H_

/**
 * @file
 * The 24-application SPEC-like catalog (Section 5 stand-in).
 *
 * Six applications per class (C, P, B, N), with names echoing the SPEC
 * CPU2000/2006 programs whose behavior each entry is modeled after.
 * Parameters were chosen so that the profiling-based classifier
 * (src/workloads) assigns each entry its design class, and so that the
 * catalog reproduces the qualitative cache behaviors the paper relies
 * on: mcf's flat-then-cliff utility (Figure 2) and vpr's smooth concave
 * utility.
 */

#include <string>
#include <vector>

#include "rebudget/app/app_params.h"
#include "rebudget/app/profiler.h"

namespace rebudget::app {

/** @return the 24 catalog application descriptions. */
std::vector<AppParams> spec24Catalog();

/**
 * @return profiles of all catalog applications (profiled once on first
 * use and cached; deterministic).
 */
const std::vector<AppProfile> &catalogProfiles();

/**
 * @return the cached profile of a catalog application by name.
 * Calls util::fatal() if the name is unknown.
 */
const AppProfile &findCatalogProfile(const std::string &name);

/**
 * Non-fatal lookup for layers that must stay recoverable (the serving
 * daemon, eval::ProblemBuilder): @return the cached profile, or nullptr
 * if no catalog application has that name.
 */
const AppProfile *tryFindCatalogProfile(const std::string &name);

} // namespace rebudget::app

#endif // REBUDGET_APP_CATALOG_H_
