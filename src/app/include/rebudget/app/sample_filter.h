#ifndef REBUDGET_APP_SAMPLE_FILTER_H_
#define REBUDGET_APP_SAMPLE_FILTER_H_

/**
 * @file
 * Streaming robustness filter for noisy monitor samples.
 *
 * Online profiles (per-epoch IPC, L2 access rates, power readings) come
 * from hardware counters that can glitch: a single wild sample would
 * otherwise steer the next epoch's utility model and hence the market.
 * SampleFilter smooths each scalar stream with an EWMA and rejects
 * samples that sit implausibly far from the running mean, substituting
 * the mean instead.  Disabled by default so the clean simulation path
 * stays bit-identical; sim::EpochSim enables it via its config.
 */

#include <cstdint>

namespace rebudget::app {

/** Tuning for one SampleFilter stream. */
struct SampleFilterConfig
{
    /** Master switch; false = filter() is the identity. */
    bool enabled = false;
    /** EWMA smoothing factor in (0, 1]; 1 = no smoothing. */
    double alpha = 0.3;
    /**
     * Reject a sample when |sample - mean| exceeds this multiple of the
     * EWMA absolute deviation (plus a small relative floor so steady
     * streams don't reject benign jitter).
     */
    double outlierFactor = 4.0;
    /** Samples accepted unconditionally before rejection arms. */
    int warmupSamples = 2;
};

/**
 * EWMA smoother with absolute-deviation outlier rejection over one
 * scalar stream.  Non-finite samples are always rejected.
 */
class SampleFilter
{
  public:
    SampleFilter() = default;
    explicit SampleFilter(const SampleFilterConfig &config)
        : config_(config) {}

    /**
     * Feed one sample; @return the filtered value (the raw sample when
     * disabled, the updated EWMA when accepted, the frozen mean when
     * rejected).
     */
    double filter(double sample);

    /** @return true if the most recent sample was rejected. */
    bool lastRejected() const { return lastRejected_; }

    /** @return total samples rejected since construction. */
    std::int64_t rejectedSamples() const { return rejected_; }

    /**
     * Forget the stream state (e.g. across a context switch); the
     * rejected-sample telemetry survives.
     */
    void reset();

  private:
    SampleFilterConfig config_;
    double mean_ = 0.0;
    double deviation_ = 0.0;
    int accepted_ = 0;
    std::int64_t rejected_ = 0;
    bool lastRejected_ = false;
};

} // namespace rebudget::app

#endif // REBUDGET_APP_SAMPLE_FILTER_H_
