#ifndef REBUDGET_APP_APP_PARAMS_H_
#define REBUDGET_APP_APP_PARAMS_H_

/**
 * @file
 * Parametric application descriptions (SPEC stand-ins).
 *
 * The paper evaluates 24 SPEC CPU2000/2006 applications classified as
 * Cache-sensitive (C), Power-sensitive (P), Both (B) or None (N)
 * (Section 5).  Since SPEC binaries and SimPoints are unavailable, each
 * catalog entry is a parametric model: a synthetic reference stream with
 * a chosen locality profile plus core timing and power parameters.  The
 * streams run through the real cache substrate, so cache behavior
 * (including the mcf-style cliff the paper highlights in Figure 2)
 * emerges from the simulated hardware rather than being asserted.
 */

#include <cstdint>
#include <memory>
#include <string>

#include "rebudget/trace/generator.h"

namespace rebudget::app {

/** Paper Section 5 application classes. */
enum class AppClass { CacheSensitive, PowerSensitive, BothSensitive, None };

/** @return the one-letter class code (C, P, B, N). */
char appClassCode(AppClass cls);

/** @return a class parsed from its one-letter code. */
AppClass appClassFromCode(char code);

/** Memory reference pattern archetypes for the catalog. */
enum class MemPattern
{
    /** Uniform random over the working set (linear miss-vs-size ramp). */
    Uniform,
    /** Zipf-skewed reuse (smooth concave miss curve, vpr-like). */
    Zipf,
    /** Random pointer chase (LRU cliff at the working-set size,
     *  mcf-like). */
    PointerChase,
    /** Streaming sweep over a large footprint (cache-insensitive). */
    Stream,
};

/** Full parametric description of a catalog application. */
struct AppParams
{
    /** Display name (SPEC-like). */
    std::string name;
    /** Class the parameters were designed to land in. */
    AppClass designClass = AppClass::None;

    // --- Memory behavior ---
    /** Primary reference pattern. */
    MemPattern pattern = MemPattern::Uniform;
    /** Primary working-set footprint in bytes. */
    uint64_t workingSetBytes = 512 * 1024;
    /** Zipf skew for the Zipf pattern. */
    double zipfAlpha = 0.8;
    /**
     * Fraction of accesses that stream over a large cold footprint
     * regardless of the primary pattern (residual DRAM traffic that no
     * realistic cache allocation removes).
     */
    double coldStreamFraction = 0.0;
    /** Cold stream footprint in bytes. */
    uint64_t coldStreamBytes = 32ull * 1024 * 1024;
    /** Memory references per instruction (pre-L1). */
    double memPerInstr = 0.3;
    /** Store fraction of memory references. */
    double writeFraction = 0.2;

    // --- Optional coarse program phases ---
    /**
     * When > 0, the reference stream alternates between the primary
     * pattern and a second phase of phasePattern/phaseFootprintBytes,
     * switching every phaseAccesses references.  Used to evaluate how
     * the 1 ms reallocation epoch tracks phase changes (Section 4.3).
     */
    uint64_t phaseAccesses = 0;
    /** Pattern of the alternate phase. */
    MemPattern phasePattern = MemPattern::Stream;
    /** Footprint of the alternate phase in bytes. */
    uint64_t phaseFootprintBytes = 16ull * 1024 * 1024;

    // --- Core timing ---
    /** Cycles per instruction excluding L2-level stalls. */
    double computeCpi = 0.5;

    // --- Power ---
    /** Dynamic-power activity factor in (0, 1]. */
    double activity = 0.8;

    /**
     * Build the reference stream described by these parameters.
     *
     * @param base_addr  address-space base for this instance
     * @param seed       RNG seed
     */
    std::unique_ptr<trace::AddressGenerator> makeGenerator(
        uint64_t base_addr, uint64_t seed) const;
};

} // namespace rebudget::app

#endif // REBUDGET_APP_APP_PARAMS_H_
