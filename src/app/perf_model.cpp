#include "rebudget/app/perf_model.h"

#include "rebudget/util/logging.h"

namespace rebudget::app {

double
execTimeSeconds(const WorkCounts &work, double f_ghz,
                const TimingParams &timing)
{
    if (f_ghz <= 0.0)
        util::fatal("frequency must be positive (got %f GHz)", f_ghz);
    const double compute_cycles = work.instructions * timing.computeCpi +
                                  work.l2Accesses * timing.l2HitCycles;
    const double compute_seconds = compute_cycles / (f_ghz * 1e9);
    const double memory_seconds = work.l2Misses * timing.memLatencyNs * 1e-9;
    return compute_seconds + memory_seconds;
}

double
instructionsPerSecond(const WorkCounts &work, double f_ghz,
                      const TimingParams &timing)
{
    const double t = execTimeSeconds(work, f_ghz, timing);
    return t > 0.0 ? work.instructions / t : 0.0;
}

double
ipc(const WorkCounts &work, double f_ghz, const TimingParams &timing)
{
    return instructionsPerSecond(work, f_ghz, timing) / (f_ghz * 1e9);
}

} // namespace rebudget::app
