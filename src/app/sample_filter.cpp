#include "rebudget/app/sample_filter.h"

#include <cmath>

namespace rebudget::app {

double
SampleFilter::filter(double sample)
{
    lastRejected_ = false;
    if (!config_.enabled)
        return sample;

    if (!std::isfinite(sample)) {
        lastRejected_ = true;
        ++rejected_;
        return accepted_ > 0 ? mean_ : 0.0;
    }

    if (accepted_ >= config_.warmupSamples) {
        // Relative floor keeps near-constant streams from rejecting
        // benign jitter once the deviation EWMA has decayed to ~0.
        const double band =
            config_.outlierFactor *
            (deviation_ + 1e-3 * std::abs(mean_) + 1e-12);
        if (std::abs(sample - mean_) > band) {
            lastRejected_ = true;
            ++rejected_;
            return mean_;
        }
    }

    if (accepted_ == 0) {
        mean_ = sample;
        deviation_ = 0.0;
    } else {
        const double a = config_.alpha;
        deviation_ = (1.0 - a) * deviation_ + a * std::abs(sample - mean_);
        mean_ = (1.0 - a) * mean_ + a * sample;
    }
    ++accepted_;
    return mean_;
}

void
SampleFilter::reset()
{
    mean_ = 0.0;
    deviation_ = 0.0;
    accepted_ = 0;
    lastRejected_ = false;
}

} // namespace rebudget::app
