#include "rebudget/app/catalog.h"

#include "rebudget/util/logging.h"
#include "rebudget/util/units.h"

namespace rebudget::app {

namespace {

using util::kKiB;
using util::kMiB;

AppParams
cacheApp(std::string name, MemPattern pattern, uint64_t wss, double alpha,
         double mem_per_instr, double cold_frac, double cpi, double act)
{
    AppParams p;
    p.name = std::move(name);
    p.designClass = AppClass::CacheSensitive;
    p.pattern = pattern;
    p.workingSetBytes = wss;
    p.zipfAlpha = alpha;
    p.memPerInstr = mem_per_instr;
    p.coldStreamFraction = cold_frac;
    p.computeCpi = cpi;
    p.activity = act;
    return p;
}

AppParams
powerApp(std::string name, uint64_t wss, double mem_per_instr, double cpi,
         double act)
{
    AppParams p;
    p.name = std::move(name);
    p.designClass = AppClass::PowerSensitive;
    p.pattern = MemPattern::Uniform;
    p.workingSetBytes = wss; // fits in L1: negligible L2 traffic
    p.memPerInstr = mem_per_instr;
    p.computeCpi = cpi;
    p.activity = act;
    return p;
}

AppParams
bothApp(std::string name, MemPattern pattern, uint64_t wss, double alpha,
        double mem_per_instr, double cold_frac, double cpi, double act)
{
    AppParams p;
    p.name = std::move(name);
    p.designClass = AppClass::BothSensitive;
    p.pattern = pattern;
    p.workingSetBytes = wss;
    p.zipfAlpha = alpha;
    p.memPerInstr = mem_per_instr;
    p.coldStreamFraction = cold_frac;
    p.computeCpi = cpi;
    p.activity = act;
    return p;
}

AppParams
noneApp(std::string name, MemPattern pattern, uint64_t wss,
        double mem_per_instr, double cpi, double act)
{
    AppParams p;
    p.name = std::move(name);
    p.designClass = AppClass::None;
    p.pattern = pattern;
    p.workingSetBytes = wss;
    p.memPerInstr = mem_per_instr;
    p.computeCpi = cpi;
    p.activity = act;
    return p;
}

} // namespace

std::vector<AppParams>
spec24Catalog()
{
    std::vector<AppParams> apps;
    apps.reserve(24);

    // --- Cache-sensitive (C): memory-bound with working sets the L2 can
    // capture; residual cold traffic keeps them memory-bound (and thus
    // power-insensitive) even when fully cached.
    // mcf: 1.125 MB chase + 25% cold stream; in the monitor's LRU stacks
    // the interleaved cold tags push the chase's reuse distance to ~12
    // regions, reproducing Figure 2's cliff at 12 ways.
    apps.push_back(cacheApp("mcf", MemPattern::PointerChase,
                            1152 * kKiB, 0.0, 0.10, 0.25, 0.50, 0.55));
    apps.push_back(cacheApp("vpr", MemPattern::Zipf,
                            2 * kMiB, 0.90, 0.12, 0.15, 0.50, 0.60));
    apps.push_back(cacheApp("twolf", MemPattern::Zipf,
                            1 * kMiB, 0.70, 0.12, 0.20, 0.45, 0.60));
    apps.push_back(cacheApp("art", MemPattern::Uniform,
                            1 * kMiB, 0.0, 0.15, 0.20, 0.40, 0.50));
    apps.push_back(cacheApp("soplex", MemPattern::Zipf,
                            1792 * kKiB, 0.80, 0.14, 0.18, 0.50, 0.55));
    apps.push_back(cacheApp("omnetpp", MemPattern::PointerChase,
                            768 * kKiB, 0.0, 0.12, 0.22, 0.55, 0.60));

    // --- Power-sensitive (P): working sets fit in the L1, so the core
    // is compute-bound and scales with frequency.
    apps.push_back(powerApp("sixtrack", 16 * kKiB, 0.30, 0.40, 0.95));
    apps.push_back(powerApp("hmmer", 24 * kKiB, 0.35, 0.45, 0.90));
    apps.push_back(powerApp("gamess", 12 * kKiB, 0.40, 0.35, 0.92));
    apps.push_back(powerApp("namd", 20 * kKiB, 0.25, 0.50, 0.88));
    apps.push_back(powerApp("gromacs", 16 * kKiB, 0.30, 0.45, 0.90));
    apps.push_back(powerApp("povray", 24 * kKiB, 0.35, 0.40, 0.93));

    // --- Both-sensitive (B): moderate memory intensity; caching their
    // working set turns them compute-bound, so both resources pay off.
    apps.push_back(bothApp("apsi", MemPattern::Zipf,
                           768 * kKiB, 0.80, 0.06, 0.02, 0.60, 0.80));
    apps.push_back(bothApp("swim", MemPattern::Uniform,
                           1 * kMiB, 0.0, 0.08, 0.05, 0.50, 0.85));
    apps.push_back(bothApp("bzip2", MemPattern::Zipf,
                           512 * kKiB, 0.85, 0.07, 0.03, 0.55, 0.80));
    apps.push_back(bothApp("gcc", MemPattern::Zipf,
                           1280 * kKiB, 0.75, 0.07, 0.04, 0.60, 0.80));
    apps.push_back(bothApp("astar", MemPattern::PointerChase,
                           512 * kKiB, 0.0, 0.05, 0.05, 0.55, 0.82));
    apps.push_back(bothApp("xalancbmk", MemPattern::Zipf,
                           1 * kMiB, 0.90, 0.06, 0.04, 0.60, 0.85));

    // --- None (N): streaming footprints far beyond the monitored 2 MB,
    // so cache cannot help; DRAM latency caps frequency scaling to well
    // under the 0.5 sensitivity threshold, but these apps still retain
    // a moderate compute component (SPEC's streaming codes are not pure
    // copy loops), which keeps their run-alone "potential" non-trivial
    // for the Balanced heuristic.
    apps.push_back(noneApp("milc", MemPattern::Stream,
                           16 * kMiB, 0.030, 0.60, 0.50));
    apps.push_back(noneApp("libquantum", MemPattern::Stream,
                           24 * kMiB, 0.025, 0.55, 0.55));
    apps.push_back(noneApp("lbm", MemPattern::Stream,
                           32 * kMiB, 0.035, 0.60, 0.50));
    apps.push_back(noneApp("mgrid", MemPattern::Stream,
                           12 * kMiB, 0.028, 0.60, 0.55));
    apps.push_back(noneApp("applu", MemPattern::Stream,
                           20 * kMiB, 0.032, 0.65, 0.50));
    apps.push_back(noneApp("gap", MemPattern::Uniform,
                           24 * kMiB, 0.028, 0.60, 0.55));

    return apps;
}

const std::vector<AppProfile> &
catalogProfiles()
{
    static const std::vector<AppProfile> profiles = [] {
        std::vector<AppProfile> out;
        const auto params = spec24Catalog();
        out.reserve(params.size());
        uint64_t seed = 1000;
        for (const auto &p : params)
            out.push_back(profileApp(p, ProfilerConfig{}, seed++));
        return out;
    }();
    return profiles;
}

const AppProfile *
tryFindCatalogProfile(const std::string &name)
{
    for (const auto &profile : catalogProfiles()) {
        if (profile.params.name == name)
            return &profile;
    }
    return nullptr;
}

const AppProfile &
findCatalogProfile(const std::string &name)
{
    if (const AppProfile *profile = tryFindCatalogProfile(name))
        return *profile;
    util::fatal("unknown catalog application '%s'", name.c_str());
}

} // namespace rebudget::app
