#include "rebudget/app/params_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "rebudget/util/logging.h"

namespace rebudget::app {

namespace {

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

MemPattern
parsePattern(const std::string &value, const std::string &where)
{
    if (value == "uniform")
        return MemPattern::Uniform;
    if (value == "zipf")
        return MemPattern::Zipf;
    if (value == "chase" || value == "pointer_chase")
        return MemPattern::PointerChase;
    if (value == "stream")
        return MemPattern::Stream;
    util::fatal("%s: unknown pattern '%s' (uniform|zipf|chase|stream)",
                where.c_str(), value.c_str());
}

double
parseDouble(const std::string &value, const std::string &where)
{
    try {
        size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        util::fatal("%s: bad number '%s'", where.c_str(), value.c_str());
    }
}

uint64_t
parseUint(const std::string &value, const std::string &where)
{
    const double v = parseDouble(value, where);
    if (v < 0.0)
        util::fatal("%s: expected a non-negative value, got '%s'",
                    where.c_str(), value.c_str());
    return static_cast<uint64_t>(v);
}

void
applyKey(AppParams &app, const std::string &key, const std::string &value,
         const std::string &where)
{
    if (key == "pattern") {
        app.pattern = parsePattern(value, where);
    } else if (key == "class") {
        if (value.size() != 1)
            util::fatal("%s: class must be one of C P B N",
                        where.c_str());
        app.designClass = appClassFromCode(value[0]);
    } else if (key == "working_set_kb") {
        app.workingSetBytes = parseUint(value, where) * 1024;
    } else if (key == "zipf_alpha") {
        app.zipfAlpha = parseDouble(value, where);
    } else if (key == "mem_per_instr") {
        app.memPerInstr = parseDouble(value, where);
    } else if (key == "cold_stream_fraction") {
        app.coldStreamFraction = parseDouble(value, where);
    } else if (key == "cold_stream_mb") {
        app.coldStreamBytes = parseUint(value, where) * 1024 * 1024;
    } else if (key == "compute_cpi") {
        app.computeCpi = parseDouble(value, where);
    } else if (key == "activity") {
        app.activity = parseDouble(value, where);
    } else if (key == "write_fraction") {
        app.writeFraction = parseDouble(value, where);
    } else if (key == "phase_accesses") {
        app.phaseAccesses = parseUint(value, where);
    } else if (key == "phase_pattern") {
        app.phasePattern = parsePattern(value, where);
    } else if (key == "phase_footprint_mb") {
        app.phaseFootprintBytes = parseUint(value, where) * 1024 * 1024;
    } else {
        util::fatal("%s: unknown key '%s'", where.c_str(), key.c_str());
    }
}

} // namespace

std::vector<AppParams>
parseAppParams(const std::string &text, const std::string &origin)
{
    std::vector<AppParams> out;
    std::istringstream in(text);
    std::string line;
    size_t lineno = 0;
    bool in_section = false;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments.
        for (const char marker : {'#', ';'}) {
            const auto pos = line.find(marker);
            if (pos != std::string::npos)
                line.erase(pos);
        }
        line = trim(line);
        if (line.empty())
            continue;
        std::ostringstream where;
        where << origin << ":" << lineno;
        if (line.front() == '[') {
            if (line.back() != ']')
                util::fatal("%s: unterminated section header",
                            where.str().c_str());
            const std::string name = trim(line.substr(1, line.size() - 2));
            if (name.empty())
                util::fatal("%s: empty application name",
                            where.str().c_str());
            for (const auto &a : out) {
                if (a.name == name)
                    util::fatal("%s: duplicate application '%s'",
                                where.str().c_str(), name.c_str());
            }
            AppParams app;
            app.name = name;
            out.push_back(std::move(app));
            in_section = true;
            continue;
        }
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            util::fatal("%s: expected key = value", where.str().c_str());
        if (!in_section)
            util::fatal("%s: key outside any [application] section",
                        where.str().c_str());
        applyKey(out.back(), trim(line.substr(0, eq)),
                 trim(line.substr(eq + 1)), where.str());
    }
    if (out.empty())
        util::fatal("%s: no applications defined", origin.c_str());
    return out;
}

std::vector<AppParams>
loadAppParamsFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot open application file '%s'", path.c_str());
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parseAppParams(buffer.str(), path);
}

} // namespace rebudget::app
