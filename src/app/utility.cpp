#include "rebudget/app/utility.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"
#include "rebudget/util/piecewise.h"

namespace rebudget::app {

GridSanitizeReport
sanitizeUtilityGrid(std::vector<double> &grid, size_t nc, size_t np)
{
    REBUDGET_ASSERT(grid.size() == nc * np, "grid size mismatch");
    GridSanitizeReport report;

    // Non-finite cells take the last finite value in row-major scan
    // order (zero when the grid starts with a hole); the monotone
    // projection below then restores shape around the patch.
    double prev = 0.0;
    for (auto &v : grid) {
        if (!std::isfinite(v)) {
            v = prev;
            ++report.nonFiniteCells;
        }
        prev = v;
    }

    for (auto &v : grid) {
        if (v < 0.0) {
            v = 0.0;
            ++report.negativeCells;
        }
    }

    // Enforce monotone non-decreasing along both axes (running max),
    // cache axis first, then power: the exact projection the profile
    // constructor has always applied, so clean grids pass unchanged.
    for (size_t pi = 0; pi < np; ++pi) {
        for (size_t ci = 1; ci < nc; ++ci) {
            const double below = grid[(ci - 1) * np + pi];
            if (grid[ci * np + pi] < below) {
                grid[ci * np + pi] = below;
                ++report.monotoneRaised;
            }
        }
    }
    for (size_t ci = 0; ci < nc; ++ci) {
        for (size_t pi = 1; pi < np; ++pi) {
            const double left = grid[ci * np + pi - 1];
            if (grid[ci * np + pi] < left) {
                grid[ci * np + pi] = left;
                ++report.monotoneRaised;
            }
        }
    }

    if (!grid.empty()) {
        const auto [lo, hi] = std::minmax_element(grid.begin(), grid.end());
        report.flatGrid = *lo == *hi;
    }
    return report;
}

std::vector<double>
concavifySamples(const std::vector<double> &xs, const std::vector<double> &ys)
{
    const util::PiecewiseLinear hull =
        util::PiecewiseLinear(xs, ys).concaveMajorant();
    std::vector<double> out(xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        out[i] = hull.eval(xs[i]);
    return out;
}

AppUtilityModel::AppUtilityModel(const AppProfile &profile,
                                 const power::PowerModel &power,
                                 const UtilityGridOptions &options)
    : name_(profile.params.name), activity_(profile.params.activity),
      minRegions_(options.minRegions)
{
    if (options.cacheRegions.size() < 2 || options.freqsGhz.size() < 2)
        util::fatal("utility grid needs at least 2 points per axis");
    cacheKnots_ = options.cacheRegions;
    if (!std::is_sorted(cacheKnots_.begin(), cacheKnots_.end()))
        util::fatal("cache grid must be sorted");

    // Power knots: watts at each sampled frequency (strictly increasing
    // because core power is strictly increasing in frequency).
    powerKnots_.reserve(options.freqsGhz.size());
    for (double f : options.freqsGhz)
        powerKnots_.push_back(power.corePower(f, activity_));
    minWatts_ = powerKnots_.front();

    // Sample the 90-point utility grid: performance normalized to the
    // run-alone configuration (all monitored cache, max frequency).
    const size_t nc = cacheKnots_.size();
    const size_t np = powerKnots_.size();
    const bool hull = options.convexify;
    const double perf_alone =
        profile.perfAlone(options.freqsGhz.back(), hull);
    if (perf_alone <= 0.0)
        util::fatal("app '%s' has zero run-alone performance",
                    name_.c_str());
    grid_.assign(nc * np, 0.0);
    for (size_t ci = 0; ci < nc; ++ci) {
        for (size_t pi = 0; pi < np; ++pi) {
            const double perf = profile.perfAt(
                cacheKnots_[ci], options.freqsGhz[pi], hull);
            grid_[ci * np + pi] = perf / perf_alone;
        }
    }

    if (options.convexify) {
        // Alternate per-axis concave majorants until stable (each pass
        // only raises values, bounded by 1, so this converges quickly).
        for (int pass = 0; pass < 4; ++pass) {
            bool changed = false;
            for (size_t pi = 0; pi < np; ++pi) { // along cache
                std::vector<double> col(nc);
                for (size_t ci = 0; ci < nc; ++ci)
                    col[ci] = grid_[ci * np + pi];
                const auto fixed = concavifySamples(cacheKnots_, col);
                for (size_t ci = 0; ci < nc; ++ci) {
                    if (fixed[ci] > col[ci] + 1e-12)
                        changed = true;
                    grid_[ci * np + pi] = fixed[ci];
                }
            }
            for (size_t ci = 0; ci < nc; ++ci) { // along power
                std::vector<double> row(np);
                for (size_t pi = 0; pi < np; ++pi)
                    row[pi] = grid_[ci * np + pi];
                const auto fixed = concavifySamples(powerKnots_, row);
                for (size_t pi = 0; pi < np; ++pi) {
                    if (fixed[pi] > row[pi] + 1e-12)
                        changed = true;
                    grid_[ci * np + pi] = fixed[pi];
                }
            }
            if (!changed)
                break;
        }
    }
    // Monotone non-decreasing along both axes plus NaN/negative guards
    // (the latter are no-ops for profile-sampled grids).
    sanitizeReport_ = sanitizeUtilityGrid(grid_, nc, np);
}

AppUtilityModel::AppUtilityModel(RawUtilityGrid raw)
    : name_(std::move(raw.name)), activity_(raw.activity),
      minRegions_(raw.minRegions), minWatts_(raw.minWatts),
      cacheKnots_(std::move(raw.cacheKnots)),
      powerKnots_(std::move(raw.powerKnots)), grid_(std::move(raw.grid))
{
    // Untrusted input: degrade to a flat zero surface over a minimal
    // valid grid instead of fataling, and say why in gridStatus().
    const auto degrade = [this](util::SolveStatus status) {
        gridStatus_ = std::move(status);
        if (!std::isfinite(minRegions_) || minRegions_ < 0.0)
            minRegions_ = 1.0;
        if (!std::isfinite(minWatts_) || minWatts_ < 0.0)
            minWatts_ = 0.0;
        if (!std::isfinite(activity_) || activity_ <= 0.0)
            activity_ = 1.0;
        cacheKnots_ = {minRegions_, minRegions_ + 1.0};
        powerKnots_ = {minWatts_, minWatts_ + 1.0};
        grid_.assign(4, 0.0);
        sanitizeReport_ = GridSanitizeReport{};
        sanitizeReport_.flatGrid = true;
    };

    const auto strictly_increasing = [](const std::vector<double> &knots) {
        for (size_t i = 0; i < knots.size(); ++i) {
            if (!std::isfinite(knots[i]))
                return false;
            if (i > 0 && knots[i] <= knots[i - 1])
                return false;
        }
        return true;
    };

    if (cacheKnots_.size() < 2 || powerKnots_.size() < 2) {
        degrade(util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "raw grid '%s' needs >= 2 knots per axis (got %zu x %zu)",
            name_.c_str(), cacheKnots_.size(), powerKnots_.size()));
        return;
    }
    if (!strictly_increasing(cacheKnots_) ||
        !strictly_increasing(powerKnots_)) {
        degrade(util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "raw grid '%s' knots must be finite and strictly increasing",
            name_.c_str()));
        return;
    }
    if (grid_.size() != cacheKnots_.size() * powerKnots_.size()) {
        degrade(util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "raw grid '%s' has %zu cells, expected %zu x %zu",
            name_.c_str(), grid_.size(), cacheKnots_.size(),
            powerKnots_.size()));
        return;
    }
    if (!std::isfinite(minRegions_) || minRegions_ < 0.0 ||
        !std::isfinite(minWatts_) || minWatts_ < 0.0 ||
        !std::isfinite(activity_) || activity_ <= 0.0) {
        degrade(util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "raw grid '%s' has malformed minimums or activity",
            name_.c_str()));
        return;
    }
    sanitizeReport_ =
        sanitizeUtilityGrid(grid_, cacheKnots_.size(), powerKnots_.size());
}

namespace {

// Index of the cell containing x: largest i with knots[i] <= x, clamped
// to [0, n-2] so that i+1 is always valid.
size_t
cellIndex(const std::vector<double> &knots, double x)
{
    const auto it =
        std::upper_bound(knots.begin(), knots.end(), x);
    size_t i = it == knots.begin()
                   ? 0
                   : static_cast<size_t>(it - knots.begin()) - 1;
    return std::min(i, knots.size() - 2);
}

} // namespace

double
AppUtilityModel::interpolate(double regions, double watts) const
{
    const double c =
        std::clamp(regions, cacheKnots_.front(), cacheKnots_.back());
    const double p =
        std::clamp(watts, powerKnots_.front(), powerKnots_.back());
    const size_t ci = cellIndex(cacheKnots_, c);
    const size_t pi = cellIndex(powerKnots_, p);
    const size_t np = powerKnots_.size();
    const double tx = (c - cacheKnots_[ci]) /
                      (cacheKnots_[ci + 1] - cacheKnots_[ci]);
    const double ty = (p - powerKnots_[pi]) /
                      (powerKnots_[pi + 1] - powerKnots_[pi]);
    const double u00 = grid_[ci * np + pi];
    const double u01 = grid_[ci * np + pi + 1];
    const double u10 = grid_[(ci + 1) * np + pi];
    const double u11 = grid_[(ci + 1) * np + pi + 1];
    return (1.0 - tx) * ((1.0 - ty) * u00 + ty * u01) +
           tx * ((1.0 - ty) * u10 + ty * u11);
}

double
AppUtilityModel::utility(std::span<const double> alloc) const
{
    REBUDGET_ASSERT(alloc.size() == 2, "expected 2-resource allocation");
    return interpolate(minRegions_ + std::max(0.0, alloc[kCache]),
                       minWatts_ + std::max(0.0, alloc[kPower]));
}

double
AppUtilityModel::marginal(size_t resource,
                          std::span<const double> alloc) const
{
    REBUDGET_ASSERT(alloc.size() == 2, "expected 2-resource allocation");
    REBUDGET_ASSERT(resource < 2, "resource out of range");
    const double c = minRegions_ + std::max(0.0, alloc[kCache]);
    const double p = minWatts_ + std::max(0.0, alloc[kPower]);
    if (resource == kCache && c >= cacheKnots_.back())
        return 0.0;
    if (resource == kPower && p >= powerKnots_.back())
        return 0.0;
    const double cc = std::clamp(c, cacheKnots_.front(), cacheKnots_.back());
    const double pp = std::clamp(p, powerKnots_.front(), powerKnots_.back());
    const size_t ci = cellIndex(cacheKnots_, cc);
    const size_t pi = cellIndex(powerKnots_, pp);
    const size_t np = powerKnots_.size();
    const double u00 = grid_[ci * np + pi];
    const double u01 = grid_[ci * np + pi + 1];
    const double u10 = grid_[(ci + 1) * np + pi];
    const double u11 = grid_[(ci + 1) * np + pi + 1];
    if (resource == kCache) {
        const double ty = (pp - powerKnots_[pi]) /
                          (powerKnots_[pi + 1] - powerKnots_[pi]);
        const double dx = cacheKnots_[ci + 1] - cacheKnots_[ci];
        return ((u10 - u00) * (1.0 - ty) + (u11 - u01) * ty) / dx;
    }
    const double tx = (cc - cacheKnots_[ci]) /
                      (cacheKnots_[ci + 1] - cacheKnots_[ci]);
    const double dy = powerKnots_[pi + 1] - powerKnots_[pi];
    return ((u01 - u00) * (1.0 - tx) + (u11 - u10) * tx) / dy;
}

void
AppUtilityModel::gradient(std::span<const double> alloc,
                          std::span<double> out) const
{
    REBUDGET_ASSERT(alloc.size() == 2, "expected 2-resource allocation");
    REBUDGET_ASSERT(out.size() == 2, "expected 2-resource gradient");
    // Straight-line form for the solver hot path: one shared cell
    // lookup, both axis slopes computed unconditionally, saturation
    // applied as selects at the end (no early-out branch ladder).
    // Each output equals what the per-axis branches produced: a
    // saturated axis publishes literal 0.0, an unsaturated one the
    // same slope expression over the same cell.
    const double c = minRegions_ + std::max(0.0, alloc[kCache]);
    const double p = minWatts_ + std::max(0.0, alloc[kPower]);
    const bool cache_sat = c >= cacheKnots_.back();
    const bool power_sat = p >= powerKnots_.back();
    const double cc = std::clamp(c, cacheKnots_.front(), cacheKnots_.back());
    const double pp = std::clamp(p, powerKnots_.front(), powerKnots_.back());
    const size_t ci = cellIndex(cacheKnots_, cc);
    const size_t pi = cellIndex(powerKnots_, pp);
    const size_t np = powerKnots_.size();
    const double u00 = grid_[ci * np + pi];
    const double u01 = grid_[ci * np + pi + 1];
    const double u10 = grid_[(ci + 1) * np + pi];
    const double u11 = grid_[(ci + 1) * np + pi + 1];
    const double ty = (pp - powerKnots_[pi]) /
                      (powerKnots_[pi + 1] - powerKnots_[pi]);
    const double dx = cacheKnots_[ci + 1] - cacheKnots_[ci];
    const double slope_c =
        ((u10 - u00) * (1.0 - ty) + (u11 - u01) * ty) / dx;
    const double tx = (cc - cacheKnots_[ci]) /
                      (cacheKnots_[ci + 1] - cacheKnots_[ci]);
    const double dy = powerKnots_[pi + 1] - powerKnots_[pi];
    const double slope_p =
        ((u01 - u00) * (1.0 - tx) + (u11 - u10) * tx) / dy;
    out[kCache] = cache_sat ? 0.0 : slope_c;
    out[kPower] = power_sat ? 0.0 : slope_p;
}

double
AppUtilityModel::utilityTotal(double regions, double watts) const
{
    return interpolate(regions, watts);
}

double
AppUtilityModel::gridValue(size_t ci, size_t pi) const
{
    REBUDGET_ASSERT(ci < cacheKnots_.size() && pi < powerKnots_.size(),
                    "grid index out of range");
    return grid_[ci * powerKnots_.size() + pi];
}

} // namespace rebudget::app
