#include "rebudget/app/app_params.h"

#include <vector>

#include "rebudget/trace/mixture.h"
#include "rebudget/trace/pointer_chase.h"
#include "rebudget/trace/stride.h"
#include "rebudget/trace/uniform.h"
#include "rebudget/trace/zipf.h"
#include "rebudget/util/logging.h"

namespace rebudget::app {

namespace {
constexpr uint64_t kLineBytes = 64;
} // namespace

char
appClassCode(AppClass cls)
{
    switch (cls) {
      case AppClass::CacheSensitive:
        return 'C';
      case AppClass::PowerSensitive:
        return 'P';
      case AppClass::BothSensitive:
        return 'B';
      case AppClass::None:
        return 'N';
    }
    util::panic("unknown AppClass");
}

AppClass
appClassFromCode(char code)
{
    switch (code) {
      case 'C':
        return AppClass::CacheSensitive;
      case 'P':
        return AppClass::PowerSensitive;
      case 'B':
        return AppClass::BothSensitive;
      case 'N':
        return AppClass::None;
      default:
        util::fatal("unknown application class code '%c'", code);
    }
}

namespace {

std::unique_ptr<trace::AddressGenerator>
makePattern(MemPattern pattern, uint64_t base_addr, uint64_t footprint,
            double alpha, double write_fraction, uint64_t seed)
{
    switch (pattern) {
      case MemPattern::Uniform:
        return std::make_unique<trace::UniformWorkingSetGen>(
            base_addr, footprint, kLineBytes, write_fraction, seed);
      case MemPattern::Zipf:
        return std::make_unique<trace::ZipfWorkingSetGen>(
            base_addr, footprint, kLineBytes, alpha, write_fraction,
            seed);
      case MemPattern::PointerChase:
        return std::make_unique<trace::PointerChaseGen>(
            base_addr, footprint, kLineBytes, seed);
      case MemPattern::Stream:
        return std::make_unique<trace::StrideGen>(
            base_addr, footprint, kLineBytes, write_fraction);
    }
    util::panic("unknown MemPattern");
}

} // namespace

std::unique_ptr<trace::AddressGenerator>
AppParams::makeGenerator(uint64_t base_addr, uint64_t seed) const
{
    std::unique_ptr<trace::AddressGenerator> primary = makePattern(
        pattern, base_addr, workingSetBytes, zipfAlpha, writeFraction,
        seed);
    if (coldStreamFraction > 0.0) {
        // Blend in residual cold traffic placed after the primary
        // footprint.
        auto cold = std::make_unique<trace::StrideGen>(
            base_addr + (1ull << 36), coldStreamBytes, kLineBytes,
            writeFraction);
        std::vector<trace::MixtureGen::Component> comps;
        comps.push_back({std::move(primary), 1.0 - coldStreamFraction});
        comps.push_back({std::move(cold), coldStreamFraction});
        primary = std::make_unique<trace::MixtureGen>(
            std::move(comps), seed ^ 0x5bd1e995u);
    }
    if (phaseAccesses == 0)
        return primary;
    // Coarse phases: alternate between the primary behavior and the
    // alternate pattern (placed in a disjoint address range).
    auto alternate = makePattern(phasePattern, base_addr + (1ull << 37),
                                 phaseFootprintBytes, zipfAlpha,
                                 writeFraction, seed ^ 0x2545f491u);
    std::vector<trace::PhasedGen::Phase> phases;
    phases.push_back({std::move(primary), phaseAccesses});
    phases.push_back({std::move(alternate), phaseAccesses});
    return std::make_unique<trace::PhasedGen>(std::move(phases));
}

} // namespace rebudget::app
