#include "rebudget/app/profiler.h"

#include <algorithm>

#include "rebudget/util/logging.h"

namespace rebudget::app {

WorkCounts
AppProfile::workAt(double regions, bool use_hull) const
{
    WorkCounts work;
    work.instructions = 1.0;
    work.l2Accesses = l2AccessesPerInstr;
    const double misses_abs = use_hull ? l2Curve.missesAtHull(regions)
                                       : l2Curve.missesAtRaw(regions);
    const double misses_per_instr =
        instructions > 0.0 ? misses_abs / instructions : 0.0;
    // The miss curve is UMON-sampled; clamp against the measured access
    // count so sampling noise cannot produce misses > accesses.
    work.l2Misses = std::clamp(misses_per_instr, 0.0, work.l2Accesses);
    return work;
}

double
AppProfile::perfAt(double regions, double f_ghz, bool use_hull) const
{
    return instructionsPerSecond(workAt(regions, use_hull), f_ghz, timing);
}

double
AppProfile::perfAlone(double f_max_ghz, bool use_hull) const
{
    return perfAt(static_cast<double>(l2Curve.maxRegions()), f_max_ghz,
                  use_hull);
}

namespace {

// Shared measurement loop: replay a stream through an L1 into a UMON
// and fill in the curve and memory-intensity fields of a profile whose
// params are already set.
void
measureStream(trace::AddressGenerator &gen, const ProfilerConfig &config,
              AppProfile &profile)
{
    cache::SetAssocCache l1(config.l1, /*partitions=*/1);
    cache::UMonitor umon(config.umon);

    // Warm up the L1 and shadow tags so the measured window reflects
    // steady state.
    for (uint64_t i = 0; i < config.warmupAccesses; ++i) {
        const trace::Access a = gen.next();
        const cache::AccessResult r = l1.access(0, a.addr, a.write);
        if (!r.hit)
            umon.observe(a.addr);
    }
    l1.resetStats();
    umon.resetHistogram();

    uint64_t l2_accesses = 0;
    for (uint64_t i = 0; i < config.measureAccesses; ++i) {
        const trace::Access a = gen.next();
        const cache::AccessResult r = l1.access(0, a.addr, a.write);
        if (!r.hit) {
            ++l2_accesses;
            umon.observe(a.addr);
        }
    }

    if (profile.params.memPerInstr <= 0.0)
        util::fatal("app '%s' has non-positive memPerInstr",
                    profile.params.name.c_str());
    profile.instructions = static_cast<double>(config.measureAccesses) /
                           profile.params.memPerInstr;
    profile.l2AccessesPerInstr =
        static_cast<double>(l2_accesses) / profile.instructions;
    profile.l2Curve = umon.missCurve();
}

} // namespace

AppProfile
profileApp(const AppParams &params, const ProfilerConfig &config,
           uint64_t seed)
{
    AppProfile profile;
    profile.params = params;
    profile.timing.computeCpi = params.computeCpi;
    auto gen = params.makeGenerator(/*base_addr=*/0, seed);
    measureStream(*gen, config, profile);
    return profile;
}

AppProfile
profileStream(trace::AddressGenerator &gen, const std::string &name,
              double mem_per_instr, double compute_cpi, double activity,
              const ProfilerConfig &config)
{
    AppProfile profile;
    profile.params.name = name;
    profile.params.memPerInstr = mem_per_instr;
    profile.params.computeCpi = compute_cpi;
    profile.params.activity = activity;
    profile.timing.computeCpi = compute_cpi;
    measureStream(gen, config, profile);
    return profile;
}

} // namespace rebudget::app
