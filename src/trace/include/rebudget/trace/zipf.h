#ifndef REBUDGET_TRACE_ZIPF_H_
#define REBUDGET_TRACE_ZIPF_H_

/**
 * @file
 * Zipf-skewed references over a working set.
 *
 * Hot lines are reused far more often than cold lines, producing the
 * smooth, concave miss curves characteristic of applications such as vpr:
 * every extra cache region captures the next-hottest slice of the
 * footprint, with diminishing returns.
 */

#include <cstdint>

#include "rebudget/trace/generator.h"
#include "rebudget/util/rng.h"

namespace rebudget::trace {

/** Zipf(alpha)-distributed line references within a working set. */
class ZipfWorkingSetGen : public AddressGenerator
{
  public:
    /**
     * @param base_addr       starting byte address of the region
     * @param working_set     footprint in bytes (> 0)
     * @param line_bytes      access granularity (power of two)
     * @param alpha           Zipf skew (0 = uniform; ~1 = strongly skewed)
     * @param write_fraction  probability an access is a store
     * @param seed            RNG seed
     */
    ZipfWorkingSetGen(uint64_t base_addr, uint64_t working_set,
                      uint64_t line_bytes, double alpha,
                      double write_fraction, uint64_t seed);

    Access next() override;
    uint64_t footprintBytes() const override { return workingSet_; }
    std::unique_ptr<AddressGenerator> clone() const override;

  private:
    uint64_t baseAddr_;
    uint64_t workingSet_;
    uint64_t lineBytes_;
    double writeFraction_;
    util::ZipfSampler sampler_;
    std::vector<uint64_t> rankToLine_;
    util::Rng rng_;
};

} // namespace rebudget::trace

#endif // REBUDGET_TRACE_ZIPF_H_
