#ifndef REBUDGET_TRACE_MIXTURE_H_
#define REBUDGET_TRACE_MIXTURE_H_

/**
 * @file
 * Composite reference streams: probabilistic mixtures and phase
 * alternation.  Real applications combine a hot structured region with
 * colder irregular traffic; mixtures let the catalog model knees at
 * multiple capacities.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "rebudget/trace/generator.h"
#include "rebudget/util/rng.h"

namespace rebudget::trace {

/**
 * Probabilistic mixture: each access is drawn from sub-generator g with
 * probability weight[g] / sum(weights).
 */
class MixtureGen : public AddressGenerator
{
  public:
    /** One weighted component. */
    struct Component
    {
        std::unique_ptr<AddressGenerator> gen;
        double weight = 1.0;
    };

    /**
     * @param components  non-empty set of weighted sub-generators
     * @param seed        RNG seed for component selection
     */
    MixtureGen(std::vector<Component> components, uint64_t seed);

    MixtureGen(const MixtureGen &other);
    MixtureGen &operator=(const MixtureGen &) = delete;

    Access next() override;
    uint64_t footprintBytes() const override;
    std::unique_ptr<AddressGenerator> clone() const override;

  private:
    std::vector<Component> components_;
    std::vector<double> cdf_;
    util::Rng rng_;
};

/**
 * Phase alternation: runs each sub-generator for a fixed number of
 * accesses before switching to the next, cyclically.  Models coarse
 * compute/memory program phases.
 */
class PhasedGen : public AddressGenerator
{
  public:
    /** One phase: a generator and its length in accesses. */
    struct Phase
    {
        std::unique_ptr<AddressGenerator> gen;
        uint64_t length = 1;
    };

    /** @param phases  non-empty list of phases (lengths > 0). */
    explicit PhasedGen(std::vector<Phase> phases);

    PhasedGen(const PhasedGen &other);
    PhasedGen &operator=(const PhasedGen &) = delete;

    Access next() override;
    uint64_t footprintBytes() const override;
    std::unique_ptr<AddressGenerator> clone() const override;

  private:
    std::vector<Phase> phases_;
    size_t current_ = 0;
    uint64_t remaining_ = 0;
};

} // namespace rebudget::trace

#endif // REBUDGET_TRACE_MIXTURE_H_
