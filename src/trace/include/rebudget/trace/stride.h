#ifndef REBUDGET_TRACE_STRIDE_H_
#define REBUDGET_TRACE_STRIDE_H_

/**
 * @file
 * Streaming (strided) reference pattern.
 *
 * Sweeps a footprint with a fixed stride and wraps around.  If the
 * footprint exceeds the cache, every access misses regardless of
 * allocation (LRU worst case), producing the flat miss curves of
 * cache-insensitive ("N"/"P" class) applications.
 */

#include <cstdint>

#include "rebudget/trace/generator.h"

namespace rebudget::trace {

/** Wrapping strided sweep over a footprint. */
class StrideGen : public AddressGenerator
{
  public:
    /**
     * @param base_addr       starting byte address of the region
     * @param footprint       bytes swept before wrapping (> 0)
     * @param stride_bytes    stride between consecutive accesses (> 0)
     * @param write_fraction  fraction of stores (deterministic pattern:
     *                        every k-th access is a store)
     */
    StrideGen(uint64_t base_addr, uint64_t footprint, uint64_t stride_bytes,
              double write_fraction);

    Access next() override;
    uint64_t footprintBytes() const override { return footprint_; }
    std::unique_ptr<AddressGenerator> clone() const override;

  private:
    uint64_t baseAddr_;
    uint64_t footprint_;
    uint64_t stride_;
    uint64_t offset_ = 0;
    uint64_t count_ = 0;
    uint64_t writePeriod_; // 0 = never write
};

} // namespace rebudget::trace

#endif // REBUDGET_TRACE_STRIDE_H_
