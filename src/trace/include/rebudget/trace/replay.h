#ifndef REBUDGET_TRACE_REPLAY_H_
#define REBUDGET_TRACE_REPLAY_H_

/**
 * @file
 * Recorded-trace replay: bring your own memory trace.
 *
 * Downstream users can feed real application traces (e.g. from Pin,
 * DynamoRIO or a full simulator) into the profiling and simulation
 * pipeline instead of the synthetic catalog.  The on-disk format is one
 * access per line: `R <hex-address>` or `W <hex-address>`; lines
 * starting with '#' are comments.
 */

#include <string>
#include <vector>

#include "rebudget/trace/generator.h"

namespace rebudget::trace {

/** Cyclic replay of a recorded access sequence. */
class ReplayGen : public AddressGenerator
{
  public:
    /**
     * @param accesses   non-empty recorded sequence (replayed
     *                   cyclically)
     * @param base_addr  offset added to every address (address-space
     *                   placement for multi-core runs)
     * @param line_bytes cache-line granularity used to compute the
     *                   footprint (distinct lines touched)
     */
    explicit ReplayGen(std::vector<Access> accesses,
                       uint64_t base_addr = 0,
                       uint32_t line_bytes = 64);

    Access next() override;
    uint64_t footprintBytes() const override { return footprint_; }
    std::unique_ptr<AddressGenerator> clone() const override;

    /** @return number of recorded accesses (one replay lap). */
    size_t length() const { return accesses_.size(); }

  private:
    std::vector<Access> accesses_;
    uint64_t baseAddr_;
    uint64_t footprint_;
    size_t pos_ = 0;
};

/**
 * Parse a trace file (see file banner for the format).
 *
 * @throws util::FatalError on unreadable files or malformed lines.
 */
std::vector<Access> loadTraceFile(const std::string &path);

/** Write a trace file in the same format. */
void saveTraceFile(const std::string &path,
                   const std::vector<Access> &accesses);

} // namespace rebudget::trace

#endif // REBUDGET_TRACE_REPLAY_H_
