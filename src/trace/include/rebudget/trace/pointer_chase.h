#ifndef REBUDGET_TRACE_POINTER_CHASE_H_
#define REBUDGET_TRACE_POINTER_CHASE_H_

/**
 * @file
 * Pointer-chasing reference pattern.
 *
 * Follows a random Hamiltonian cycle over the lines of a working set:
 * each line is visited exactly once per lap, in a data-dependent (random)
 * order.  Like the uniform generator it produces a cliff at the
 * working-set size, but with zero spatial locality and a deterministic
 * reuse distance equal to the footprint, which is the worst case for LRU:
 * with less than the full footprint cached, *every* access misses.
 */

#include <cstdint>
#include <vector>

#include "rebudget/trace/generator.h"
#include "rebudget/util/rng.h"

namespace rebudget::trace {

/** Random-cycle pointer chase over a working set. */
class PointerChaseGen : public AddressGenerator
{
  public:
    /**
     * @param base_addr    starting byte address of the region
     * @param working_set  footprint in bytes (> 0)
     * @param line_bytes   node size (power of two)
     * @param seed         RNG seed used to build the cycle
     */
    PointerChaseGen(uint64_t base_addr, uint64_t working_set,
                    uint64_t line_bytes, uint64_t seed);

    Access next() override;
    uint64_t footprintBytes() const override { return workingSet_; }
    std::unique_ptr<AddressGenerator> clone() const override;

  private:
    uint64_t baseAddr_;
    uint64_t workingSet_;
    uint64_t lineBytes_;
    std::vector<uint32_t> nextLine_;
    uint32_t current_ = 0;
};

} // namespace rebudget::trace

#endif // REBUDGET_TRACE_POINTER_CHASE_H_
