#ifndef REBUDGET_TRACE_GENERATOR_H_
#define REBUDGET_TRACE_GENERATOR_H_

/**
 * @file
 * Synthetic memory reference stream interface.
 *
 * The reproduction cannot run the paper's SPEC CPU2000/2006 SimPoints, so
 * each catalog application is backed by a parametric address-stream
 * generator whose locality profile (working-set size, reuse skew, spatial
 * pattern) is chosen to reproduce the cache behavior class the paper
 * relies on (cache cliffs for mcf-like apps, smooth concave curves for
 * vpr-like apps, streaming for cache-insensitive apps).  The streams feed
 * the real cache substrate (src/cache), so miss curves and monitor error
 * are measured, not assumed.
 */

#include <cstdint>
#include <memory>

namespace rebudget::trace {

/** One memory reference. */
struct Access
{
    /** Byte address. */
    uint64_t addr = 0;
    /** True for stores. */
    bool write = false;
};

/**
 * Abstract deterministic address-stream generator.
 *
 * Generators own their random state; two generators constructed with the
 * same parameters and seed produce identical streams.
 */
class AddressGenerator
{
  public:
    virtual ~AddressGenerator() = default;

    /** @return the next memory reference in the stream. */
    virtual Access next() = 0;

    /**
     * @return the nominal working-set footprint of the stream in bytes
     * (the amount of cache beyond which few additional hits occur).
     */
    virtual uint64_t footprintBytes() const = 0;

    /** @return an independent deep copy with identical future behavior. */
    virtual std::unique_ptr<AddressGenerator> clone() const = 0;
};

} // namespace rebudget::trace

#endif // REBUDGET_TRACE_GENERATOR_H_
