#ifndef REBUDGET_TRACE_UNIFORM_H_
#define REBUDGET_TRACE_UNIFORM_H_

/**
 * @file
 * Uniform-random references over a fixed working set.
 *
 * Produces the sharp "cliff" miss curve characteristic of applications
 * such as mcf: almost no hits until the cache covers the working set,
 * then near-perfect hits.
 */

#include <cstdint>

#include "rebudget/trace/generator.h"
#include "rebudget/util/rng.h"

namespace rebudget::trace {

/** Uniformly random line-granular references within a working set. */
class UniformWorkingSetGen : public AddressGenerator
{
  public:
    /**
     * @param base_addr       starting byte address of the region
     * @param working_set     footprint in bytes (> 0)
     * @param line_bytes      access granularity (power of two)
     * @param write_fraction  probability an access is a store
     * @param seed            RNG seed
     */
    UniformWorkingSetGen(uint64_t base_addr, uint64_t working_set,
                         uint64_t line_bytes, double write_fraction,
                         uint64_t seed);

    Access next() override;
    uint64_t footprintBytes() const override { return workingSet_; }
    std::unique_ptr<AddressGenerator> clone() const override;

  private:
    uint64_t baseAddr_;
    uint64_t workingSet_;
    uint64_t lineBytes_;
    uint64_t lines_;
    double writeFraction_;
    util::Rng rng_;
};

} // namespace rebudget::trace

#endif // REBUDGET_TRACE_UNIFORM_H_
