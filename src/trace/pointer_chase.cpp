#include "rebudget/trace/pointer_chase.h"

#include <numeric>

#include "rebudget/util/logging.h"

namespace rebudget::trace {

PointerChaseGen::PointerChaseGen(uint64_t base_addr, uint64_t working_set,
                                 uint64_t line_bytes, uint64_t seed)
    : baseAddr_(base_addr), workingSet_(working_set), lineBytes_(line_bytes)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        util::fatal("line_bytes must be a power of two");
    const uint64_t lines = working_set / line_bytes;
    if (lines == 0)
        util::fatal("working set smaller than one line");
    // Build a random Hamiltonian cycle: shuffle the visit order, then link
    // each line to its successor.
    std::vector<uint32_t> order(lines);
    std::iota(order.begin(), order.end(), 0);
    util::Rng rng(seed);
    rng.shuffle(order);
    nextLine_.resize(lines);
    for (uint64_t i = 0; i < lines; ++i)
        nextLine_[order[i]] = order[(i + 1) % lines];
    current_ = order[0];
}

Access
PointerChaseGen::next()
{
    const Access a{baseAddr_ + static_cast<uint64_t>(current_) * lineBytes_,
                   false};
    current_ = nextLine_[current_];
    return a;
}

std::unique_ptr<AddressGenerator>
PointerChaseGen::clone() const
{
    return std::make_unique<PointerChaseGen>(*this);
}

} // namespace rebudget::trace
