#include "rebudget/trace/mixture.h"

#include <algorithm>

#include "rebudget/util/logging.h"

namespace rebudget::trace {

MixtureGen::MixtureGen(std::vector<Component> components, uint64_t seed)
    : components_(std::move(components)), rng_(seed)
{
    if (components_.empty())
        util::fatal("MixtureGen requires at least one component");
    double sum = 0.0;
    for (const auto &c : components_) {
        if (!c.gen)
            util::fatal("MixtureGen component has a null generator");
        if (c.weight <= 0.0)
            util::fatal("MixtureGen weights must be positive");
        sum += c.weight;
    }
    cdf_.reserve(components_.size());
    double acc = 0.0;
    for (const auto &c : components_) {
        acc += c.weight / sum;
        cdf_.push_back(acc);
    }
    cdf_.back() = 1.0;
}

MixtureGen::MixtureGen(const MixtureGen &other)
    : cdf_(other.cdf_), rng_(other.rng_)
{
    components_.reserve(other.components_.size());
    for (const auto &c : other.components_)
        components_.push_back(Component{c.gen->clone(), c.weight});
}

Access
MixtureGen::next()
{
    const double u = rng_.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const size_t idx = static_cast<size_t>(it - cdf_.begin());
    return components_[idx].gen->next();
}

uint64_t
MixtureGen::footprintBytes() const
{
    uint64_t total = 0;
    for (const auto &c : components_)
        total += c.gen->footprintBytes();
    return total;
}

std::unique_ptr<AddressGenerator>
MixtureGen::clone() const
{
    return std::make_unique<MixtureGen>(*this);
}

PhasedGen::PhasedGen(std::vector<Phase> phases) : phases_(std::move(phases))
{
    if (phases_.empty())
        util::fatal("PhasedGen requires at least one phase");
    for (const auto &p : phases_) {
        if (!p.gen)
            util::fatal("PhasedGen phase has a null generator");
        if (p.length == 0)
            util::fatal("PhasedGen phase lengths must be positive");
    }
    remaining_ = phases_[0].length;
}

PhasedGen::PhasedGen(const PhasedGen &other)
    : current_(other.current_), remaining_(other.remaining_)
{
    phases_.reserve(other.phases_.size());
    for (const auto &p : other.phases_)
        phases_.push_back(Phase{p.gen->clone(), p.length});
}

Access
PhasedGen::next()
{
    if (remaining_ == 0) {
        current_ = (current_ + 1) % phases_.size();
        remaining_ = phases_[current_].length;
    }
    --remaining_;
    return phases_[current_].gen->next();
}

uint64_t
PhasedGen::footprintBytes() const
{
    uint64_t max_fp = 0;
    for (const auto &p : phases_)
        max_fp = std::max(max_fp, p.gen->footprintBytes());
    return max_fp;
}

std::unique_ptr<AddressGenerator>
PhasedGen::clone() const
{
    return std::make_unique<PhasedGen>(*this);
}

} // namespace rebudget::trace
