#include "rebudget/trace/uniform.h"

#include "rebudget/util/logging.h"

namespace rebudget::trace {

UniformWorkingSetGen::UniformWorkingSetGen(uint64_t base_addr,
                                           uint64_t working_set,
                                           uint64_t line_bytes,
                                           double write_fraction,
                                           uint64_t seed)
    : baseAddr_(base_addr), workingSet_(working_set), lineBytes_(line_bytes),
      lines_(working_set / line_bytes), writeFraction_(write_fraction),
      rng_(seed)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        util::fatal("line_bytes must be a power of two");
    if (lines_ == 0)
        util::fatal("working set smaller than one line");
    if (write_fraction < 0.0 || write_fraction > 1.0)
        util::fatal("write_fraction must be in [0,1]");
}

Access
UniformWorkingSetGen::next()
{
    const uint64_t line = rng_.uniformInt(lines_);
    return Access{baseAddr_ + line * lineBytes_,
                  rng_.bernoulli(writeFraction_)};
}

std::unique_ptr<AddressGenerator>
UniformWorkingSetGen::clone() const
{
    return std::make_unique<UniformWorkingSetGen>(*this);
}

} // namespace rebudget::trace
