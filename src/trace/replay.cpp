#include "rebudget/trace/replay.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "rebudget/util/logging.h"

namespace rebudget::trace {

ReplayGen::ReplayGen(std::vector<Access> accesses, uint64_t base_addr,
                     uint32_t line_bytes)
    : accesses_(std::move(accesses)), baseAddr_(base_addr)
{
    if (accesses_.empty())
        util::fatal("ReplayGen requires a non-empty trace");
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        util::fatal("line_bytes must be a power of two");
    // Footprint: distinct cache lines touched (not the address span,
    // which is meaningless for traces spread over several regions).
    std::unordered_set<uint64_t> lines;
    lines.reserve(accesses_.size());
    for (const Access &a : accesses_)
        lines.insert(a.addr / line_bytes);
    footprint_ = static_cast<uint64_t>(lines.size()) * line_bytes;
}

Access
ReplayGen::next()
{
    Access a = accesses_[pos_];
    a.addr += baseAddr_;
    pos_ = (pos_ + 1) % accesses_.size();
    return a;
}

std::unique_ptr<AddressGenerator>
ReplayGen::clone() const
{
    return std::make_unique<ReplayGen>(*this);
}

std::vector<Access>
loadTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot open trace file '%s'", path.c_str());
    std::vector<Access> out;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments and whitespace-only lines.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ss(line);
        std::string kind;
        if (!(ss >> kind))
            continue; // blank
        std::string addr_str;
        if (!(ss >> addr_str)) {
            util::fatal("%s:%zu: missing address", path.c_str(),
                        lineno);
        }
        Access a;
        if (kind == "R" || kind == "r") {
            a.write = false;
        } else if (kind == "W" || kind == "w") {
            a.write = true;
        } else {
            util::fatal("%s:%zu: expected R or W, got '%s'",
                        path.c_str(), lineno, kind.c_str());
        }
        try {
            a.addr = std::stoull(addr_str, nullptr, 16);
        } catch (const std::exception &) {
            util::fatal("%s:%zu: bad hex address '%s'", path.c_str(),
                        lineno, addr_str.c_str());
        }
        out.push_back(a);
    }
    if (out.empty())
        util::fatal("trace file '%s' contains no accesses",
                    path.c_str());
    return out;
}

void
saveTraceFile(const std::string &path,
              const std::vector<Access> &accesses)
{
    std::ofstream os(path);
    if (!os)
        util::fatal("cannot write trace file '%s'", path.c_str());
    os << "# rebudget trace: R|W <hex address>\n" << std::hex;
    for (const Access &a : accesses)
        os << (a.write ? 'W' : 'R') << ' ' << a.addr << '\n';
    if (!os)
        util::fatal("error writing trace file '%s'", path.c_str());
}

} // namespace rebudget::trace
