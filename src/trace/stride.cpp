#include "rebudget/trace/stride.h"

#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::trace {

StrideGen::StrideGen(uint64_t base_addr, uint64_t footprint,
                     uint64_t stride_bytes, double write_fraction)
    : baseAddr_(base_addr), footprint_(footprint), stride_(stride_bytes)
{
    if (footprint == 0)
        util::fatal("StrideGen requires a non-zero footprint");
    if (stride_bytes == 0)
        util::fatal("StrideGen requires a non-zero stride");
    if (write_fraction < 0.0 || write_fraction > 1.0)
        util::fatal("write_fraction must be in [0,1]");
    writePeriod_ = write_fraction > 0.0
                       ? static_cast<uint64_t>(std::llround(1.0 /
                                                            write_fraction))
                       : 0;
}

Access
StrideGen::next()
{
    Access a;
    a.addr = baseAddr_ + offset_;
    a.write = writePeriod_ != 0 && (count_ % writePeriod_) == 0 && count_ > 0;
    offset_ += stride_;
    if (offset_ >= footprint_)
        offset_ = 0;
    ++count_;
    return a;
}

std::unique_ptr<AddressGenerator>
StrideGen::clone() const
{
    return std::make_unique<StrideGen>(*this);
}

} // namespace rebudget::trace
