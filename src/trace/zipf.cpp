#include "rebudget/trace/zipf.h"

#include <numeric>

#include "rebudget/util/logging.h"

namespace rebudget::trace {

ZipfWorkingSetGen::ZipfWorkingSetGen(uint64_t base_addr,
                                     uint64_t working_set,
                                     uint64_t line_bytes, double alpha,
                                     double write_fraction, uint64_t seed)
    : baseAddr_(base_addr), workingSet_(working_set), lineBytes_(line_bytes),
      writeFraction_(write_fraction),
      sampler_(working_set / line_bytes, alpha), rng_(seed)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        util::fatal("line_bytes must be a power of two");
    const uint64_t lines = working_set / line_bytes;
    if (lines == 0)
        util::fatal("working set smaller than one line");
    if (write_fraction < 0.0 || write_fraction > 1.0)
        util::fatal("write_fraction must be in [0,1]");
    // Scatter ranks across the footprint so that hot lines spread evenly
    // over cache sets rather than clustering at low set indices.
    rankToLine_.resize(lines);
    std::iota(rankToLine_.begin(), rankToLine_.end(), 0);
    util::Rng perm_rng(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
    perm_rng.shuffle(rankToLine_);
}

Access
ZipfWorkingSetGen::next()
{
    const size_t rank = sampler_.sample(rng_);
    const uint64_t line = rankToLine_[rank];
    return Access{baseAddr_ + line * lineBytes_,
                  rng_.bernoulli(writeFraction_)};
}

std::unique_ptr<AddressGenerator>
ZipfWorkingSetGen::clone() const
{
    return std::make_unique<ZipfWorkingSetGen>(*this);
}

} // namespace rebudget::trace
