#include "rebudget/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "rebudget/util/logging.h"

namespace rebudget::util {

unsigned
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("REBUDGET_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? defaultThreadCount() : threads)
{
    if (threads_ <= 1)
        return; // inline mode: no workers
    workers_.reserve(threads_);
    try {
        for (unsigned t = 0; t < threads_; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    } catch (...) {
        // Spawning worker t failed (resource exhaustion).  The t
        // already-running workers are joinable; leaving them behind
        // would std::terminate when the vector destructs.  Stop and
        // join them, then let the spawn error propagate.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    // Workers drain the queue before exiting (workerLoop only returns
    // on stop_ && empty), so join() cannot deadlock on pending work --
    // it blocks exactly until the last queued task has run.
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        runContained(task);
        return;
    }
    post(std::move(task));
}

void
ThreadPool::post(std::function<void()> task)
{
    if (workers_.empty()) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::runContained(const std::function<void()> &task)
{
    // Last-resort containment for fire-and-forget tasks: an exception
    // escaping a worker thread would std::terminate the whole process
    // (including during the destructor's drain, where it would strand
    // the remaining join()s).  parallelFor bodies never reach this
    // handler -- they are wrapped with a rethrowing catch before being
    // queued.
    try {
        task();
    } catch (const std::exception &e) {
        warn("thread-pool task threw: %s", e.what());
    } catch (...) {
        warn("thread-pool task threw a non-exception");
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop();
        }
        runContained(task);
    }
}

void
ThreadPool::parallelFor(size_t count,
                        const std::function<void(size_t)> &body)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        for (size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    // Shared loop state: a cursor handing out indices, a completion
    // counter, and the first exception (workers stop taking new indices
    // once one is recorded).
    struct ForState
    {
        std::atomic<size_t> next{0};
        std::atomic<bool> cancelled{false};
        std::exception_ptr error;
        std::mutex mutex;
        std::condition_variable done_cv;
        size_t tasks_finished = 0;
    };
    auto state = std::make_shared<ForState>();
    const size_t tasks =
        std::min<size_t>(static_cast<size_t>(threads_), count);

    for (size_t t = 0; t < tasks; ++t) {
        post([state, count, &body] {
            for (;;) {
                if (state->cancelled.load(std::memory_order_relaxed))
                    break;
                const size_t i =
                    state->next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    break;
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->mutex);
                    if (!state->error)
                        state->error = std::current_exception();
                    state->cancelled.store(true,
                                           std::memory_order_relaxed);
                }
            }
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                ++state->tasks_finished;
            }
            state->done_cv.notify_one();
        });
    }

    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock,
                        [&] { return state->tasks_finished == tasks; });
    if (state->error)
        std::rethrow_exception(state->error);
}

void
parallelFor(unsigned jobs, size_t count,
            const std::function<void(size_t)> &body)
{
    ThreadPool pool(jobs);
    pool.parallelFor(count, body);
}

} // namespace rebudget::util
