#include "rebudget/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "rebudget/util/logging.h"

namespace rebudget::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TablePrinter requires at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size()) {
        fatal("TablePrinter row has %zu cells, expected %zu", row.size(),
              headers_.size());
    }
    rows_.push_back(std::move(row));
}

void
TablePrinter::addRow(const std::string &label,
                     const std::vector<double> &values, int precision)
{
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(label);
    for (double v : values)
        row.push_back(formatDouble(v, precision));
    addRow(std::move(row));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
formatDouble(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n'
       << "==== " << title << ' '
       << std::string(title.size() < 70 ? 70 - title.size() : 4, '=') << '\n';
}

} // namespace rebudget::util
