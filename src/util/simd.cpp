#include "rebudget/util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#define REBUDGET_SIMD_SSE2 1
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#define REBUDGET_SIMD_AVX2 1
#endif

namespace rebudget::util::simd {

namespace {

bool
envEnabled()
{
    const char *v = std::getenv("REBUDGET_SIMD");
    if (v == nullptr)
        return true;
    return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
             std::strcmp(v, "false") == 0);
}

std::atomic<bool> g_enabled{envEnabled()};

/** Scalar fallback: the semantic definition of columnSums. */
void
columnSumsScalar(const double *data, size_t n, size_t m, double *out)
{
    for (size_t j = 0; j < m; ++j)
        out[j] = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double *row = data + i * m;
        for (size_t j = 0; j < m; ++j)
            out[j] += row[j];
    }
}

/** Scalar fallback: the semantic definition of allocationFromPrices. */
void
allocationFromPricesScalar(const double *bids, size_t n, size_t m,
                           const double *prices, double *alloc)
{
    for (size_t i = 0; i < n; ++i) {
        const double *b = bids + i * m;
        double *a = alloc + i * m;
        for (size_t j = 0; j < m; ++j)
            a[j] = prices[j] > 0.0 ? b[j] / prices[j] : 0.0;
    }
}

#if REBUDGET_SIMD_SSE2

/**
 * Two-resource column sums: one 128-bit accumulator whose lanes ARE the
 * two columns, added in ascending row order -- the exact scalar
 * dependency chains, so the result is bit-identical to the fallback.
 */
void
columnSumsSse2M2(const double *data, size_t n, double *out)
{
    __m128d acc = _mm_setzero_pd();
    for (size_t i = 0; i < n; ++i)
        acc = _mm_add_pd(acc, _mm_loadu_pd(data + 2 * i));
    _mm_storeu_pd(out, acc);
}

/**
 * Two-resource allocation rows: q = b / p per lane, lanes with p <= 0
 * masked to +0.0 bitwise.  Elementwise, hence exact.
 */
void
allocationFromPricesSse2M2(const double *bids, size_t n,
                           const double *prices, double *alloc)
{
    const __m128d pv = _mm_loadu_pd(prices);
    const __m128d pos = _mm_cmpgt_pd(pv, _mm_setzero_pd());
    for (size_t i = 0; i < n; ++i) {
        const __m128d b = _mm_loadu_pd(bids + 2 * i);
        const __m128d q = _mm_div_pd(b, pv);
        _mm_storeu_pd(alloc + 2 * i, _mm_and_pd(q, pos));
    }
}

#endif // REBUDGET_SIMD_SSE2

#if REBUDGET_SIMD_AVX2

/** Four-resource column sums: one 256-bit accumulator, one lane per
 * column, ascending row order -- bit-identical to the fallback. */
void
columnSumsAvx2M4(const double *data, size_t n, double *out)
{
    __m256d acc = _mm256_setzero_pd();
    for (size_t i = 0; i < n; ++i)
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(data + 4 * i));
    _mm256_storeu_pd(out, acc);
}

/** Two-resource allocation, two rows per 256-bit vector (elementwise,
 * so batching rows cannot change any value); odd tail row via SSE2. */
void
allocationFromPricesAvx2M2(const double *bids, size_t n,
                           const double *prices, double *alloc)
{
    const __m256d pv = _mm256_setr_pd(prices[0], prices[1], prices[0],
                                      prices[1]);
    const __m256d pos = _mm256_cmp_pd(pv, _mm256_setzero_pd(),
                                      _CMP_GT_OQ);
    const size_t pairs = n / 2;
    for (size_t k = 0; k < pairs; ++k) {
        const __m256d b = _mm256_loadu_pd(bids + 4 * k);
        const __m256d q = _mm256_div_pd(b, pv);
        _mm256_storeu_pd(alloc + 4 * k, _mm256_and_pd(q, pos));
    }
    if (n & 1)
        allocationFromPricesSse2M2(bids + 4 * pairs, 1, prices,
                                   alloc + 4 * pairs);
}

/** Four-resource allocation: one row per 256-bit vector. */
void
allocationFromPricesAvx2M4(const double *bids, size_t n,
                           const double *prices, double *alloc)
{
    const __m256d pv = _mm256_loadu_pd(prices);
    const __m256d pos = _mm256_cmp_pd(pv, _mm256_setzero_pd(),
                                      _CMP_GT_OQ);
    for (size_t i = 0; i < n; ++i) {
        const __m256d b = _mm256_loadu_pd(bids + 4 * i);
        const __m256d q = _mm256_div_pd(b, pv);
        _mm256_storeu_pd(alloc + 4 * i, _mm256_and_pd(q, pos));
    }
}

#endif // REBUDGET_SIMD_AVX2

} // namespace

bool
compiledIn()
{
#if REBUDGET_SIMD_SSE2 || REBUDGET_SIMD_AVX2
    return true;
#else
    return false;
#endif
}

const char *
activeIsa()
{
    if (!enabled())
        return "scalar";
#if REBUDGET_SIMD_AVX2
    return "avx2";
#elif REBUDGET_SIMD_SSE2
    return "sse2";
#else
    return "scalar";
#endif
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

void
columnSums(const double *data, size_t n, size_t m, double *out)
{
    if (enabled()) {
#if REBUDGET_SIMD_SSE2
        if (m == 2) {
            columnSumsSse2M2(data, n, out);
            return;
        }
#endif
#if REBUDGET_SIMD_AVX2
        if (m == 4) {
            columnSumsAvx2M4(data, n, out);
            return;
        }
#endif
    }
    columnSumsScalar(data, n, m, out);
}

void
allocationFromPrices(const double *bids, size_t n, size_t m,
                     const double *prices, double *alloc)
{
    if (enabled()) {
#if REBUDGET_SIMD_AVX2
        if (m == 2) {
            allocationFromPricesAvx2M2(bids, n, prices, alloc);
            return;
        }
        if (m == 4) {
            allocationFromPricesAvx2M4(bids, n, prices, alloc);
            return;
        }
#elif REBUDGET_SIMD_SSE2
        if (m == 2) {
            allocationFromPricesSse2M2(bids, n, prices, alloc);
            return;
        }
#endif
    }
    allocationFromPricesScalar(bids, n, m, prices, alloc);
}

} // namespace rebudget::util::simd
