#include "rebudget/util/stats.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"
#include "rebudget/util/rng.h"

namespace rebudget::util {

void
SummaryStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
SummaryStats::merge(const SummaryStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n_total = na + nb;
    mean_ += delta * nb / n_total;
    m2_ += other.m2_ + delta * delta * na * nb / n_total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double
SummaryStats::min() const
{
    return n_ ? min_ : 0.0;
}

double
SummaryStats::max() const
{
    return n_ ? max_ : 0.0;
}

double
SummaryStats::mean() const
{
    return n_ ? mean_ : 0.0;
}

double
SummaryStats::variance() const
{
    return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double
SummaryStats::stddev() const
{
    return std::sqrt(variance());
}

double
quantile(std::vector<double> data, double q)
{
    std::sort(data.begin(), data.end());
    return sortedQuantile(data, q);
}

double
sortedQuantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        fatal("quantile of empty data");
    if (q < 0.0 || q > 1.0)
        fatal("quantile q must be in [0,1], got %f", q);
    if (sorted.size() == 1)
        return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
fractionAtLeast(const std::vector<double> &data, double threshold)
{
    if (data.empty())
        return 0.0;
    size_t n = 0;
    for (double x : data) {
        if (x >= threshold)
            ++n;
    }
    return static_cast<double>(n) / static_cast<double>(data.size());
}

ConfidenceInterval
bootstrapMeanCI(const std::vector<double> &data, double confidence,
                size_t resamples, uint64_t seed)
{
    if (data.empty())
        fatal("bootstrapMeanCI of empty data");
    if (confidence <= 0.0 || confidence >= 1.0)
        fatal("confidence must be in (0,1), got %f", confidence);
    if (resamples < 100)
        fatal("bootstrapMeanCI needs at least 100 resamples");
    Rng rng(seed);
    const size_t n = data.size();
    std::vector<double> means;
    means.reserve(resamples);
    for (size_t r = 0; r < resamples; ++r) {
        double sum = 0.0;
        for (size_t k = 0; k < n; ++k)
            sum += data[rng.uniformInt(static_cast<uint64_t>(n))];
        means.push_back(sum / static_cast<double>(n));
    }
    std::sort(means.begin(), means.end());
    const double alpha = (1.0 - confidence) / 2.0;
    ConfidenceInterval ci;
    ci.lo = sortedQuantile(means, alpha);
    ci.hi = sortedQuantile(means, 1.0 - alpha);
    double sum = 0.0;
    for (double x : data)
        sum += x;
    ci.mean = sum / static_cast<double>(n);
    return ci;
}

Histogram::Histogram(double lo, double hi, size_t bins) : lo_(lo), hi_(hi)
{
    if (!(hi > lo))
        fatal("Histogram requires hi > lo");
    if (bins == 0)
        fatal("Histogram requires at least one bin");
    counts_.assign(bins, 0);
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto b = static_cast<long>(std::floor((x - lo_) / width));
    b = std::clamp(b, 0L, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(b)];
    ++total_;
}

uint64_t
Histogram::binCount(size_t b) const
{
    REBUDGET_ASSERT(b < counts_.size(), "histogram bin out of range");
    return counts_[b];
}

double
Histogram::binCenter(size_t b) const
{
    REBUDGET_ASSERT(b < counts_.size(), "histogram bin out of range");
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(b) + 0.5) * width;
}

} // namespace rebudget::util
