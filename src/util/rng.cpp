#include "rebudget/util/rng.h"

#include <algorithm>
#include <cmath>

#include "rebudget/util/logging.h"

namespace rebudget::util {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
hashId(std::string_view s)
{
    // FNV-1a, then one mix64 pass to spread the low bits.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return mix64(h);
}

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

Rng
Rng::forStream(uint64_t seed, std::initializer_list<uint64_t> keys)
{
    // Fold the keys into the seed one mix at a time; every prefix yields
    // a distinct, well-mixed state, so (a, b) and (b, a) differ.
    uint64_t h = mix64(seed);
    for (const uint64_t k : keys)
        h = mix64(h ^ mix64(k));
    return Rng(h);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    REBUDGET_ASSERT(n > 0, "uniformInt requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    REBUDGET_ASSERT(lo <= hi, "uniformInt requires lo <= hi");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(uniformInt(span));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::normal(double mean, double stddev)
{
    if (haveSpareNormal_) {
        haveSpareNormal_ = false;
        return mean + stddev * spareNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spareNormal_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpareNormal_ = true;
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::exponential(double rate)
{
    REBUDGET_ASSERT(rate > 0.0, "exponential requires rate > 0");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

Rng
Rng::split()
{
    return Rng(next());
}

ZipfSampler::ZipfSampler(size_t n, double alpha)
{
    if (n == 0)
        fatal("ZipfSampler requires a non-empty population");
    if (alpha < 0.0)
        fatal("ZipfSampler requires alpha >= 0 (got %f)", alpha);
    cdf_.resize(n);
    double sum = 0.0;
    for (size_t k = 0; k < n; ++k) {
        sum += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
        cdf_[k] = sum;
    }
    for (auto &c : cdf_)
        c /= sum;
    cdf_.back() = 1.0; // guard against rounding
}

size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<size_t>(it - cdf_.begin());
}

double
ZipfSampler::pmf(size_t k) const
{
    REBUDGET_ASSERT(k < cdf_.size(), "pmf rank out of range");
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

} // namespace rebudget::util
