#include "rebudget/util/status.h"

namespace rebudget::util {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "ok";
      case StatusCode::InvalidArgument: return "invalid_argument";
      case StatusCode::FailedPrecondition: return "failed_precondition";
      case StatusCode::Numerical: return "numerical";
      case StatusCode::Aborted: return "aborted";
    }
    return "unknown";
}

SolveStatus
SolveStatus::error(StatusCode code, const char *fmt, ...)
{
    REBUDGET_ASSERT(code != StatusCode::Ok,
                    "SolveStatus::error() needs a non-Ok code");
    std::va_list args;
    va_start(args, fmt);
    std::string message = detail::vformat(fmt, args);
    va_end(args);
    return SolveStatus(code, std::move(message));
}

std::string
SolveStatus::toString() const
{
    if (ok())
        return "ok";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

} // namespace rebudget::util
