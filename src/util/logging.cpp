#include "rebudget/util/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace rebudget::util {

namespace {
// Atomic so log emission from pool workers never races setLogLevel().
std::atomic<LogLevel> g_level{LogLevel::Warn};
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail {

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Info)
        return;
    std::va_list args;
    va_start(args, fmt);
    const std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugLog(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Debug)
        return;
    std::va_list args;
    va_start(args, fmt);
    const std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

void
warn(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    std::va_list args;
    va_start(args, fmt);
    const std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    const std::string msg = detail::vformat(fmt, args);
    va_end(args);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    const std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace rebudget::util
