#include "rebudget/util/arg_parse.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <string>

namespace rebudget::util {

namespace {

/** Render up to 64 chars of the offending token for the diagnostic. */
std::string
quoted(std::string_view text)
{
    std::string out(text.substr(0, 64));
    if (text.size() > 64)
        out += "...";
    return out;
}

} // namespace

Expected<std::uint64_t>
parseUnsigned(std::string_view text)
{
    if (text.empty()) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "empty value where a non-negative "
                                  "integer was expected");
    }
    if (text.front() == '-') {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "'%s' is negative; a non-negative "
                                  "integer was expected",
                                  quoted(text).c_str());
    }
    // from_chars accepts neither whitespace nor '+', so a leading
    // non-digit falls through to the generic diagnostic below.
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec == std::errc::result_out_of_range) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "'%s' overflows a 64-bit unsigned "
                                  "integer",
                                  quoted(text).c_str());
    }
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "'%s' is not a non-negative integer "
                                  "(whole token must be digits)",
                                  quoted(text).c_str());
    }
    return value;
}

Expected<std::uint64_t>
parseUnsigned(std::string_view text, std::uint64_t max)
{
    const auto parsed = parseUnsigned(text);
    if (!parsed.ok())
        return parsed.status();
    if (parsed.value() > max) {
        return SolveStatus::error(
            StatusCode::InvalidArgument,
            "'%s' exceeds the allowed maximum %llu", quoted(text).c_str(),
            static_cast<unsigned long long>(max));
    }
    return parsed.value();
}

Expected<double>
parseDouble(std::string_view text)
{
    if (text.empty()) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "empty value where a number was "
                                  "expected");
    }
    double value = 0.0;
    // std::chars_format::general: decimal and scientific, no hex, and
    // from_chars never skips whitespace.  "inf"/"nan" DO parse under
    // from_chars, so the finiteness check below still has work to do.
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value,
                        std::chars_format::general);
    if (ec == std::errc::result_out_of_range) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "'%s' is out of range for a double",
                                  quoted(text).c_str());
    }
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "'%s' is not a number (whole token "
                                  "must parse)",
                                  quoted(text).c_str());
    }
    if (!std::isfinite(value)) {
        return SolveStatus::error(StatusCode::InvalidArgument,
                                  "'%s' is not a finite number",
                                  quoted(text).c_str());
    }
    return value;
}

} // namespace rebudget::util
