#include "rebudget/util/solver_stats.h"

#include <chrono>
#include <cstdio>

namespace rebudget::util {

double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
        clock::now().time_since_epoch()).count();
}

void
SolverStats::merge(const SolverStats &other)
{
    equilibriumSolves += other.equilibriumSolves;
    sweepIterations += other.sweepIterations;
    hillClimbSteps += other.hillClimbSteps;
    failSafeTrips += other.failSafeTrips;
    warmStartedSolves += other.warmStartedSolves;
    coldStartedSolves += other.coldStartedSolves;
    elidedRescales += other.elidedRescales;
    budgetRounds += other.budgetRounds;
    failedSolves += other.failedSolves;
    sanitizedGrids += other.sanitizedGrids;
    repairedCurves += other.repairedCurves;
    rejectedSamples += other.rejectedSamples;
    watchdogTrips += other.watchdogTrips;
    fallbackEpochs += other.fallbackEpochs;
    tenantsJoined += other.tenantsJoined;
    tenantsDeparted += other.tenantsDeparted;
    migratedWarmSeeds += other.migratedWarmSeeds;
    karmaDonors += other.karmaDonors;
    karmaBorrowers += other.karmaBorrowers;
    solveSeconds += other.solveSeconds;
    rescaleSeconds += other.rescaleSeconds;
    allocateSeconds += other.allocateSeconds;
}

std::string
SolverStats::toJson(int indent) const
{
    const std::string pad(indent, ' ');
    const char *sep = indent > 0 ? "\n" : " ";
    const std::string field = indent > 0 ? pad + "  " : "";

    char buf[128];
    std::string out = "{";
    out += sep;
    auto addInt = [&](const char *key, std::int64_t v, bool last = false) {
        std::snprintf(buf, sizeof(buf), "\"%s\": %lld%s", key,
                      static_cast<long long>(v), last ? "" : ",");
        out += field + buf + sep;
    };
    auto addSec = [&](const char *key, double v, bool last = false) {
        std::snprintf(buf, sizeof(buf), "\"%s\": %.6f%s", key, v,
                      last ? "" : ",");
        out += field + buf + sep;
    };
    addInt("equilibrium_solves", equilibriumSolves);
    addInt("sweep_iterations", sweepIterations);
    addInt("hill_climb_steps", hillClimbSteps);
    addInt("fail_safe_trips", failSafeTrips);
    addInt("warm_started_solves", warmStartedSolves);
    addInt("cold_started_solves", coldStartedSolves);
    addInt("elided_rescales", elidedRescales);
    addInt("budget_rounds", budgetRounds);
    addInt("failed_solves", failedSolves);
    addInt("sanitized_grids", sanitizedGrids);
    addInt("repaired_curves", repairedCurves);
    addInt("rejected_samples", rejectedSamples);
    addInt("watchdog_trips", watchdogTrips);
    addInt("fallback_epochs", fallbackEpochs);
    addInt("tenants_joined", tenantsJoined);
    addInt("tenants_departed", tenantsDeparted);
    addInt("migrated_warm_seeds", migratedWarmSeeds);
    addInt("karma_donors", karmaDonors);
    addInt("karma_borrowers", karmaBorrowers);
    addSec("solve_seconds", solveSeconds);
    addSec("rescale_seconds", rescaleSeconds);
    addSec("allocate_seconds", allocateSeconds, /*last=*/true);
    out += pad + "}";
    return out;
}

} // namespace rebudget::util
