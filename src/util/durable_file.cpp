#include "rebudget/util/durable_file.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace rebudget::util {

namespace {

SolveStatus
ioError(const char *what, const std::string &path)
{
    return SolveStatus::error(StatusCode::Aborted, "%s(%s): %s", what,
                              path.c_str(), std::strerror(errno));
}

/** Build the reflected CRC32C (poly 0x1EDC6F41) lookup table once. */
struct Crc32cTable
{
    std::uint32_t entries[256];

    Crc32cTable()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
            entries[i] = c;
        }
    }
};

/** @return the directory part of @p path ("." when there is none). */
std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

SolveStatus
writeAll(int fd, const std::uint8_t *data, std::size_t size,
         const std::string &path)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ioError("write", path);
        }
        if (n == 0) {
            return SolveStatus::error(StatusCode::Aborted,
                                      "write(%s): wrote 0 bytes",
                                      path.c_str());
        }
        off += static_cast<std::size_t>(n);
    }
    return {};
}

} // namespace

std::uint32_t
crc32c(const std::uint8_t *data, std::size_t size, std::uint32_t seed)
{
    static const Crc32cTable table;
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = table.entries[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

SolveStatus
writeFileAtomic(const std::string &path, const std::uint8_t *data,
                std::size_t size, bool sync)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC |
                                           O_CLOEXEC,
                          0644);
    if (fd < 0)
        return ioError("open", tmp);
    SolveStatus status = writeAll(fd, data, size, tmp);
    if (status.ok() && sync && ::fsync(fd) != 0)
        status = ioError("fsync", tmp);
    if (::close(fd) != 0 && status.ok())
        status = ioError("close", tmp);
    if (!status.ok()) {
        ::unlink(tmp.c_str());
        return status;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const SolveStatus err = ioError("rename", path);
        ::unlink(tmp.c_str());
        return err;
    }
    if (sync)
        return syncDirectory(dirOf(path));
    return {};
}

SolveStatus
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    out.clear();
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        if (errno == ENOENT) {
            return SolveStatus::error(StatusCode::FailedPrecondition,
                                      "no such file: %s", path.c_str());
        }
        return ioError("open", path);
    }
    std::uint8_t buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const SolveStatus err = ioError("read", path);
            ::close(fd);
            return err;
        }
        if (n == 0)
            break;
        out.insert(out.end(), buf, buf + n);
    }
    ::close(fd);
    return {};
}

SolveStatus
renameFile(const std::string &from, const std::string &to, bool missingOk)
{
    if (::rename(from.c_str(), to.c_str()) == 0)
        return {};
    if (missingOk && errno == ENOENT)
        return {};
    return ioError("rename", from);
}

SolveStatus
removeFile(const std::string &path)
{
    if (::unlink(path.c_str()) == 0 || errno == ENOENT)
        return {};
    return ioError("unlink", path);
}

SolveStatus
makeDirs(const std::string &path)
{
    if (path.empty() || path == "/" || path == ".")
        return {};
    std::size_t pos = 0;
    while (pos <= path.size()) {
        std::size_t slash = path.find('/', pos == 0 ? 1 : pos);
        const std::string prefix =
            slash == std::string::npos ? path : path.substr(0, slash);
        if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
            errno != EEXIST)
            return ioError("mkdir", prefix);
        if (slash == std::string::npos)
            break;
        pos = slash + 1;
    }
    return {};
}

SolveStatus
syncDirectory(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY |
                                            O_CLOEXEC);
    if (fd < 0)
        return ioError("open(dir)", path);
    SolveStatus status;
    if (::fsync(fd) != 0)
        status = ioError("fsync(dir)", path);
    ::close(fd);
    return status;
}

AppendLog::~AppendLog()
{
    close();
}

SolveStatus
AppendLog::open(const std::string &path, bool truncate)
{
    close();
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (truncate)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0)
        return ioError("open", path);
    path_ = path;
    return {};
}

SolveStatus
AppendLog::append(const std::uint8_t *data, std::size_t size)
{
    if (fd_ < 0) {
        return SolveStatus::error(StatusCode::FailedPrecondition,
                                  "append on a closed log");
    }
    for (;;) {
        const ssize_t n = ::write(fd_, data, size);
        if (n == static_cast<ssize_t>(size))
            return {};
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0)
            return ioError("write", path_);
        // A short O_APPEND write would interleave torn records with
        // later appends; treat the log as suspect from here on.
        return SolveStatus::error(StatusCode::Aborted,
                                  "write(%s): short append (%zd of %zu)",
                                  path_.c_str(), n, size);
    }
}

SolveStatus
AppendLog::sync()
{
    if (fd_ < 0)
        return {};
    if (::fsync(fd_) != 0)
        return ioError("fsync", path_);
    return {};
}

void
AppendLog::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    path_.clear();
}

} // namespace rebudget::util
