#ifndef REBUDGET_UTIL_SIMD_H_
#define REBUDGET_UTIL_SIMD_H_

/**
 * @file
 * Explicit SIMD kernels for the equilibrium hot path, with a scalar
 * fallback that is the kernels' semantic definition.
 *
 * The market engine spends its O(n*m) time in two shapes of loop over
 * the flat row-major bid matrix (util::Matrix): per-resource column
 * sums (the price engine) and the elementwise bid/price division that
 * materializes the proportional allocation.  Both are dispatched here.
 *
 * Bit-identity contract: every kernel in this header produces results
 * BIT-IDENTICAL to its scalar fallback, in every dispatch tier.
 *
 * - columnSums accumulates each column in ascending row order -- the
 *   solver's canonical summation order.  The SSE2 tier exploits that a
 *   two-resource row occupies exactly one 128-bit vector (and a
 *   four-resource row one 256-bit vector on AVX2 builds), so one
 *   vector accumulator carries every column's scalar dependency chain
 *   in its own lane: the additions reassociate NOTHING and the sums
 *   match the scalar loop to the last ulp.  Column counts that do not
 *   fill a vector exactly fall back to the scalar loop rather than
 *   reassociate across rows.
 * - allocationFromPrices is purely elementwise (one division and one
 *   compare per entry), so any lane width is exact; wider tiers only
 *   batch more rows per iteration.
 *
 * This is what lets the vectorized path run by default under the
 * reference-solver bit-identity pin (tests/market/reference_solver_test
 * and the fig04 counters in BENCH_market.json).
 *
 * Runtime dispatch: kernels honor a process-wide enable flag
 * (default on; env REBUDGET_SIMD=0/off disables at startup) so the
 * equivalence tests and bench/perf_equilibrium's scaling section can
 * measure the scalar path from the same binary.  The flag is a relaxed
 * atomic: toggling is test/bench-only, never racing a solve.
 */

#include <cstddef>

namespace rebudget::util::simd {

/** @return true when an explicit SIMD tier is compiled in (SSE2 or
 * AVX2); false means every kernel is the scalar fallback. */
bool compiledIn();

/** @return the active instruction tier: "avx2", "sse2" or "scalar". */
const char *activeIsa();

/** @return whether kernels currently dispatch to the SIMD tiers. */
bool enabled();

/**
 * Toggle SIMD dispatch at runtime (tests, benchmarks).  Not meant to
 * be flipped concurrently with running solves: the flag is read once
 * per kernel call, so a mid-solve flip would mix tiers (harmless for
 * results -- both tiers are bit-identical -- but meaningless for
 * timing).
 */
void setEnabled(bool on);

/**
 * Per-column sums of an n x m row-major matrix, accumulated per column
 * in ascending row order: out[j] = data[0*m+j] + data[1*m+j] + ...
 * `out` must hold m elements; it is fully overwritten.
 */
void columnSums(const double *data, size_t n, size_t m, double *out);

/**
 * Proportional allocation from published prices, elementwise over an
 * n x m row-major matrix:
 *   alloc[i*m+j] = prices[j] > 0 ? bids[i*m+j] / prices[j] : 0.0
 * `alloc` may alias `bids`; `prices` holds m elements.
 */
void allocationFromPrices(const double *bids, size_t n, size_t m,
                          const double *prices, double *alloc);

} // namespace rebudget::util::simd

#endif // REBUDGET_UTIL_SIMD_H_
