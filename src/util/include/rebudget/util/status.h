#ifndef REBUDGET_UTIL_STATUS_H_
#define REBUDGET_UTIL_STATUS_H_

/**
 * @file
 * Recoverable error reporting for the solve pipeline.
 *
 * The library layers (src/market, src/core, src/eval) never terminate
 * the process on malformed-but-parseable input: they report a
 * SolveStatus (or an Expected<T> for value-returning helpers) and let
 * the caller decide.  fatal() remains the right tool in tools/, bench/
 * and examples/, where the process IS the user session; panic() /
 * REBUDGET_ASSERT remain the right tool for internal invariants and
 * caller contract violations (mismatched parallel arrays etc.), which
 * indicate a bug rather than bad data.
 */

#include <cstdarg>
#include <string>
#include <utility>

#include "rebudget/util/logging.h"

namespace rebudget::util {

/** Coarse classification of a recoverable solver error. */
enum class StatusCode {
    /** No error. */
    Ok = 0,
    /** A caller-supplied value is malformed (negative budget, ...). */
    InvalidArgument = 1,
    /** Object state forbids the call (bad config, failed setup, ...). */
    FailedPrecondition = 2,
    /** A numerical degeneracy that exceeds tolerance. */
    Numerical = 3,
    /** The solve gave up (iteration caps, no fallback left). */
    Aborted = 4,
};

/** @return a stable lower-case name for @p code ("ok", ...). */
const char *statusCodeName(StatusCode code);

/**
 * Outcome of a library operation: Ok, or an error code plus a
 * human-readable message.  Cheap to copy when Ok (empty message).
 */
class [[nodiscard]] SolveStatus
{
  public:
    /** Default: success. */
    SolveStatus() = default;

    /** Build an error status with a printf-style message. */
    static SolveStatus error(StatusCode code, const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** @return "ok" or "<code>: <message>". */
    std::string toString() const;

  private:
    SolveStatus(StatusCode code, std::string message)
        : code_(code), message_(std::move(message)) {}

    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * A value of type T or the SolveStatus explaining its absence.
 *
 * Accessing value() on an error Expected violates the caller contract
 * and trips REBUDGET_ASSERT; check ok() (or use valueOr()) first.
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    /** Implicit from a value: success. */
    Expected(T value) : value_(std::move(value)) {}

    /** Implicit from an error status. */
    Expected(SolveStatus status) : status_(std::move(status))
    {
        REBUDGET_ASSERT(!status_.ok(),
                        "Expected built from an Ok status carries no value");
    }

    bool ok() const { return status_.ok(); }
    const SolveStatus &status() const { return status_; }

    const T &value() const
    {
        REBUDGET_ASSERT(ok(), "value() on an error Expected");
        return value_;
    }

    /** @return the value, or @p fallback when in the error state. */
    T valueOr(T fallback) const { return ok() ? value_ : fallback; }

  private:
    SolveStatus status_;
    T value_{};
};

} // namespace rebudget::util

#endif // REBUDGET_UTIL_STATUS_H_
