#ifndef REBUDGET_UTIL_LOGGING_H_
#define REBUDGET_UTIL_LOGGING_H_

/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * - inform(): normal operating messages, no connotation of a problem.
 * - warn():   something may not behave as well as it should.
 * - fatal():  the run cannot continue due to a user error (bad config,
 *             invalid arguments); throws FatalError so tests can observe it.
 * - panic():  an internal invariant was violated (a library bug); aborts.
 */

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace rebudget::util {

/** Exception thrown by fatal() for user-level errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Verbosity levels for console logging. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global log verbosity (default: Warn). */
void setLogLevel(LogLevel level);

/** @return the current global log verbosity. */
LogLevel logLevel();

/** printf-style informative message (shown at Info verbosity and above). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style debug message (shown at Debug verbosity). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style warning (shown at Warn verbosity and above). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error.
 *
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a violated internal invariant and abort the process.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace detail {
std::string vformat(const char *fmt, std::va_list args);
} // namespace detail

} // namespace rebudget::util

/**
 * Always-on assertion for internal invariants; calls panic() on failure.
 * Unlike assert(), not compiled out in release builds.
 */
#define REBUDGET_ASSERT(cond, msg)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rebudget::util::panic("assertion failed: %s (%s:%d): %s",    \
                                    #cond, __FILE__, __LINE__, msg);        \
        }                                                                   \
    } while (false)

#endif // REBUDGET_UTIL_LOGGING_H_
