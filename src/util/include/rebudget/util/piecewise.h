#ifndef REBUDGET_UTIL_PIECEWISE_H_
#define REBUDGET_UTIL_PIECEWISE_H_

/**
 * @file
 * Piecewise-linear curves and concave-majorant (convex hull) machinery.
 *
 * Utility-vs-resource relationships throughout the library (miss curves,
 * IPC-vs-frequency, utility-vs-cache) are represented as piecewise-linear
 * curves over sampled points.  Talus-style convexification corresponds to
 * taking the *upper concave hull* of the sampled (x, y) points; the hull
 * vertices are the "points of interest" (PoIs) of Talus [Beckmann &
 * Sanchez, HPCA'15].
 */

#include <cstddef>
#include <vector>

namespace rebudget::util {

/** One sampled (x, y) knot of a piecewise-linear curve. */
struct Knot
{
    double x = 0.0;
    double y = 0.0;
};

/**
 * Immutable piecewise-linear curve over strictly increasing x knots.
 *
 * Evaluation outside the knot range clamps to the end values (flat
 * extension), matching the semantics of "no benefit beyond the largest
 * profiled allocation" used by the paper (Section 6, footnote 3).
 */
class PiecewiseLinear
{
  public:
    PiecewiseLinear() = default;

    /**
     * @param knots  at least one knot; x values strictly increasing.
     */
    explicit PiecewiseLinear(std::vector<Knot> knots);

    /** Convenience constructor from parallel x / y vectors. */
    PiecewiseLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys);

    /** @return interpolated value at x (clamped outside the range). */
    double eval(double x) const;

    /**
     * @return right-hand slope at x: the slope of the segment containing
     * x (or 0 beyond the last knot).  This is the marginal value used by
     * bidding: dU/dx when increasing the allocation.
     */
    double slopeRight(double x) const;

    /** @return left-hand slope at x (or 0 before the first knot). */
    double slopeLeft(double x) const;

    /** @return the knots of this curve. */
    const std::vector<Knot> &knots() const { return knots_; }

    /** @return smallest knot x. */
    double minX() const;

    /** @return largest knot x. */
    double maxX() const;

    /** @return true if curve never decreases (up to tol). */
    bool isNonDecreasing(double tol = 1e-9) const;

    /** @return true if curve is concave, i.e.\ slopes never increase. */
    bool isConcave(double tol = 1e-9) const;

    /**
     * @return the upper concave hull of this curve's knots, as a new
     * curve whose knots are the hull vertices (PoIs).
     */
    PiecewiseLinear concaveMajorant() const;

    /**
     * @return a copy with y values replaced by their running maximum,
     * making the curve non-decreasing.
     */
    PiecewiseLinear monotoneNonDecreasing() const;

    /** @return true if the curve has at least one knot. */
    bool valid() const { return !knots_.empty(); }

  private:
    std::vector<Knot> knots_;
};

/**
 * Indices of the vertices of the upper concave hull of (xs[i], ys[i]).
 *
 * The x values must be strictly increasing.  The first and last points
 * are always on the hull.  These are the Talus points of interest.
 */
std::vector<size_t> upperConcaveHullIndices(const std::vector<double> &xs,
                                            const std::vector<double> &ys);

} // namespace rebudget::util

#endif // REBUDGET_UTIL_PIECEWISE_H_
