#ifndef REBUDGET_UTIL_STATS_H_
#define REBUDGET_UTIL_STATS_H_

/**
 * @file
 * Small statistics helpers used by the evaluation harness: streaming
 * summary accumulators, quantiles, and fixed-bin histograms.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace rebudget::util {

/** Streaming min/max/mean/variance accumulator (Welford's algorithm). */
class SummaryStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const SummaryStats &other);

    /** @return number of observations. */
    size_t count() const { return n_; }

    /** @return smallest observation (0 if empty). */
    double min() const;

    /** @return largest observation (0 if empty). */
    double max() const;

    /** @return arithmetic mean (0 if empty). */
    double mean() const;

    /** @return population variance (0 if fewer than 2 observations). */
    double variance() const;

    /** @return population standard deviation. */
    double stddev() const;

    /** @return sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * @return the q-quantile (0 <= q <= 1) of the data using linear
 * interpolation between order statistics.  The input is copied and
 * sorted; use sortedQuantile for repeated queries.
 */
double quantile(std::vector<double> data, double q);

/** @return the q-quantile of already-sorted data. */
double sortedQuantile(const std::vector<double> &sorted, double q);

/** @return fraction of entries satisfying x >= threshold. */
double fractionAtLeast(const std::vector<double> &data, double threshold);

/** A two-sided confidence interval for a sample mean. */
struct ConfidenceInterval
{
    double lo = 0.0;
    double hi = 0.0;
    double mean = 0.0;
};

/**
 * Bootstrap confidence interval for the mean (percentile method).
 *
 * @param data        non-empty sample
 * @param confidence  e.g.\ 0.95
 * @param resamples   bootstrap iterations (>= 100)
 * @param seed        RNG seed (determinism)
 */
ConfidenceInterval bootstrapMeanCI(const std::vector<double> &data,
                                   double confidence = 0.95,
                                   size_t resamples = 2000,
                                   uint64_t seed = 1);

/** Fixed-width histogram over [lo, hi) with saturating edge bins. */
class Histogram
{
  public:
    /**
     * @param lo    lower edge of the first bin
     * @param hi    upper edge of the last bin (must be > lo)
     * @param bins  number of bins (> 0)
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add one observation (clamped into the edge bins). */
    void add(double x);

    /** @return count in bin b. */
    uint64_t binCount(size_t b) const;

    /** @return the number of bins. */
    size_t bins() const { return counts_.size(); }

    /** @return the midpoint value of bin b. */
    double binCenter(size_t b) const;

    /** @return total observations. */
    uint64_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace rebudget::util

#endif // REBUDGET_UTIL_STATS_H_
