#ifndef REBUDGET_UTIL_RNG_H_
#define REBUDGET_UTIL_RNG_H_

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (trace generators, workload
 * bundle construction, tie-breaking) draw from Rng so that every
 * experiment is exactly reproducible from a seed.  The core generator is
 * xoshiro256++ (public domain, Blackman & Vigna), chosen for speed and
 * statistical quality.
 */

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string_view>
#include <vector>

namespace rebudget::util {

/** splitmix64 finalizer: a fast, well-mixed 64-bit hash step. */
uint64_t mix64(uint64_t x);

/**
 * Stable 64-bit id for a string (FNV-1a folded through mix64).  Used to
 * key deterministic RNG streams by bundle or run name.
 */
uint64_t hashId(std::string_view s);

/** Deterministic xoshiro256++ generator with distribution helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    uint64_t next();

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return a uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return a uniform integer in [0, n) (n must be > 0). */
    uint64_t uniformInt(uint64_t n);

    /** @return a uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** @return true with probability p. */
    bool bernoulli(double p);

    /** @return a sample from a normal distribution (Box-Muller). */
    double normal(double mean, double stddev);

    /** @return an exponential sample with the given rate. */
    double exponential(double rate);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            const size_t j = uniformInt(static_cast<uint64_t>(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Fork a new independent generator (stream split). */
    Rng split();

    /**
     * Deterministic named sub-stream: an independent generator keyed by
     * (seed, key0, key1, ...).  Unlike split(), the result depends only
     * on the keys, never on generator state, so concurrent consumers
     * (parallel sweep workers, per-player fault streams) obtain
     * bit-identical streams regardless of evaluation order or job
     * count.  Distinct key tuples yield independent streams.
     */
    static Rng forStream(uint64_t seed,
                         std::initializer_list<uint64_t> keys);

  private:
    uint64_t s_[4];
    bool haveSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

/**
 * Precomputed Zipf(alpha) sampler over {0, ..., n-1}.
 *
 * Uses an inverse-CDF table; construction is O(n), sampling O(log n).
 * alpha == 0 degenerates to the uniform distribution.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     population size (> 0)
     * @param alpha skew exponent (>= 0)
     */
    ZipfSampler(size_t n, double alpha);

    /** Draw one sample in [0, n). */
    size_t sample(Rng &rng) const;

    /** @return the population size. */
    size_t size() const { return cdf_.size(); }

    /** @return probability mass of rank k. */
    double pmf(size_t k) const;

  private:
    std::vector<double> cdf_;
};

} // namespace rebudget::util

#endif // REBUDGET_UTIL_RNG_H_
