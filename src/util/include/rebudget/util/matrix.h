#ifndef REBUDGET_UTIL_MATRIX_H_
#define REBUDGET_UTIL_MATRIX_H_

/**
 * @file
 * Row-major flat matrix used across the solver hot path.
 *
 * The market engine historically stored bids and allocations as
 * std::vector<std::vector<double>>: one heap block per player per
 * solve, scattered across the allocator, re-acquired on every
 * findEquilibrium call.  Matrix keeps the same [player][resource]
 * indexing surface on a single contiguous buffer, so
 *
 * - repeated solves into the same result object reuse the buffer
 *   (resize() never shrinks capacity; see SolveWorkspace in market.h),
 * - a full sweep touches memory sequentially instead of pointer-chasing
 *   row blocks, and
 * - rows hand out std::span views compatible with the UtilityModel
 *   span-based interface at zero cost.
 *
 * Rows are iterable (ranged-for yields spans) and indexable
 * (m[i][j], m(i, j), m.row(i)), mirroring the nested-vector idioms the
 * rest of the codebase grew up with.
 *
 * Alignment contract: the backing buffer is 64-byte aligned (one full
 * cache line, and wide enough for any current vector ISA), so the
 * explicit SIMD kernels in util/simd.h can stream the flat buffer
 * without a misaligned head.  Row pointers beyond row 0 are aligned
 * only when cols()*sizeof(T) is a multiple of the alignment; the
 * kernels therefore use unaligned loads (free on aligned addresses)
 * and the contract buys cache-line-clean buffer starts, not per-row
 * alignment.
 */

#include <cstddef>
#include <initializer_list>
#include <new>
#include <ostream>
#include <span>
#include <vector>

#include "rebudget/util/logging.h"

namespace rebudget::util {

/** Buffer alignment of Matrix, in bytes (see the file comment). */
inline constexpr size_t kMatrixAlignment = 64;

/**
 * Minimal std::allocator drop-in returning storage aligned to `Align`
 * bytes.  Goes through the aligned global operator new/delete so
 * allocation-counting harnesses (bench/perf_equilibrium) and
 * sanitizers still see every matrix allocation.
 */
template <typename T, size_t Align>
struct AlignedAllocator
{
    static_assert((Align & (Align - 1)) == 0, "alignment must be 2^k");
    static_assert(Align >= alignof(T), "alignment below alignof(T)");

    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *allocate(size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }
    void deallocate(T *p, size_t n)
    {
        ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
    }

    friend bool operator==(const AlignedAllocator &,
                           const AlignedAllocator &)
    {
        return true;
    }
    friend bool operator!=(const AlignedAllocator &,
                           const AlignedAllocator &)
    {
        return false;
    }
};

/** Row-major dense matrix on one contiguous buffer. */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    /** @param rows,cols shape; every element set to `value`. */
    Matrix(size_t rows, size_t cols, const T &value = T())
        : rows_(rows), cols_(cols), data_(rows * cols, value)
    {
    }

    /**
     * Literal construction for tests and small fixtures:
     * Matrix<double>{{1, 2}, {3, 4}}.  All rows must have equal length.
     */
    Matrix(std::initializer_list<std::initializer_list<T>> rows)
        : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0)
    {
        data_.reserve(rows_ * cols_);
        for (const auto &row : rows) {
            REBUDGET_ASSERT(row.size() == cols_,
                            "Matrix: ragged initializer rows");
            data_.insert(data_.end(), row.begin(), row.end());
        }
    }

    /** Boundary convenience: copy a nested-vector matrix (must be
     * rectangular). */
    explicit Matrix(const std::vector<std::vector<T>> &nested)
        : rows_(nested.size()),
          cols_(nested.empty() ? 0 : nested.front().size())
    {
        data_.reserve(rows_ * cols_);
        for (const auto &row : nested) {
            REBUDGET_ASSERT(row.size() == cols_,
                            "Matrix: ragged nested rows");
            data_.insert(data_.end(), row.begin(), row.end());
        }
    }

    /** @return the number of rows. */
    size_t rows() const { return rows_; }
    /** @return the number of columns. */
    size_t cols() const { return cols_; }
    /**
     * @return the number of rows; mirrors nested-vector .size() so
     * row-count checks read the same either way.
     */
    size_t size() const { return rows_; }
    /** @return true when the matrix has no rows. */
    bool empty() const { return rows_ == 0; }

    /**
     * Reshape, reusing the existing heap buffer whenever the new
     * element count fits its capacity (the workspace-reuse contract:
     * solving repeatedly at a fixed shape performs no allocation after
     * the first solve).  Contents are preserved only when `cols` is
     * unchanged (rows behave like a vector resize: survivors keep
     * their values, new rows are value-initialized); reshaping the
     * column count leaves contents unspecified.
     */
    void resize(size_t rows, size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    /** Reshape (same reuse contract as resize) and fill with `value`. */
    void assign(size_t rows, size_t cols, const T &value)
    {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, value);
    }

    /** Set every element to `value` without reshaping. */
    void fill(const T &value)
    {
        data_.assign(data_.size(), value);
    }

    /** Drop to 0x0 keeping the heap buffer for later reuse. */
    void clear()
    {
        rows_ = 0;
        cols_ = 0;
        data_.clear();
    }

    /** @return a raw pointer to row i (cols() contiguous elements). */
    T *row(size_t i)
    {
        REBUDGET_ASSERT(i < rows_, "Matrix: row out of range");
        return data_.data() + i * cols_;
    }
    const T *row(size_t i) const
    {
        REBUDGET_ASSERT(i < rows_, "Matrix: row out of range");
        return data_.data() + i * cols_;
    }

    /** @return row i as a span (usable wherever a vector row was). */
    std::span<T> operator[](size_t i)
    {
        return std::span<T>(row(i), cols_);
    }
    std::span<const T> operator[](size_t i) const
    {
        return std::span<const T>(row(i), cols_);
    }

    /** @return element (i, j). */
    T &operator()(size_t i, size_t j)
    {
        REBUDGET_ASSERT(i < rows_ && j < cols_,
                        "Matrix: element out of range");
        return data_[i * cols_ + j];
    }
    const T &operator()(size_t i, size_t j) const
    {
        REBUDGET_ASSERT(i < rows_ && j < cols_,
                        "Matrix: element out of range");
        return data_[i * cols_ + j];
    }

    /** @return the contiguous row-major buffer. */
    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    /** Row iteration: ranged-for yields one span per row. */
    template <typename Span, typename Ptr>
    class RowIter
    {
      public:
        RowIter(Ptr p, size_t cols) : p_(p), cols_(cols) {}
        Span operator*() const { return Span(p_, cols_); }
        RowIter &operator++()
        {
            p_ += cols_;
            return *this;
        }
        bool operator!=(const RowIter &o) const { return p_ != o.p_; }
        bool operator==(const RowIter &o) const { return p_ == o.p_; }

      private:
        Ptr p_;
        size_t cols_;
    };
    using iterator = RowIter<std::span<T>, T *>;
    using const_iterator = RowIter<std::span<const T>, const T *>;

    iterator begin() { return iterator(data_.data(), cols_); }
    iterator end()
    {
        return iterator(data_.data() + rows_ * cols_, cols_);
    }
    const_iterator begin() const
    {
        return const_iterator(data_.data(), cols_);
    }
    const_iterator end() const
    {
        return const_iterator(data_.data() + rows_ * cols_, cols_);
    }

    /** Elementwise equality (shape and values). */
    friend bool operator==(const Matrix &a, const Matrix &b)
    {
        return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
               a.data_ == b.data_;
    }
    friend bool operator!=(const Matrix &a, const Matrix &b)
    {
        return !(a == b);
    }

    /** @return a nested-vector copy (slow; boundary/debug use only). */
    std::vector<std::vector<T>> toNested() const
    {
        std::vector<std::vector<T>> out(rows_, std::vector<T>(cols_));
        for (size_t i = 0; i < rows_; ++i) {
            const T *r = row(i);
            out[i].assign(r, r + cols_);
        }
        return out;
    }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<T, AlignedAllocator<T, kMatrixAlignment>> data_;
};

/** Human-readable dump (test failure messages). */
template <typename T>
std::ostream &
operator<<(std::ostream &os, const Matrix<T> &m)
{
    os << "Matrix " << m.rows() << "x" << m.cols() << " [";
    for (size_t i = 0; i < m.rows(); ++i) {
        os << (i ? "; " : "");
        for (size_t j = 0; j < m.cols(); ++j)
            os << (j ? " " : "") << m(i, j);
    }
    return os << "]";
}

} // namespace rebudget::util

#endif // REBUDGET_UTIL_MATRIX_H_
