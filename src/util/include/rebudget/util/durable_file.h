#ifndef REBUDGET_UTIL_DURABLE_FILE_H_
#define REBUDGET_UTIL_DURABLE_FILE_H_

/**
 * @file
 * Crash-safe file primitives for the serving daemon's durability layer
 * (serve/persist.h): CRC32C checksums, write-temp/fsync/atomic-rename
 * whole-file replacement, and an unbuffered append-only log.
 *
 * Crash-consistency contract:
 *
 *  - writeFileAtomic() writes `path.tmp`, fsyncs it, renames it over
 *    `path` and fsyncs the directory.  A reader therefore sees either
 *    the complete old file or the complete new file, never a torn mix
 *    -- even across power loss when `sync` is true.  A crash mid-write
 *    leaves at worst a stale `path.tmp`, which the next write
 *    truncates.
 *
 *  - AppendLog writes each record with a single ::write() on an
 *    O_APPEND descriptor, with no userspace buffering.  A SIGKILL'd
 *    process therefore loses nothing it has appended (the bytes are in
 *    the page cache); only power loss can drop the un-fsynced tail,
 *    which the journal format detects per record via CRC32C and
 *    degrades to a clean prefix (see serve/persist.h).
 *
 * Nothing here fatals on I/O errors: every operation returns a typed
 * util::SolveStatus so callers can grade the failure (durability is a
 * feature of the daemon, never a reason to crash it).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rebudget/util/status.h"

namespace rebudget::util {

/**
 * CRC32C (Castagnoli) of @p size bytes at @p data, chained from @p
 * seed (pass a previous return value to continue a running checksum;
 * 0 starts a fresh one).  Software slice-by-one implementation --
 * plenty for snapshot/journal record sizes, and byte-identical on
 * every platform, which the on-disk format requires.
 */
std::uint32_t crc32c(const std::uint8_t *data, std::size_t size,
                     std::uint32_t seed = 0);

/** @return true when @p path exists (any file type). */
bool fileExists(const std::string &path);

/**
 * Replace @p path atomically with @p size bytes at @p data: write
 * `path.tmp`, optionally fsync it, rename over @p path, optionally
 * fsync the parent directory.  With @p sync false the rename is still
 * atomic against process death (kill -9), just not against power loss.
 */
SolveStatus writeFileAtomic(const std::string &path,
                            const std::uint8_t *data, std::size_t size,
                            bool sync);

/**
 * Read the whole of @p path into @p out (cleared first).  Missing
 * files come back as FailedPrecondition so callers can distinguish
 * "never written" from genuine I/O failures (Aborted).
 */
SolveStatus readFileBytes(const std::string &path,
                          std::vector<std::uint8_t> &out);

/** rename(2) with a typed status; ENOENT on the source is Ok when
 * @p missingOk (rotating a file that was never created). */
SolveStatus renameFile(const std::string &from, const std::string &to,
                       bool missingOk);

/** unlink(2) with a typed status; a missing file is Ok. */
SolveStatus removeFile(const std::string &path);

/** mkdir -p for one level plus parents; EEXIST is Ok. */
SolveStatus makeDirs(const std::string &path);

/** fsync the directory itself so renames/creates in it are durable. */
SolveStatus syncDirectory(const std::string &path);

/**
 * Unbuffered append-only log file.  Each append() is one ::write() on
 * an O_APPEND descriptor (no stdio buffer to lose on kill -9).  The
 * caller owns record framing; this class only moves bytes.  Not
 * thread-safe: callers serialize per log (serve/persist.h holds one
 * mutex per shard journal).
 */
class AppendLog
{
  public:
    AppendLog() = default;
    ~AppendLog();

    AppendLog(const AppendLog &) = delete;
    AppendLog &operator=(const AppendLog &) = delete;

    /**
     * Open (creating if needed) @p path for appending.  @p truncate
     * drops any existing content first -- journal rotation does this
     * only on a freshly renamed-away path.  Closes any previously
     * open file.
     */
    SolveStatus open(const std::string &path, bool truncate);

    /** Append @p size bytes in a single write(2).  Retries EINTR;
     * a short write is reported as Aborted (the log is then suspect
     * and the caller should stop journaling, not crash). */
    SolveStatus append(const std::uint8_t *data, std::size_t size);

    /** fsync the log (durability barrier: snapshot rotation and
     * graceful shutdown call this; per-append fsync is optional). */
    SolveStatus sync();

    /** Close the descriptor (idempotent). */
    void close();

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace rebudget::util

#endif // REBUDGET_UTIL_DURABLE_FILE_H_
