#ifndef REBUDGET_UTIL_ARG_PARSE_H_
#define REBUDGET_UTIL_ARG_PARSE_H_

/**
 * @file
 * Strict numeric parsing for untrusted text: command-line flags,
 * protocol strings, replay traces.
 *
 * The std::stoul/std::stod family silently accepts input these parsers
 * must reject:
 *  - partial consumption ("10x" parses as 10 and drops the "x"),
 *  - leading whitespace and a leading '+',
 *  - a leading '-' for UNSIGNED values ("-5" wraps to 2^64-5), and
 *  - "inf"/"nan" where a tuning knob expects a real number.
 *
 * Every parser here consumes the WHOLE token or returns a named error
 * status, so a mistyped flag value surfaces as a diagnostic instead of
 * a silently truncated (or wrapped) number.  rebudget_cli, rebudgetd,
 * rebudgetctl and the serve replay-trace parser all route their numeric
 * arguments through these.
 */

#include <cstdint>
#include <string_view>

#include "rebudget/util/status.h"

namespace rebudget::util {

/**
 * Parse a non-negative decimal integer.  Rejects empty tokens, any
 * whitespace, signs (including '-': a negative value is a named error,
 * not a wrap to 2^64-n), non-digit trailers and values beyond
 * uint64_t.
 */
Expected<std::uint64_t> parseUnsigned(std::string_view text);

/** As parseUnsigned, additionally rejecting values above @p max. */
Expected<std::uint64_t> parseUnsigned(std::string_view text,
                                      std::uint64_t max);

/**
 * Parse a finite decimal floating-point number (optional leading '-').
 * Rejects empty tokens, whitespace, trailing garbage, hex floats and
 * the "inf"/"nan" spellings -- no allocation knob means infinity.
 */
Expected<double> parseDouble(std::string_view text);

} // namespace rebudget::util

#endif // REBUDGET_UTIL_ARG_PARSE_H_
