#ifndef REBUDGET_UTIL_TABLE_H_
#define REBUDGET_UTIL_TABLE_H_

/**
 * @file
 * Console table / CSV emitters used by the benchmark harness to print
 * the rows and series of the paper's tables and figures.
 */

#include <ostream>
#include <string>
#include <vector>

namespace rebudget::util {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   TablePrinter t({"mechanism", "efficiency", "EF"});
 *   t.addRow({"EqualShare", "0.71", "0.98"});
 *   t.print(std::cout);
 * @endcode
 */
class TablePrinter
{
  public:
    /** @param headers  column headers (defines the column count). */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must match the header column count. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a row of doubles with fixed precision. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 4);

    /** Render the aligned table. */
    void print(std::ostream &os) const;

    /** Render as CSV (comma-separated, header first). */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows so far. */
    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed decimals (helper for table rows). */
std::string formatDouble(double v, int precision = 4);

/** Print a visually separated section banner for bench output. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace rebudget::util

#endif // REBUDGET_UTIL_TABLE_H_
