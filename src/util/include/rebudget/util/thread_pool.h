#ifndef REBUDGET_UTIL_THREAD_POOL_H_
#define REBUDGET_UTIL_THREAD_POOL_H_

/**
 * @file
 * Fixed-size worker pool and a deterministic parallel-for.
 *
 * parallelFor() distributes loop indices over the pool with a shared
 * atomic cursor (dynamic scheduling), so unevenly sized work items load
 * balance.  Determinism contract: body(i) must depend only on i and on
 * state that is read-only during the loop, and must write only to state
 * owned by index i (e.g. results[i]).  Under that contract the results
 * are byte-identical at any thread count -- the property the evaluation
 * engine (eval::BundleRunner) relies on and tests/eval asserts.
 */

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rebudget::util {

/** Fixed-size worker pool; tasks are arbitrary void() callables. */
class ThreadPool
{
  public:
    /**
     * @param threads  worker count; 0 picks defaultThreadCount().  A
     *                 pool of size 1 spawns no worker threads and runs
     *                 everything inline in the calling thread.
     *
     * If spawning the Nth worker thread fails, the already-running
     * workers are stopped and joined before the error propagates --
     * a half-built pool never leaks joinable threads (which would
     * std::terminate on destruction).
     */
    explicit ThreadPool(unsigned threads = 0);

    /**
     * Drains outstanding tasks, then joins the workers.
     *
     * Teardown contract: every task submitted before destruction RUNS
     * (drain, not cancel -- a parallelFor blocked in another thread
     * must still complete), destruction blocks until the queue is
     * empty and all workers have exited, and a task that throws during
     * the drain is contained (see submit) rather than terminating the
     * process mid-join.  tests/eval/thread_pool_test.cpp destroys
     * pools with queued work (including throwing tasks) under TSan to
     * pin this down.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return the pool's logical size (>= 1; 1 means inline). */
    unsigned size() const { return threads_; }

    /**
     * Resolve the job count used when a caller passes 0: the
     * REBUDGET_JOBS environment variable if set to a positive integer,
     * else std::thread::hardware_concurrency(), else 1.
     */
    static unsigned defaultThreadCount();

    /**
     * Run body(i) for every i in [0, count), then return.  Indices are
     * handed out dynamically; the first exception thrown by any body is
     * rethrown in the caller once the remaining workers have stopped
     * picking up new indices (indices already started still finish).
     *
     * See the file comment for the determinism contract.
     */
    void parallelFor(size_t count,
                     const std::function<void(size_t)> &body);

    /**
     * Queue a fire-and-forget task (run inline when the pool has no
     * workers).  Tasks queued at destruction time are drained, not
     * cancelled.  A task that lets an exception escape does NOT take
     * the process down: the exception is caught in the worker and
     * reported as a warning, because a background task has no caller
     * frame to rethrow into (parallelFor keeps its own rethrow path --
     * its bodies are wrapped before they reach the queue).
     */
    void submit(std::function<void()> task);

  private:
    void post(std::function<void()> task);
    static void runContained(const std::function<void()> &task);
    void workerLoop();

    unsigned threads_;
    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * One-shot parallelFor on a transient pool.
 *
 * @param jobs   thread count (0 = ThreadPool::defaultThreadCount())
 * @param count  number of loop indices
 * @param body   per-index work; see ThreadPool::parallelFor
 */
void parallelFor(unsigned jobs, size_t count,
                 const std::function<void(size_t)> &body);

} // namespace rebudget::util

#endif // REBUDGET_UTIL_THREAD_POOL_H_
