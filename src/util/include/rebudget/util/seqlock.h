#ifndef REBUDGET_UTIL_SEQLOCK_H_
#define REBUDGET_UTIL_SEQLOCK_H_

/**
 * @file
 * Reader-gated double-buffer publication: the synchronization core of
 * the serving plane's lock-free snapshot reads.
 *
 * A classic retry-seqlock lets readers race the writer and detect the
 * tear afterwards via a sequence recheck.  That is undefined behavior
 * on non-trivial payloads (the torn read itself is a data race, and a
 * concurrently resized std::vector is a use-after-free), so this
 * variant gates instead of retrying: readers PIN the published slot
 * with a per-slot reference count, and the single writer WAITS for the
 * back slot's count to drain before reusing it.  Readers therefore
 * never observe a slot mid-write, reads are wait-free when the writer
 * leaves the front slot alone (the common case -- the writer
 * alternates slots), and both TSan and ASan see a clean happens-before
 * chain through the two atomics:
 *
 *   writer: write slot data .. publish(): front_.store(slot, seq_cst)
 *   reader: pin(): front_.load + readers_[f].fetch_add(seq_cst)
 *                  + front_ recheck .. read data .. unpin(): fetch_sub
 *   writer: beginWrite(): spin readers_[slot].load(acquire) == 0
 *                  .. write slot data
 *
 * The pin/flip pair is a store-load race in both directions (the
 * writer flips then checks for readers; the reader increments then
 * rechecks the flip), which acquire/release alone does not order --
 * both sides could miss each other's store.  Every op on that Dekker
 * square is seq_cst, so the C++ total order S guarantees at least one
 * side sees the other: either the writer's count check observes the
 * incoming reader (and waits), or the reader's recheck observes the
 * flip (and backs off to the new front).  unpin() pairs with
 * beginWrite()'s acquire loads, ordering the reader's last data read
 * before the writer's first overwrite.
 *
 * The slot payloads themselves live with the owner (here: the shard's
 * EquilibriumResult ping-pong pair); this class only arbitrates which
 * index may be read and which may be written.  Publication carries a
 * monotonically increasing version so readers can assert they never
 * travel back in time.
 */

#include <atomic>
#include <cstdint>
#include <thread>

namespace rebudget::util {

/** Arbitrates one writer and many readers over a 2-slot buffer. */
class SnapshotSeqLock
{
  public:
    /** Returned by pin() while nothing has been published (or after
     * unpublish()); kept distinct from any valid slot index. */
    static constexpr std::uint32_t kNoSlot = 2;

    // --- reader side -------------------------------------------------

    /**
     * Pin the current front slot for reading.  Returns its index, or
     * kNoSlot when nothing is published.  On success the writer will
     * not touch the slot until unpin(); the caller must unpin exactly
     * once.  Lock-free: the retry loop only runs when the writer flips
     * concurrently, and each retry lands on the newer slot.
     */
    std::uint32_t pin() const
    {
        for (;;) {
            const std::uint32_t f = front_.load(std::memory_order_seq_cst);
            if (f == kNoSlot)
                return kNoSlot;
            readers_[f].fetch_add(1, std::memory_order_seq_cst);
            if (front_.load(std::memory_order_seq_cst) == f)
                return f;
            // The writer flipped between the load and the pin; it may
            // already be rewriting slot f.  Back off and re-pin.
            readers_[f].fetch_sub(1, std::memory_order_release);
        }
    }

    /** Release a slot returned by pin(). */
    void unpin(std::uint32_t slot) const
    {
        readers_[slot].fetch_sub(1, std::memory_order_release);
    }

    /** RAII pin: holds a slot (or kNoSlot) for one scope. */
    class ReadPin
    {
      public:
        explicit ReadPin(const SnapshotSeqLock &gate)
            : gate_(gate), slot_(gate.pin())
        {
        }
        ~ReadPin()
        {
            if (slot_ != kNoSlot)
                gate_.unpin(slot_);
        }
        ReadPin(const ReadPin &) = delete;
        ReadPin &operator=(const ReadPin &) = delete;
        /** @return the pinned slot index, or kNoSlot. */
        std::uint32_t slot() const { return slot_; }
        /** @return true when a published slot is pinned. */
        bool valid() const { return slot_ != kNoSlot; }

      private:
        const SnapshotSeqLock &gate_;
        std::uint32_t slot_;
    };

    // --- writer side (single writer) ---------------------------------

    /**
     * Wait until no reader holds @p slot, after which the caller owns
     * its payload exclusively and may mutate it freely.  Must only be
     * called on a slot that is not the current front (flip first), or
     * before first publication.  Readers hold pins for the duration of
     * a memcpy-sized copy, so the spin is bounded and short.
     */
    void beginWrite(std::uint32_t slot)
    {
        // Pin hold times are a snapshot copy -- but a reader preempted
        // mid-copy holds its pin for a scheduling quantum, and on a
        // machine with fewer cores than threads a pure busy-wait would
        // burn the writer's own quantum waiting for it.  Yield so the
        // pinned reader gets scheduled and drains.
        while (readers_[slot].load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    }

    /**
     * Publish @p slot as the new front with the next version number.
     * All payload writes to the slot must precede this call.
     */
    void publish(std::uint32_t slot)
    {
        version_.store(version_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
        front_.store(slot, std::memory_order_seq_cst);
    }

    /**
     * Withdraw publication: subsequent pins return kNoSlot.  Readers
     * already pinned keep their slot until unpin (the payload is not
     * touched); the writer must still beginWrite() before mutating.
     */
    void unpublish() { front_.store(kNoSlot, std::memory_order_seq_cst); }

    /** @return the current front slot index, or kNoSlot. */
    std::uint32_t frontSlot() const
    {
        return front_.load(std::memory_order_acquire);
    }

    /** @return how many publishes have happened (monotone). */
    std::uint64_t version() const
    {
        return version_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<std::uint32_t> front_{kNoSlot};
    std::atomic<std::uint64_t> version_{0};
    mutable std::atomic<std::uint32_t> readers_[2]{{0}, {0}};
};

} // namespace rebudget::util

#endif // REBUDGET_UTIL_SEQLOCK_H_
