#ifndef REBUDGET_UTIL_SOLVER_STATS_H_
#define REBUDGET_UTIL_SOLVER_STATS_H_

/**
 * @file
 * Health telemetry for the equilibrium solve pipeline.
 *
 * A SolverStats rides inside each AllocationOutcome (call-local, so
 * concurrent BundleRunner jobs never share one) and is merged upward:
 * per-round solves -> one allocate() -> one mechanism across a sweep.
 * All counters are deterministic for a given input; only the *Seconds
 * timers are wall-clock and must stay out of determinism comparisons.
 */

#include <cstdint>
#include <string>

namespace rebudget::util {

/** @return a monotonic timestamp in seconds, for the stats timers. */
double monotonicSeconds();

/** Counters and timers describing solver work and health. */
struct SolverStats
{
    /** Real (non-elided) equilibrium solves. */
    std::int64_t equilibriumSolves = 0;
    /** Bidding-pricing sweeps summed over real solves. */
    std::int64_t sweepIterations = 0;
    /** Bid hill-climb steps summed over all players and solves. */
    std::int64_t hillClimbSteps = 0;
    /** Real solves that hit the iteration fail-safe (converged=false). */
    std::int64_t failSafeTrips = 0;
    /** Real solves seeded from a prior equilibrium. */
    std::int64_t warmStartedSolves = 0;
    /** Real solves started from the cold equal-split seed. */
    std::int64_t coldStartedSolves = 0;
    /** Cut rounds served by rescaleEquilibrium (zero sweeps). */
    std::int64_t elidedRescales = 0;
    /** Budget-reassignment rounds executed (ReBudget only). */
    std::int64_t budgetRounds = 0;
    /** Solves or allocations abandoned with a non-Ok status. */
    std::int64_t failedSolves = 0;
    /** Utility grids repaired by app::sanitizeUtilityGrid. */
    std::int64_t sanitizedGrids = 0;
    /** UMON miss curves repaired before convexification. */
    std::int64_t repairedCurves = 0;
    /** Profiler samples rejected by the outlier filter. */
    std::int64_t rejectedSamples = 0;
    /** Non-convergence watchdog activations (sim fallback entries). */
    std::int64_t watchdogTrips = 0;
    /** Epochs spent on the EqualShare fallback operating point. */
    std::int64_t fallbackEpochs = 0;
    /** Tenants that joined the roster mid-run (churn drivers). */
    std::int64_t tenantsJoined = 0;
    /** Tenants that departed the roster mid-run (churn drivers). */
    std::int64_t tenantsDeparted = 0;
    /** Surviving players whose warm state crossed a roster change. */
    std::int64_t migratedWarmSeeds = 0;
    /** Karma epochs in which a player banked part of its allowance. */
    std::int64_t karmaDonors = 0;
    /** Karma epochs in which a player drew banked credit. */
    std::int64_t karmaBorrowers = 0;

    /** Wall-clock seconds inside real equilibrium solves. */
    double solveSeconds = 0.0;
    /** Wall-clock seconds inside elided rescale rounds. */
    double rescaleSeconds = 0.0;
    /** Wall-clock seconds for whole allocate() calls. */
    double allocateSeconds = 0.0;

    /** Accumulate another stats block into this one. */
    void merge(const SolverStats &other);

    /**
     * Schema-stable JSON object (fixed key order, counters as
     * integers, timers as fixed-point seconds).
     *
     * @param indent  spaces of indentation for each line; 0 = one line.
     */
    std::string toJson(int indent = 0) const;
};

} // namespace rebudget::util

#endif // REBUDGET_UTIL_SOLVER_STATS_H_
