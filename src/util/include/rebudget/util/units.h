#ifndef REBUDGET_UTIL_UNITS_H_
#define REBUDGET_UTIL_UNITS_H_

/**
 * @file
 * Unit constants shared across the library.
 */

#include <cstdint>

namespace rebudget::util {

/** Bytes in one kibibyte. */
inline constexpr uint64_t kKiB = 1024;

/** Bytes in one mebibyte. */
inline constexpr uint64_t kMiB = 1024 * kKiB;

/** Seconds in one millisecond. */
inline constexpr double kMilli = 1e-3;

/** Seconds in one nanosecond. */
inline constexpr double kNano = 1e-9;

/** Hertz in one gigahertz. */
inline constexpr double kGiga = 1e9;

} // namespace rebudget::util

#endif // REBUDGET_UTIL_UNITS_H_
