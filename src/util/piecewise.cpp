#include "rebudget/util/piecewise.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rebudget/util/logging.h"

namespace rebudget::util {

PiecewiseLinear::PiecewiseLinear(std::vector<Knot> knots)
    : knots_(std::move(knots))
{
    if (knots_.empty())
        fatal("PiecewiseLinear requires at least one knot");
    for (size_t i = 1; i < knots_.size(); ++i) {
        if (!(knots_[i].x > knots_[i - 1].x)) {
            fatal("PiecewiseLinear knots must be strictly increasing in x "
                  "(knot %zu: %f after %f)",
                  i, knots_[i].x, knots_[i - 1].x);
        }
    }
}

PiecewiseLinear::PiecewiseLinear(const std::vector<double> &xs,
                                 const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        fatal("PiecewiseLinear: xs and ys must have the same length");
    std::vector<Knot> knots(xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        knots[i] = Knot{xs[i], ys[i]};
    *this = PiecewiseLinear(std::move(knots));
}

double
PiecewiseLinear::eval(double x) const
{
    REBUDGET_ASSERT(valid(), "eval on empty curve");
    if (x <= knots_.front().x)
        return knots_.front().y;
    if (x >= knots_.back().x)
        return knots_.back().y;
    // Find first knot with knot.x > x.
    const auto it = std::upper_bound(
        knots_.begin(), knots_.end(), x,
        [](double v, const Knot &k) { return v < k.x; });
    const Knot &hi = *it;
    const Knot &lo = *(it - 1);
    const double t = (x - lo.x) / (hi.x - lo.x);
    return lo.y + t * (hi.y - lo.y);
}

double
PiecewiseLinear::slopeRight(double x) const
{
    REBUDGET_ASSERT(valid(), "slope on empty curve");
    if (knots_.size() == 1 || x >= knots_.back().x)
        return 0.0;
    if (x < knots_.front().x)
        x = knots_.front().x;
    const auto it = std::upper_bound(
        knots_.begin(), knots_.end(), x,
        [](double v, const Knot &k) { return v < k.x; });
    const Knot &hi = *it;
    const Knot &lo = *(it - 1);
    return (hi.y - lo.y) / (hi.x - lo.x);
}

double
PiecewiseLinear::slopeLeft(double x) const
{
    REBUDGET_ASSERT(valid(), "slope on empty curve");
    if (knots_.size() == 1 || x <= knots_.front().x)
        return 0.0;
    if (x > knots_.back().x)
        return 0.0;
    // Find last knot with knot.x < x.
    const auto it = std::lower_bound(
        knots_.begin(), knots_.end(), x,
        [](const Knot &k, double v) { return k.x < v; });
    const Knot &hi = *it;
    const Knot &lo = *(it - 1);
    return (hi.y - lo.y) / (hi.x - lo.x);
}

double
PiecewiseLinear::minX() const
{
    REBUDGET_ASSERT(valid(), "minX on empty curve");
    return knots_.front().x;
}

double
PiecewiseLinear::maxX() const
{
    REBUDGET_ASSERT(valid(), "maxX on empty curve");
    return knots_.back().x;
}

bool
PiecewiseLinear::isNonDecreasing(double tol) const
{
    for (size_t i = 1; i < knots_.size(); ++i) {
        if (knots_[i].y < knots_[i - 1].y - tol)
            return false;
    }
    return true;
}

bool
PiecewiseLinear::isConcave(double tol) const
{
    double prev_slope = std::numeric_limits<double>::infinity();
    for (size_t i = 1; i < knots_.size(); ++i) {
        const double slope = (knots_[i].y - knots_[i - 1].y) /
                             (knots_[i].x - knots_[i - 1].x);
        if (slope > prev_slope + tol)
            return false;
        prev_slope = slope;
    }
    return true;
}

PiecewiseLinear
PiecewiseLinear::concaveMajorant() const
{
    REBUDGET_ASSERT(valid(), "concaveMajorant on empty curve");
    std::vector<double> xs(knots_.size());
    std::vector<double> ys(knots_.size());
    for (size_t i = 0; i < knots_.size(); ++i) {
        xs[i] = knots_[i].x;
        ys[i] = knots_[i].y;
    }
    const std::vector<size_t> hull = upperConcaveHullIndices(xs, ys);
    std::vector<Knot> out;
    out.reserve(hull.size());
    for (size_t idx : hull)
        out.push_back(knots_[idx]);
    return PiecewiseLinear(std::move(out));
}

PiecewiseLinear
PiecewiseLinear::monotoneNonDecreasing() const
{
    REBUDGET_ASSERT(valid(), "monotoneNonDecreasing on empty curve");
    std::vector<Knot> out = knots_;
    for (size_t i = 1; i < out.size(); ++i)
        out[i].y = std::max(out[i].y, out[i - 1].y);
    return PiecewiseLinear(std::move(out));
}

std::vector<size_t>
upperConcaveHullIndices(const std::vector<double> &xs,
                        const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        fatal("upperConcaveHullIndices: length mismatch");
    if (xs.empty())
        fatal("upperConcaveHullIndices: empty input");
    for (size_t i = 1; i < xs.size(); ++i) {
        if (!(xs[i] > xs[i - 1]))
            fatal("upperConcaveHullIndices: x must be strictly increasing");
    }
    // Andrew's monotone chain, upper hull: keep turns that are clockwise
    // (cross product <= 0 means the middle point is below the chord, so it
    // is dropped from the *upper* hull when cross >= 0 ... we want to keep
    // the sequence of slopes non-increasing).
    std::vector<size_t> hull;
    for (size_t i = 0; i < xs.size(); ++i) {
        while (hull.size() >= 2) {
            const size_t a = hull[hull.size() - 2];
            const size_t b = hull[hull.size() - 1];
            // cross of (b - a) x (i - a); >= 0 means b is on or below the
            // chord a->i, i.e. not a vertex of the upper hull.
            const double cross = (xs[b] - xs[a]) * (ys[i] - ys[a]) -
                                 (ys[b] - ys[a]) * (xs[i] - xs[a]);
            if (cross >= 0.0)
                hull.pop_back();
            else
                break;
        }
        hull.push_back(i);
    }
    return hull;
}

} // namespace rebudget::util
