#include "rebudget/serve/server_core.h"

#include <sstream>
#include <utility>

#include "rebudget/util/arg_parse.h"
#include "rebudget/util/rng.h"

namespace rebudget::serve {

ServerCore::ServerCore(const ServeConfig &config)
    : config_(config), pool_(config.jobs)
{
    if (config_.shards == 0)
        config_.shards = 1;
    shards_.reserve(config_.shards);
    queues_.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
        shards_.push_back(std::make_unique<Shard>(s, config_));
        queues_.push_back(std::make_unique<ShardQueue>());
    }
}

std::size_t
ServerCore::shardOf(std::uint64_t market) const
{
    return static_cast<std::size_t>(util::mix64(market) %
                                    shards_.size());
}

Response
ServerCore::apply(const Request &req)
{
    if (std::holds_alternative<GetStats>(req))
        return StatsReply{statsJson()};
    if (std::holds_alternative<Shutdown>(req))
        return AckReply{}; // the transport layer stops the loop
    if (std::holds_alternative<TickNow>(req)) {
        tick();
        return AckReply{};
    }
    std::uint64_t market = 0;
    bool mutating = true;
    if (const auto *create = std::get_if<CreateMarket>(&req))
        market = create->market;
    else if (const auto *demand = std::get_if<SubmitDemand>(&req))
        market = demand->market;
    else if (const auto *join = std::get_if<JoinTenant>(&req))
        market = join->market;
    else if (const auto *leave = std::get_if<LeaveTenant>(&req))
        market = leave->market;
    else if (const auto *get = std::get_if<GetAllocation>(&req)) {
        market = get->market;
        mutating = false;
    }
    const std::size_t s = shardOf(market);
    if (mutating)
        journalRequest(s, req);
    Response resp = shards_[s]->apply(req);
    if (mutating && journal_)
        journal_->opApplied(s);
    return resp;
}

void
ServerCore::journalRequest(std::size_t shard, const Request &req)
{
    if (!journal_)
        return;
    std::vector<std::uint8_t> payload;
    encodeRequestPayload(req, payload);
    journal_->journalOp(shard, payload.data(), payload.size());
}

bool
ServerCore::readAllocation(const GetAllocation &req,
                           AllocationReply &out, ErrorReply &err) const
{
    return shards_[shardOf(req.market)]->readAllocation(req, out, err);
}

void
ServerCore::tick()
{
    epoch_ += 1;
    const std::uint64_t epoch = epoch_;
    pool_.parallelFor(shards_.size(), [&](std::size_t s) {
        shards_[s]->tick(epoch);
    });
}

void
ServerCore::tickAsync(std::function<void()> done)
{
    epoch_ += 1;
    const std::uint64_t epoch = epoch_;
    auto remaining =
        std::make_shared<std::atomic<std::size_t>>(shards_.size());
    auto finish = std::make_shared<std::function<void()>>(std::move(done));
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        pool_.submit([this, s, epoch, remaining, finish] {
            shards_[s]->tick(epoch);
            if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1 &&
                *finish)
                (*finish)();
        });
    }
}

void
ServerCore::setReplySink(ReplySink sink)
{
    sink_ = std::move(sink);
}

void
ServerCore::submitFrame(std::uint64_t market,
                        std::vector<std::uint8_t> &&payload,
                        std::uint64_t conn, std::uint64_t seq)
{
    const std::size_t s = shardOf(market);
    ShardQueue &q = *queues_[s];
    pendingOps_.fetch_add(1, std::memory_order_relaxed);
    bool schedule = false;
    {
        const std::lock_guard<std::mutex> lock(q.mutex);
        q.ops.push_back(PendingFrame{std::move(payload), conn, seq});
        if (!q.drainScheduled) {
            q.drainScheduled = true;
            schedule = true;
        }
    }
    if (schedule)
        pool_.submit([this, s] { drainQueue(s); });
}

void
ServerCore::drainQueue(std::size_t shard)
{
    ShardQueue &q = *queues_[shard];
    std::vector<PendingFrame> batch;
    std::vector<std::uint8_t> frame;
    for (;;) {
        {
            const std::lock_guard<std::mutex> lock(q.mutex);
            if (q.ops.empty()) {
                // Clearing the flag under the queue mutex closes the
                // lost-wakeup window: an enqueuer either saw the flag
                // set (and this loop will see its frame) or will see
                // it clear and schedule a fresh drain.
                q.drainScheduled = false;
                return;
            }
            batch.swap(q.ops);
        }
        for (PendingFrame &op : batch) {
            const auto decoded =
                decodeRequest(op.payload.data(), op.payload.size());
            Response resp;
            if (decoded.ok()) {
                // Write-ahead: the raw payload IS the journal record
                // (byte-identical to the wire), persisted before the
                // shard mutates.  Mutating opcodes only; reads and
                // admin ops replay as no-ops anyway.
                const bool mutating =
                    !op.payload.empty() &&
                    op.payload[0] >=
                        static_cast<std::uint8_t>(Opcode::CreateMarket) &&
                    op.payload[0] <=
                        static_cast<std::uint8_t>(Opcode::LeaveTenant);
                if (mutating && journal_)
                    journal_->journalOp(shard, op.payload.data(),
                                        op.payload.size());
                resp = shards_[shard]->apply(decoded.value());
                if (mutating && journal_)
                    journal_->opApplied(shard);
            } else {
                ErrorReply e;
                e.code = decoded.status().code();
                e.message = decoded.status().message();
                resp = std::move(e);
            }
            frame.clear();
            encodeResponse(resp, frame);
            // Decrement BEFORE the sink runs: a transport that sees
            // this op's reply must also see pendingOps() without it
            // (it gates "all writes drained" barriers on that).
            pendingOps_.fetch_sub(1, std::memory_order_release);
            if (sink_)
                sink_(op.conn, op.seq, std::move(frame));
            frame = {};
        }
        batch.clear();
    }
}

std::size_t
ServerCore::pendingOps() const
{
    return pendingOps_.load(std::memory_order_acquire);
}

std::size_t
ServerCore::marketCount() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_)
        total += shard->marketCount();
    return total;
}

std::string
ServerCore::statsJson() const
{
    std::string out = "{\n";
    out += "  \"schema\": \"rebudget.serve_stats.v1\",\n";
    out += "  \"epoch\": " + std::to_string(epoch_) + ",\n";
    out += "  \"markets\": " + std::to_string(marketCount()) + ",\n";
    out += "  \"recovery\": {\n";
    out += std::string("    \"attempted\": ") +
           (recovery_.attempted ? "true" : "false") + ",\n";
    auto rfield = [&](const char *key, std::uint64_t v, bool last) {
        out += std::string("    \"") + key +
               "\": " + std::to_string(v) + (last ? "\n" : ",\n");
    };
    rfield("snapshots_loaded", recovery_.snapshotsLoaded, false);
    rfield("snapshots_corrupt", recovery_.snapshotsCorrupt, false);
    rfield("markets_restored", recovery_.marketsRestored, false);
    rfield("markets_skipped", recovery_.marketsSkipped, false);
    rfield("ops_replayed", recovery_.opsReplayed, false);
    rfield("ops_skipped", recovery_.opsSkipped, false);
    rfield("journal_torn_tails", recovery_.journalTornTails, true);
    out += "  },\n";
    out += "  \"shards\": [\n";
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const ShardCounters c = shards_[s]->counters();
        auto field = [&](const char *key, std::int64_t v) {
            out += std::string("      \"") + key +
                   "\": " + std::to_string(v) + ",\n";
        };
        out += "    {\n";
        out += "      \"shard\": " + std::to_string(s) + ",\n";
        out += "      \"markets\": " +
               std::to_string(shards_[s]->marketCount()) + ",\n";
        field("markets_created", c.marketsCreated);
        field("requests_applied", c.requestsApplied);
        field("requests_rejected", c.requestsRejected);
        field("ticks_run", c.ticksRun);
        field("steady_ticks", c.steadyTicks);
        field("steady_tick_allocs", c.steadyTickAllocs);
        field("warmup_tick_allocs", c.warmupTickAllocs);
        out += "      \"solver\": " +
               shards_[s]->solverStats().toJson(6) + "\n";
        out += s + 1 < shards_.size() ? "    },\n" : "    }\n";
    }
    out += "  ]\n";
    out += "}";
    return out;
}

std::uint64_t
ServerCore::digest() const
{
    std::uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    for (const auto &shard : shards_)
        h = shard->digest(h);
    return h;
}

namespace {

/** Split a line into whitespace-separated tokens. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        tokens.push_back(tok);
    return tokens;
}

/** Split "app1,app2,app3" on commas (empty fields rejected upstream). */
std::vector<std::string>
splitApps(const std::string &list)
{
    std::vector<std::string> apps;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        apps.push_back(list.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return apps;
}

util::SolveStatus
lineError(std::size_t lineno, const char *what, const std::string &detail)
{
    return util::SolveStatus::error(util::StatusCode::InvalidArgument,
                                    "replay line %zu: %s%s%s", lineno,
                                    what, detail.empty() ? "" : ": ",
                                    detail.c_str());
}

/** Apply one request; a server rejection fails the replay by line. */
util::SolveStatus
applyOrFail(ServerCore &core, const Request &req, std::size_t lineno)
{
    const Response resp = core.apply(req);
    if (const auto *err = std::get_if<ErrorReply>(&resp))
        return lineError(lineno, "request rejected", err->message);
    return {};
}

} // namespace

util::SolveStatus
runReplayTrace(ServerCore &core, std::istream &in)
{
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        lineno += 1;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const std::vector<std::string> tok = tokenize(line);
        if (tok.empty())
            continue;
        const std::string &cmd = tok[0];
        if (cmd == "create") {
            if (tok.size() != 3)
                return lineError(lineno, "create needs <market> <apps>",
                                 "");
            const auto market = util::parseUnsigned(tok[1]);
            if (!market.ok())
                return lineError(lineno, "bad market id",
                                 market.status().message());
            CreateMarket req;
            req.market = market.value();
            std::uint64_t tenant = 0;
            for (const std::string &app : splitApps(tok[2])) {
                if (app.empty())
                    return lineError(lineno, "empty app name in list",
                                     tok[2]);
                req.tenants.push_back({tenant++, app});
            }
            const auto status = applyOrFail(core, req, lineno);
            if (!status.ok())
                return status;
        } else if (cmd == "demand") {
            if (tok.size() != 4) {
                return lineError(
                    lineno, "demand needs <market> <tenant> <weight>",
                    "");
            }
            const auto market = util::parseUnsigned(tok[1]);
            const auto tenant = util::parseUnsigned(tok[2]);
            const auto weight = util::parseDouble(tok[3]);
            if (!market.ok())
                return lineError(lineno, "bad market id",
                                 market.status().message());
            if (!tenant.ok())
                return lineError(lineno, "bad tenant id",
                                 tenant.status().message());
            if (!weight.ok())
                return lineError(lineno, "bad weight",
                                 weight.status().message());
            const auto status = applyOrFail(
                core,
                SubmitDemand{market.value(), tenant.value(),
                             weight.value()},
                lineno);
            if (!status.ok())
                return status;
        } else if (cmd == "join") {
            if (tok.size() != 4) {
                return lineError(lineno,
                                 "join needs <market> <tenant> <app>",
                                 "");
            }
            const auto market = util::parseUnsigned(tok[1]);
            const auto tenant = util::parseUnsigned(tok[2]);
            if (!market.ok())
                return lineError(lineno, "bad market id",
                                 market.status().message());
            if (!tenant.ok())
                return lineError(lineno, "bad tenant id",
                                 tenant.status().message());
            const auto status = applyOrFail(
                core, JoinTenant{market.value(), tenant.value(), tok[3]},
                lineno);
            if (!status.ok())
                return status;
        } else if (cmd == "leave") {
            if (tok.size() != 3)
                return lineError(lineno, "leave needs <market> <tenant>",
                                 "");
            const auto market = util::parseUnsigned(tok[1]);
            const auto tenant = util::parseUnsigned(tok[2]);
            if (!market.ok())
                return lineError(lineno, "bad market id",
                                 market.status().message());
            if (!tenant.ok())
                return lineError(lineno, "bad tenant id",
                                 tenant.status().message());
            const auto status = applyOrFail(
                core, LeaveTenant{market.value(), tenant.value()},
                lineno);
            if (!status.ok())
                return status;
        } else if (cmd == "tick") {
            if (tok.size() > 2)
                return lineError(lineno, "tick takes at most one count",
                                 "");
            std::uint64_t count = 1;
            if (tok.size() == 2) {
                const auto parsed =
                    util::parseUnsigned(tok[1], 1u << 20);
                if (!parsed.ok())
                    return lineError(lineno, "bad tick count",
                                     parsed.status().message());
                count = parsed.value();
            }
            for (std::uint64_t t = 0; t < count; ++t)
                core.tick();
        } else {
            return lineError(lineno, "unknown command", cmd);
        }
    }
    return {};
}

} // namespace rebudget::serve
