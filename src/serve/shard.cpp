#include "rebudget/serve/shard.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "rebudget/util/rng.h"

namespace rebudget::serve {

namespace {

ErrorReply
errorReply(util::SolveStatus status)
{
    ErrorReply e;
    e.code = status.code();
    e.message = status.message();
    return e;
}

ErrorReply
unknownMarket(std::uint64_t market)
{
    ErrorReply e;
    e.code = util::StatusCode::InvalidArgument;
    e.message = "unknown market " + std::to_string(market);
    return e;
}

ErrorReply
unknownTenant(std::uint64_t market, std::uint64_t tenant)
{
    ErrorReply e;
    e.code = util::StatusCode::InvalidArgument;
    e.message = "market " + std::to_string(market) +
                " has no tenant " + std::to_string(tenant);
    return e;
}

/**
 * Pre-size an equilibrium slot's buffers for an n-player, m-resource
 * market.  The warm chain ping-pongs between two slots, so without
 * this the second slot would take its sizing allocations on the first
 * steady tick after a roster (re)build -- one tick after the chain is
 * already "warm" -- and break the zero-allocation contract.
 */
void
presizeResult(market::EquilibriumResult &r, std::size_t n, std::size_t m)
{
    r.alloc.resize(n, m);
    r.bids.resize(n, m);
    r.prices.resize(m);
    r.lambdas.resize(n);
    r.budgets.resize(n);
}

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
foldU64(std::uint64_t h, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8) {
        h ^= (v >> shift) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
foldF64(std::uint64_t h, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return foldU64(h, bits);
}

} // namespace

/**
 * One hosted market: roster, demand weights, the solver objects and the
 * two-slot warm-start chain.  All scratch buffers are sized on first
 * use and reused, so steady-state ticks allocate nothing.
 *
 * The two slots double as the read-side snapshot buffer: `gate`
 * arbitrates them between the single solver thread and any number of
 * lock-free readers.  Everything a reader touches is either immutable
 * (`id`), gate-protected slot payload (`slots`, `slotTenants`,
 * `slotTick`), or the gate itself; the remaining fields are solver
 * state owned by the shard mutex.
 */
struct Shard::MarketEntry
{
    explicit MarketEntry(const ServeConfig &config)
        : builder(eval::ProblemBuilder::Config{config.regionsPerCore,
                                               config.wattsPerCore,
                                               config.convexify}),
          watchdog(config.watchdogFailureThreshold,
                   config.watchdogCleanEpochs)
    {
    }

    std::uint64_t id = 0;
    /** Tenant ids in dense player order (parallel to builder models). */
    std::vector<std::uint64_t> tenants;
    /** Demand weights; budgets are n * w_i / sum(w) each tick. */
    std::vector<double> weights;
    eval::ProblemBuilder builder;
    std::vector<const market::UtilityModel *> modelPtrs;
    std::vector<double> capacities;
    std::unique_ptr<market::ProportionalMarket> market;
    market::SolveWorkspace ws;
    /** Warm-start chain and snapshot double buffer: solve into
     * slots[1-cur] after gate.beginWrite drains stale readers, flip
     * cur and gate.publish on success. */
    market::EquilibriumResult slots[2];
    /** Arbitrates the slots between the solver and lock-free reads. */
    util::SnapshotSeqLock gate;
    /** Roster each slot's allocation was computed on (read-side). */
    std::vector<std::uint64_t> slotTenants[2];
    /** Epoch each slot was published at (read-side). */
    std::uint64_t slotTick[2] = {0, 0};
    /** Slot vectors match the current roster shape (presized, so
     * steady-tick writes into them never allocate).  Both go false on
     * a roster change; each is reshaped under beginWrite before its
     * next write, all within warm-up ticks. */
    bool slotShaped[2] = {false, false};
    int cur = 0;
    /** slots[cur] is a real equilibrium usable as next tick's seed. */
    bool warmValid = false;
    /** slots[cur] is servable via GetAllocation (seed or fallback);
     * writer-side mirror of gate.frontSlot() != kNoSlot. */
    bool published = false;
    /** Migration scratch for roster-change warm seeds. */
    market::EquilibriumResult migrated;
    std::vector<std::ptrdiff_t> priorIndex;
    std::vector<double> budgets;
    /** Roster the current warm seed was solved on (migration map). */
    std::vector<std::uint64_t> solvedTenants;
    /** Set by create/join/leave; cleared once the market is rebuilt. */
    bool rosterChanged = true;
    sim::ConvergenceWatchdog watchdog;
    /** Epoch of the published allocation. */
    std::uint64_t lastTick = 0;
};

Shard::Shard(std::size_t index, const ServeConfig &config)
    : index_(index), config_(&config)
{
    // Index capacity 2x the admission cap keeps the open-addressing
    // load factor at or below one half, so probes stay short and the
    // insert loop always terminates.
    const std::size_t want =
        2 * (config.maxMarketsPerShard > 0 ? config.maxMarketsPerShard
                                           : 1);
    std::size_t cap = 1;
    while (cap < want)
        cap <<= 1;
    slots_ = std::vector<IndexSlot>(cap);
    slotMask_ = cap - 1;
}

Shard::~Shard() = default;

void
Shard::indexInsert(std::uint64_t market, MarketEntry *entry)
{
    std::uint64_t h = util::mix64(market) & slotMask_;
    while (slots_[h].ptr.load(std::memory_order_relaxed) != nullptr)
        h = (h + 1) & slotMask_;
    slots_[h].key.store(market, std::memory_order_relaxed);
    slots_[h].ptr.store(entry, std::memory_order_release);
}

const Shard::MarketEntry *
Shard::indexLookup(std::uint64_t market) const
{
    std::uint64_t h = util::mix64(market) & slotMask_;
    for (;;) {
        const MarketEntry *entry =
            slots_[h].ptr.load(std::memory_order_acquire);
        if (entry == nullptr)
            return nullptr;
        if (slots_[h].key.load(std::memory_order_relaxed) == market)
            return entry;
        h = (h + 1) & slotMask_;
    }
}

Response
Shard::apply(const Request &req)
{
    if (const auto *get = std::get_if<GetAllocation>(&req)) {
        AllocationReply reply;
        ErrorReply err;
        if (readAllocation(*get, reply, err))
            return reply;
        return err;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    Response resp;
    if (const auto *create = std::get_if<CreateMarket>(&req))
        resp = doCreate(*create);
    else if (const auto *demand = std::get_if<SubmitDemand>(&req))
        resp = doDemand(*demand);
    else if (const auto *join = std::get_if<JoinTenant>(&req))
        resp = doJoin(*join);
    else if (const auto *leave = std::get_if<LeaveTenant>(&req))
        resp = doLeave(*leave);
    else {
        ErrorReply e;
        e.code = util::StatusCode::InvalidArgument;
        e.message = "request is not market-scoped";
        resp = std::move(e);
    }
    if (std::holds_alternative<ErrorReply>(resp))
        counters_.requestsRejected.fetch_add(1,
                                             std::memory_order_relaxed);
    else
        counters_.requestsApplied.fetch_add(1,
                                            std::memory_order_relaxed);
    return resp;
}

bool
Shard::readAllocation(const GetAllocation &req, AllocationReply &out,
                      ErrorReply &err) const
{
    const MarketEntry *e = indexLookup(req.market);
    if (e == nullptr) {
        err = unknownMarket(req.market);
        counters_.requestsRejected.fetch_add(1,
                                             std::memory_order_relaxed);
        return false;
    }
    const util::SnapshotSeqLock::ReadPin pin(e->gate);
    if (!pin.valid()) {
        err = errorReply(util::SolveStatus::error(
            util::StatusCode::FailedPrecondition,
            "market %llu has no allocation yet (awaiting first tick)",
            static_cast<unsigned long long>(req.market)));
        counters_.requestsRejected.fetch_add(1,
                                             std::memory_order_relaxed);
        return false;
    }
    const std::uint32_t f = pin.slot();
    const market::EquilibriumResult &res = e->slots[f];
    const std::vector<std::uint64_t> &tenants = e->slotTenants[f];
    out.market = e->id;
    out.tick = e->slotTick[f];
    out.converged = res.converged;
    out.prices.assign(res.prices.begin(), res.prices.end());
    const std::size_t n = tenants.size();
    // Resize without discarding the inner vectors' capacity: shrink
    // destroys only the surplus entries, growth reuses slack, and
    // assign() below recycles each row buffer.
    if (out.players.size() > n)
        out.players.resize(n);
    while (out.players.size() < n)
        out.players.emplace_back();
    for (std::size_t i = 0; i < n; ++i) {
        TenantAllocation &t = out.players[i];
        t.tenant = tenants[i];
        t.budget = i < res.budgets.size() ? res.budgets[i] : 0.0;
        t.lambda = i < res.lambdas.size() ? res.lambdas[i] : 0.0;
        if (i < res.alloc.rows()) {
            const auto row = res.alloc[i];
            t.alloc.assign(row.begin(), row.end());
        } else {
            t.alloc.clear();
        }
    }
    counters_.requestsApplied.fetch_add(1, std::memory_order_relaxed);
    return true;
}

Response
Shard::doCreate(const CreateMarket &req)
{
    if (markets_.count(req.market) != 0) {
        ErrorReply e;
        e.code = util::StatusCode::FailedPrecondition;
        e.message =
            "market " + std::to_string(req.market) + " already exists";
        return e;
    }
    if (markets_.size() >= config_->maxMarketsPerShard) {
        return errorReply(util::SolveStatus::error(
            util::StatusCode::FailedPrecondition,
            "shard %zu is at its market cap (%zu)", index_,
            config_->maxMarketsPerShard));
    }
    if (req.tenants.empty()) {
        return errorReply(util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "CreateMarket needs at least one tenant"));
    }
    if (req.tenants.size() > config_->maxPlayersPerMarket) {
        return errorReply(util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "market %llu asks for %zu tenants, cap is %zu",
            static_cast<unsigned long long>(req.market),
            req.tenants.size(), config_->maxPlayersPerMarket));
    }
    auto entry = std::make_unique<MarketEntry>(*config_);
    entry->id = req.market;
    for (const auto &t : req.tenants) {
        for (const std::uint64_t seen : entry->tenants) {
            if (seen == t.tenant) {
                return errorReply(util::SolveStatus::error(
                    util::StatusCode::InvalidArgument,
                    "duplicate tenant %llu in CreateMarket",
                    static_cast<unsigned long long>(t.tenant)));
            }
        }
        const auto added = entry->builder.addApp(t.app);
        if (!added.ok())
            return errorReply(added.status());
        entry->tenants.push_back(t.tenant);
        entry->weights.push_back(1.0);
    }
    MarketEntry *raw = entry.get();
    markets_.emplace(req.market, std::move(entry));
    // Publish in the lock-free index only once the entry is fully
    // built; readers that win the race simply see "unknown market".
    indexInsert(req.market, raw);
    marketCount_.fetch_add(1, std::memory_order_relaxed);
    counters_.marketsCreated.fetch_add(1, std::memory_order_relaxed);
    return AckReply{};
}

Response
Shard::doDemand(const SubmitDemand &req)
{
    const auto it = markets_.find(req.market);
    if (it == markets_.end())
        return unknownMarket(req.market);
    MarketEntry &e = *it->second;
    if (!std::isfinite(req.weight) || req.weight <= 0.0) {
        return errorReply(util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "demand weight must be a finite positive number, got %g",
            req.weight));
    }
    for (std::size_t i = 0; i < e.tenants.size(); ++i) {
        if (e.tenants[i] == req.tenant) {
            e.weights[i] = req.weight;
            return AckReply{};
        }
    }
    return unknownTenant(req.market, req.tenant);
}

Response
Shard::doJoin(const JoinTenant &req)
{
    const auto it = markets_.find(req.market);
    if (it == markets_.end())
        return unknownMarket(req.market);
    MarketEntry &e = *it->second;
    if (e.tenants.size() >= config_->maxPlayersPerMarket) {
        return errorReply(util::SolveStatus::error(
            util::StatusCode::FailedPrecondition,
            "market %llu is at its player cap (%zu)",
            static_cast<unsigned long long>(req.market),
            config_->maxPlayersPerMarket));
    }
    for (const std::uint64_t seen : e.tenants) {
        if (seen == req.tenant) {
            return errorReply(util::SolveStatus::error(
                util::StatusCode::FailedPrecondition,
                "tenant %llu already in market %llu",
                static_cast<unsigned long long>(req.tenant),
                static_cast<unsigned long long>(req.market)));
        }
    }
    const auto added = e.builder.addApp(req.app);
    if (!added.ok())
        return errorReply(added.status());
    e.tenants.push_back(req.tenant);
    e.weights.push_back(1.0);
    e.rosterChanged = true;
    {
        const std::lock_guard<std::mutex> slock(statsMutex_);
        stats_.tenantsJoined += 1;
    }
    return AckReply{};
}

Response
Shard::doLeave(const LeaveTenant &req)
{
    const auto it = markets_.find(req.market);
    if (it == markets_.end())
        return unknownMarket(req.market);
    MarketEntry &e = *it->second;
    for (std::size_t i = 0; i < e.tenants.size(); ++i) {
        if (e.tenants[i] != req.tenant)
            continue;
        e.builder.removeAt(i);
        e.tenants.erase(e.tenants.begin() +
                        static_cast<std::ptrdiff_t>(i));
        e.weights.erase(e.weights.begin() +
                        static_cast<std::ptrdiff_t>(i));
        e.rosterChanged = true;
        {
            const std::lock_guard<std::mutex> slock(statsMutex_);
            stats_.tenantsDeparted += 1;
        }
        return AckReply{};
    }
    return unknownTenant(req.market, req.tenant);
}

void
Shard::tick(std::uint64_t epoch)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    // A tick is "steady" when every non-empty market will warm-start
    // from an intact chain: that is the regime the zero-allocation
    // contract covers, and the regime the audit counters below bucket
    // separately from warm-up/churn ticks.
    bool steady = true;
    for (const auto &kv : markets_) {
        const MarketEntry &e = *kv.second;
        if (e.tenants.empty())
            continue;
        if (e.rosterChanged || (!e.warmValid && !e.watchdog.inFallback()))
            steady = false;
    }
    auto *const counter = config_->allocCounter;
    const std::int64_t before = counter ? counter() : 0;
    for (auto &kv : markets_)
        tickMarket(*kv.second, epoch);
    const std::int64_t delta = counter ? counter() - before : 0;
    counters_.ticksRun.fetch_add(1, std::memory_order_relaxed);
    if (steady) {
        counters_.steadyTicks.fetch_add(1, std::memory_order_relaxed);
        counters_.steadyTickAllocs.fetch_add(delta,
                                             std::memory_order_relaxed);
    } else {
        counters_.warmupTickAllocs.fetch_add(delta,
                                             std::memory_order_relaxed);
    }
}

void
Shard::tickMarket(MarketEntry &e, std::uint64_t epoch)
{
    const std::size_t n = e.tenants.size();
    if (n == 0)
        return; // every tenant left; nothing to solve or publish

    // Budgets from demand weights: B_i = n * w_i / sum(w), so budgets
    // always sum to n (one unit per seat) and doubling your weight
    // doubles your purchasing power relative to the room.
    double wsum = 0.0;
    for (const double w : e.weights)
        wsum += w;
    e.budgets.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        e.budgets[i] = static_cast<double>(n) * e.weights[i] / wsum;

    const market::EquilibriumResult *prior = nullptr;
    if (e.rosterChanged) {
        // Rebuild the market for the new roster, then migrate the
        // surviving tenants' warm state across the shape change.  The
        // migration reads the old front slot, which concurrent readers
        // may still be pinning -- both sides only read, so that is
        // safe.  The old snapshot stays published throughout the
        // rebuild: readers keep the pre-churn allocation until the new
        // roster's first successful solve flips the buffer (the same
        // stale-until-next-tick semantics the mutexed path had).  Only
        // the back slot is reshaped before the solve; the other slot
        // is reshaped right after the flip, still inside this warm-up
        // tick, so steady ticks never touch an unshaped slot.
        const bool migrate = e.warmValid && !e.solvedTenants.empty();
        e.modelPtrs.clear();
        for (const auto &model : e.builder.models())
            e.modelPtrs.push_back(model.get());
        e.builder.capacitiesInto(e.capacities);
        e.market = std::make_unique<market::ProportionalMarket>(
            e.modelPtrs, e.capacities, config_->market);
        if (migrate) {
            e.priorIndex.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
                e.priorIndex[i] = -1;
                for (std::size_t p = 0; p < e.solvedTenants.size(); ++p) {
                    if (e.solvedTenants[p] == e.tenants[i]) {
                        e.priorIndex[i] =
                            static_cast<std::ptrdiff_t>(p);
                        break;
                    }
                }
            }
            const std::size_t kept = market::migrateEquilibriumInto(
                e.slots[e.cur], e.priorIndex, e.capacities.size(),
                e.migrated);
            {
                const std::lock_guard<std::mutex> slock(statsMutex_);
                stats_.migratedWarmSeeds +=
                    static_cast<std::int64_t>(kept);
            }
            if (e.migrated.status.ok())
                prior = &e.migrated;
        }
        e.warmValid = false;
        e.rosterChanged = false;
        e.solvedTenants = e.tenants;
        e.slotShaped[0] = false;
        e.slotShaped[1] = false;
    } else if (e.warmValid) {
        prior = &e.slots[e.cur];
    }

    if (e.watchdog.consumeFallbackEpoch()) {
        installFallback(e, epoch);
        e.lastTick = epoch;
        const std::lock_guard<std::mutex> slock(statsMutex_);
        stats_.fallbackEpochs += 1;
        return;
    }

    // Solve into the back slot.  Readers may still be copying it from
    // two flips ago; wait them out before the solver writes.
    const int back = 1 - e.cur;
    market::EquilibriumResult &out = e.slots[back];
    e.gate.beginWrite(static_cast<std::uint32_t>(back));
    shapeSlot(e, back, n, e.capacities.size());
    e.market->findEquilibriumInto(e.budgets, prior, e.ws, out);

    {
        const std::lock_guard<std::mutex> slock(statsMutex_);
        stats_.equilibriumSolves += 1;
        stats_.sweepIterations += out.iterations;
        stats_.hillClimbSteps += out.hillClimbSteps;
        stats_.solveSeconds += out.solveSeconds;
        if (out.warmStarted)
            stats_.warmStartedSolves += 1;
        else
            stats_.coldStartedSolves += 1;
        if (!out.status.ok())
            stats_.failedSolves += 1;
        else if (!out.converged)
            stats_.failSafeTrips += 1;
    }

    if (out.status.ok()) {
        // Publish: stamp the slot's read-side metadata, then flip.
        // Same-size assignment reuses slotTenants' buffer, keeping
        // steady ticks allocation-free.
        e.slotTenants[back] = e.tenants;
        e.slotTick[back] = epoch;
        e.cur = back;
        e.warmValid = true;
        e.published = true;
        e.lastTick = epoch;
        e.gate.publish(static_cast<std::uint32_t>(back));
        // If the roster just changed, the now-idle slot still has the
        // old shape; fix it while this tick is still a warm-up tick.
        shapeSlot(e, 1 - e.cur, n, e.capacities.size());
    }
    // On a failed solve the chain stays on the old slot and readers
    // keep seeing the previous published allocation.

    const bool healthy = out.status.ok() && out.converged;
    if (e.watchdog.observe(healthy)) {
        // Watchdog trip: stop trusting the market, drop the warm chain
        // and publish the open-loop equal split for this epoch and the
        // recovery window.
        {
            const std::lock_guard<std::mutex> slock(statsMutex_);
            stats_.watchdogTrips += 1;
        }
        e.warmValid = false;
        installFallback(e, epoch);
        e.lastTick = epoch;
    }
}

void
Shard::shapeSlot(MarketEntry &entry, int slot, std::size_t tenants,
                 std::size_t resources)
{
    if (entry.slotShaped[slot])
        return;
    entry.gate.beginWrite(static_cast<std::uint32_t>(slot));
    presizeResult(entry.slots[slot], tenants, resources);
    entry.slotTenants[slot].reserve(tenants);
    entry.slotShaped[slot] = true;
}

/** Publish the open-loop equal split into the entry's back slot. */
void
Shard::installFallback(MarketEntry &entry, std::uint64_t epoch)
{
    const std::size_t n = entry.tenants.size();
    const std::size_t m = entry.capacities.size();
    const int back = 1 - entry.cur;
    market::EquilibriumResult &out = entry.slots[back];
    entry.gate.beginWrite(static_cast<std::uint32_t>(back));
    shapeSlot(entry, back, n, m);
    out.status = {};
    out.alloc.resize(n, m);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            out.alloc(i, j) =
                entry.capacities[j] / static_cast<double>(n);
        }
    }
    out.bids.clear();
    out.prices.assign(m, 0.0);
    out.lambdas.assign(n, 0.0);
    out.budgets = entry.budgets;
    out.iterations = 0;
    out.converged = false;
    out.warmStarted = false;
    out.approximated = true;
    out.hillClimbSteps = 0;
    out.solveSeconds = 0.0;
    entry.slotTenants[back] = entry.tenants;
    entry.slotTick[back] = epoch;
    entry.cur = back;
    entry.published = true;
    entry.gate.publish(static_cast<std::uint32_t>(back));
    shapeSlot(entry, 1 - entry.cur, n, m);
}

std::size_t
Shard::marketCount() const
{
    return marketCount_.load(std::memory_order_relaxed);
}

ShardCounters
Shard::counters() const
{
    ShardCounters c;
    c.marketsCreated =
        counters_.marketsCreated.load(std::memory_order_relaxed);
    c.requestsApplied =
        counters_.requestsApplied.load(std::memory_order_relaxed);
    c.requestsRejected =
        counters_.requestsRejected.load(std::memory_order_relaxed);
    c.ticksRun = counters_.ticksRun.load(std::memory_order_relaxed);
    c.steadyTicks =
        counters_.steadyTicks.load(std::memory_order_relaxed);
    c.steadyTickAllocs =
        counters_.steadyTickAllocs.load(std::memory_order_relaxed);
    c.warmupTickAllocs =
        counters_.warmupTickAllocs.load(std::memory_order_relaxed);
    return c;
}

util::SolverStats
Shard::solverStats() const
{
    const std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

void
Shard::exportState(std::vector<MarketState> &out) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    out.clear();
    out.reserve(markets_.size());
    for (const auto &kv : markets_) {
        const MarketEntry &e = *kv.second;
        MarketState st;
        st.id = e.id;
        st.tenants.resize(e.tenants.size());
        const auto &models = e.builder.models();
        for (std::size_t i = 0; i < e.tenants.size(); ++i) {
            st.tenants[i].tenant = e.tenants[i];
            st.tenants[i].app = models[i]->name();
            st.tenants[i].weight = e.weights[i];
        }
        st.published = e.published;
        st.warmValid = e.warmValid;
        if (e.published) {
            const market::EquilibriumResult &res = e.slots[e.cur];
            st.allocTenants = e.slotTenants[e.cur];
            st.tick = e.slotTick[e.cur];
            st.iterations = static_cast<std::uint64_t>(res.iterations);
            st.converged = res.converged;
            st.approximated = res.approximated;
            st.prices = res.prices;
            st.budgets = res.budgets;
            st.lambdas = res.lambdas;
            st.alloc = res.alloc;
            st.bids = res.bids;
        }
        out.push_back(std::move(st));
    }
}

util::SolveStatus
Shard::restoreMarket(const MarketState &st)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (markets_.count(st.id) != 0) {
        return util::SolveStatus::error(
            util::StatusCode::FailedPrecondition,
            "restore: market %llu already exists",
            static_cast<unsigned long long>(st.id));
    }
    if (markets_.size() >= config_->maxMarketsPerShard) {
        return util::SolveStatus::error(
            util::StatusCode::FailedPrecondition,
            "restore: shard %zu is at its market cap (%zu)", index_,
            config_->maxMarketsPerShard);
    }
    if (st.tenants.size() > config_->maxPlayersPerMarket) {
        return util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "restore: market %llu has %zu tenants, cap is %zu",
            static_cast<unsigned long long>(st.id), st.tenants.size(),
            config_->maxPlayersPerMarket);
    }
    if (st.published) {
        // The equilibrium shapes must agree with the roster it claims
        // to have been solved on; a corrupted snapshot that decoded
        // "successfully" but lies about shapes is rejected here.
        const std::size_t n = st.allocTenants.size();
        const std::size_t m = st.prices.size();
        const bool shaped =
            st.budgets.size() == n && st.lambdas.size() == n &&
            st.alloc.rows() == n && st.alloc.cols() == m &&
            (st.bids.empty() ||
             (st.bids.rows() == n && st.bids.cols() == m));
        if (!shaped) {
            return util::SolveStatus::error(
                util::StatusCode::InvalidArgument,
                "restore: market %llu equilibrium shapes disagree "
                "with its roster",
                static_cast<unsigned long long>(st.id));
        }
    }
    auto entry = std::make_unique<MarketEntry>(*config_);
    entry->id = st.id;
    for (const TenantState &t : st.tenants) {
        for (const std::uint64_t seen : entry->tenants) {
            if (seen == t.tenant) {
                return util::SolveStatus::error(
                    util::StatusCode::InvalidArgument,
                    "restore: duplicate tenant %llu in market %llu",
                    static_cast<unsigned long long>(t.tenant),
                    static_cast<unsigned long long>(st.id));
            }
        }
        if (!std::isfinite(t.weight) || t.weight <= 0.0) {
            return util::SolveStatus::error(
                util::StatusCode::InvalidArgument,
                "restore: tenant %llu of market %llu has weight %g",
                static_cast<unsigned long long>(t.tenant),
                static_cast<unsigned long long>(st.id), t.weight);
        }
        const auto added = entry->builder.addApp(t.app);
        if (!added.ok())
            return added.status();
        entry->tenants.push_back(t.tenant);
        entry->weights.push_back(t.weight);
    }
    MarketEntry &e = *entry;
    if (st.published) {
        // Install the published equilibrium into slot 0 and publish
        // it: readers serve the pre-crash allocation before the first
        // post-restore tick even runs.  rosterChanged stays true, so
        // that tick takes the rebuild path and warm-migrates from this
        // slot -- for an unchanged roster the migration is an identity
        // re-key of these exact bids, making the first post-restore
        // solve bit-identical to the uncrashed daemon's next tick.
        market::EquilibriumResult &res = e.slots[0];
        e.gate.beginWrite(0);
        res.status = {};
        res.prices = st.prices;
        res.budgets = st.budgets;
        res.lambdas = st.lambdas;
        res.alloc = st.alloc;
        res.bids = st.bids;
        res.iterations = static_cast<int>(st.iterations);
        res.converged = st.converged;
        res.approximated = st.approximated;
        res.warmStarted = false;
        res.hillClimbSteps = 0;
        res.solveSeconds = 0.0;
        e.slotTenants[0] = st.allocTenants;
        e.slotTick[0] = st.tick;
        e.cur = 0;
        e.published = true;
        // A warm seed needs bids; a fallback slot (or a snapshot
        // stripped of bids) restores as published-but-cold.
        e.warmValid = st.warmValid && !st.bids.empty();
        e.solvedTenants = st.allocTenants;
        e.lastTick = st.tick;
        e.gate.publish(0);
    }
    MarketEntry *raw = entry.get();
    markets_.emplace(st.id, std::move(entry));
    indexInsert(st.id, raw);
    marketCount_.fetch_add(1, std::memory_order_relaxed);
    counters_.marketsCreated.fetch_add(1, std::memory_order_relaxed);
    return {};
}

std::uint64_t
Shard::digest(std::uint64_t h) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &kv : markets_) {
        const MarketEntry &e = *kv.second;
        h = foldU64(h, e.id);
        h = foldU64(h, e.tenants.size());
        for (const std::uint64_t t : e.tenants)
            h = foldU64(h, t);
        h = foldU64(h, e.published ? 1 : 0);
        if (!e.published)
            continue;
        const market::EquilibriumResult &res = e.slots[e.cur];
        h = foldU64(h, static_cast<std::uint64_t>(res.iterations));
        h = foldU64(h, res.converged ? 1 : 0);
        for (const double b : res.budgets)
            h = foldF64(h, b);
        for (const double p : res.prices)
            h = foldF64(h, p);
        for (const double l : res.lambdas)
            h = foldF64(h, l);
        for (std::size_t i = 0; i < res.alloc.rows(); ++i) {
            for (std::size_t j = 0; j < res.alloc.cols(); ++j)
                h = foldF64(h, res.alloc(i, j));
        }
    }
    return h;
}

} // namespace rebudget::serve
