#include "rebudget/serve/protocol.h"

#include <algorithm>
#include <cstring>

#include "rebudget/serve/wire.h"

namespace rebudget::serve {

namespace {

using wire::ByteReader;
using wire::putF64;
using wire::putString;
using wire::putU16;
using wire::putU32;
using wire::putU64;
using wire::putU8;

void
frameOut(std::vector<std::uint8_t> &out,
         const std::vector<std::uint8_t> &payload)
{
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
}

util::SolveStatus
decodeError(const char *opcode, const ByteReader &r)
{
    return util::SolveStatus::error(
        util::StatusCode::InvalidArgument,
        "malformed %s request: truncated %s", opcode, r.what().c_str());
}

util::SolveStatus
trailingError(const char *opcode, std::size_t extra)
{
    return util::SolveStatus::error(
        util::StatusCode::InvalidArgument,
        "malformed %s request: %zu trailing byte(s)", opcode, extra);
}

} // namespace

void
encodeRequestPayload(const Request &req, std::vector<std::uint8_t> &p)
{
    if (const auto *r = std::get_if<CreateMarket>(&req)) {
        putU8(p, static_cast<std::uint8_t>(Opcode::CreateMarket));
        putU64(p, r->market);
        putU16(p, static_cast<std::uint16_t>(r->tenants.size()));
        for (const auto &t : r->tenants) {
            putU64(p, t.tenant);
            putString(p, t.app);
        }
    } else if (const auto *r = std::get_if<SubmitDemand>(&req)) {
        putU8(p, static_cast<std::uint8_t>(Opcode::SubmitDemand));
        putU64(p, r->market);
        putU64(p, r->tenant);
        putF64(p, r->weight);
    } else if (const auto *r = std::get_if<JoinTenant>(&req)) {
        putU8(p, static_cast<std::uint8_t>(Opcode::JoinTenant));
        putU64(p, r->market);
        putU64(p, r->tenant);
        putString(p, r->app);
    } else if (const auto *r = std::get_if<LeaveTenant>(&req)) {
        putU8(p, static_cast<std::uint8_t>(Opcode::LeaveTenant));
        putU64(p, r->market);
        putU64(p, r->tenant);
    } else if (const auto *r = std::get_if<GetAllocation>(&req)) {
        putU8(p, static_cast<std::uint8_t>(Opcode::GetAllocation));
        putU64(p, r->market);
    } else if (std::get_if<GetStats>(&req)) {
        putU8(p, static_cast<std::uint8_t>(Opcode::GetStats));
    } else if (std::get_if<Shutdown>(&req)) {
        putU8(p, static_cast<std::uint8_t>(Opcode::Shutdown));
    } else {
        putU8(p, static_cast<std::uint8_t>(Opcode::TickNow));
    }
}

void
encodeRequest(const Request &req, std::vector<std::uint8_t> &out)
{
    std::vector<std::uint8_t> p;
    encodeRequestPayload(req, p);
    frameOut(out, p);
}

void
encodeResponse(const Response &resp, std::vector<std::uint8_t> &out)
{
    std::vector<std::uint8_t> p;
    if (std::get_if<AckReply>(&resp)) {
        putU8(p, static_cast<std::uint8_t>(ReplyOpcode::Ack));
    } else if (const auto *r = std::get_if<ErrorReply>(&resp)) {
        putU8(p, static_cast<std::uint8_t>(ReplyOpcode::Error));
        putU8(p, static_cast<std::uint8_t>(r->code));
        p.insert(p.end(), r->message.begin(), r->message.end());
    } else if (const auto *r = std::get_if<AllocationReply>(&resp)) {
        putU8(p, static_cast<std::uint8_t>(ReplyOpcode::Allocation));
        putU64(p, r->market);
        putU64(p, r->tick);
        putU8(p, r->converged ? 1 : 0);
        putU16(p, static_cast<std::uint16_t>(r->prices.size()));
        for (const double price : r->prices)
            putF64(p, price);
        putU16(p, static_cast<std::uint16_t>(r->players.size()));
        for (const auto &t : r->players) {
            putU64(p, t.tenant);
            putF64(p, t.budget);
            putF64(p, t.lambda);
            for (const double a : t.alloc)
                putF64(p, a);
        }
    } else {
        const auto &s = std::get<StatsReply>(resp);
        putU8(p, static_cast<std::uint8_t>(ReplyOpcode::Stats));
        p.insert(p.end(), s.json.begin(), s.json.end());
    }
    frameOut(out, p);
}

util::Expected<Request>
decodeRequest(const std::uint8_t *payload, std::size_t size)
{
    if (size == 0) {
        return util::SolveStatus::error(util::StatusCode::InvalidArgument,
                                        "empty frame payload");
    }
    ByteReader r(payload + 1, size - 1);
    const auto op = static_cast<Opcode>(payload[0]);
    Request req;
    const char *name = "";
    switch (op) {
    case Opcode::CreateMarket: {
        name = "CreateMarket";
        CreateMarket c;
        c.market = r.u64();
        const std::uint16_t n = r.u16();
        for (std::uint16_t i = 0; i < n && !r.failed(); ++i) {
            TenantSpec t;
            t.tenant = r.u64();
            t.app = r.str();
            c.tenants.push_back(std::move(t));
        }
        req = std::move(c);
        break;
    }
    case Opcode::SubmitDemand: {
        name = "SubmitDemand";
        SubmitDemand d;
        d.market = r.u64();
        d.tenant = r.u64();
        d.weight = r.f64();
        req = d;
        break;
    }
    case Opcode::JoinTenant: {
        name = "JoinTenant";
        JoinTenant j;
        j.market = r.u64();
        j.tenant = r.u64();
        j.app = r.str();
        req = std::move(j);
        break;
    }
    case Opcode::LeaveTenant: {
        name = "LeaveTenant";
        LeaveTenant l;
        l.market = r.u64();
        l.tenant = r.u64();
        req = l;
        break;
    }
    case Opcode::GetAllocation: {
        name = "GetAllocation";
        GetAllocation g;
        g.market = r.u64();
        req = g;
        break;
    }
    case Opcode::GetStats:
        name = "GetStats";
        req = GetStats{};
        break;
    case Opcode::Shutdown:
        name = "Shutdown";
        req = Shutdown{};
        break;
    case Opcode::TickNow:
        name = "TickNow";
        req = TickNow{};
        break;
    default:
        return util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "unknown request opcode 0x%02x", payload[0]);
    }
    if (r.failed())
        return decodeError(name, r);
    if (r.remaining() != 0)
        return trailingError(name, r.remaining());
    return req;
}

util::Expected<Response>
decodeResponse(const std::uint8_t *payload, std::size_t size)
{
    if (size == 0) {
        return util::SolveStatus::error(util::StatusCode::InvalidArgument,
                                        "empty frame payload");
    }
    ByteReader r(payload + 1, size - 1);
    const auto op = static_cast<ReplyOpcode>(payload[0]);
    Response resp;
    switch (op) {
    case ReplyOpcode::Ack:
        resp = AckReply{};
        break;
    case ReplyOpcode::Error: {
        ErrorReply e;
        e.code = static_cast<util::StatusCode>(r.u8());
        e.message = r.rest();
        resp = std::move(e);
        break;
    }
    case ReplyOpcode::Allocation: {
        AllocationReply a;
        a.market = r.u64();
        a.tick = r.u64();
        a.converged = r.u8() != 0;
        const std::uint16_t m = r.u16();
        for (std::uint16_t j = 0; j < m && !r.failed(); ++j)
            a.prices.push_back(r.f64());
        const std::uint16_t n = r.u16();
        for (std::uint16_t i = 0; i < n && !r.failed(); ++i) {
            TenantAllocation t;
            t.tenant = r.u64();
            t.budget = r.f64();
            t.lambda = r.f64();
            for (std::uint16_t j = 0; j < m && !r.failed(); ++j)
                t.alloc.push_back(r.f64());
            a.players.push_back(std::move(t));
        }
        resp = std::move(a);
        break;
    }
    case ReplyOpcode::Stats: {
        StatsReply s;
        s.json = r.rest();
        resp = std::move(s);
        break;
    }
    default:
        return util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "unknown response opcode 0x%02x", payload[0]);
    }
    if (r.failed()) {
        return util::SolveStatus::error(util::StatusCode::InvalidArgument,
                                        "malformed response: truncated %s",
                                        r.what().c_str());
    }
    if (r.remaining() != 0) {
        return util::SolveStatus::error(
            util::StatusCode::InvalidArgument,
            "malformed response: %zu trailing byte(s)", r.remaining());
    }
    return resp;
}

void
FrameReader::feed(const std::uint8_t *data, std::size_t size)
{
    if (broken_)
        return;
    // Shift out already-consumed bytes before appending so the buffer
    // stays proportional to one frame, not to connection lifetime.
    if (consumed_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + size);
}

FrameReader::Result
FrameReader::next(std::vector<std::uint8_t> &payload)
{
    if (broken_)
        return Result::Error;
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < 4)
        return Result::NeedMore;
    const std::uint8_t *p = buffer_.data() + consumed_;
    const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                              static_cast<std::uint32_t>(p[1]) << 8 |
                              static_cast<std::uint32_t>(p[2]) << 16 |
                              static_cast<std::uint32_t>(p[3]) << 24;
    if (len > kMaxFramePayload) {
        broken_ = true;
        error_ = "declared frame payload of " + std::to_string(len) +
                 " bytes exceeds the " +
                 std::to_string(kMaxFramePayload) + "-byte cap";
        return Result::Error;
    }
    if (avail - 4 < len)
        return Result::NeedMore;
    payload.assign(p + 4, p + 4 + len);
    consumed_ += 4 + len;
    if (consumed_ == buffer_.size()) {
        buffer_.clear();
        consumed_ = 0;
    }
    return Result::Frame;
}

} // namespace rebudget::serve
