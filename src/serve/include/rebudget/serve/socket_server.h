#ifndef REBUDGET_SERVE_SOCKET_SERVER_H_
#define REBUDGET_SERVE_SOCKET_SERVER_H_

/**
 * @file
 * poll()-based transport for rebudgetd: a nonblocking event loop
 * accepting length-prefixed frames over a Unix-domain socket or
 * loopback TCP.  One thread owns all connection state; it never
 * touches market state:
 *
 *  - each POLLIN wakeup drains the socket to EAGAIN and processes
 *    every complete frame in the batch;
 *  - mutating market ops (Create/Demand/Join/Leave) are routed RAW --
 *    the I/O thread peeks opcode + market id and hands the frame to
 *    ServerCore::submitFrame; decode, apply and encode run on the
 *    shard's worker, and the reply comes back through an eventfd-woken
 *    completion queue;
 *  - GetAllocation is answered inline from the lock-free snapshot
 *    path (Shard::readAllocation), GetStats from the mutex-free
 *    telemetry accessors;
 *  - epoch ticks (timer or TickNow) run via ServerCore::tickAsync, so
 *    the loop keeps serving reads while shards solve.  A TickNow
 *    waits for already-queued writes to apply before solving, keeping
 *    the demand -> TickNow -> GetAllocation pipeline meaningful;
 *  - replies are sequenced per connection (inline reads can finish
 *    before queued writes; the wire still carries replies in request
 *    order) and flushed with one gathering sendmsg per connection per
 *    round; short writes stay buffered and resume on POLLOUT.
 *
 * Failure semantics (tests/serve/socket_server_test.cpp pins these):
 *  - unknown opcode / malformed body of a complete frame -> typed
 *    ErrorReply, connection stays open;
 *  - oversized declared frame length -> ErrorReply, then the connection
 *    is dropped (the stream position can no longer be trusted);
 *  - mid-frame disconnect -> the partial frame is discarded and the
 *    connection closed (any queued replies are still delivered);
 *  - in every case the other connections and every hosted market are
 *    untouched.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "rebudget/serve/server_core.h"
#include "rebudget/util/status.h"

namespace rebudget::serve {

/** Transport configuration for SocketServer. */
struct SocketServerOptions
{
    /** Unix-domain socket path ("" = use TCP instead). */
    std::string socketPath;
    /** Loopback TCP port (used when socketPath is empty; 0 = pick). */
    std::uint16_t port = 0;
    /** Epoch tick period in milliseconds (0 = only TickNow ticks). */
    std::uint32_t tickMs = 100;
    /** Stop after this many epochs (0 = run until Shutdown/stop flag). */
    std::uint64_t maxTicks = 0;
    /** Bound on the shutdown drain: after this many milliseconds the
     * loop exits even with requests still in flight (a dead peer or a
     * wedged solve must not hold the daemon open forever). */
    std::uint32_t drainMs = 5000;
    /**
     * Invoked on the I/O thread each time an epoch tick completes,
     * with the epoch that just finished (no tick is in flight during
     * the call).  rebudgetd hangs the periodic snapshot off this; it
     * briefly pauses frame processing, so keep the work bounded.
     */
    std::function<void(std::uint64_t epoch)> onTick;
};

/** Single-threaded poll loop bridging sockets to a ServerCore. */
class SocketServer
{
  public:
    SocketServer(ServerCore &core, SocketServerOptions options)
        : core_(core), options_(std::move(options))
    {
    }

    /**
     * Bind, listen and serve until a Shutdown request arrives, maxTicks
     * epochs have run, or the stop flag (see requestStop) is raised.
     * Returns Ok on clean shutdown or an error describing the socket
     * failure.  The listening socket is closed (and a Unix socket path
     * unlinked) on exit.
     */
    util::SolveStatus run();

    /**
     * Ask a running loop to stop.  The first call begins a graceful
     * shutdown: the loop stops accepting connections, drains queued
     * writes and in-flight ticks, flushes pending replies, then exits
     * (bounded by SocketServerOptions::drainMs).  A second call -- the
     * impatient operator's second Ctrl-C -- exits at the next poll
     * wakeup without waiting for the drain.  Safe to call from a
     * signal handler or another thread (lock-free atomic increment).
     */
    void requestStop() { stop_.fetch_add(1, std::memory_order_relaxed); }

    /**
     * @return the bound TCP port, or 0 until run() has bound.  May be
     * polled from another thread while the loop starts up.
     */
    std::uint16_t boundPort() const
    {
        return bound_port_.load(std::memory_order_acquire);
    }

  private:
    ServerCore &core_;
    SocketServerOptions options_;
    std::atomic<int> stop_{0};
    std::atomic<std::uint16_t> bound_port_{0};
};

} // namespace rebudget::serve

#endif // REBUDGET_SERVE_SOCKET_SERVER_H_
