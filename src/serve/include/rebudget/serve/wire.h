#ifndef REBUDGET_SERVE_WIRE_H_
#define REBUDGET_SERVE_WIRE_H_

/**
 * @file
 * Shared little-endian wire encoding primitives for the serve module.
 *
 * These are the scalar/string encoders behind the protocol.h frame
 * format, split out so the on-disk durability formats (persist.h:
 * snapshots and the op journal) encode with byte-identical rules --
 * one implementation of "u32 LE", "f64 = IEEE-754 bit pattern",
 * "str = u16 length + raw bytes" shared by socket and disk.
 *
 * ByteReader is the matching bounds-checked cursor: the first failed
 * read latches the error and subsequent reads return zeros, so
 * decoders run straight through and check failed() once at the end.
 * Corrupted input (truncated, bit-flipped, length-lying) therefore
 * surfaces as a typed decode error, never out-of-bounds access --
 * tests/serve/durability_corpus_test.cpp hammers exactly this.
 */

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace rebudget::serve::wire {

inline void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

inline void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<std::uint8_t>(v >> shift));
}

inline void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<std::uint8_t>(v >> shift));
}

inline void
putF64(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

inline void
putString(std::vector<std::uint8_t> &out, const std::string &s)
{
    const std::size_t n = std::min<std::size_t>(s.size(), 0xffff);
    putU16(out, static_cast<std::uint16_t>(n));
    out.insert(out.end(), s.begin(),
               s.begin() + static_cast<std::ptrdiff_t>(n));
}

/** Overwrite 4 bytes at @p at with @p v (patching a length field
 * reserved earlier with putU32). */
inline void
patchU32(std::vector<std::uint8_t> &out, std::size_t at, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out[at + static_cast<std::size_t>(shift / 8)] =
            static_cast<std::uint8_t>(v >> shift);
}

/**
 * Bounds-checked payload cursor.  The first failed read latches the
 * error; subsequent reads return zeros so decoders can run straight
 * through and check once at the end.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t u8() { return static_cast<std::uint8_t>(raw(1)); }
    std::uint16_t u16() { return static_cast<std::uint16_t>(raw(2)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(raw(4)); }
    std::uint64_t u64() { return raw(8); }

    double f64()
    {
        const std::uint64_t bits = raw(8);
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string str()
    {
        const std::uint16_t n = u16();
        if (failed_)
            return {};
        if (size_ - off_ < n) {
            fail("string body");
            return {};
        }
        std::string s(reinterpret_cast<const char *>(data_ + off_), n);
        off_ += n;
        return s;
    }

    /** Remaining payload bytes as a string (free-length tails). */
    std::string rest()
    {
        std::string s(reinterpret_cast<const char *>(data_ + off_),
                      size_ - off_);
        off_ = size_;
        return s;
    }

    bool failed() const { return failed_; }
    const std::string &what() const { return what_; }
    std::size_t remaining() const { return size_ - off_; }

  private:
    std::uint64_t raw(std::size_t bytes)
    {
        if (failed_)
            return 0;
        if (size_ - off_ < bytes) {
            fail("scalar");
            return 0;
        }
        std::uint64_t v = 0;
        for (std::size_t b = 0; b < bytes; ++b)
            v |= static_cast<std::uint64_t>(data_[off_ + b]) << (8 * b);
        off_ += bytes;
        return v;
    }

    void fail(const char *what)
    {
        if (!failed_) {
            failed_ = true;
            what_ = what;
        }
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t off_ = 0;
    bool failed_ = false;
    std::string what_;
};

} // namespace rebudget::serve::wire

#endif // REBUDGET_SERVE_WIRE_H_
