#ifndef REBUDGET_SERVE_SERVER_CORE_H_
#define REBUDGET_SERVE_SERVER_CORE_H_

/**
 * @file
 * Transport-independent core of rebudgetd: request routing over a fixed
 * set of shards, the epoch-tick driver, aggregated telemetry and the
 * deterministic replay/digest machinery.
 *
 * Splitting the core from the socket layer keeps every behavior
 * testable in-process (tests/serve/server_core_test.cpp drives it with
 * no sockets) and lets bench/perf_serve run closed-loop against the
 * exact production code path.
 *
 * Determinism: requests are routed to shards by util::mix64(market id),
 * ticks solve each shard on one ThreadPool worker (Shard state is only
 * touched through its own index -- the parallelFor contract), and
 * digest() folds only bit-stable fields.  Hence a fixed request
 * sequence yields an identical digest at any --jobs value, which
 * `rebudgetd --replay` exposes and tools/serve_smoke.sh asserts.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rebudget/serve/shard.h"
#include "rebudget/util/thread_pool.h"

namespace rebudget::serve {

/** A raw request frame queued for asynchronous application, tagged
 * with the transport's (connection, sequence) reply address. */
struct PendingFrame
{
    std::vector<std::uint8_t> payload;
    std::uint64_t conn = 0;
    std::uint64_t seq = 0;
};

/** The daemon's market-hosting engine (no transport attached). */
class ServerCore
{
  public:
    explicit ServerCore(const ServeConfig &config);

    ServerCore(const ServerCore &) = delete;
    ServerCore &operator=(const ServerCore &) = delete;

    /**
     * Apply one request synchronously and build its reply.  Mutating
     * market-scoped requests run under the owning shard's mutex;
     * GetAllocation goes through the lock-free read path; GetStats
     * aggregates every shard; TickNow runs one epoch before acking;
     * Shutdown acks (stopping is the transport's job).
     */
    Response apply(const Request &req);

    /**
     * Lock-free snapshot read into a caller-reused reply (see
     * Shard::readAllocation): routes to the owning shard, never takes
     * a shard mutex, performs zero heap allocations once @p out has
     * grown to the market's shape.  Safe from any thread, concurrent
     * with ticks and writes.
     */
    bool readAllocation(const GetAllocation &req, AllocationReply &out,
                        ErrorReply &err) const;

    /** Run one epoch tick across all shards, in parallel. */
    void tick();

    // --- async write plane (batched transport) -----------------------
    //
    // The socket layer never touches market state on its I/O thread:
    // it peeks the market id out of a raw frame, hands the frame to
    // submitFrame(), and per-shard FIFO queues drain on the tick
    // thread pool -- decode, apply and encode all happen on a worker.
    // Replies come back through the ReplySink, tagged with the
    // caller's (connection, sequence) pair so the transport can slot
    // them back into per-connection order.  Ordering: frames for the
    // same shard apply in submit order; frames for different shards
    // race, which is fine because distinct markets share no state.

    /** Receives encoded reply frames from worker threads.  Called
     * concurrently from pool workers; must be thread-safe. */
    using ReplySink = std::function<void(
        std::uint64_t conn, std::uint64_t seq,
        std::vector<std::uint8_t> &&frame)>;

    /** Install the reply sink (before the first submitFrame). */
    void setReplySink(ReplySink sink);

    /**
     * Queue one raw request frame (opcode + body, no length prefix)
     * for asynchronous application on @p market's shard.  The reply
     * frame -- encoded response, or an encoded ErrorReply when the
     * payload fails to decode -- reaches the ReplySink later, tagged
     * (conn, seq).  pendingOps() counts frames submitted but not yet
     * sunk, so a transport can drain before shutdown.
     */
    void submitFrame(std::uint64_t market,
                     std::vector<std::uint8_t> &&payload,
                     std::uint64_t conn, std::uint64_t seq);

    /**
     * Start one epoch tick without blocking: each shard solves as one
     * pool task, and @p done runs on the worker that finishes last.
     * The caller must not start another tick (sync or async) until
     * done fires; queued submitFrame work interleaves freely.
     */
    void tickAsync(std::function<void()> done);

    /** @return frames accepted by submitFrame whose reply has not yet
     * been handed to the sink. */
    std::size_t pendingOps() const;

    /** @return the number of epochs ticked so far. */
    std::uint64_t epoch() const { return epoch_; }

    /** @return the shard a market id routes to. */
    std::size_t shardOf(std::uint64_t market) const;

    /** @return the shard count. */
    std::size_t shardCount() const { return shards_.size(); }

    /** @return markets hosted across all shards. */
    std::size_t marketCount() const;

    /** Direct shard access (tests, benches). */
    const Shard &shard(std::size_t i) const { return *shards_[i]; }

    /**
     * Per-shard telemetry as schema-stable JSON
     * ("rebudget.serve_stats.v1"): shard counters plus the merged
     * solver stats, one object per shard, fixed key order.
     */
    std::string statsJson() const;

    /**
     * FNV-1a digest over every shard's published market state (see
     * Shard::digest).  Identical runs -- same requests, same tick
     * schedule -- produce identical digests at any thread count.
     */
    std::uint64_t digest() const;

  private:
    /** One shard's inbox of raw frames awaiting a pool worker. */
    struct ShardQueue
    {
        std::mutex mutex;
        std::vector<PendingFrame> ops;
        /** True while a drain task is queued or running; the enqueuer
         * that flips it false->true owns scheduling the drain. */
        bool drainScheduled = false;
    };

    void drainQueue(std::size_t shard);

    ServeConfig config_;
    std::vector<std::unique_ptr<Shard>> shards_;
    util::ThreadPool pool_;
    std::uint64_t epoch_ = 0;
    std::vector<std::unique_ptr<ShardQueue>> queues_;
    ReplySink sink_;
    std::atomic<std::size_t> pendingOps_{0};
};

/**
 * Drive a ServerCore from a text trace (the `rebudgetd --replay` mode).
 *
 * Grammar, one command per line (`#` starts a comment):
 *   create <market> <app1,app2,...>   founding tenants get ids 0..n-1
 *   demand <market> <tenant> <weight>
 *   join <market> <tenant> <app>
 *   leave <market> <tenant>
 *   tick [count]
 *
 * Numbers go through the strict util::parseUnsigned/parseDouble
 * parsers.  A malformed line or a rejected request stops the replay
 * with an error naming the line; replies to well-formed requests that
 * the server rejects (e.g. joining a nonexistent market) are errors
 * too, because a replay trace is supposed to be a known-good sequence.
 */
util::SolveStatus runReplayTrace(ServerCore &core, std::istream &in);

} // namespace rebudget::serve

#endif // REBUDGET_SERVE_SERVER_CORE_H_
