#ifndef REBUDGET_SERVE_SERVER_CORE_H_
#define REBUDGET_SERVE_SERVER_CORE_H_

/**
 * @file
 * Transport-independent core of rebudgetd: request routing over a fixed
 * set of shards, the epoch-tick driver, aggregated telemetry and the
 * deterministic replay/digest machinery.
 *
 * Splitting the core from the socket layer keeps every behavior
 * testable in-process (tests/serve/server_core_test.cpp drives it with
 * no sockets) and lets bench/perf_serve run closed-loop against the
 * exact production code path.
 *
 * Determinism: requests are routed to shards by util::mix64(market id),
 * ticks solve each shard on one ThreadPool worker (Shard state is only
 * touched through its own index -- the parallelFor contract), and
 * digest() folds only bit-stable fields.  Hence a fixed request
 * sequence yields an identical digest at any --jobs value, which
 * `rebudgetd --replay` exposes and tools/serve_smoke.sh asserts.
 */

#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "rebudget/serve/shard.h"
#include "rebudget/util/thread_pool.h"

namespace rebudget::serve {

/** The daemon's market-hosting engine (no transport attached). */
class ServerCore
{
  public:
    explicit ServerCore(const ServeConfig &config);

    ServerCore(const ServerCore &) = delete;
    ServerCore &operator=(const ServerCore &) = delete;

    /**
     * Apply one request synchronously and build its reply.  Market-
     * scoped requests run under the owning shard's mutex; GetStats
     * aggregates every shard; TickNow runs one epoch before acking;
     * Shutdown acks (stopping is the transport's job).
     */
    Response apply(const Request &req);

    /** Run one epoch tick across all shards, in parallel. */
    void tick();

    /** @return the number of epochs ticked so far. */
    std::uint64_t epoch() const { return epoch_; }

    /** @return the shard a market id routes to. */
    std::size_t shardOf(std::uint64_t market) const;

    /** @return the shard count. */
    std::size_t shardCount() const { return shards_.size(); }

    /** @return markets hosted across all shards. */
    std::size_t marketCount() const;

    /** Direct shard access (tests, benches). */
    const Shard &shard(std::size_t i) const { return *shards_[i]; }

    /**
     * Per-shard telemetry as schema-stable JSON
     * ("rebudget.serve_stats.v1"): shard counters plus the merged
     * solver stats, one object per shard, fixed key order.
     */
    std::string statsJson() const;

    /**
     * FNV-1a digest over every shard's published market state (see
     * Shard::digest).  Identical runs -- same requests, same tick
     * schedule -- produce identical digests at any thread count.
     */
    std::uint64_t digest() const;

  private:
    ServeConfig config_;
    std::vector<std::unique_ptr<Shard>> shards_;
    util::ThreadPool pool_;
    std::uint64_t epoch_ = 0;
};

/**
 * Drive a ServerCore from a text trace (the `rebudgetd --replay` mode).
 *
 * Grammar, one command per line (`#` starts a comment):
 *   create <market> <app1,app2,...>   founding tenants get ids 0..n-1
 *   demand <market> <tenant> <weight>
 *   join <market> <tenant> <app>
 *   leave <market> <tenant>
 *   tick [count]
 *
 * Numbers go through the strict util::parseUnsigned/parseDouble
 * parsers.  A malformed line or a rejected request stops the replay
 * with an error naming the line; replies to well-formed requests that
 * the server rejects (e.g. joining a nonexistent market) are errors
 * too, because a replay trace is supposed to be a known-good sequence.
 */
util::SolveStatus runReplayTrace(ServerCore &core, std::istream &in);

} // namespace rebudget::serve

#endif // REBUDGET_SERVE_SERVER_CORE_H_
