#ifndef REBUDGET_SERVE_SERVER_CORE_H_
#define REBUDGET_SERVE_SERVER_CORE_H_

/**
 * @file
 * Transport-independent core of rebudgetd: request routing over a fixed
 * set of shards, the epoch-tick driver, aggregated telemetry and the
 * deterministic replay/digest machinery.
 *
 * Splitting the core from the socket layer keeps every behavior
 * testable in-process (tests/serve/server_core_test.cpp drives it with
 * no sockets) and lets bench/perf_serve run closed-loop against the
 * exact production code path.
 *
 * Determinism: requests are routed to shards by util::mix64(market id),
 * ticks solve each shard on one ThreadPool worker (Shard state is only
 * touched through its own index -- the parallelFor contract), and
 * digest() folds only bit-stable fields.  Hence a fixed request
 * sequence yields an identical digest at any --jobs value, which
 * `rebudgetd --replay` exposes and tools/serve_smoke.sh asserts.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rebudget/serve/shard.h"
#include "rebudget/util/thread_pool.h"

namespace rebudget::serve {

/** A raw request frame queued for asynchronous application, tagged
 * with the transport's (connection, sequence) reply address. */
struct PendingFrame
{
    std::vector<std::uint8_t> payload;
    std::uint64_t conn = 0;
    std::uint64_t seq = 0;
};

/**
 * Receives every state-mutating request (CreateMarket, SubmitDemand,
 * JoinTenant, LeaveTenant) as raw wire payload bytes BEFORE the owning
 * shard applies it -- the write-ahead hook the op journal
 * (serve/persist.h) hangs off.  journalOp() runs on the thread that is
 * about to apply the op.  The async write plane is single-flight per
 * shard, but a synchronous apply() (replay, admin tools) may race it,
 * so implementations must tolerate concurrent calls even for one
 * shard (serve/persist.h takes a per-shard mutex).  opApplied() fires
 * after the op's apply() returns, regardless of acceptance or
 * rejection: it advances the "durably applied" sequence floor a
 * snapshot may safely record.
 */
class JournalSink
{
  public:
    virtual ~JournalSink() = default;
    /** Persist one mutating op's wire payload bound for @p shard. */
    virtual void journalOp(std::size_t shard,
                           const std::uint8_t *payload,
                           std::size_t size) = 0;
    /** The op most recently journaled for @p shard has been applied. */
    virtual void opApplied(std::size_t shard) = 0;
};

/** What recovery did at startup, for telemetry and operator eyes. */
struct RecoverySummary
{
    /** Recovery ran (even if it found a cold, empty state dir). */
    bool attempted = false;
    /** Snapshot files that decoded and verified end to end. */
    std::uint64_t snapshotsLoaded = 0;
    /** Snapshot files rejected (bad magic/CRC/shape) -- each one
     * degraded to the previous snapshot or a cold start. */
    std::uint64_t snapshotsCorrupt = 0;
    std::uint64_t marketsRestored = 0;
    /** Markets whose image failed validation and were skipped. */
    std::uint64_t marketsSkipped = 0;
    /** Journal records replayed on top of the snapshots. */
    std::uint64_t opsReplayed = 0;
    /** Journal records skipped as already covered by a snapshot. */
    std::uint64_t opsSkipped = 0;
    /** Journals that ended in a torn/corrupt record (replay stops
     * there; everything before the tear still applied). */
    std::uint64_t journalTornTails = 0;
};

/** The daemon's market-hosting engine (no transport attached). */
class ServerCore
{
  public:
    explicit ServerCore(const ServeConfig &config);

    ServerCore(const ServerCore &) = delete;
    ServerCore &operator=(const ServerCore &) = delete;

    /**
     * Apply one request synchronously and build its reply.  Mutating
     * market-scoped requests run under the owning shard's mutex;
     * GetAllocation goes through the lock-free read path; GetStats
     * aggregates every shard; TickNow runs one epoch before acking;
     * Shutdown acks (stopping is the transport's job).
     */
    Response apply(const Request &req);

    /**
     * Lock-free snapshot read into a caller-reused reply (see
     * Shard::readAllocation): routes to the owning shard, never takes
     * a shard mutex, performs zero heap allocations once @p out has
     * grown to the market's shape.  Safe from any thread, concurrent
     * with ticks and writes.
     */
    bool readAllocation(const GetAllocation &req, AllocationReply &out,
                        ErrorReply &err) const;

    /** Run one epoch tick across all shards, in parallel. */
    void tick();

    // --- async write plane (batched transport) -----------------------
    //
    // The socket layer never touches market state on its I/O thread:
    // it peeks the market id out of a raw frame, hands the frame to
    // submitFrame(), and per-shard FIFO queues drain on the tick
    // thread pool -- decode, apply and encode all happen on a worker.
    // Replies come back through the ReplySink, tagged with the
    // caller's (connection, sequence) pair so the transport can slot
    // them back into per-connection order.  Ordering: frames for the
    // same shard apply in submit order; frames for different shards
    // race, which is fine because distinct markets share no state.

    /** Receives encoded reply frames from worker threads.  Called
     * concurrently from pool workers; must be thread-safe. */
    using ReplySink = std::function<void(
        std::uint64_t conn, std::uint64_t seq,
        std::vector<std::uint8_t> &&frame)>;

    /** Install the reply sink (before the first submitFrame). */
    void setReplySink(ReplySink sink);

    /**
     * Queue one raw request frame (opcode + body, no length prefix)
     * for asynchronous application on @p market's shard.  The reply
     * frame -- encoded response, or an encoded ErrorReply when the
     * payload fails to decode -- reaches the ReplySink later, tagged
     * (conn, seq).  pendingOps() counts frames submitted but not yet
     * sunk, so a transport can drain before shutdown.
     */
    void submitFrame(std::uint64_t market,
                     std::vector<std::uint8_t> &&payload,
                     std::uint64_t conn, std::uint64_t seq);

    /**
     * Start one epoch tick without blocking: each shard solves as one
     * pool task, and @p done runs on the worker that finishes last.
     * The caller must not start another tick (sync or async) until
     * done fires; queued submitFrame work interleaves freely.
     */
    void tickAsync(std::function<void()> done);

    /** @return frames accepted by submitFrame whose reply has not yet
     * been handed to the sink. */
    std::size_t pendingOps() const;

    /** @return the number of epochs ticked so far. */
    std::uint64_t epoch() const { return epoch_; }

    /**
     * Restore the epoch counter (recovery only, before serving): ticks
     * resume from the pre-crash epoch, so recovered slot ticks and
     * fresh solves stay on one monotonic timeline.  Must not race
     * tick()/tickAsync().
     */
    void setEpoch(std::uint64_t epoch) { epoch_ = epoch; }

    /**
     * Install the write-ahead journal sink, or detach it with nullptr.
     * Attach AFTER recovery replay (so replayed ops are not
     * re-journaled) and before the transport starts accepting writes.
     * @p sink must outlive the core or be detached first.
     */
    void setJournal(JournalSink *sink) { journal_ = sink; }

    /** Record what startup recovery did (shown in statsJson()). */
    void noteRecovery(const RecoverySummary &summary)
    {
        recovery_ = summary;
    }

    /** @return the startup recovery summary (attempted=false when the
     * daemon started without a state dir). */
    const RecoverySummary &recovery() const { return recovery_; }

    /** @return the shard a market id routes to. */
    std::size_t shardOf(std::uint64_t market) const;

    /** @return the shard count. */
    std::size_t shardCount() const { return shards_.size(); }

    /** @return markets hosted across all shards. */
    std::size_t marketCount() const;

    /** Direct shard access (tests, benches). */
    const Shard &shard(std::size_t i) const { return *shards_[i]; }

    /** Mutable shard access (recovery restore path; tests). */
    Shard &mutableShard(std::size_t i) { return *shards_[i]; }

    /**
     * Per-shard telemetry as schema-stable JSON
     * ("rebudget.serve_stats.v1"): shard counters plus the merged
     * solver stats, one object per shard, fixed key order.
     */
    std::string statsJson() const;

    /**
     * FNV-1a digest over every shard's published market state (see
     * Shard::digest).  Identical runs -- same requests, same tick
     * schedule -- produce identical digests at any thread count.
     */
    std::uint64_t digest() const;

  private:
    /** One shard's inbox of raw frames awaiting a pool worker. */
    struct ShardQueue
    {
        std::mutex mutex;
        std::vector<PendingFrame> ops;
        /** True while a drain task is queued or running; the enqueuer
         * that flips it false->true owns scheduling the drain. */
        bool drainScheduled = false;
    };

    void drainQueue(std::size_t shard);
    /** Journal a mutating request (sync apply path); no-op when no
     * sink is attached or @p req is read-only/admin. */
    void journalRequest(std::size_t shard, const Request &req);

    ServeConfig config_;
    std::vector<std::unique_ptr<Shard>> shards_;
    util::ThreadPool pool_;
    std::uint64_t epoch_ = 0;
    std::vector<std::unique_ptr<ShardQueue>> queues_;
    ReplySink sink_;
    JournalSink *journal_ = nullptr;
    RecoverySummary recovery_;
    std::atomic<std::size_t> pendingOps_{0};
};

/**
 * Drive a ServerCore from a text trace (the `rebudgetd --replay` mode).
 *
 * Grammar, one command per line (`#` starts a comment):
 *   create <market> <app1,app2,...>   founding tenants get ids 0..n-1
 *   demand <market> <tenant> <weight>
 *   join <market> <tenant> <app>
 *   leave <market> <tenant>
 *   tick [count]
 *
 * Numbers go through the strict util::parseUnsigned/parseDouble
 * parsers.  A malformed line or a rejected request stops the replay
 * with an error naming the line; replies to well-formed requests that
 * the server rejects (e.g. joining a nonexistent market) are errors
 * too, because a replay trace is supposed to be a known-good sequence.
 */
util::SolveStatus runReplayTrace(ServerCore &core, std::istream &in);

} // namespace rebudget::serve

#endif // REBUDGET_SERVE_SERVER_CORE_H_
